#ifndef GANSWER_MATCH_QUERY_GRAPH_H_
#define GANSWER_MATCH_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "linking/entity_linker.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace match {

/// A query vertex: the candidate list C_v of Definition 3. Entity
/// candidates constrain the matched vertex to be that entity; class
/// candidates constrain it to be an instance of the class. A wildcard
/// vertex (wh-words, unlinkable arguments) matches any graph vertex.
struct QueryVertex {
  std::vector<linking::LinkCandidate> candidates;
  bool wildcard = false;
  /// Confidence used for wildcard matches (delta = 1 keeps the paper's
  /// log-score unchanged for wh arguments).
  double wildcard_confidence = 1.0;
};

/// A query edge: the candidate list C_edge of predicates / predicate paths.
/// Orientation of candidates is advisory: Definition 3 admits the matched
/// edge in either direction, so the matcher tries both. A wildcard edge
/// matches any single predicate.
struct QueryEdge {
  int from = -1;
  int to = -1;
  std::vector<paraphrase::ParaphraseEntry> candidates;
  bool wildcard = false;
  double wildcard_confidence = 0.3;
};

/// The structural query the matcher evaluates — the shape of the semantic
/// query graph Q^S with all NL anchoring stripped.
struct QueryGraph {
  std::vector<QueryVertex> vertices;
  std::vector<QueryEdge> edges;

  std::vector<int> IncidentEdges(int v) const;
};

/// One subgraph match M of the query graph (Definition 3), with the score
/// of Definition 6: sum of log-confidences of the chosen vertex and edge
/// mappings.
struct Match {
  /// assignment[i] = graph vertex matched to query vertex i.
  std::vector<rdf::TermId> assignment;
  double score = 0.0;

  friend bool operator==(const Match& a, const Match& b) {
    return a.assignment == b.assignment;
  }
};

/// The pinned total order on matches: score descending, ties broken by the
/// assignment vector lexicographically ascending. This is the ONE ranking
/// every ranked-match producer must use — TopKMatcher's serial, parallel
/// and memoized paths all sort with it, and the reference oracles under
/// tests/oracle/ compare against it — so equal-score matches come back in
/// the same order everywhere.
bool MatchOrder(const Match& a, const Match& b);

/// Sorts \p matches by MatchOrder and cuts to the top \p k, keeping every
/// match tied with the k-th score (the paper counts equal-score matches
/// once). Shared by TopKMatcher and the enumerate-and-rank oracle so both
/// apply the identical cut rule.
void SortAndCutTopK(std::vector<Match>* matches, size_t k);

/// Scatter-gather merge: per-shard top-k lists collapse into one global
/// top-k. The same match can arrive from several shards — halo replication
/// makes shard graphs overlap — possibly with a lower score where a shard
/// saw only part of the match's neighborhood, so duplicates keep the MAX
/// score (the owner shard's exact one) before the shared SortAndCutTopK
/// applies the identical ranking and tie-keeping cut the single-snapshot
/// matcher uses.
std::vector<Match> MergeShardTopK(
    const std::vector<std::vector<Match>>& shard_matches, size_t k);

}  // namespace match
}  // namespace ganswer

#endif  // GANSWER_MATCH_QUERY_GRAPH_H_
