#include "match/candidates.h"

#include <algorithm>
#include <utility>

namespace ganswer {
namespace match {

double EstimateEdgeFanout(const rdf::GraphStats& stats,
                          const QueryEdge& edge) {
  if (edge.wildcard) return stats.AvgOutFanout() + stats.AvgInFanout();
  double cost = 0.0;
  for (const paraphrase::ParaphraseEntry& cand : edge.candidates) {
    double fwd = 1.0, bwd = 1.0;
    for (const paraphrase::PathStep& step : cand.path.steps) {
      fwd *= step.forward ? stats.AvgObjectsPerSubject(step.predicate)
                          : stats.AvgSubjectsPerObject(step.predicate);
      bwd *= step.forward ? stats.AvgSubjectsPerObject(step.predicate)
                          : stats.AvgObjectsPerSubject(step.predicate);
    }
    cost += fwd + bwd;
  }
  return cost;
}

const std::vector<rdf::TermId>* EdgeMemo::FindExpand(const QueryEdge* edge,
                                                     int side,
                                                     rdf::TermId u) const {
  auto it = expand_.find(ExpandKey{edge, side, u});
  return it == expand_.end() ? nullptr : &it->second;
}

const std::vector<rdf::TermId>& EdgeMemo::StoreExpand(
    const QueryEdge* edge, int side, rdf::TermId u,
    std::vector<rdf::TermId> result) {
  return expand_
      .insert_or_assign(ExpandKey{edge, side, u}, std::move(result))
      .first->second;
}

std::optional<bool> EdgeMemo::FindConnects(const paraphrase::PredicatePath* path,
                                           bool reversed, rdf::TermId from,
                                           rdf::TermId to) const {
  auto it = connects_.find(ConnectsKey{path, reversed, from, to});
  if (it == connects_.end()) return std::nullopt;
  return it->second;
}

void EdgeMemo::StoreConnects(const paraphrase::PredicatePath* path,
                             bool reversed, rdf::TermId from, rdf::TermId to,
                             bool connects) {
  connects_.insert_or_assign(ConnectsKey{path, reversed, from, to}, connects);
}

namespace {

using paraphrase::PathStep;
using paraphrase::PredicatePath;

// True when `u` has at least one incident RDF edge that could begin an
// instantiation of `path` (in the given orientation).
bool HasFirstStep(const rdf::RdfGraph& graph, rdf::TermId u,
                  const PredicatePath& path) {
  if (path.steps.empty()) return false;
  const PathStep& s = path.steps.front();
  auto edges = s.forward ? graph.OutEdges(u) : graph.InEdges(u);
  return std::binary_search(
      edges.begin(), edges.end(), rdf::Edge{s.predicate, 0},
      [](const rdf::Edge& a, const rdf::Edge& b) {
        return a.predicate < b.predicate;
      });
}

// Candidate survives the neighborhood check for one incident edge when some
// candidate predicate/path can start at u (from either endpoint role). The
// signature index, when present, gives a constant-time rejection before the
// adjacency binary search (no false negatives by construction).
bool SurvivesEdge(const rdf::RdfGraph& graph, const QueryEdge& edge,
                  rdf::TermId u, const rdf::SignatureIndex* signatures) {
  if (edge.wildcard) return graph.Degree(u) > 0;
  for (const paraphrase::ParaphraseEntry& e : edge.candidates) {
    if (e.path.IsSinglePredicate()) {
      // Either direction is admissible for single predicates (Def. 3).
      rdf::TermId p = e.path.steps[0].predicate;
      if (signatures != nullptr && !signatures->MaybeHasEither(u, p)) {
        continue;
      }
      PredicatePath fwd{{{p, true}}};
      PredicatePath bwd{{{p, false}}};
      if (HasFirstStep(graph, u, fwd) || HasFirstStep(graph, u, bwd)) {
        return true;
      }
    } else {
      const PathStep& first = e.path.steps.front();
      const PathStep& last = e.path.steps.back();
      if (signatures != nullptr) {
        bool maybe_fwd = first.forward ? signatures->MaybeHasOut(u, first.predicate)
                                       : signatures->MaybeHasIn(u, first.predicate);
        // Reversed orientation starts with the LAST step, flipped.
        bool maybe_bwd = last.forward ? signatures->MaybeHasIn(u, last.predicate)
                                      : signatures->MaybeHasOut(u, last.predicate);
        if (!maybe_fwd && !maybe_bwd) continue;
      }
      if (HasFirstStep(graph, u, e.path) ||
          HasFirstStep(graph, u, e.path.Reversed())) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

CandidateSpace CandidateSpace::Build(const rdf::RdfGraph& graph,
                                     const QueryGraph& query,
                                     bool neighborhood_pruning,
                                     const rdf::SignatureIndex* signatures,
                                     const rdf::GraphStats* stats) {
  CandidateSpace space;
  space.domains_.resize(query.vertices.size());
  space.delta_.resize(query.vertices.size());

  // Domains are independent of each other, so their build order cannot
  // change the result; with statistics the smallest estimated domains go
  // first so the cheap ones are materialized (and available to early
  // TA-round consumers) before the expensive class expansions.
  std::vector<size_t> vertex_order(query.vertices.size());
  for (size_t i = 0; i < vertex_order.size(); ++i) vertex_order[i] = i;
  if (stats != nullptr) {
    auto domain_estimate = [&](size_t i) -> double {
      const QueryVertex& qv = query.vertices[i];
      if (qv.wildcard) return 0.0;
      double est = 0.0;
      for (const linking::LinkCandidate& c : qv.candidates) {
        est += c.is_class
                   ? static_cast<double>(stats->ClassInstanceCount(c.vertex))
                   : 1.0;
      }
      return est;
    };
    std::stable_sort(vertex_order.begin(), vertex_order.end(),
                     [&](size_t a, size_t b) {
                       return domain_estimate(a) < domain_estimate(b);
                     });
  }

  for (size_t i : vertex_order) {
    const QueryVertex& qv = query.vertices[i];
    VertexDomain& dom = space.domains_[i];
    dom.wildcard = qv.wildcard;
    dom.wildcard_confidence = qv.wildcard_confidence;
    if (qv.wildcard) continue;

    auto& delta = space.delta_[i];
    for (const linking::LinkCandidate& c : qv.candidates) {
      if (c.is_class) {
        for (rdf::TermId inst : graph.InstancesOf(c.vertex)) {
          auto [it, inserted] = delta.emplace(inst, c.confidence);
          if (!inserted) it->second = std::max(it->second, c.confidence);
        }
      } else {
        auto [it, inserted] = delta.emplace(c.vertex, c.confidence);
        if (!inserted) it->second = std::max(it->second, c.confidence);
      }
    }

    if (neighborhood_pruning) {
      std::vector<int> incident = query.IncidentEdges(static_cast<int>(i));
      if (stats != nullptr && incident.size() > 1) {
        // Check the lowest-fan-out (most selective) edge first so doomed
        // candidates are rejected before the expensive checks run. The
        // surviving set is the conjunction either way.
        std::stable_sort(incident.begin(), incident.end(),
                         [&](int a, int b) {
                           return EstimateEdgeFanout(*stats, query.edges[a]) <
                                  EstimateEdgeFanout(*stats, query.edges[b]);
                         });
      }
      for (auto it = delta.begin(); it != delta.end();) {
        bool ok = true;
        for (int ei : incident) {
          if (!SurvivesEdge(graph, query.edges[ei], it->first, signatures)) {
            ok = false;
            break;
          }
        }
        it = ok ? std::next(it) : delta.erase(it);
      }
    }

    dom.items.reserve(delta.size());
    for (const auto& [v, conf] : delta) dom.items.push_back({v, conf});
    std::sort(dom.items.begin(), dom.items.end(),
              [](const Item& a, const Item& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.vertex < b.vertex;
              });
  }
  return space;
}

std::optional<double> CandidateSpace::VertexDelta(int qv,
                                                  rdf::TermId u) const {
  const VertexDomain& dom = domains_[qv];
  if (dom.wildcard) return dom.wildcard_confidence;
  auto it = delta_[qv].find(u);
  if (it == delta_[qv].end()) return std::nullopt;
  return it->second;
}

std::optional<double> CandidateSpace::EdgeDelta(const rdf::RdfGraph& graph,
                                                const QueryEdge& edge,
                                                int qv_from,
                                                rdf::TermId u_from,
                                                rdf::TermId u_to,
                                                EdgeMemo* memo) {
  bool u_is_arg1 = qv_from == edge.from;
  if (edge.wildcard) {
    // Any direct predicate, either direction.
    for (const rdf::Edge& e : graph.OutEdges(u_from)) {
      if (e.neighbor == u_to) return edge.wildcard_confidence;
    }
    for (const rdf::Edge& e : graph.InEdges(u_from)) {
      if (e.neighbor == u_to) return edge.wildcard_confidence;
    }
    return std::nullopt;
  }
  std::optional<double> best;
  for (const paraphrase::ParaphraseEntry& cand : edge.candidates) {
    if (best.has_value() && cand.confidence <= *best) continue;
    bool connects = false;
    if (cand.path.IsSinglePredicate()) {
      rdf::TermId p = cand.path.steps[0].predicate;
      connects = graph.HasTriple(u_from, p, u_to) ||
                 graph.HasTriple(u_to, p, u_from);
    } else {
      // Multi-hop connectivity is the expensive probe (a walk per step);
      // the memo keys it by the candidate path's identity plus the
      // orientation actually walked.
      const bool reversed = !u_is_arg1;
      std::optional<bool> cached =
          memo != nullptr
              ? memo->FindConnects(&cand.path, reversed, u_from, u_to)
              : std::nullopt;
      if (cached.has_value()) {
        connects = *cached;
      } else {
        const PredicatePath oriented =
            u_is_arg1 ? cand.path : cand.path.Reversed();
        connects = paraphrase::PathConnects(graph, u_from, u_to, oriented);
        if (memo != nullptr) {
          memo->StoreConnects(&cand.path, reversed, u_from, u_to, connects);
        }
      }
    }
    if (connects) best = cand.confidence;
  }
  return best;
}

std::vector<rdf::TermId> CandidateSpace::Expand(const rdf::RdfGraph& graph,
                                                const QueryEdge& edge,
                                                int side, rdf::TermId u) {
  // Collect everything, then one sort + unique: no per-call hash set, and
  // the sorted output doubles as a canonical order for memoized reuse.
  std::vector<rdf::TermId> out;
  if (edge.wildcard) {
    auto outs = graph.OutEdges(u);
    auto ins = graph.InEdges(u);
    out.reserve(outs.size() + ins.size());
    for (const rdf::Edge& e : outs) out.push_back(e.neighbor);
    for (const rdf::Edge& e : ins) out.push_back(e.neighbor);
  } else {
    bool u_is_arg1 = side == edge.from;
    for (const paraphrase::ParaphraseEntry& cand : edge.candidates) {
      if (cand.path.IsSinglePredicate()) {
        rdf::TermId p = cand.path.steps[0].predicate;
        auto objects = graph.Objects(u, p);
        out.insert(out.end(), objects.begin(), objects.end());
        auto subjects = graph.Subjects(p, u);
        out.insert(out.end(), subjects.begin(), subjects.end());
      } else {
        const PredicatePath oriented =
            u_is_arg1 ? cand.path : cand.path.Reversed();
        std::vector<rdf::TermId> ends =
            paraphrase::PathEndpoints(graph, u, oriented);
        out.insert(out.end(), ends.begin(), ends.end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace match
}  // namespace ganswer
