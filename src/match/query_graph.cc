#include "match/query_graph.h"

#include <algorithm>

namespace ganswer {
namespace match {

bool MatchOrder(const Match& a, const Match& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.assignment < b.assignment;
}

void SortAndCutTopK(std::vector<Match>* matches, size_t k) {
  std::sort(matches->begin(), matches->end(), MatchOrder);
  if (matches->size() > k && k > 0) {
    double kth = (*matches)[k - 1].score;
    size_t cut = k;
    while (cut < matches->size() && (*matches)[cut].score == kth) ++cut;
    matches->resize(cut);
  }
}

std::vector<int> QueryGraph::IncidentEdges(int v) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].from == v || edges[i].to == v) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace match
}  // namespace ganswer
