#include "match/query_graph.h"

namespace ganswer {
namespace match {

std::vector<int> QueryGraph::IncidentEdges(int v) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].from == v || edges[i].to == v) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace match
}  // namespace ganswer
