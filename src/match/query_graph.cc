#include "match/query_graph.h"

#include <algorithm>
#include <unordered_map>

namespace ganswer {
namespace match {

bool MatchOrder(const Match& a, const Match& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.assignment < b.assignment;
}

void SortAndCutTopK(std::vector<Match>* matches, size_t k) {
  std::sort(matches->begin(), matches->end(), MatchOrder);
  if (matches->size() > k && k > 0) {
    double kth = (*matches)[k - 1].score;
    size_t cut = k;
    while (cut < matches->size() && (*matches)[cut].score == kth) ++cut;
    matches->resize(cut);
  }
}

std::vector<Match> MergeShardTopK(
    const std::vector<std::vector<Match>>& shard_matches, size_t k) {
  // Dedupe by assignment keeping the maximum score: a shard that held the
  // whole match neighborhood reports the exact score, one that saw only a
  // slice may report less for the same assignment.
  struct AssignmentHash {
    size_t operator()(const std::vector<rdf::TermId>& a) const {
      size_t h = a.size();
      for (rdf::TermId v : a) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<std::vector<rdf::TermId>, double, AssignmentHash> best;
  for (const std::vector<Match>& list : shard_matches) {
    for (const Match& m : list) {
      auto [it, inserted] = best.emplace(m.assignment, m.score);
      if (!inserted && m.score > it->second) it->second = m.score;
    }
  }
  std::vector<Match> merged;
  merged.reserve(best.size());
  for (auto& [assignment, score] : best) {
    merged.push_back(Match{assignment, score});
  }
  SortAndCutTopK(&merged, k);
  return merged;
}

std::vector<int> QueryGraph::IncidentEdges(int v) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].from == v || edges[i].to == v) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

}  // namespace match
}  // namespace ganswer
