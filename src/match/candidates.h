#ifndef GANSWER_MATCH_CANDIDATES_H_
#define GANSWER_MATCH_CANDIDATES_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "match/query_graph.h"
#include "rdf/graph_stats.h"
#include "rdf/signature_index.h"

namespace ganswer {
namespace match {

/// Estimated neighbor fan-out of expanding across \p edge: the sum over its
/// candidate paths of the expected forward plus backward step products
/// (both orientations are explored); a wildcard edge costs the average
/// vertex degree. Pure ordering heuristic — never used to filter.
double EstimateEdgeFanout(const rdf::GraphStats& stats, const QueryEdge& edge);

/// \brief Memo for the matcher's repeated graph walks within one Ask():
/// Expand() neighbor lists and multi-hop PathConnects verdicts.
///
/// The TA loop re-anchors searches round after round over the same query,
/// so the same (edge, vertex) expansions and the same path-connectivity
/// probes recur; this memo makes each one a hash lookup after its first
/// computation. Keys use the identity of the QueryEdge / PredicatePath
/// objects, which are stable for the duration of one FindTopK call. NOT
/// thread-safe: parallel anchored searches each use their own memo.
class EdgeMemo {
 public:
  /// The memoized Expand result, or nullptr when not yet computed.
  const std::vector<rdf::TermId>* FindExpand(const QueryEdge* edge, int side,
                                             rdf::TermId u) const;
  /// Stores and returns a reference that stays valid for the memo's
  /// lifetime (rehashing does not move unordered_map values).
  const std::vector<rdf::TermId>& StoreExpand(const QueryEdge* edge, int side,
                                              rdf::TermId u,
                                              std::vector<rdf::TermId> result);

  /// The memoized PathConnects verdict for \p path (reversed when
  /// \p reversed) between \p from and \p to, if known.
  std::optional<bool> FindConnects(const paraphrase::PredicatePath* path,
                                   bool reversed, rdf::TermId from,
                                   rdf::TermId to) const;
  void StoreConnects(const paraphrase::PredicatePath* path, bool reversed,
                     rdf::TermId from, rdf::TermId to, bool connects);

 private:
  struct ExpandKey {
    const QueryEdge* edge;
    int side;
    rdf::TermId u;
    friend bool operator==(const ExpandKey&, const ExpandKey&) = default;
  };
  struct ExpandKeyHash {
    size_t operator()(const ExpandKey& k) const {
      size_t h = std::hash<const void*>{}(k.edge);
      h = h * 1099511628211ULL ^ static_cast<size_t>(k.side);
      return h * 1099511628211ULL ^ static_cast<size_t>(k.u);
    }
  };
  struct ConnectsKey {
    const paraphrase::PredicatePath* path;
    bool reversed;
    rdf::TermId from;
    rdf::TermId to;
    friend bool operator==(const ConnectsKey&, const ConnectsKey&) = default;
  };
  struct ConnectsKeyHash {
    size_t operator()(const ConnectsKey& k) const {
      size_t h = std::hash<const void*>{}(k.path);
      h = h * 1099511628211ULL ^ (k.reversed ? 0x9e3779b9u : 0u);
      h = h * 1099511628211ULL ^ static_cast<size_t>(k.from);
      return h * 1099511628211ULL ^ static_cast<size_t>(k.to);
    }
  };

  std::unordered_map<ExpandKey, std::vector<rdf::TermId>, ExpandKeyHash>
      expand_;
  std::unordered_map<ConnectsKey, bool, ConnectsKeyHash> connects_;
};

/// \brief Materialized candidate vertex domains plus the edge-compatibility
/// oracle the subgraph matcher works against.
///
/// Entity candidates contribute themselves; class candidates contribute
/// every instance of the class (Definition 3 condition 2), at the class's
/// confidence. Wildcard vertices keep an empty domain and match lazily.
///
/// Neighborhood-based pruning (Sec. 4.2.2, first pruning method): a domain
/// vertex is dropped when, for some incident query edge, it has no incident
/// RDF edge whose predicate could begin any candidate predicate path — the
/// u5 example of the paper.
class CandidateSpace {
 public:
  struct Item {
    rdf::TermId vertex = rdf::kInvalidTerm;
    double confidence = 0.0;
  };

  struct VertexDomain {
    /// Sorted by confidence, non-ascending.
    std::vector<Item> items;
    bool wildcard = false;
    double wildcard_confidence = 1.0;
  };

  /// Builds the domains for \p query against \p graph. When \p signatures
  /// is non-null, the neighborhood check consults the gStore-style vertex
  /// signatures first (constant-time rejection) before touching adjacency
  /// lists; results are identical either way. When \p stats is non-null,
  /// vertex domains are built in ascending estimated-size order and each
  /// domain's incident pruning edges are checked cheapest estimated
  /// fan-out first (earlier rejections); the built domains are identical
  /// with or without statistics.
  static CandidateSpace Build(const rdf::RdfGraph& graph,
                              const QueryGraph& query,
                              bool neighborhood_pruning,
                              const rdf::SignatureIndex* signatures = nullptr,
                              const rdf::GraphStats* stats = nullptr);

  const VertexDomain& domain(int qv) const { return domains_[qv]; }
  size_t NumVertices() const { return domains_.size(); }

  /// delta(arg, u): confidence of graph vertex \p u as a match for query
  /// vertex \p qv; nullopt when u is not admissible.
  std::optional<double> VertexDelta(int qv, rdf::TermId u) const;

  /// delta(rel, P): best confidence over the edge's candidates that
  /// actually connect \p u_from and \p u_to in \p graph (either direction
  /// for single predicates, oriented for longer paths; any single predicate
  /// for wildcard edges). nullopt when the pair is not connected. When
  /// \p memo is non-null, multi-hop PathConnects verdicts are memoized in
  /// it (single predicates are a cheap binary search and are not).
  static std::optional<double> EdgeDelta(const rdf::RdfGraph& graph,
                                         const QueryEdge& edge, int qv_from,
                                         rdf::TermId u_from, rdf::TermId u_to,
                                         EdgeMemo* memo = nullptr);

  /// Graph vertices reachable from \p u across query edge \p edge, where
  /// \p u stands at query vertex \p side (edge.from or edge.to). Each
  /// reachable vertex is returned once, in ascending id order.
  static std::vector<rdf::TermId> Expand(const rdf::RdfGraph& graph,
                                         const QueryEdge& edge, int side,
                                         rdf::TermId u);

 private:
  std::vector<VertexDomain> domains_;
  /// Per query vertex: admissibility map for non-wildcard domains.
  std::vector<std::unordered_map<rdf::TermId, double>> delta_;
};

}  // namespace match
}  // namespace ganswer

#endif  // GANSWER_MATCH_CANDIDATES_H_
