#ifndef GANSWER_MATCH_CANDIDATES_H_
#define GANSWER_MATCH_CANDIDATES_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "match/query_graph.h"
#include "rdf/signature_index.h"

namespace ganswer {
namespace match {

/// \brief Materialized candidate vertex domains plus the edge-compatibility
/// oracle the subgraph matcher works against.
///
/// Entity candidates contribute themselves; class candidates contribute
/// every instance of the class (Definition 3 condition 2), at the class's
/// confidence. Wildcard vertices keep an empty domain and match lazily.
///
/// Neighborhood-based pruning (Sec. 4.2.2, first pruning method): a domain
/// vertex is dropped when, for some incident query edge, it has no incident
/// RDF edge whose predicate could begin any candidate predicate path — the
/// u5 example of the paper.
class CandidateSpace {
 public:
  struct Item {
    rdf::TermId vertex = rdf::kInvalidTerm;
    double confidence = 0.0;
  };

  struct VertexDomain {
    /// Sorted by confidence, non-ascending.
    std::vector<Item> items;
    bool wildcard = false;
    double wildcard_confidence = 1.0;
  };

  /// Builds the domains for \p query against \p graph. When \p signatures
  /// is non-null, the neighborhood check consults the gStore-style vertex
  /// signatures first (constant-time rejection) before touching adjacency
  /// lists; results are identical either way.
  static CandidateSpace Build(const rdf::RdfGraph& graph,
                              const QueryGraph& query,
                              bool neighborhood_pruning,
                              const rdf::SignatureIndex* signatures = nullptr);

  const VertexDomain& domain(int qv) const { return domains_[qv]; }
  size_t NumVertices() const { return domains_.size(); }

  /// delta(arg, u): confidence of graph vertex \p u as a match for query
  /// vertex \p qv; nullopt when u is not admissible.
  std::optional<double> VertexDelta(int qv, rdf::TermId u) const;

  /// delta(rel, P): best confidence over the edge's candidates that
  /// actually connect \p u_from and \p u_to in \p graph (either direction
  /// for single predicates, oriented for longer paths; any single predicate
  /// for wildcard edges). nullopt when the pair is not connected.
  static std::optional<double> EdgeDelta(const rdf::RdfGraph& graph,
                                         const QueryEdge& edge, int qv_from,
                                         rdf::TermId u_from, rdf::TermId u_to);

  /// Graph vertices reachable from \p u across query edge \p edge, where
  /// \p u stands at query vertex \p side (edge.from or edge.to). Each
  /// reachable vertex is returned once.
  static std::vector<rdf::TermId> Expand(const rdf::RdfGraph& graph,
                                         const QueryEdge& edge, int side,
                                         rdf::TermId u);

 private:
  std::vector<VertexDomain> domains_;
  /// Per query vertex: admissibility map for non-wildcard domains.
  std::vector<std::unordered_map<rdf::TermId, double>> delta_;
};

}  // namespace match
}  // namespace ganswer

#endif  // GANSWER_MATCH_CANDIDATES_H_
