#ifndef GANSWER_MATCH_TOP_K_MATCHER_H_
#define GANSWER_MATCH_TOP_K_MATCHER_H_

#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "match/candidates.h"
#include "match/query_graph.h"
#include "match/subgraph_matcher.h"
#include "rdf/signature_index.h"

namespace ganswer {
namespace match {

/// \brief Algorithm 3: TA-style top-k subgraph matching.
///
/// Every non-wildcard query vertex keeps a cursor into its confidence-sorted
/// candidate domain. Each round probes, for every list, an anchored subgraph
/// search from the cursor candidate (SubgraphMatcher), updates the running
/// top-k threshold theta, advances the cursors, and recomputes the upper
/// bound of Equation 3 for all still-undiscovered matches:
///
///   Upbound = sum_v log(delta_v at cursor) + sum_e log(delta_e best)
///
/// Any match not yet found uses, in every vertex list, a candidate at or
/// below the cursor (otherwise the anchored search from that candidate
/// would have found it), so its score cannot exceed Upbound; the loop stops
/// as soon as theta >= Upbound (the TA stopping rule). Matches tied with
/// the k-th score are all kept, as the paper specifies.
///
/// Result order is the pinned total order MatchOrder (query_graph.h): score
/// descending, equal scores broken by assignment lexicographically — so the
/// serial, parallel and memoized paths return byte-identical lists, and the
/// enumerate-and-rank oracle (tests/oracle/) can compare rank by rank.
class TopKMatcher {
 public:
  struct Options {
    size_t k = 10;
    /// Neighborhood-based candidate pruning (Sec. 4.2.2 pruning 1).
    bool neighborhood_pruning = true;
    /// TA early termination; disabled = exhaust all candidate lists
    /// (the ablation baseline).
    bool ta_early_stop = true;
    /// Cap on matches gathered per anchored search (0 = unlimited).
    size_t max_matches_per_anchor = 512;
    /// Overall safety cap on distinct matches considered.
    size_t max_total_matches = 20000;
    /// Optional gStore-style signature index (rdf/signature_index.h) used
    /// as a fast pre-check by the neighborhood pruning. Must outlive the
    /// matcher. Results are identical with or without it.
    const rdf::SignatureIndex* signatures = nullptr;
    /// Optional graph statistics (rdf/graph_stats.h) steering candidate
    /// build order, anchor order and the per-search expansion plan by
    /// estimated cost. Must outlive the matcher. Pure ordering heuristic:
    /// the ranked matches are identical with or without it.
    const rdf::GraphStats* stats = nullptr;
    /// Parallelism for the per-round anchored searches: each round's cursor
    /// candidates fan out across a thread pool, every worker running an
    /// independent SubgraphMatcher into a thread-local buffer over the
    /// shared read-only graph and candidate space; buffers merge back in
    /// cursor order, so the match list is byte-identical to threads=1.
    ExecutionOptions exec;
  };

  struct RunStats {
    size_t rounds = 0;
    size_t anchored_searches = 0;
    size_t expansions = 0;
    size_t distinct_matches = 0;
    bool stopped_early = false;
  };

  /// \p graph must be finalized and outlive the call.
  explicit TopKMatcher(const rdf::RdfGraph* graph);
  TopKMatcher(const rdf::RdfGraph* graph, Options options);

  /// Top-k matches of \p query, best score first. Fails with
  /// InvalidArgument when every query vertex is a wildcard (nothing to
  /// anchor the search). A query with no edges is a single-vertex lookup:
  /// its domain items become the matches.
  StatusOr<std::vector<Match>> FindTopK(const QueryGraph& query,
                                        RunStats* stats = nullptr) const;

  const Options& options() const { return options_; }

 private:
  const rdf::RdfGraph* graph_;
  Options options_;
};

}  // namespace match
}  // namespace ganswer

#endif  // GANSWER_MATCH_TOP_K_MATCHER_H_
