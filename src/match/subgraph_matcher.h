#ifndef GANSWER_MATCH_SUBGRAPH_MATCHER_H_
#define GANSWER_MATCH_SUBGRAPH_MATCHER_H_

#include <cstddef>
#include <vector>

#include "match/candidates.h"
#include "match/query_graph.h"
#include "rdf/graph_stats.h"

namespace ganswer {
namespace match {

/// \brief Anchored exploration-based subgraph isomorphism in the VF2 style
/// (Sec. 4.2.2, Algorithm 3 line 9): finds matches of the query graph that
/// contain a given (query vertex -> graph vertex) anchor pair.
///
/// The search extends the partial mapping one query vertex at a time along
/// query edges, expanding RDF neighbors admissible for the connecting
/// edge's candidate predicates/paths, checking the new vertex against the
/// target query vertex's candidate domain, the remaining connecting edges,
/// and injectivity. Scores follow Definition 6.
///
/// With GraphStats the visit order and the expansion edge at each step are
/// chosen by ascending estimated fan-out (cheapest edge first), and the
/// remaining back edges are checked cheapest first. The accepted match set
/// and its enumeration order (ascending neighbor ids from the sorted
/// Expand lists) are identical with or without statistics — only the work
/// to reach them changes.
class SubgraphMatcher {
 public:
  struct Stats {
    size_t expansions = 0;
    size_t complete_matches = 0;
  };

  /// \p graph, \p query and \p space must outlive the matcher. \p memo,
  /// when non-null, caches Expand() neighbor lists and multi-hop
  /// connectivity probes across anchored searches over the same query —
  /// pass the same memo to successive matchers (from one thread at a time)
  /// so later TA rounds reuse the earlier rounds' walks. \p stats, when
  /// non-null, steers the search plan by estimated edge fan-out.
  SubgraphMatcher(const rdf::RdfGraph* graph, const QueryGraph* query,
                  const CandidateSpace* space, EdgeMemo* memo = nullptr,
                  const rdf::GraphStats* stats = nullptr);

  /// Appends to \p out every match whose query vertex \p anchor_qv maps to
  /// graph vertex \p anchor_u, stopping after \p limit matches (0 = no
  /// limit). Only the connected component (of the query graph) containing
  /// \p anchor_qv is matched; vertices outside it keep kInvalidTerm in the
  /// assignment.
  void FindMatchesFrom(int anchor_qv, rdf::TermId anchor_u, size_t limit,
                       std::vector<Match>* out) const;

  const Stats& stats() const { return stats_; }

 private:
  struct SearchPlan {
    /// Query vertices in visit order (anchor first).
    std::vector<int> order;
    /// For order[i] (i>0): edges connecting it to already-visited vertices,
    /// cheapest estimated fan-out first when statistics are available; the
    /// first is the expansion edge, the rest are membership filters.
    std::vector<std::vector<int>> back_edges;
  };

  SearchPlan PlanFrom(int anchor_qv) const;
  /// Estimated neighbor fan-out of expanding across \p edge; used only to
  /// order the plan, never to filter.
  double EdgeCost(const QueryEdge& edge) const;
  double ScoreAssignment(const std::vector<rdf::TermId>& assignment,
                         const SearchPlan& plan) const;

  const rdf::RdfGraph* graph_;
  const QueryGraph* query_;
  const CandidateSpace* space_;
  EdgeMemo* memo_;
  const rdf::GraphStats* graph_stats_;
  mutable Stats stats_;
};

}  // namespace match
}  // namespace ganswer

#endif  // GANSWER_MATCH_SUBGRAPH_MATCHER_H_
