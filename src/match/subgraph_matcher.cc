#include "match/subgraph_matcher.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <unordered_set>

namespace ganswer {
namespace match {

SubgraphMatcher::SubgraphMatcher(const rdf::RdfGraph* graph,
                                 const QueryGraph* query,
                                 const CandidateSpace* space, EdgeMemo* memo,
                                 const rdf::GraphStats* stats)
    : graph_(graph),
      query_(query),
      space_(space),
      memo_(memo),
      graph_stats_(stats) {}

double SubgraphMatcher::EdgeCost(const QueryEdge& edge) const {
  return EstimateEdgeFanout(*graph_stats_, edge);
}

SubgraphMatcher::SearchPlan SubgraphMatcher::PlanFrom(int anchor_qv) const {
  SearchPlan plan;
  size_t n = query_->vertices.size();
  std::vector<bool> visited(n, false);

  plan.order.push_back(anchor_qv);
  plan.back_edges.emplace_back();  // anchor has no back edges
  visited[anchor_qv] = true;

  // Greedy BFS preferring non-wildcard vertices (smaller domains first).
  // With statistics, among equally-concrete vertices the one whose
  // cheapest connecting edge has the lowest estimated fan-out is extended
  // next; without, the tie-break is the back-edge count as before.
  while (true) {
    int best = -1;
    std::vector<int> best_back;
    double best_cost = 0.0;
    for (size_t v = 0; v < n; ++v) {
      if (visited[v]) continue;
      std::vector<int> back;
      for (size_t e = 0; e < query_->edges.size(); ++e) {
        const QueryEdge& edge = query_->edges[e];
        int other = -1;
        if (edge.from == static_cast<int>(v)) other = edge.to;
        if (edge.to == static_cast<int>(v)) other = edge.from;
        if (other >= 0 && visited[other]) back.push_back(static_cast<int>(e));
      }
      if (back.empty()) continue;  // not connected to the frontier yet
      double cost = 0.0;
      if (graph_stats_ != nullptr) {
        cost = EdgeCost(query_->edges[back.front()]);
        for (size_t bi = 1; bi < back.size(); ++bi) {
          cost = std::min(cost, EdgeCost(query_->edges[back[bi]]));
        }
      }
      bool best_is_wildcard = best >= 0 && query_->vertices[best].wildcard;
      bool v_is_wildcard = query_->vertices[v].wildcard;
      bool better;
      if (best < 0) {
        better = true;
      } else if (best_is_wildcard != v_is_wildcard) {
        better = best_is_wildcard;  // concrete vertices before wildcards
      } else if (graph_stats_ != nullptr) {
        better = cost < best_cost;
      } else {
        better = back.size() > best_back.size();
      }
      if (better) {
        best = static_cast<int>(v);
        best_back = std::move(back);
        best_cost = cost;
      }
    }
    if (best < 0) break;  // rest of the query graph is disconnected
    if (graph_stats_ != nullptr && best_back.size() > 1) {
      // Expansion runs through back[0] and the rest only filter, so put
      // the edge with the smallest estimated neighbor list first and
      // check the cheapest filters before the expensive ones.
      std::stable_sort(best_back.begin(), best_back.end(),
                       [&](int a, int b) {
                         return EdgeCost(query_->edges[a]) <
                                EdgeCost(query_->edges[b]);
                       });
    }
    visited[best] = true;
    plan.order.push_back(best);
    plan.back_edges.push_back(std::move(best_back));
  }
  return plan;
}

double SubgraphMatcher::ScoreAssignment(
    const std::vector<rdf::TermId>& assignment, const SearchPlan& plan) const {
  double score = 0.0;
  for (int qv : plan.order) {
    auto delta = space_->VertexDelta(qv, assignment[qv]);
    if (!delta.has_value() || *delta <= 0) return -1e18;
    score += std::log(*delta);
  }
  for (const QueryEdge& edge : query_->edges) {
    rdf::TermId uf = assignment[edge.from];
    rdf::TermId ut = assignment[edge.to];
    if (uf == rdf::kInvalidTerm || ut == rdf::kInvalidTerm) continue;
    auto delta =
        CandidateSpace::EdgeDelta(*graph_, edge, edge.from, uf, ut, memo_);
    if (!delta.has_value() || *delta <= 0) return -1e18;
    score += std::log(*delta);
  }
  return score;
}

void SubgraphMatcher::FindMatchesFrom(int anchor_qv, rdf::TermId anchor_u,
                                      size_t limit,
                                      std::vector<Match>* out) const {
  if (!space_->VertexDelta(anchor_qv, anchor_u).has_value()) return;

  SearchPlan plan = PlanFrom(anchor_qv);
  std::vector<rdf::TermId> assignment(query_->vertices.size(),
                                      rdf::kInvalidTerm);
  assignment[anchor_qv] = anchor_u;
  // Graph vertices currently bound by `assignment`, for the O(1)
  // injectivity check below.
  std::unordered_set<rdf::TermId> used;
  used.reserve(plan.order.size());
  used.insert(anchor_u);
  size_t found_at_entry = out->size();

  // The memoized, sorted Expand list for (edge, side, u) — computed once
  // per Ask and then served as a reference into the memo (values are
  // stable across rehashes). `scratch` backs the memo-less path.
  auto expand_via = [&](const QueryEdge& edge, int side, rdf::TermId u,
                        std::vector<rdf::TermId>* scratch)
      -> const std::vector<rdf::TermId>* {
    if (memo_ == nullptr) {
      *scratch = CandidateSpace::Expand(*graph_, edge, side, u);
      return scratch;
    }
    const std::vector<rdf::TermId>* found = memo_->FindExpand(&edge, side, u);
    if (found != nullptr) return found;
    return &memo_->StoreExpand(&edge, side, u,
                               CandidateSpace::Expand(*graph_, edge, side, u));
  };

  std::function<void(size_t)> extend = [&](size_t depth) {
    if (limit > 0 && out->size() - found_at_entry >= limit) return;
    if (depth == plan.order.size()) {
      double score = ScoreAssignment(assignment, plan);
      if (score <= -1e17) return;
      Match m;
      m.assignment = assignment;
      m.score = score;
      out->push_back(std::move(m));
      ++stats_.complete_matches;
      return;
    }
    int qv = plan.order[depth];
    const std::vector<int>& back = plan.back_edges[depth];

    // Expand candidates through the first back edge, then filter by the
    // remaining back edges, the vertex domain, and injectivity.
    const QueryEdge& first_edge = query_->edges[back[0]];
    int matched_side =
        first_edge.from == qv ? first_edge.to : first_edge.from;
    std::vector<rdf::TermId> scratch;
    const std::vector<rdf::TermId>* neighbors =
        expand_via(first_edge, matched_side, assignment[matched_side],
                   &scratch);

    std::vector<rdf::TermId> filter_scratch;
    for (rdf::TermId u : *neighbors) {
      ++stats_.expansions;
      if (!space_->VertexDelta(qv, u).has_value()) continue;
      // Injectivity: subgraph isomorphism maps query vertices to distinct
      // graph vertices.
      if (used.contains(u)) continue;
      bool edges_ok = true;
      for (size_t bi = 1; bi < back.size() && edges_ok; ++bi) {
        const QueryEdge& e = query_->edges[back[bi]];
        int other = e.from == qv ? e.to : e.from;
        if (memo_ != nullptr) {
          // u connects to assignment[other] across e exactly when u is in
          // the (sorted) Expand list from the other side — a memoized
          // binary search instead of re-walking candidate paths.
          const std::vector<rdf::TermId>* nb =
              expand_via(e, other, assignment[other], &filter_scratch);
          edges_ok = std::binary_search(nb->begin(), nb->end(), u);
        } else {
          edges_ok = CandidateSpace::EdgeDelta(*graph_, e, other,
                                               assignment[other], u, memo_)
                         .has_value();
        }
      }
      if (!edges_ok) continue;
      assignment[qv] = u;
      used.insert(u);
      extend(depth + 1);
      used.erase(u);
      assignment[qv] = rdf::kInvalidTerm;
      if (limit > 0 && out->size() - found_at_entry >= limit) return;
    }
  };
  extend(1);
}

}  // namespace match
}  // namespace ganswer
