#include "match/top_k_matcher.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

namespace ganswer {
namespace match {

namespace {

// Best-possible total log-confidence of all edges (best candidate each).
double BestEdgeLogSum(const QueryGraph& query) {
  double sum = 0.0;
  for (const QueryEdge& e : query.edges) {
    double best = e.wildcard ? e.wildcard_confidence
                             : (e.candidates.empty()
                                    ? 0.0
                                    : e.candidates.front().confidence);
    if (best <= 0) return -1e18;  // edge can never contribute
    sum += std::log(best);
  }
  return sum;
}

}  // namespace

TopKMatcher::TopKMatcher(const rdf::RdfGraph* graph)
    : TopKMatcher(graph, Options()) {}

TopKMatcher::TopKMatcher(const rdf::RdfGraph* graph, Options options)
    : graph_(graph), options_(options) {}

StatusOr<std::vector<Match>> TopKMatcher::FindTopK(const QueryGraph& query,
                                                   RunStats* stats) const {
  RunStats local;
  if (query.vertices.empty()) {
    return Status::InvalidArgument("empty query graph");
  }
  bool any_concrete = false;
  for (const QueryVertex& v : query.vertices) {
    if (!v.wildcard) any_concrete = true;
  }
  if (!any_concrete) {
    return Status::InvalidArgument(
        "all query vertices are wildcards; nothing anchors the search");
  }

  CandidateSpace space =
      CandidateSpace::Build(*graph_, query, options_.neighborhood_pruning,
                            options_.signatures, options_.stats);

  std::vector<Match> all;

  if (query.edges.empty()) {
    // Single-vertex query: the domain of the (unique) concrete vertex is
    // the answer set.
    for (size_t i = 0; i < query.vertices.size(); ++i) {
      if (query.vertices[i].wildcard) continue;
      for (const CandidateSpace::Item& item : space.domain(i).items) {
        if (item.confidence <= 0) continue;
        Match m;
        m.assignment.assign(query.vertices.size(), rdf::kInvalidTerm);
        m.assignment[i] = item.vertex;
        m.score = std::log(item.confidence);
        all.push_back(std::move(m));
      }
    }
  } else {
    // Cursor per non-wildcard vertex list.
    std::vector<int> cursor_vertex;  // query vertex index per cursor
    for (size_t i = 0; i < query.vertices.size(); ++i) {
      if (!query.vertices[i].wildcard && !space.domain(i).items.empty()) {
        cursor_vertex.push_back(static_cast<int>(i));
      }
    }
    if (cursor_vertex.empty()) {
      // Every concrete vertex pruned to nothing: no matches.
      if (stats != nullptr) *stats = local;
      return std::vector<Match>{};
    }
    if (options_.stats != nullptr && cursor_vertex.size() > 1) {
      // Anchor the smallest domains first: their anchored searches are the
      // cheapest probes and they exhaust soonest, which is what ends the TA
      // loop when early stop is off. Every cursor still runs every round,
      // and duplicates carry identical (assignment, score) pairs, so the
      // ranked output is unchanged by this ordering.
      std::stable_sort(cursor_vertex.begin(), cursor_vertex.end(),
                       [&](int a, int b) {
                         return space.domain(a).items.size() <
                                space.domain(b).items.size();
                       });
    }
    std::vector<size_t> cursor(cursor_vertex.size(), 0);
    // One edge memo per cursor, persisting across TA rounds: round r+1's
    // anchored search down a list re-walks much of round r's neighborhood,
    // and the memo turns those repeats into hash lookups. Each round spawns
    // at most one task per cursor, so a memo is only ever touched by one
    // worker thread at a time.
    std::vector<EdgeMemo> memos(cursor_vertex.size());

    std::set<std::vector<rdf::TermId>> seen;
    double edge_best_sum = BestEdgeLogSum(query);
    double theta = -std::numeric_limits<double>::infinity();

    // One pool for the whole TA loop when more than one anchored search can
    // run per round; every worker task gets its own SubgraphMatcher (the
    // graph and candidate space are shared read-only), so the only
    // cross-thread state is the per-task output buffer it owns.
    int threads = ThreadPool::ResolveThreads(options_.exec.threads);
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1 && cursor_vertex.size() > 1) {
      pool = std::make_unique<ThreadPool>(threads);
    }
    size_t total_expansions = 0;

    auto update_theta = [&]() {
      if (all.size() < options_.k) return;
      std::vector<double> scores;
      scores.reserve(all.size());
      for (const Match& m : all) scores.push_back(m.score);
      std::nth_element(scores.begin(), scores.begin() + (options_.k - 1),
                       scores.end(), std::greater<double>());
      theta = scores[options_.k - 1];
    };

    bool progress = true;
    while (progress) {
      ++local.rounds;
      progress = false;

      // Collect this round's anchored searches (one per in-range cursor),
      // run them — fanned across the pool when present — into per-task
      // buffers, then merge in cursor order. The merge sequence is exactly
      // the serial execution's, so dedup against `seen` and the
      // max_total_matches cut behave identically for any thread count.
      struct AnchorTask {
        int qv;
        rdf::TermId anchor;
        size_t ci;  // owning cursor; selects the task's persistent memo
      };
      std::vector<AnchorTask> tasks;
      for (size_t ci = 0; ci < cursor_vertex.size(); ++ci) {
        int qv = cursor_vertex[ci];
        const auto& items = space.domain(qv).items;
        if (cursor[ci] >= items.size()) continue;
        progress = true;
        tasks.push_back({qv, items[cursor[ci]].vertex, ci});
      }

      std::vector<std::vector<Match>> found(tasks.size());
      std::vector<size_t> expansions(tasks.size(), 0);
      auto run_task = [&](size_t t) {
        SubgraphMatcher matcher(graph_, &query, &space, &memos[tasks[t].ci],
                                options_.stats);
        matcher.FindMatchesFrom(tasks[t].qv, tasks[t].anchor,
                                options_.max_matches_per_anchor, &found[t]);
        expansions[t] = matcher.stats().expansions;
      };
      if (pool != nullptr && tasks.size() > 1) {
        pool->ParallelFor(0, tasks.size(), run_task);
      } else {
        for (size_t t = 0; t < tasks.size(); ++t) run_task(t);
      }

      local.anchored_searches += tasks.size();
      for (size_t t = 0; t < tasks.size(); ++t) {
        total_expansions += expansions[t];
        for (Match& m : found[t]) {
          if (seen.size() >= options_.max_total_matches) break;
          if (seen.insert(m.assignment).second) {
            all.push_back(std::move(m));
          }
        }
      }
      for (size_t ci = 0; ci < cursor.size(); ++ci) ++cursor[ci];
      update_theta();

      if (options_.ta_early_stop && edge_best_sum > -1e17) {
        // Equation 3 with the advanced cursors.
        double upbound = edge_best_sum;
        bool exhausted = false;
        for (size_t ci = 0; ci < cursor_vertex.size(); ++ci) {
          const auto& items = space.domain(cursor_vertex[ci]).items;
          if (cursor[ci] >= items.size()) {
            exhausted = true;  // no undiscovered match uses this list
            break;
          }
          double conf = items[cursor[ci]].confidence;
          if (conf <= 0) {
            exhausted = true;
            break;
          }
          upbound += std::log(conf);
        }
        if (exhausted) break;
        // Strict inequality: matches tying the k-th score are kept (the
        // paper returns all equal-score matches), so stopping at
        // theta == Upbound could drop undiscovered ties.
        if (theta > upbound && all.size() >= options_.k) {
          local.stopped_early = true;
          break;
        }
      }
      if (seen.size() >= options_.max_total_matches) break;
    }
    local.expansions = total_expansions;
  }

  // Rank by the pinned MatchOrder and cut to k, keeping ties with the k-th
  // score (the paper counts equal-score matches once).
  SortAndCutTopK(&all, options_.k);
  local.distinct_matches = all.size();
  if (stats != nullptr) *stats = local;
  return all;
}

}  // namespace match
}  // namespace ganswer
