#ifndef GANSWER_DATAGEN_PHRASE_DATASET_GENERATOR_H_
#define GANSWER_DATAGEN_PHRASE_DATASET_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "datagen/kb_generator.h"
#include "paraphrase/dictionary_builder.h"

namespace ganswer {
namespace datagen {

/// One step of a gold predicate path, by predicate name.
struct GoldStep {
  std::string predicate;
  bool forward = true;
};

/// A relation phrase with its support pairs (what Patty provides) and the
/// generator's ground truth (which the real Patty does not provide — it is
/// what lets Exp 1 measure mining precision without human judges).
struct PhraseWithGold {
  paraphrase::RelationPhrase phrase;
  /// Acceptable predicate paths for this phrase, arg1 -> arg2 oriented.
  std::vector<std::vector<GoldStep>> gold;
};

/// \brief Generates a Patty/ReVerb-like relation-phrase dataset from the
/// synthetic KB.
///
/// ~45 core phrases (the question vocabulary: "be married to", "play in",
/// "uncle of", ...) draw their support pairs from actual KB triples, with a
/// configurable fraction of noise pairs (random entity pairs — Patty's
/// support sets are noisy too; the paper reports only 67% of pairs occur in
/// DBpedia). Filler phrases over random predicates scale the corpus for the
/// Table 7 offline-cost experiment (wordnet-wikipedia vs freebase-wikipedia
/// sizes) and sharpen idf.
class PhraseDatasetGenerator {
 public:
  struct Options {
    uint64_t seed = 7;
    /// Support pairs sampled per phrase (Patty averages 9-11, Table 5).
    size_t pairs_per_phrase = 10;
    /// Fraction of support pairs replaced by random (wrong) entity pairs.
    double noise_pair_rate = 0.15;
    /// Extra procedural phrases over random predicates.
    size_t num_filler_phrases = 40;
    /// Include the core question-vocabulary phrases.
    bool include_core = true;
  };

  static std::vector<PhraseWithGold> Generate(
      const KbGenerator::GeneratedKb& kb, const Options& options);

  /// Strips the gold annotations (the input Algorithm 1 actually sees).
  static std::vector<paraphrase::RelationPhrase> StripGold(
      const std::vector<PhraseWithGold>& dataset);
};

/// Resolves a gold path (by predicate names) to a PredicatePath in
/// \p graph; nullopt when a predicate was never interned.
std::optional<paraphrase::PredicatePath> GoldToPath(
    const std::vector<GoldStep>& steps, const rdf::RdfGraph& graph);

/// \brief Simulates the human-verification pass the paper applies to the
/// mined top-k entries before online use (Sec. 6.2, Exp 1: "the top-3
/// predicate paths should go through a human verification process").
///
/// Keeps, per phrase, only the mined entries whose path is among the
/// phrase's gold paths (the "judge" accepting correct mappings); mined
/// confidences are preserved and re-normalized, so legitimate ambiguity
/// ("play in" -> starring AND playForTeam) survives while noise paths
/// (hasGender/hasGender) are rejected.
void VerifyDictionary(const std::vector<PhraseWithGold>& gold,
                      const rdf::RdfGraph& graph,
                      const paraphrase::ParaphraseDictionary& mined,
                      paraphrase::ParaphraseDictionary* verified);

}  // namespace datagen
}  // namespace ganswer

#endif  // GANSWER_DATAGEN_PHRASE_DATASET_GENERATOR_H_
