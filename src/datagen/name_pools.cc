#include "datagen/name_pools.h"

#include <algorithm>

namespace ganswer {
namespace datagen {

namespace {

const char* const kFirstNames[] = {
    "Elena",  "Marco",   "Sofia",  "Viktor",  "Amara",  "Dmitri", "Lucia",
    "Rafael", "Ingrid",  "Tomas",  "Nadia",   "Henrik", "Paloma", "Oscar",
    "Freya",  "Matteo",  "Zara",   "Emil",    "Carmen", "Lars",   "Bianca",
    "Pavel",  "Greta",   "Diego",  "Astrid",  "Felix",  "Rosa",   "Stefan",
    "Livia",  "Anton",   "Marta",  "Julius",  "Vera",   "Casper", "Irene",
    "Hugo",   "Selma",   "Bruno",  "Clara",   "Edgar",  "Alma",   "Ruben",
    "Nora",   "Gustav",  "Ida",    "Leon",    "Thea",   "Oren",   "Maya",
    "Silas"};

const char* const kLastNames[] = {
    "Varga",   "Lindqvist", "Moretti",  "Kovacs",   "Okafor",  "Petrov",
    "Silva",   "Johansson", "Fischer",  "Novak",    "Costa",   "Bergman",
    "Castillo", "Weber",    "Santos",   "Larsen",   "Romano",  "Dvorak",
    "Mendez",  "Holm",      "Ferraro",  "Soto",     "Nilsson", "Marek",
    "Vidal",   "Krause",    "Bellini",  "Navarro",  "Ek",      "Toth",
    "Ferrand", "Olsen",     "Ricci",    "Duran",    "Stahl",   "Banik",
    "Leclerc", "Voss",      "Amato",    "Reyes",    "Falk",    "Zeman",
    "Giraud",  "Lund",      "Conti",    "Ibarra",   "Brandt",  "Kaspar"};

const char* const kPlaceFirst[] = {
    "Copper",  "Silver",  "Northgate", "Ashford",  "Bellmare", "Ironwood",
    "Greyton", "Marwick", "Elmsworth", "Ravenholt", "Stoneby", "Clearwater",
    "Goldcrest", "Windham", "Lakemont", "Fernvale", "Oakridge", "Brightford",
    "Halloway", "Redcliff", "Thornbury", "Millbrook", "Eastmere", "Frostholm",
    "Sunfield", "Violetta", "Harborne", "Kestrel",  "Dunmore",  "Wolfden"};

const char* const kPlaceSecond[] = {
    "Harbor", "Falls",  "Heights", "Crossing", "Springs", "Hollow",
    "Point",  "Valley", "Ridge",   "Gate",     "Bay",     "Fields"};

const char* const kCountryBases[] = {
    "Valdoria", "Kestrovia", "Marundi",  "Tavaria",  "Norrland", "Zephyria",
    "Ostrava",  "Quillora",  "Brenmark", "Soletia",  "Vantara",  "Luminia",
    "Ardenia",  "Fenwick",   "Galdora",  "Heswall",  "Ivoria",   "Jorvik",
    "Korenia",  "Lysander"};

const char* const kStateBases[] = {
    "Westmoor", "Eastvale",  "Northall", "Southmere", "Midlane", "Highmark",
    "Lowfen",   "Greymoor",  "Redvale",  "Bluecrest", "Rockwell", "Plainsend"};

const char* const kFilmWords[] = {
    "Lantern",  "Shadow",  "Midnight", "Crimson", "Echo",    "Horizon",
    "Whisper",  "Ember",   "Mirage",   "Tempest", "Solace",  "Verdict",
    "Labyrinth", "Nocturne", "Cascade", "Vertigo", "Serpent", "Harvest",
    "Requiem",  "Odyssey"};

const char* const kTeamSuffixes[] = {"76ers",  "Rockets", "Falcons",
                                     "Knights", "Comets",  "Wolves"};

const char* const kCompanyWords[] = {
    "Dyne",   "Flux",   "Core",  "Forge", "Nimbus", "Vertex", "Pulse",
    "Quanta", "Helix",  "Apex",  "Orbit", "Cipher", "Strata", "Lumen"};

const char* const kBandWords[] = {
    "Prodigy",  "Static",  "Velvet",   "Neon",     "Thunder", "Paradox",
    "Gravity",  "Phantom", "Electric", "Hollow",   "Savage",  "Mystic"};

const char* const kRiverBases[] = {
    "Weser",  "Torrent", "Silverflow", "Brackwater", "Eastrun", "Coldbeck",
    "Myrr",   "Aldra",   "Vesna",      "Ostra",      "Kelda",   "Luneth"};

const char* const kMountainBases[] = {
    "Everhorn", "Stormpeak", "Greyspire", "Frostfang", "Skyreach",
    "Thunderhead", "Ironcrown", "Cloudrest", "Shadowmont", "Brightsummit"};

const char* const kGameWords[] = {
    "Craft",   "Quest",  "Forge",  "Realm",  "Saga",  "Depths",
    "Frontier", "Tactics", "Legends", "Drift", "Vault", "Signal"};

const char* const kComicWords[] = {
    "Captain", "Doctor", "Agent",  "Mister", "Lady",  "Professor"};
const char* const kComicSecond[] = {
    "Valiant", "Eclipse", "Quantum", "Marvelous", "Iron", "Cosmic"};

const char* const kCarWords[] = {
    "Strada", "Veloce", "Aurora", "Pioneer", "Meridian", "Falcon",
    "Tundra", "Solara", "Vector", "Estate"};

template <size_t N>
const char* Pick(Rng& rng, const char* const (&pool)[N]) {
  return pool[rng.Next(N)];
}

}  // namespace

std::string NamePools::Unique(std::string base) {
  // Suffix with a counter on collision; keeps every IRI distinct while
  // preserving shared leading tokens (which is what the linker sees).
  std::string candidate = base;
  int suffix = 2;
  while (std::find(used_.begin(), used_.end(), candidate) != used_.end()) {
    candidate = base + "_" + std::to_string(suffix++);
  }
  used_.push_back(candidate);
  return candidate;
}

std::string NamePools::PersonName() {
  return Unique(std::string(Pick(rng_, kFirstNames)) + "_" +
                Pick(rng_, kLastNames));
}

std::string NamePools::CityName() {
  return Unique(std::string(Pick(rng_, kPlaceFirst)) + "_" +
                Pick(rng_, kPlaceSecond));
}

std::string NamePools::FilmName(const std::string& base) {
  if (!base.empty()) return Unique(base + "_(film)");
  return Unique(std::string("The_") + Pick(rng_, kFilmWords) + "_" +
                Pick(rng_, kFilmWords));
}

std::string NamePools::TeamName(const std::string& city) {
  return Unique(city + "_" + Pick(rng_, kTeamSuffixes));
}

std::string NamePools::CompanyName() {
  return Unique(std::string(Pick(rng_, kCompanyWords)) +
                Pick(rng_, kCompanyWords) + "_Inc");
}

std::string NamePools::BandName() {
  return Unique(std::string("The_") + Pick(rng_, kBandWords) + "_" +
                Pick(rng_, kBandWords));
}

std::string NamePools::BookName() {
  // No prepositions inside titles: the parser would read "A Serpent of
  // Labyrinth" as a noun phrase with a PP and split the mention.
  return Unique(std::string("The_") + Pick(rng_, kFilmWords) + "_" +
                Pick(rng_, kFilmWords) + "_Chronicle");
}

std::string NamePools::CountryName() {
  return Unique(Pick(rng_, kCountryBases));
}

std::string NamePools::StateName() { return Unique(Pick(rng_, kStateBases)); }

std::string NamePools::RiverName() { return Unique(Pick(rng_, kRiverBases)); }

std::string NamePools::MountainName() {
  return Unique(std::string("Mount_") + Pick(rng_, kMountainBases));
}

std::string NamePools::GameName() {
  return Unique(std::string(Pick(rng_, kGameWords)) + Pick(rng_, kGameWords));
}

std::string NamePools::ComicName() {
  return Unique(std::string(Pick(rng_, kComicWords)) + "_" +
                Pick(rng_, kComicSecond));
}

std::string NamePools::CarName() {
  return Unique(std::string(Pick(rng_, kCarWords)) + "_" +
                Pick(rng_, kCarWords));
}

std::string NamePools::UniversityName(const std::string& city) {
  return Unique("University_of_" + city);
}

}  // namespace datagen
}  // namespace ganswer
