#ifndef GANSWER_DATAGEN_SCHEMA_RENAME_H_
#define GANSWER_DATAGEN_SCHEMA_RENAME_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/kb_generator.h"
#include "datagen/phrase_dataset_generator.h"

namespace ganswer {
namespace datagen {

/// \brief Rewrites a generated KB's schema vocabulary (predicate and class
/// names) while keeping every entity name and the graph structure intact.
///
/// The paper evaluates on Yago2 as well as DBpedia ("We also evaluate our
/// method in other RDF repositories, such as Yago2") — the pipeline must
/// not depend on any particular predicate vocabulary. Renaming the schema
/// and re-mining proves it: the same workload (question texts mention only
/// entities) must reach the same answers over the renamed graph.
///
/// \p renames maps old predicate/class names to new ones; names not in the
/// map are kept. rdfs:label literals of renamed classes are preserved (the
/// linker needs the surface vocabulary regardless of IRI spelling).
StatusOr<KbGenerator::GeneratedKb> RenameSchema(
    const KbGenerator::GeneratedKb& kb,
    const std::map<std::string, std::string>& renames);

/// Applies the same renames to the gold paths of a phrase dataset.
std::vector<PhraseWithGold> RenameGold(
    const std::vector<PhraseWithGold>& phrases,
    const std::map<std::string, std::string>& renames);

/// The YAGO2-flavoured vocabulary for the generated schema: camel-case
/// relation names in YAGO's style (isMarriedTo, actedIn, wasBornIn, ...)
/// and wordnet-flavoured class names.
const std::map<std::string, std::string>& YagoRenames();

}  // namespace datagen
}  // namespace ganswer

#endif  // GANSWER_DATAGEN_SCHEMA_RENAME_H_
