#include "datagen/kb_generator.h"

#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/name_pools.h"
#include "datagen/schema.h"

namespace ganswer {
namespace datagen {

namespace {

using rdf::RdfGraph;
using rdf::TermKind;

/// Thin triple-emission helper shared by the seed and procedural layers.
class Builder {
 public:
  Builder(RdfGraph* graph, KbGenerator::GeneratedKb* kb, NamePools* names)
      : g_(*graph), kb_(*kb), names_(*names) {}

  Rng& rng() { return names_.rng(); }

  void Triple(const std::string& s, std::string_view p, const std::string& o) {
    g_.AddTriple(s, p, o);
  }
  void Literal(const std::string& s, std::string_view p,
               const std::string& value) {
    g_.AddTriple(s, p, value, TermKind::kLiteral);
  }
  void Type(const std::string& e, std::string_view cls) {
    g_.AddTriple(e, rdf::kTypePredicate, cls);
  }
  void Label(const std::string& e, const std::string& label) {
    g_.AddTriple(e, rdf::kLabelPredicate, label, TermKind::kLiteral);
  }

  // --- schema -------------------------------------------------------------

  void EmitSchema() {
    auto sub = [&](std::string_view c, std::string_view super) {
      g_.AddTriple(c, rdf::kSubClassOfPredicate, super);
    };
    sub(cls::kActor, cls::kPerson);
    sub(cls::kPolitician, cls::kPerson);
    sub(cls::kMusician, cls::kPerson);
    sub(cls::kWriter, cls::kPerson);
    sub(cls::kAthlete, cls::kPerson);
    sub(cls::kFilm, cls::kWork);
    sub(cls::kBook, cls::kWork);
    sub(cls::kComic, cls::kWork);
    sub(cls::kVideoGame, cls::kWork);
    sub(cls::kCompany, cls::kOrganisation);
    sub(cls::kBand, cls::kOrganisation);
    sub(cls::kBasketballTeam, cls::kOrganisation);
    sub(cls::kUniversity, cls::kOrganisation);
    sub(cls::kCity, cls::kPlace);
    sub(cls::kCountry, cls::kPlace);
    sub(cls::kState, cls::kPlace);
    sub(cls::kMountain, cls::kPlace);
    sub(cls::kRiver, cls::kPlace);

    // Labels so the entity linker can resolve mentions of classes
    // ("actor", "movies", "cars", ...).
    auto label = [&](std::string_view c, const char* text) {
      g_.AddTriple(c, rdf::kLabelPredicate, text, TermKind::kLiteral);
    };
    label(cls::kPerson, "person");
    label(cls::kPerson, "people");
    label(cls::kActor, "actor");
    label(cls::kPolitician, "politician");
    label(cls::kMusician, "musician");
    label(cls::kWriter, "writer");
    label(cls::kAthlete, "player");
    label(cls::kAthlete, "athlete");
    label(cls::kFilm, "film");
    label(cls::kFilm, "movie");
    label(cls::kBook, "book");
    label(cls::kComic, "comic");
    label(cls::kVideoGame, "video game");
    label(cls::kCompany, "company");
    label(cls::kBand, "band");
    label(cls::kBasketballTeam, "basketball team");
    label(cls::kBasketballTeam, "team");
    label(cls::kUniversity, "university");
    label(cls::kCity, "city");
    label(cls::kCountry, "country");
    label(cls::kState, "state");
    label(cls::kMountain, "mountain");
    label(cls::kRiver, "river");
    label(cls::kAutomobile, "car");
    label(cls::kOrganisation, "organisation");
  }

  // --- entity helpers -----------------------------------------------------

  std::string NewPerson(bool male, const std::string& birth_city) {
    std::string p = names_.PersonName();
    Type(p, cls::kPerson);
    Triple(p, pred::kHasGender, male ? "male" : "female");
    if (!birth_city.empty()) {
      Triple(p, pred::kBirthPlace, birth_city);
      // Nationality follows the birth city's country when known.
      // (Resolved later from recorded city->country map by the caller.)
    }
    kb_.people.push_back(p);
    return p;
  }

  RdfGraph& graph() { return g_; }
  KbGenerator::GeneratedKb& kb() { return kb_; }
  NamePools& names() { return names_; }

 private:
  RdfGraph& g_;
  KbGenerator::GeneratedKb& kb_;
  NamePools& names_;
};

/// The hand-written seed: the paper's entities, so the running example and
/// the QALD-3 sample questions of Table 11 work verbatim.
void EmitSeed(Builder* b) {
  auto& kb = b->kb();

  // Countries / cities of the examples.
  for (const char* c : {"United_States", "Germany", "Canada", "Austria",
                        "Australia", "Netherlands", "Switzerland",
                        "United_Kingdom"}) {
    b->Type(c, cls::kCountry);
    kb.countries.push_back(c);
  }
  struct CityRow {
    const char* name;
    const char* country;
    const char* tz;
  };
  const CityRow cities[] = {
      {"Philadelphia", "United_States", "Eastern Standard Time"},
      {"Berlin", "Germany", "Central European Time"},
      {"Munich", "Germany", "Central European Time"},
      {"Ottawa", "Canada", "Eastern Standard Time"},
      {"Vienna", "Austria", "Central European Time"},
      {"Sydney", "Australia", "Australian Eastern Standard Time"},
      {"Salt_Lake_City", "United_States", "Mountain Standard Time"},
      {"San_Francisco", "United_States", "Pacific Standard Time"},
      {"Chicago", "United_States", "Central Standard Time"},
      {"Bremen", "Germany", "Central European Time"},
      {"Utrecht", "Netherlands", "Central European Time"},
      {"London", "United_Kingdom", "Greenwich Mean Time"},
  };
  for (const CityRow& c : cities) {
    b->Type(c.name, cls::kCity);
    b->Triple(c.name, pred::kCountryOf, c.country);
    b->Literal(c.name, pred::kTimeZone, c.tz);
    kb.cities.push_back(c.name);
  }
  b->Triple("Canada", pred::kCapital, "Ottawa");
  b->Triple("Germany", pred::kCapital, "Berlin");
  b->Triple("Australia", pred::kLargestCity, "Sydney");
  b->Triple("Austria", pred::kCapital, "Vienna");
  b->Literal("San_Francisco", pred::kNickname, "The Golden City");
  b->Literal("San_Francisco", pred::kNickname, "Fog City");

  auto person = [&](const char* name, bool male) {
    b->Type(name, cls::kPerson);
    b->Triple(name, pred::kHasGender, male ? "male" : "female");
    kb.people.push_back(name);
  };
  auto actor = [&](const char* name, bool male) {
    person(name, male);
    b->Type(name, cls::kActor);
    kb.actors.push_back(name);
  };
  auto politician = [&](const char* name, bool male) {
    person(name, male);
    b->Type(name, cls::kPolitician);
    kb.politicians.push_back(name);
  };

  // The running example: "Who was married to an actor that played in
  // Philadelphia?"
  actor("Antonio_Banderas", true);
  actor("Melanie_Griffith", false);
  b->Triple("Melanie_Griffith", pred::kSpouse, "Antonio_Banderas");
  b->Type("Philadelphia_(film)", cls::kFilm);
  b->Triple("Philadelphia_(film)", pred::kStarring, "Antonio_Banderas");
  person("Jonathan_Demme", true);
  b->Triple("Philadelphia_(film)", pred::kDirector, "Jonathan_Demme");
  kb.films.push_back("Philadelphia_(film)");
  b->Type("Philadelphia_76ers", cls::kBasketballTeam);
  b->Triple("Philadelphia_76ers", pred::kLocationCity, "Philadelphia");
  kb.teams.push_back("Philadelphia_76ers");
  b->Type("An_Actor_Prepares", cls::kBook);
  person("Constantin_Stanislavski", true);
  b->Triple("An_Actor_Prepares", pred::kAuthor, "Constantin_Stanislavski");
  kb.books.push_back("An_Actor_Prepares");

  // Table 11 questions.
  politician("Klaus_Wowereit", true);
  b->Triple("Berlin", pred::kMayor, "Klaus_Wowereit");

  politician("John_F._Kennedy", true);
  politician("Lyndon_B._Johnson", true);
  b->Triple("John_F._Kennedy", pred::kSuccessor, "Lyndon_B._Johnson");

  // The Kennedy family: the "uncle of" predicate path
  // JFK_Jr <-hasChild- JFK <-hasChild- Joseph -hasChild-> Ted.
  person("Joseph_P._Kennedy", true);
  politician("Ted_Kennedy", true);
  person("John_F._Kennedy_Jr.", true);
  b->Triple("Joseph_P._Kennedy", pred::kHasChild, "John_F._Kennedy");
  b->Triple("Joseph_P._Kennedy", pred::kHasChild, "Ted_Kennedy");
  b->Triple("John_F._Kennedy", pred::kHasChild, "John_F._Kennedy_Jr.");

  person("Michael_Jordan", true);
  b->Type("Michael_Jordan", cls::kAthlete);
  kb.athletes.push_back("Michael_Jordan");
  b->Literal("Michael_Jordan", pred::kHeight, "1.98");
  b->Type("Chicago_Bulls", cls::kBasketballTeam);
  b->Triple("Chicago_Bulls", pred::kLocationCity, "Chicago");
  kb.teams.push_back("Chicago_Bulls");
  b->Triple("Michael_Jordan", pred::kPlayForTeam, "Chicago_Bulls");

  politician("Barack_Obama", true);
  person("Michelle_Obama", false);
  b->Triple("Michelle_Obama", pred::kSpouse, "Barack_Obama");

  politician("Sean_Parnell", true);
  b->Type("Alaska", cls::kState);
  b->Triple("Alaska", pred::kGovernor, "Sean_Parnell");
  kb.states.push_back("Alaska");
  politician("Matt_Mead", true);
  b->Type("Wyoming", cls::kState);
  b->Triple("Wyoming", pred::kGovernor, "Matt_Mead");
  kb.states.push_back("Wyoming");

  person("Francis_Ford_Coppola", true);
  for (const char* f : {"The_Godfather", "Apocalypse_Now",
                        "The_Conversation"}) {
    b->Type(f, cls::kFilm);
    b->Triple(f, pred::kDirector, "Francis_Ford_Coppola");
    kb.films.push_back(f);
  }

  politician("Angela_Merkel", false);
  b->Literal("Angela_Merkel", pred::kNickname, "Kasner");

  b->Type("Minecraft", cls::kVideoGame);
  b->Type("Mojang", cls::kCompany);
  b->Triple("Mojang", pred::kLocationCity, "London");
  b->Triple("Minecraft", pred::kDeveloper, "Mojang");
  kb.games.push_back("Minecraft");
  kb.companies.push_back("Mojang");

  b->Type("Intel", cls::kCompany);
  person("Gordon_Moore", true);
  person("Robert_Noyce", true);
  b->Triple("Intel", pred::kFoundedBy, "Gordon_Moore");
  b->Triple("Intel", pred::kFoundedBy, "Robert_Noyce");
  kb.companies.push_back("Intel");

  person("Amanda_Palmer", false);
  person("Neil_Gaiman", true);
  b->Triple("Neil_Gaiman", pred::kSpouse, "Amanda_Palmer");

  b->Type("The_Prodigy", cls::kBand);
  b->Label("The_Prodigy", "Prodigy");
  for (const char* m : {"Keith_Flint", "Liam_Howlett", "Maxim_Reality"}) {
    person(m, true);
    b->Type(m, cls::kMusician);
    b->Triple("The_Prodigy", pred::kBandMember, m);
  }
  kb.bands.push_back("The_Prodigy");

  b->Type("Weser", cls::kRiver);
  b->Triple("Weser", pred::kFlowsThrough, "Bremen");
  b->Triple("Weser", pred::kCrosses, "Germany");
  kb.rivers.push_back("Weser");
  b->Type("Rhine", cls::kRiver);
  for (const char* c : {"Germany", "Switzerland", "Netherlands"}) {
    b->Triple("Rhine", pred::kCrosses, c);
  }
  kb.rivers.push_back("Rhine");

  b->Type("Mount_Everest", cls::kMountain);
  b->Literal("Mount_Everest", pred::kElevation, "8848");
  kb.mountains.push_back("Mount_Everest");

  politician("Margaret_Thatcher", false);
  person("Mark_Thatcher", true);
  person("Carol_Thatcher", false);
  b->Triple("Margaret_Thatcher", pred::kHasChild, "Mark_Thatcher");
  b->Triple("Margaret_Thatcher", pred::kHasChild, "Carol_Thatcher");

  person("Al_Capone", true);
  b->Literal("Al_Capone", pred::kNickname, "Scarface");

  person("Jack_Kerouac", true);
  b->Type("Jack_Kerouac", cls::kWriter);
  b->Label("Jack_Kerouac", "Kerouac");
  kb.writers.push_back("Jack_Kerouac");
  b->Type("Viking_Press", cls::kCompany);
  kb.companies.push_back("Viking_Press");
  for (const char* bk : {"On_the_Road", "The_Dharma_Bums"}) {
    b->Type(bk, cls::kBook);
    b->Triple(bk, pred::kAuthor, "Jack_Kerouac");
    b->Triple(bk, pred::kPublisher, "Viking_Press");
    kb.books.push_back(bk);
  }

  b->Type("Captain_America", cls::kComic);
  person("Joe_Simon", true);
  b->Triple("Captain_America", pred::kCreator, "Joe_Simon");
  kb.comics.push_back("Captain_America");

  b->Type("Miffy", cls::kComic);
  person("Dick_Bruna", true);
  b->Triple("Miffy", pred::kCreator, "Dick_Bruna");
  b->Triple("Dick_Bruna", pred::kBirthPlace, "Utrecht");
  b->Triple("Dick_Bruna", pred::kNationality, "Netherlands");
  kb.comics.push_back("Miffy");

  person("Michael_Jackson", true);
  b->Type("Michael_Jackson", cls::kMusician);
  b->Literal("Michael_Jackson", pred::kDeathDate, "2009-06-25");
  b->Triple("Michael_Jackson", pred::kDeathPlace, "Los_Angeles");
  b->Type("Los_Angeles", cls::kCity);
  b->Triple("Los_Angeles", pred::kCountryOf, "United_States");
  kb.cities.push_back("Los_Angeles");

  person("Queen_Elizabeth_II", false);
  person("George_VI", true);
  b->Triple("George_VI", pred::kHasChild, "Queen_Elizabeth_II");

  person("Juliana", false);
  b->Label("Juliana", "Juliana");
  b->Triple("Juliana", pred::kDeathPlace, "Utrecht");
}

void EmitProcedural(Builder* b, const KbGenerator::Options& opt) {
  auto& kb = b->kb();
  auto& names = b->names();
  Rng& rng = b->rng();
  // Seed entities keep exactly their curated facts; procedural attributes,
  // roles and role-picks apply only to entities generated below, so the
  // curated answers of the paper's example questions stay canonical.
  const size_t first_procedural_person = kb.people.size();
  const size_t first_procedural_politician = kb.politicians.size();
  const size_t first_procedural_actor = kb.actors.size();
  const size_t first_procedural_writer = kb.writers.size();
  const size_t first_procedural_athlete = kb.athletes.size();
  auto pick_from = [&rng](const std::vector<std::string>& v,
                          size_t first) -> const std::string& {
    return v[first + rng.Next(v.size() - first)];
  };

  // Countries, states, cities.
  std::vector<std::string> new_countries;
  for (size_t i = 0; i < opt.num_countries; ++i) {
    std::string c = names.CountryName();
    b->Type(c, cls::kCountry);
    kb.countries.push_back(c);
    new_countries.push_back(c);
  }
  for (size_t i = 0; i < opt.num_states; ++i) {
    std::string s = names.StateName();
    b->Type(s, cls::kState);
    kb.states.push_back(s);
  }
  std::vector<std::string> new_cities;
  const char* tzs[] = {"Eastern Standard Time", "Central European Time",
                       "Pacific Standard Time", "Greenwich Mean Time"};
  for (size_t i = 0; i < opt.num_cities; ++i) {
    std::string city = names.CityName();
    b->Type(city, cls::kCity);
    const std::string& country = rng.Pick(kb.countries);
    b->Triple(city, pred::kCountryOf, country);
    b->Literal(city, pred::kTimeZone, tzs[rng.Next(4)]);
    b->Literal(city, pred::kPopulationTotal,
               std::to_string(10000 + rng.Next(5000000)));
    kb.cities.push_back(city);
    new_cities.push_back(city);
  }
  for (const std::string& c : new_countries) {
    b->Triple(c, pred::kCapital, rng.Pick(new_cities));
    b->Triple(c, pred::kLargestCity, rng.Pick(new_cities));
  }

  // Families: couples with children; children of sibling parents give the
  // "uncle of" path its support. Some people get roles (actor, politician,
  // writer, musician, athlete).
  std::vector<std::vector<std::string>> family_children;
  for (size_t i = 0; i < opt.num_families; ++i) {
    std::string father = b->NewPerson(true, rng.Pick(kb.cities));
    std::string mother = b->NewPerson(false, rng.Pick(kb.cities));
    b->Triple(father, pred::kSpouse, mother);
    size_t n_children = 1 + rng.Next(3);
    std::vector<std::string> children;
    for (size_t c = 0; c < n_children; ++c) {
      bool male = rng.Chance(0.5);
      std::string child = b->NewPerson(male, rng.Pick(kb.cities));
      b->Triple(father, pred::kHasChild, child);
      b->Triple(mother, pred::kHasChild, child);
      children.push_back(child);
    }
    // Third generation for some families (grandchildren => uncle pairs).
    if (rng.Chance(0.5) && !children.empty()) {
      const std::string& parent = rng.Pick(children);
      size_t n_grand = 1 + rng.Next(2);
      for (size_t g = 0; g < n_grand; ++g) {
        std::string grand = b->NewPerson(rng.Chance(0.5), rng.Pick(kb.cities));
        b->Triple(parent, pred::kHasChild, grand);
      }
    }
    family_children.push_back(std::move(children));
  }
  // Marriages across families.
  for (size_t i = 0; i + 1 < family_children.size(); i += 2) {
    if (family_children[i].empty() || family_children[i + 1].empty()) continue;
    if (!rng.Chance(0.6)) continue;
    b->Triple(family_children[i][0], pred::kSpouse,
              family_children[i + 1][0]);
  }
  // Life-cycle literals and roles.
  for (size_t pi = first_procedural_person; pi < kb.people.size(); ++pi) {
    const std::string& p = kb.people[pi];
    if (rng.Chance(0.35)) {
      b->Literal(p, pred::kBirthDate,
                 std::to_string(1900 + rng.Next(100)) + "-01-01");
    }
    if (rng.Chance(0.25)) {
      b->Triple(p, pred::kDeathPlace, rng.Pick(kb.cities));
      b->Literal(p, pred::kDeathDate,
                 std::to_string(1950 + rng.Next(70)) + "-06-15");
    }
    if (rng.Chance(0.3)) {
      b->Literal(p, pred::kHeight,
                 "1." + std::to_string(50 + rng.Next(50)));
    }
    if (rng.Chance(0.2)) b->Triple(p, pred::kNationality, rng.Pick(kb.countries));
    double roll = rng.NextDouble();
    if (roll < 0.15) {
      b->Type(p, cls::kActor);
      kb.actors.push_back(p);
    } else if (roll < 0.25) {
      b->Type(p, cls::kPolitician);
      kb.politicians.push_back(p);
    } else if (roll < 0.33) {
      b->Type(p, cls::kWriter);
      kb.writers.push_back(p);
    } else if (roll < 0.41) {
      b->Type(p, cls::kAthlete);
      kb.athletes.push_back(p);
    } else if (roll < 0.47) {
      b->Type(p, cls::kMusician);
    }
  }

  // Mayors, governors, successors (procedural politicians only).
  bool have_politicians = kb.politicians.size() > first_procedural_politician;
  for (const std::string& city : new_cities) {
    if (!have_politicians) break;
    b->Triple(city, pred::kMayor,
              pick_from(kb.politicians, first_procedural_politician));
  }
  for (const std::string& state : kb.states) {
    if (state == "Alaska" || state == "Wyoming" || !have_politicians) continue;
    b->Triple(state, pred::kGovernor,
              pick_from(kb.politicians, first_procedural_politician));
  }
  for (size_t i = first_procedural_politician; i + 1 < kb.politicians.size();
       i += 3) {
    b->Triple(kb.politicians[i], pred::kSuccessor, kb.politicians[i + 1]);
  }

  // Teams (some named after cities: label ambiguity with the city).
  for (size_t i = 0; i < opt.num_teams; ++i) {
    const std::string& city = rng.Pick(kb.cities);
    std::string team = names.TeamName(city);
    b->Type(team, cls::kBasketballTeam);
    b->Triple(team, pred::kLocationCity, city);
    kb.teams.push_back(team);
  }
  for (size_t ai = first_procedural_athlete; ai < kb.athletes.size(); ++ai) {
    if (kb.teams.empty()) break;
    b->Triple(kb.athletes[ai], pred::kPlayForTeam, rng.Pick(kb.teams));
  }

  // Films: directed/produced by people, starring actors; some reuse a city
  // name ("Philadelphia_(film)"-style ambiguity).
  for (size_t i = 0; i < opt.num_films; ++i) {
    std::string film = rng.Chance(opt.ambiguity_rate)
                           ? names.FilmName(rng.Pick(new_cities))
                           : names.FilmName();
    b->Type(film, cls::kFilm);
    b->Triple(film, pred::kDirector,
              pick_from(kb.people, first_procedural_person));
    if (rng.Chance(0.6)) {
      b->Triple(film, pred::kProducer,
                pick_from(kb.people, first_procedural_person));
    }
    bool have_actors = kb.actors.size() > first_procedural_actor;
    size_t n_cast = 1 + rng.Next(4);
    for (size_t c = 0; c < n_cast && have_actors; ++c) {
      // A slice of procedural films stars the seed actors so questions
      // like "Which movies did Antonio Banderas star in?" have non-trivial
      // answer sets, without touching other seed facts.
      const std::string& actor =
          rng.Chance(0.05) ? rng.Pick(kb.actors)
                           : pick_from(kb.actors, first_procedural_actor);
      b->Triple(film, pred::kStarring, actor);
    }
    kb.films.push_back(film);
  }

  // Companies, games, cars.
  for (size_t i = 0; i < opt.num_companies; ++i) {
    std::string co = names.CompanyName();
    b->Type(co, cls::kCompany);
    b->Triple(co, pred::kLocationCity, rng.Pick(kb.cities));
    if (rng.Chance(0.7)) {
      b->Triple(co, pred::kFoundedBy,
                pick_from(kb.people, first_procedural_person));
    }
    kb.companies.push_back(co);
  }
  for (size_t i = 0; i < opt.num_games; ++i) {
    std::string game = names.GameName();
    b->Type(game, cls::kVideoGame);
    b->Triple(game, pred::kDeveloper, rng.Pick(kb.companies));
    kb.games.push_back(game);
  }
  for (size_t i = 0; i < opt.num_cars; ++i) {
    std::string car = names.CarName();
    b->Type(car, cls::kAutomobile);
    b->Triple(car, pred::kManufacturer, rng.Pick(kb.companies));
    b->Triple(car, pred::kAssembly, rng.Pick(kb.countries));
    kb.cars.push_back(car);
  }

  // Bands, books, comics.
  for (size_t i = 0; i < opt.num_bands; ++i) {
    std::string band = names.BandName();
    b->Type(band, cls::kBand);
    size_t n = 2 + rng.Next(4);
    for (size_t m = 0; m < n; ++m) {
      b->Triple(band, pred::kBandMember,
                pick_from(kb.people, first_procedural_person));
    }
    kb.bands.push_back(band);
  }
  for (size_t i = 0; i < opt.num_books; ++i) {
    std::string book = names.BookName();
    b->Type(book, cls::kBook);
    if (kb.writers.size() > first_procedural_writer) {
      b->Triple(book, pred::kAuthor,
                pick_from(kb.writers, first_procedural_writer));
    }
    if (!kb.companies.empty() && rng.Chance(0.8)) {
      b->Triple(book, pred::kPublisher, rng.Pick(kb.companies));
    }
    kb.books.push_back(book);
  }
  for (size_t i = 0; i < opt.num_comics; ++i) {
    std::string comic = names.ComicName();
    b->Type(comic, cls::kComic);
    b->Triple(comic, pred::kCreator,
              pick_from(kb.people, first_procedural_person));
    kb.comics.push_back(comic);
  }

  // Rivers and mountains.
  for (size_t i = 0; i < opt.num_rivers; ++i) {
    std::string river = names.RiverName();
    b->Type(river, cls::kRiver);
    size_t n_cities = 2 + rng.Next(3);
    for (size_t c = 0; c < n_cities; ++c) {
      b->Triple(river, pred::kFlowsThrough, rng.Pick(kb.cities));
    }
    size_t n_countries = 1 + rng.Next(3);
    for (size_t c = 0; c < n_countries; ++c) {
      b->Triple(river, pred::kCrosses, rng.Pick(kb.countries));
    }
    kb.rivers.push_back(river);
  }
  for (size_t i = 0; i < opt.num_mountains; ++i) {
    std::string mtn = names.MountainName();
    b->Type(mtn, cls::kMountain);
    b->Literal(mtn, pred::kElevation, std::to_string(1000 + rng.Next(8000)));
    b->Triple(mtn, pred::kLocatedInArea, rng.Pick(kb.countries));
    kb.mountains.push_back(mtn);
  }
}

}  // namespace

StatusOr<KbGenerator::GeneratedKb> KbGenerator::Generate(
    const Options& options) {
  GeneratedKb kb;
  NamePools names(options.seed);
  Builder builder(&kb.graph, &kb, &names);
  builder.EmitSchema();
  EmitSeed(&builder);
  EmitProcedural(&builder, options);
  GANSWER_RETURN_NOT_OK(kb.graph.Finalize());
  return kb;
}

}  // namespace datagen
}  // namespace ganswer
