#ifndef GANSWER_DATAGEN_WORKLOAD_H_
#define GANSWER_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/kb_generator.h"

namespace ganswer {
namespace datagen {

/// QALD-style question categories; the ratios mirror the paper's Table 10
/// failure taxonomy plus the answerable categories of Table 11.
enum class QuestionCategory {
  kSimpleRelation,    // "Who is the mayor of Berlin?"
  kTypeConstrained,   // "Give me all movies directed by X."
  kMultiEdge,         // "Who was married to an actor that played in X?"
  kPredicatePath,     // "Who is the uncle of X?" (no single predicate)
  kYesNo,             // "Is X the wife of Y?"
  kLiteral,           // "How tall is X?"
  kAggregation,       // "Who is the youngest player in X?" (expected fail)
  kEntityHard,        // obscure acronym mention (expected linking failure)
  kRelationHard,      // phrase absent from D (expected extraction failure)
};

const char* CategoryName(QuestionCategory c);

/// One benchmark question with its gold standard, computed from the KB at
/// generation time (the role the QALD organizers' gold files play).
struct GoldQuestion {
  std::string id;          // "Q1", "Q2", ...
  std::string text;
  QuestionCategory category = QuestionCategory::kSimpleRelation;
  /// Term texts of the expected answers (empty for ASK questions).
  std::vector<std::string> gold_answers;
  bool is_ask = false;
  bool gold_ask = false;
  /// True when the category is expected to fail on the paper's system
  /// (aggregation / entity-hard / relation-hard).
  bool expected_failure = false;
};

/// \brief Generates the 100-question QALD-like workload over a generated
/// KB, with gold answers computed directly from the graph.
class WorkloadGenerator {
 public:
  struct Options {
    uint64_t seed = 13;
    size_t num_questions = 100;
  };

  static std::vector<GoldQuestion> Generate(const KbGenerator::GeneratedKb& kb,
                                            const Options& options);
};

/// TSV (de)serialization of a workload, so question sets can be shipped
/// next to an exported KB and evaluated by external tools (or
/// `ganswer_cli --eval`). Columns:
///   id \t category \t ask-flag \t gold-ask \t expected-failure \t
///   question \t gold-answer[|gold-answer...]
Status SaveWorkload(const std::vector<GoldQuestion>& workload,
                    std::ostream* out);
StatusOr<std::vector<GoldQuestion>> LoadWorkload(std::istream* in);

}  // namespace datagen
}  // namespace ganswer

#endif  // GANSWER_DATAGEN_WORKLOAD_H_
