#ifndef GANSWER_DATAGEN_SCHEMA_H_
#define GANSWER_DATAGEN_SCHEMA_H_

#include <string_view>

namespace ganswer {
namespace datagen {

/// The DBpedia-like schema shared by the KB generator, the phrase-dataset
/// generator and the workload generator. Class and predicate names are the
/// IRI texts interned into the RDF graph.
namespace cls {
inline constexpr std::string_view kPerson = "Person";
inline constexpr std::string_view kActor = "Actor";
inline constexpr std::string_view kPolitician = "Politician";
inline constexpr std::string_view kMusician = "Musician";
inline constexpr std::string_view kWriter = "Writer";
inline constexpr std::string_view kAthlete = "Athlete";
inline constexpr std::string_view kWork = "Work";
inline constexpr std::string_view kFilm = "Film";
inline constexpr std::string_view kBook = "Book";
inline constexpr std::string_view kComic = "Comic";
inline constexpr std::string_view kVideoGame = "VideoGame";
inline constexpr std::string_view kOrganisation = "Organisation";
inline constexpr std::string_view kCompany = "Company";
inline constexpr std::string_view kBand = "Band";
inline constexpr std::string_view kBasketballTeam = "BasketballTeam";
inline constexpr std::string_view kUniversity = "University";
inline constexpr std::string_view kPlace = "Place";
inline constexpr std::string_view kCity = "City";
inline constexpr std::string_view kCountry = "Country";
inline constexpr std::string_view kState = "State";
inline constexpr std::string_view kMountain = "Mountain";
inline constexpr std::string_view kRiver = "River";
inline constexpr std::string_view kAutomobile = "Automobile";
}  // namespace cls

namespace pred {
inline constexpr std::string_view kSpouse = "spouse";
inline constexpr std::string_view kHasChild = "hasChild";
inline constexpr std::string_view kHasGender = "hasGender";
inline constexpr std::string_view kBirthPlace = "birthPlace";
inline constexpr std::string_view kDeathPlace = "deathPlace";
inline constexpr std::string_view kBirthDate = "birthDate";
inline constexpr std::string_view kDeathDate = "deathDate";
inline constexpr std::string_view kHeight = "height";
inline constexpr std::string_view kNationality = "nationality";
inline constexpr std::string_view kSuccessor = "successor";
inline constexpr std::string_view kStarring = "starring";       // Film -> Actor
inline constexpr std::string_view kDirector = "director";       // Film -> Person
inline constexpr std::string_view kProducer = "producer";       // Film -> Person
inline constexpr std::string_view kAuthor = "author";           // Book -> Writer
inline constexpr std::string_view kPublisher = "publisher";     // Book -> Company
inline constexpr std::string_view kCreator = "creator";         // Comic -> Person
inline constexpr std::string_view kDeveloper = "developer";     // Game -> Company
inline constexpr std::string_view kFoundedBy = "foundedBy";     // Company -> Person
inline constexpr std::string_view kLocationCity = "locationCity";  // Org -> City
inline constexpr std::string_view kBandMember = "bandMember";   // Band -> Person
inline constexpr std::string_view kPlayForTeam = "playForTeam";  // Athlete -> Team
inline constexpr std::string_view kMayor = "mayor";             // City -> Politician
inline constexpr std::string_view kGovernor = "governor";       // State -> Politician
inline constexpr std::string_view kCapital = "capital";         // Country -> City
inline constexpr std::string_view kLargestCity = "largestCity";  // Country -> City
inline constexpr std::string_view kCountryOf = "country";       // City -> Country
inline constexpr std::string_view kFlowsThrough = "flowsThrough";  // River -> City
inline constexpr std::string_view kCrosses = "crosses";         // River -> Country
inline constexpr std::string_view kElevation = "elevation";     // Mountain -> lit
inline constexpr std::string_view kLocatedInArea = "locatedInArea";  // Mtn -> Ctry
inline constexpr std::string_view kPopulationTotal = "populationTotal";
inline constexpr std::string_view kTimeZone = "timeZone";       // City -> lit
inline constexpr std::string_view kNickname = "nickname";       // -> literal
inline constexpr std::string_view kManufacturer = "manufacturer";  // Car -> Comp
inline constexpr std::string_view kAssembly = "assembly";       // Car -> Country
inline constexpr std::string_view kOperator = "operator";       // Pad -> Org
}  // namespace pred

}  // namespace datagen
}  // namespace ganswer

#endif  // GANSWER_DATAGEN_SCHEMA_H_
