#include "datagen/workload.h"

#include <istream>
#include <ostream>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/schema.h"

namespace ganswer {
namespace datagen {

namespace {

using rdf::RdfGraph;
using rdf::TermId;

/// Surface mention of an IRI: underscores to spaces, parenthetical
/// disambiguator stripped ("Philadelphia_(film)" is mentioned as plain
/// "Philadelphia" — the ambiguity the pipeline must resolve from data).
std::string Mention(const std::string& iri) {
  std::string s = ReplaceAll(iri, "_", " ");
  size_t paren = s.find('(');
  if (paren != std::string::npos) {
    s = std::string(Trim(s.substr(0, paren)));
  }
  return s;
}

class Gen {
 public:
  Gen(const KbGenerator::GeneratedKb& kb, uint64_t seed)
      : kb_(kb), g_(kb.graph), rng_(seed) {}

  std::vector<GoldQuestion> Run(size_t num_questions) {
    // Category mix mirroring QALD-3's difficulty profile (Tables 8-11).
    struct Slot {
      QuestionCategory cat;
      size_t count;
    };
    const Slot plan[] = {
        {QuestionCategory::kSimpleRelation, 30},
        {QuestionCategory::kTypeConstrained, 15},
        {QuestionCategory::kMultiEdge, 12},
        {QuestionCategory::kPredicatePath, 6},
        {QuestionCategory::kYesNo, 8},
        {QuestionCategory::kLiteral, 12},
        {QuestionCategory::kAggregation, 8},
        {QuestionCategory::kEntityHard, 5},
        {QuestionCategory::kRelationHard, 4},
    };
    for (const Slot& slot : plan) {
      size_t made = 0;
      size_t attempts = 0;
      while (made < slot.count && attempts < slot.count * 30 &&
             out_.size() < num_questions) {
        ++attempts;
        if (MakeOne(slot.cat)) ++made;
      }
    }
    // Assign ids in order.
    for (size_t i = 0; i < out_.size(); ++i) {
      out_[i].id = "Q" + std::to_string(i + 1);
    }
    return std::move(out_);
  }

 private:
  // --- graph helpers ------------------------------------------------------

  std::vector<std::string> Objects(const std::string& s, std::string_view p) {
    std::vector<std::string> out;
    auto sid = g_.Find(s);
    auto pid = g_.Find(p);
    if (!sid || !pid) return out;
    for (TermId o : g_.Objects(*sid, *pid)) out.emplace_back(g_.dict().text(o));
    return out;
  }

  std::vector<std::string> Subjects(std::string_view p, const std::string& o) {
    std::vector<std::string> out;
    auto oid = g_.Find(o);
    auto pid = g_.Find(p);
    if (!oid || !pid) return out;
    for (TermId s : g_.Subjects(*pid, *oid)) out.emplace_back(g_.dict().text(s));
    return out;
  }

  bool Emit(QuestionCategory cat, std::string text,
            std::vector<std::string> gold, bool expected_failure = false) {
    if (gold.empty() && !expected_failure) return false;
    std::string key = text;
    if (!seen_texts_.insert(key).second) return false;
    GoldQuestion q;
    q.text = std::move(text);
    q.category = cat;
    std::sort(gold.begin(), gold.end());
    gold.erase(std::unique(gold.begin(), gold.end()), gold.end());
    q.gold_answers = std::move(gold);
    q.expected_failure = expected_failure;
    out_.push_back(std::move(q));
    return true;
  }

  bool EmitAsk(QuestionCategory cat, std::string text, bool gold_ask) {
    if (!seen_texts_.insert(text).second) return false;
    GoldQuestion q;
    q.text = std::move(text);
    q.category = cat;
    q.is_ask = true;
    q.gold_ask = gold_ask;
    out_.push_back(std::move(q));
    return true;
  }

  const std::string& Pick(const std::vector<std::string>& v) {
    return rng_.Pick(v);
  }

  // --- per-category templates ----------------------------------------------

  bool MakeOne(QuestionCategory cat) {
    switch (cat) {
      case QuestionCategory::kSimpleRelation:
        return Simple();
      case QuestionCategory::kTypeConstrained:
        return TypeConstrained();
      case QuestionCategory::kMultiEdge:
        return MultiEdge();
      case QuestionCategory::kPredicatePath:
        return PredicatePath();
      case QuestionCategory::kYesNo:
        return YesNo();
      case QuestionCategory::kLiteral:
        return Literal();
      case QuestionCategory::kAggregation:
        return Aggregation();
      case QuestionCategory::kEntityHard:
        return EntityHard();
      case QuestionCategory::kRelationHard:
        return RelationHard();
    }
    return false;
  }

  bool Simple() {
    switch (simple_rr_++ % 14) {
      case 0: {
        const std::string& city = Pick(kb_.cities);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who is the mayor of " + Mention(city) + " ?",
                    Objects(city, pred::kMayor));
      }
      case 1: {
        const std::string& state = Pick(kb_.states);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who is the governor of " + Mention(state) + " ?",
                    Objects(state, pred::kGovernor));
      }
      case 2: {
        const std::string& country = Pick(kb_.countries);
        return Emit(QuestionCategory::kSimpleRelation,
                    "What is the capital of " + Mention(country) + " ?",
                    Objects(country, pred::kCapital));
      }
      case 3: {
        const std::string& film = Pick(kb_.films);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who directed " + Mention(film) + " ?",
                    Objects(film, pred::kDirector));
      }
      case 4: {
        const std::string& company = Pick(kb_.companies);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who founded " + Mention(company) + " ?",
                    Objects(company, pred::kFoundedBy));
      }
      case 5: {
        const std::string& game = Pick(kb_.games);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who developed " + Mention(game) + " ?",
                    Objects(game, pred::kDeveloper));
      }
      case 6: {
        const std::string& comic = Pick(kb_.comics);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who created the comic " + Mention(comic) + " ?",
                    Objects(comic, pred::kCreator));
      }
      case 7: {
        const std::string& p = Pick(kb_.politicians);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who was the successor of " + Mention(p) + " ?",
                    Objects(p, pred::kSuccessor));
      }
      case 8: {
        const std::string& book = Pick(kb_.books);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who wrote " + Mention(book) + " ?",
                    Objects(book, pred::kAuthor));
      }
      case 9: {
        const std::string& river = Pick(kb_.rivers);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Which cities does the " + Mention(river) +
                        " flow through ?",
                    Objects(river, pred::kFlowsThrough));
      }
      case 10: {
        const std::string& river = Pick(kb_.rivers);
        return Emit(QuestionCategory::kSimpleRelation,
                    "Which countries are connected by the " + Mention(river) +
                        " ?",
                    Objects(river, pred::kCrosses));
      }
      case 11: {
        const std::string& person = Pick(kb_.people);
        // Spouse can sit on either side of the stored triple.
        std::vector<std::string> gold = Objects(person, pred::kSpouse);
        for (std::string& s : Subjects(pred::kSpouse, person)) {
          gold.push_back(std::move(s));
        }
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who is married to " + Mention(person) + " ?", gold);
      }
      case 12: {
        // Possessive form: the clitic exercises the 'poss' relation.
        const std::string& person = Pick(kb_.people);
        std::vector<std::string> gold = Objects(person, pred::kSpouse);
        for (std::string& s : Subjects(pred::kSpouse, person)) {
          gold.push_back(std::move(s));
        }
        return Emit(QuestionCategory::kSimpleRelation,
                    "Who is " + Mention(person) + "'s wife ?", gold);
      }
      case 13: {
        const std::string& country = Pick(kb_.countries);
        return Emit(QuestionCategory::kSimpleRelation,
                    "What is " + Mention(country) + "'s capital ?",
                    Objects(country, pred::kCapital));
      }
    }
    return false;
  }

  bool TypeConstrained() {
    switch (type_rr_++ % 5) {
      case 0: {
        const std::string& person = Pick(kb_.people);
        return Emit(QuestionCategory::kTypeConstrained,
                    "Give me all movies directed by " + Mention(person) + " .",
                    Subjects(pred::kDirector, person));
      }
      case 1: {
        const std::string& country = Pick(kb_.countries);
        return Emit(QuestionCategory::kTypeConstrained,
                    "Give me all cars that are produced in " +
                        Mention(country) + " .",
                    Subjects(pred::kAssembly, country));
      }
      case 2: {
        const std::string& city = Pick(kb_.cities);
        // Gold: companies (only) located in the city.
        std::vector<std::string> gold;
        for (std::string& s : Subjects(pred::kLocationCity, city)) {
          auto sid = g_.Find(s);
          auto cid = g_.Find(cls::kCompany);
          if (sid && cid && g_.IsInstanceOf(*sid, *cid)) {
            gold.push_back(std::move(s));
          }
        }
        return Emit(QuestionCategory::kTypeConstrained,
                    "Give me all companies in " + Mention(city) + " .", gold);
      }
      case 3: {
        const std::string& actor = Pick(kb_.actors);
        return Emit(QuestionCategory::kTypeConstrained,
                    "Which movies did " + Mention(actor) + " star in ?",
                    Subjects(pred::kStarring, actor));
      }
      case 4: {
        const std::string& band = Pick(kb_.bands);
        return Emit(QuestionCategory::kTypeConstrained,
                    "Give me all members of " + Mention(band) + " ?",
                    Objects(band, pred::kBandMember));
      }
    }
    return false;
  }

  bool MultiEdge() {
    switch (multi_rr_++ % 4) {
      case 0: {
        const std::string& film = Pick(kb_.films);
        // Spouses of actors starring in the film.
        std::vector<std::string> gold;
        for (const std::string& actor : Objects(film, pred::kStarring)) {
          for (std::string& s : Objects(actor, pred::kSpouse)) {
            gold.push_back(std::move(s));
          }
          for (std::string& s : Subjects(pred::kSpouse, actor)) {
            gold.push_back(std::move(s));
          }
        }
        return Emit(QuestionCategory::kMultiEdge,
                    "Who was married to an actor that played in " +
                        Mention(film) + " ?",
                    gold);
      }
      case 1: {
        // Find a person with both birth and death place; reuse the cities.
        for (int tries = 0; tries < 40; ++tries) {
          const std::string& p = Pick(kb_.people);
          auto births = Objects(p, pred::kBirthPlace);
          auto deaths = Objects(p, pred::kDeathPlace);
          if (births.empty() || deaths.empty()) continue;
          const std::string& ca = births[0];
          const std::string& cb = deaths[0];
          std::vector<std::string> gold;
          for (const std::string& x : Subjects(pred::kBirthPlace, ca)) {
            auto dp = Objects(x, pred::kDeathPlace);
            if (std::find(dp.begin(), dp.end(), cb) != dp.end()) {
              gold.push_back(x);
            }
          }
          return Emit(QuestionCategory::kMultiEdge,
                      "Give me all people that were born in " + Mention(ca) +
                          " and died in " + Mention(cb) + " ?",
                      gold);
        }
        return false;
      }
      case 2: {
        const std::string& comic = Pick(kb_.comics);
        std::vector<std::string> gold;
        for (const std::string& creator : Objects(comic, pred::kCreator)) {
          for (std::string& c : Objects(creator, pred::kNationality)) {
            gold.push_back(std::move(c));
          }
        }
        return Emit(QuestionCategory::kMultiEdge,
                    "Which country does the creator of " + Mention(comic) +
                        " come from ?",
                    gold);
      }
      case 3: {
        for (int tries = 0; tries < 40; ++tries) {
          const std::string& writer = Pick(kb_.writers);
          std::vector<std::string> books = Subjects(pred::kAuthor, writer);
          if (books.empty()) continue;
          auto pubs = Objects(books[0], pred::kPublisher);
          if (pubs.empty()) continue;
          const std::string& pub = pubs[0];
          std::vector<std::string> gold;
          for (const std::string& bk : books) {
            auto bp = Objects(bk, pred::kPublisher);
            if (std::find(bp.begin(), bp.end(), pub) != bp.end()) {
              gold.push_back(bk);
            }
          }
          return Emit(QuestionCategory::kMultiEdge,
                      "Which books by " + Mention(writer) +
                          " were published by " + Mention(pub) + " ?",
                      gold);
        }
        return false;
      }
    }
    return false;
  }

  bool PredicatePath() {
    // "uncle of": parents' male siblings.
    for (int tries = 0; tries < 60; ++tries) {
      const std::string& person = Pick(kb_.people);
      std::vector<std::string> gold;
      for (const std::string& parent : Subjects(pred::kHasChild, person)) {
        for (const std::string& gp : Subjects(pred::kHasChild, parent)) {
          for (const std::string& sib : Objects(gp, pred::kHasChild)) {
            if (sib == parent) continue;
            auto genders = Objects(sib, pred::kHasGender);
            if (!genders.empty() && genders[0] == "male") {
              gold.push_back(sib);
            }
          }
        }
      }
      if (gold.empty()) continue;
      return Emit(QuestionCategory::kPredicatePath,
                  "Who is the uncle of " + Mention(person) + " ?", gold);
    }
    return false;
  }

  bool YesNo() {
    switch (yesno_rr_++ % 4) {
      case 0: {
        for (int tries = 0; tries < 40; ++tries) {
          const std::string& p = Pick(kb_.people);
          auto spouses = Objects(p, pred::kSpouse);
          if (spouses.empty()) continue;
          return EmitAsk(QuestionCategory::kYesNo,
                         "Is " + Mention(spouses[0]) + " the wife of " +
                             Mention(p) + " ?",
                         true);
        }
        return false;
      }
      case 1: {
        const std::string& a = Pick(kb_.people);
        const std::string& b = Pick(kb_.people);
        auto spouses = Objects(a, pred::kSpouse);
        bool married =
            std::find(spouses.begin(), spouses.end(), b) != spouses.end();
        if (married || a == b) return false;
        return EmitAsk(QuestionCategory::kYesNo,
                       "Is " + Mention(b) + " the wife of " + Mention(a) +
                           " ?",
                       false);
      }
      case 2: {
        for (int tries = 0; tries < 40; ++tries) {
          const std::string& country = Pick(kb_.countries);
          auto caps = Objects(country, pred::kCapital);
          if (caps.empty()) continue;
          return EmitAsk(QuestionCategory::kYesNo,
                         "Is " + Mention(caps[0]) + " the capital of " +
                             Mention(country) + " ?",
                         true);
        }
        return false;
      }
      case 3: {
        const std::string& country = Pick(kb_.countries);
        const std::string& city = Pick(kb_.cities);
        auto caps = Objects(country, pred::kCapital);
        bool is_cap = std::find(caps.begin(), caps.end(), city) != caps.end();
        if (is_cap) return false;
        return EmitAsk(QuestionCategory::kYesNo,
                       "Is " + Mention(city) + " the capital of " +
                           Mention(country) + " ?",
                       false);
      }
    }
    return false;
  }

  bool Literal() {
    switch (literal_rr_++ % 6) {
      case 0: {
        const std::string& p = Pick(kb_.people);
        return Emit(QuestionCategory::kLiteral,
                    "How tall is " + Mention(p) + " ?",
                    Objects(p, pred::kHeight));
      }
      case 1: {
        const std::string& city = Pick(kb_.cities);
        return Emit(QuestionCategory::kLiteral,
                    "What is the time zone of " + Mention(city) + " ?",
                    Objects(city, pred::kTimeZone));
      }
      case 2: {
        const std::string& p = Pick(kb_.people);
        return Emit(QuestionCategory::kLiteral,
                    "When did " + Mention(p) + " die ?",
                    Objects(p, pred::kDeathDate));
      }
      case 3: {
        const std::string& m = Pick(kb_.mountains);
        return Emit(QuestionCategory::kLiteral,
                    "How high is " + Mention(m) + " ?",
                    Objects(m, pred::kElevation));
      }
      case 4: {
        const std::string& city = Pick(kb_.cities);
        return Emit(QuestionCategory::kLiteral,
                    "What are the nicknames of " + Mention(city) + " ?",
                    Objects(city, pred::kNickname));
      }
      case 5: {
        const std::string& city = Pick(kb_.cities);
        return Emit(QuestionCategory::kLiteral,
                    "What is the population of " + Mention(city) + " ?",
                    Objects(city, pred::kPopulationTotal));
      }
    }
    return false;
  }

  bool Aggregation() {
    switch (agg_rr_++ % 4) {
      case 0: {
        for (int tries = 0; tries < 40; ++tries) {
          const std::string& team = Pick(kb_.teams);
          std::vector<std::string> players =
              Subjects(pred::kPlayForTeam, team);
          std::string youngest;
          std::string best_date;
          for (const std::string& p : players) {
            auto dates = Objects(p, pred::kBirthDate);
            if (dates.empty()) continue;
            if (dates[0] > best_date) {
              best_date = dates[0];
              youngest = p;
            }
          }
          if (youngest.empty()) continue;
          return Emit(QuestionCategory::kAggregation,
                      "Who is the youngest player in the " + Mention(team) +
                          " ?",
                      {youngest}, /*expected_failure=*/true);
        }
        return false;
      }
      case 1: {
        for (int tries = 0; tries < 40; ++tries) {
          const std::string& country = Pick(kb_.countries);
          std::string highest;
          long best = -1;
          for (const std::string& m :
               Subjects(pred::kLocatedInArea, country)) {
            auto elevs = Objects(m, pred::kElevation);
            if (elevs.empty()) continue;
            long e = std::stol(elevs[0]);
            if (e > best) {
              best = e;
              highest = m;
            }
          }
          if (highest.empty()) continue;
          return Emit(QuestionCategory::kAggregation,
                      "What is the highest mountain in " + Mention(country) +
                          " ?",
                      {highest}, /*expected_failure=*/true);
        }
        return false;
      }
      case 3: {
        // Count question: the COUNT flavour of aggregation.
        for (int tries = 0; tries < 40; ++tries) {
          const std::string& band = Pick(kb_.bands);
          auto members = Objects(band, pred::kBandMember);
          if (members.empty()) continue;
          return Emit(QuestionCategory::kAggregation,
                      "How many members does " + Mention(band) + " have ?",
                      {std::to_string(members.size())},
                      /*expected_failure=*/true);
        }
        return false;
      }
      case 2: {
        // Most populous city overall.
        std::string biggest;
        long best = -1;
        for (const std::string& c : kb_.cities) {
          auto pops = Objects(c, pred::kPopulationTotal);
          if (pops.empty()) continue;
          long p = std::stol(pops[0]);
          if (p > best) {
            best = p;
            biggest = c;
          }
        }
        if (biggest.empty()) return false;
        return Emit(QuestionCategory::kAggregation,
                    "Which city has the most inhabitants ?", {biggest},
                    /*expected_failure=*/true);
      }
    }
    return false;
  }

  bool EntityHard() {
    // Mention a company by an acronym that was never indexed (the MI6 case
    // of Table 10): linking cannot resolve it.
    const std::string& company = Pick(kb_.companies);
    std::string acronym = "ZQ" + std::to_string(entity_hard_rr_++ + 3);
    std::vector<std::string> gold = Objects(company, pred::kLocationCity);
    return Emit(QuestionCategory::kEntityHard,
                "In which city are the headquarters of the " + acronym + " ?",
                gold, /*expected_failure=*/true);
  }

  bool RelationHard() {
    // Relation phrase absent from the paraphrase dictionary (the "launch
    // pads operated by NASA" case of Table 10).
    const std::string& company = Pick(kb_.companies);
    switch (relation_hard_rr_++ % 2) {
      case 0:
        return Emit(QuestionCategory::kRelationHard,
                    "Give me all launch pads operated by " + Mention(company) +
                        " .",
                    {company}, /*expected_failure=*/true);
      case 1: {
        const std::string& p = Pick(kb_.people);
        return Emit(QuestionCategory::kRelationHard,
                    "Who quarreled with " + Mention(p) + " ?", {p},
                    /*expected_failure=*/true);
      }
    }
    return false;
  }

  const KbGenerator::GeneratedKb& kb_;
  const RdfGraph& g_;
  Rng rng_;
  std::vector<GoldQuestion> out_;
  std::set<std::string> seen_texts_;
  size_t simple_rr_ = 0;
  size_t type_rr_ = 0;
  size_t multi_rr_ = 0;
  size_t yesno_rr_ = 0;
  size_t literal_rr_ = 0;
  size_t agg_rr_ = 0;
  size_t entity_hard_rr_ = 0;
  size_t relation_hard_rr_ = 0;
};

}  // namespace

const char* CategoryName(QuestionCategory c) {
  switch (c) {
    case QuestionCategory::kSimpleRelation:
      return "simple-relation";
    case QuestionCategory::kTypeConstrained:
      return "type-constrained";
    case QuestionCategory::kMultiEdge:
      return "multi-edge";
    case QuestionCategory::kPredicatePath:
      return "predicate-path";
    case QuestionCategory::kYesNo:
      return "yes-no";
    case QuestionCategory::kLiteral:
      return "literal";
    case QuestionCategory::kAggregation:
      return "aggregation";
    case QuestionCategory::kEntityHard:
      return "entity-hard";
    case QuestionCategory::kRelationHard:
      return "relation-hard";
  }
  return "?";
}

std::vector<GoldQuestion> WorkloadGenerator::Generate(
    const KbGenerator::GeneratedKb& kb, const Options& options) {
  Gen gen(kb, options.seed);
  return gen.Run(options.num_questions);
}

namespace {

QuestionCategory CategoryFromName(const std::string& name, bool* ok) {
  *ok = true;
  for (int c = 0; c <= static_cast<int>(QuestionCategory::kRelationHard);
       ++c) {
    auto cat = static_cast<QuestionCategory>(c);
    if (name == CategoryName(cat)) return cat;
  }
  *ok = false;
  return QuestionCategory::kSimpleRelation;
}

}  // namespace

Status SaveWorkload(const std::vector<GoldQuestion>& workload,
                    std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  for (const GoldQuestion& q : workload) {
    *out << q.id << '\t' << CategoryName(q.category) << '\t'
         << (q.is_ask ? 1 : 0) << '\t' << (q.gold_ask ? 1 : 0) << '\t'
         << (q.expected_failure ? 1 : 0) << '\t' << q.text << '\t'
         << Join(q.gold_answers, "|") << '\n';
  }
  return Status::Ok();
}

StatusOr<std::vector<GoldQuestion>> LoadWorkload(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  std::vector<GoldQuestion> out;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> cols = Split(line, '\t', /*keep_empty=*/true);
    if (cols.size() != 7) {
      return Status::Corruption("workload line " + std::to_string(line_no) +
                                ": expected 7 tab-separated columns, got " +
                                std::to_string(cols.size()));
    }
    GoldQuestion q;
    q.id = cols[0];
    bool ok = false;
    q.category = CategoryFromName(cols[1], &ok);
    if (!ok) {
      return Status::Corruption("workload line " + std::to_string(line_no) +
                                ": unknown category '" + cols[1] + "'");
    }
    q.is_ask = cols[2] == "1";
    q.gold_ask = cols[3] == "1";
    q.expected_failure = cols[4] == "1";
    q.text = cols[5];
    if (!cols[6].empty()) q.gold_answers = Split(cols[6], '|');
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace datagen
}  // namespace ganswer
