#include "datagen/schema_rename.h"

#include "datagen/schema.h"

namespace ganswer {
namespace datagen {

namespace {

std::string Renamed(const std::map<std::string, std::string>& renames,
                    std::string_view name) {
  auto it = renames.find(std::string(name));
  return it == renames.end() ? std::string(name) : it->second;
}

}  // namespace

StatusOr<KbGenerator::GeneratedKb> RenameSchema(
    const KbGenerator::GeneratedKb& kb,
    const std::map<std::string, std::string>& renames) {
  if (!kb.graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  KbGenerator::GeneratedKb out;
  // Entity rosters carry entity names only — unchanged.
  out.people = kb.people;
  out.actors = kb.actors;
  out.politicians = kb.politicians;
  out.writers = kb.writers;
  out.athletes = kb.athletes;
  out.films = kb.films;
  out.cities = kb.cities;
  out.countries = kb.countries;
  out.states = kb.states;
  out.companies = kb.companies;
  out.bands = kb.bands;
  out.books = kb.books;
  out.teams = kb.teams;
  out.rivers = kb.rivers;
  out.mountains = kb.mountains;
  out.games = kb.games;
  out.comics = kb.comics;
  out.cars = kb.cars;

  const rdf::TermDictionary& dict = kb.graph.dict();
  for (rdf::TermId s = 0; s < dict.size(); ++s) {
    for (const rdf::Edge& e : kb.graph.OutEdges(s)) {
      std::string subject = Renamed(renames, dict.text(s));
      std::string predicate = Renamed(renames, dict.text(e.predicate));
      // Literals are values, never schema names.
      if (dict.IsLiteral(e.neighbor)) {
        out.graph.AddTriple(subject, predicate, dict.text(e.neighbor),
                            rdf::TermKind::kLiteral);
      } else {
        out.graph.AddTriple(subject, predicate,
                            Renamed(renames, dict.text(e.neighbor)));
      }
    }
  }
  GANSWER_RETURN_NOT_OK(out.graph.Finalize());
  return out;
}

std::vector<PhraseWithGold> RenameGold(
    const std::vector<PhraseWithGold>& phrases,
    const std::map<std::string, std::string>& renames) {
  std::vector<PhraseWithGold> out = phrases;
  for (PhraseWithGold& p : out) {
    for (auto& gold : p.gold) {
      for (GoldStep& step : gold) {
        step.predicate = Renamed(renames, step.predicate);
      }
    }
  }
  return out;
}

const std::map<std::string, std::string>& YagoRenames() {
  static const std::map<std::string, std::string>* renames = [] {
    auto* m = new std::map<std::string, std::string>{
        // Predicates, YAGO style.
        {std::string(pred::kSpouse), "isMarriedTo"},
        {std::string(pred::kHasChild), "hasChild"},
        {std::string(pred::kHasGender), "hasGender"},
        {std::string(pred::kBirthPlace), "wasBornIn"},
        {std::string(pred::kDeathPlace), "diedIn"},
        {std::string(pred::kBirthDate), "wasBornOnDate"},
        {std::string(pred::kDeathDate), "diedOnDate"},
        {std::string(pred::kHeight), "hasHeight"},
        {std::string(pred::kNationality), "isCitizenOf"},
        {std::string(pred::kSuccessor), "hasSuccessor"},
        {std::string(pred::kStarring), "hasActor"},
        {std::string(pred::kDirector), "wasDirectedBy"},
        {std::string(pred::kProducer), "wasProducedBy"},
        {std::string(pred::kAuthor), "wasWrittenBy"},
        {std::string(pred::kPublisher), "wasPublishedBy"},
        {std::string(pred::kCreator), "wasCreatedBy"},
        {std::string(pred::kDeveloper), "wasDevelopedBy"},
        {std::string(pred::kFoundedBy), "wasFoundedBy"},
        {std::string(pred::kLocationCity), "isLocatedIn"},
        {std::string(pred::kBandMember), "hasMusicalMember"},
        {std::string(pred::kPlayForTeam), "playsFor"},
        {std::string(pred::kMayor), "hasMayor"},
        {std::string(pred::kGovernor), "hasGovernor"},
        {std::string(pred::kCapital), "hasCapital"},
        {std::string(pred::kLargestCity), "hasLargestCity"},
        {std::string(pred::kCountryOf), "isCityOf"},
        {std::string(pred::kFlowsThrough), "passesThrough"},
        {std::string(pred::kCrosses), "flowsIntoCountry"},
        {std::string(pred::kElevation), "hasElevation"},
        {std::string(pred::kLocatedInArea), "isMountainOf"},
        {std::string(pred::kPopulationTotal), "hasPopulation"},
        {std::string(pred::kTimeZone), "isInTimeZone"},
        {std::string(pred::kNickname), "isKnownAs"},
        {std::string(pred::kManufacturer), "isManufacturedBy"},
        {std::string(pred::kAssembly), "isAssembledIn"},
        // Classes, wordnet-flavoured.
        {std::string(cls::kPerson), "wordnet_person"},
        {std::string(cls::kActor), "wordnet_actor"},
        {std::string(cls::kPolitician), "wordnet_politician"},
        {std::string(cls::kMusician), "wordnet_musician"},
        {std::string(cls::kWriter), "wordnet_writer"},
        {std::string(cls::kAthlete), "wordnet_athlete"},
        {std::string(cls::kWork), "wordnet_work"},
        {std::string(cls::kFilm), "wordnet_movie"},
        {std::string(cls::kBook), "wordnet_book"},
        {std::string(cls::kComic), "wordnet_comic"},
        {std::string(cls::kVideoGame), "wordnet_computer_game"},
        {std::string(cls::kOrganisation), "wordnet_organization"},
        {std::string(cls::kCompany), "wordnet_company"},
        {std::string(cls::kBand), "wordnet_band"},
        {std::string(cls::kBasketballTeam), "wordnet_basketball_team"},
        {std::string(cls::kUniversity), "wordnet_university"},
        {std::string(cls::kPlace), "wordnet_location"},
        {std::string(cls::kCity), "wordnet_city"},
        {std::string(cls::kCountry), "wordnet_country"},
        {std::string(cls::kState), "wordnet_state"},
        {std::string(cls::kMountain), "wordnet_mountain"},
        {std::string(cls::kRiver), "wordnet_river"},
        {std::string(cls::kAutomobile), "wordnet_car"},
    };
    return m;
  }();
  return *renames;
}

}  // namespace datagen
}  // namespace ganswer
