#include "datagen/phrase_dataset_generator.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "datagen/schema.h"

namespace ganswer {
namespace datagen {

namespace {

using rdf::RdfGraph;
using rdf::TermId;

using Pair = std::pair<std::string, std::string>;

/// Collects (subject, object) name pairs of a predicate, optionally
/// swapping to (object, subject).
std::vector<Pair> PredicatePairs(const RdfGraph& g, std::string_view pred,
                                 bool swap) {
  std::vector<Pair> out;
  auto p = g.Find(pred);
  if (!p.has_value()) return out;
  const rdf::TermDictionary& dict = g.dict();
  for (TermId s = 0; s < dict.size(); ++s) {
    for (TermId o : g.Objects(s, *p)) {
      if (swap) {
        out.emplace_back(dict.text(o), dict.text(s));
      } else {
        out.emplace_back(dict.text(s), dict.text(o));
      }
    }
  }
  return out;
}

/// (uncle, nephew/niece) pairs: x <-hasChild- z -hasChild-> w -hasChild-> y
/// with x male and x != w.
std::vector<Pair> UnclePairs(const RdfGraph& g) {
  std::vector<Pair> out;
  auto has_child = g.Find(pred::kHasChild);
  auto has_gender = g.Find(pred::kHasGender);
  auto male = g.Find("male");
  if (!has_child || !has_gender || !male) return out;
  const rdf::TermDictionary& dict = g.dict();
  for (TermId z = 0; z < dict.size(); ++z) {
    std::vector<TermId> children = g.Objects(z, *has_child);
    if (children.size() < 2) continue;
    for (TermId x : children) {
      if (!g.HasTriple(x, *has_gender, *male)) continue;
      for (TermId w : children) {
        if (w == x) continue;
        for (TermId y : g.Objects(w, *has_child)) {
          out.emplace_back(dict.text(x), dict.text(y));
        }
      }
    }
  }
  return out;
}

struct CorePhraseSpec {
  const char* text;
  std::vector<Pair> (*pairs)(const RdfGraph&);
  std::vector<std::vector<GoldStep>> gold;
};

std::vector<Pair> SampleAndNoise(std::vector<Pair> pool, size_t want,
                                 double noise_rate, Rng* rng,
                                 const std::vector<std::string>& all_entities) {
  rng->Shuffle(&pool);
  if (pool.size() > want) pool.resize(want);
  for (Pair& p : pool) {
    if (rng->Chance(noise_rate) && all_entities.size() >= 2) {
      p.first = rng->Pick(all_entities);
      p.second = rng->Pick(all_entities);
    }
  }
  return pool;
}

}  // namespace

std::vector<PhraseWithGold> PhraseDatasetGenerator::Generate(
    const KbGenerator::GeneratedKb& kb, const Options& options) {
  const RdfGraph& g = kb.graph;
  Rng rng(options.seed);
  std::vector<PhraseWithGold> out;

  // Entity pool for noise pairs.
  std::vector<std::string> everyone;
  everyone.insert(everyone.end(), kb.people.begin(), kb.people.end());
  everyone.insert(everyone.end(), kb.films.begin(), kb.films.end());
  everyone.insert(everyone.end(), kb.cities.begin(), kb.cities.end());
  everyone.insert(everyone.end(), kb.companies.begin(), kb.companies.end());

  auto add = [&](const std::string& text, std::vector<Pair> pool,
                 std::vector<std::vector<GoldStep>> gold) {
    PhraseWithGold p;
    p.phrase.text = text;
    p.phrase.support = SampleAndNoise(std::move(pool), options.pairs_per_phrase,
                                      options.noise_pair_rate, &rng, everyone);
    p.gold = std::move(gold);
    out.push_back(std::move(p));
  };
  auto fwd = [](std::string_view p) {
    return std::vector<GoldStep>{{std::string(p), true}};
  };
  auto bwd = [](std::string_view p) {
    return std::vector<GoldStep>{{std::string(p), false}};
  };

  if (options.include_core) {
    // --- people ---
    add("be married to", PredicatePairs(g, pred::kSpouse, false),
        {fwd(pred::kSpouse), bwd(pred::kSpouse)});
    add("be the husband of", PredicatePairs(g, pred::kSpouse, true),
        {fwd(pred::kSpouse), bwd(pred::kSpouse)});
    add("be the wife of", PredicatePairs(g, pred::kSpouse, false),
        {fwd(pred::kSpouse), bwd(pred::kSpouse)});
    // Single-noun phrases serve the possessive forms ("Obama's wife").
    add("wife", PredicatePairs(g, pred::kSpouse, false),
        {fwd(pred::kSpouse), bwd(pred::kSpouse)});
    add("husband", PredicatePairs(g, pred::kSpouse, true),
        {fwd(pred::kSpouse), bwd(pred::kSpouse)});
    add("be born in", PredicatePairs(g, pred::kBirthPlace, false),
        {fwd(pred::kBirthPlace)});
    add("die in", PredicatePairs(g, pred::kDeathPlace, false),
        {fwd(pred::kDeathPlace)});
    add("be buried in", PredicatePairs(g, pred::kDeathPlace, false),
        {fwd(pred::kDeathPlace)});
    add("die", PredicatePairs(g, pred::kDeathDate, false),
        {fwd(pred::kDeathDate)});
    add("father of", PredicatePairs(g, pred::kHasChild, false),
        {fwd(pred::kHasChild)});
    add("mother of", PredicatePairs(g, pred::kHasChild, false),
        {fwd(pred::kHasChild)});
    add("child of", PredicatePairs(g, pred::kHasChild, true),
        {bwd(pred::kHasChild)});
    add("children of", PredicatePairs(g, pred::kHasChild, true),
        {bwd(pred::kHasChild)});
    add("uncle of", UnclePairs(g),
        {{{std::string(pred::kHasChild), false},
          {std::string(pred::kHasChild), true},
          {std::string(pred::kHasChild), true}}});
    add("successor of", PredicatePairs(g, pred::kSuccessor, true),
        {bwd(pred::kSuccessor)});
    add("come from", PredicatePairs(g, pred::kNationality, false),
        {fwd(pred::kNationality)});
    add("be called", PredicatePairs(g, pred::kNickname, false),
        {fwd(pred::kNickname)});
    add("nickname of", PredicatePairs(g, pred::kNickname, true),
        {bwd(pred::kNickname)});
    add("tall", PredicatePairs(g, pred::kHeight, false),
        {fwd(pred::kHeight)});
    add("height of", PredicatePairs(g, pred::kHeight, true),
        {bwd(pred::kHeight)});

    // --- works ---
    // "play in" is deliberately ambiguous: actors in films AND athletes in
    // teams (the paper's running ambiguity).
    {
      std::vector<Pair> pool = PredicatePairs(g, pred::kStarring, true);
      std::vector<Pair> teams = PredicatePairs(g, pred::kPlayForTeam, false);
      rng.Shuffle(&teams);
      size_t extra = std::min(teams.size(), options.pairs_per_phrase / 3 + 1);
      pool.insert(pool.end(), teams.begin(), teams.begin() + extra);
      add("play in", std::move(pool),
          {bwd(pred::kStarring), fwd(pred::kPlayForTeam)});
    }
    add("star in", PredicatePairs(g, pred::kStarring, true),
        {bwd(pred::kStarring)});
    add("play for", PredicatePairs(g, pred::kPlayForTeam, false),
        {fwd(pred::kPlayForTeam)});
    add("direct", PredicatePairs(g, pred::kDirector, true),
        {bwd(pred::kDirector)});
    add("be directed by", PredicatePairs(g, pred::kDirector, false),
        {fwd(pred::kDirector)});
    add("director of", PredicatePairs(g, pred::kDirector, true),
        {bwd(pred::kDirector)});
    add("produce", PredicatePairs(g, pred::kProducer, true),
        {bwd(pred::kProducer)});
    add("write", PredicatePairs(g, pred::kAuthor, true),
        {bwd(pred::kAuthor)});
    add("author of", PredicatePairs(g, pred::kAuthor, true),
        {bwd(pred::kAuthor)});
    add("be published by", PredicatePairs(g, pred::kPublisher, false),
        {fwd(pred::kPublisher)});
    add("create", PredicatePairs(g, pred::kCreator, true),
        {bwd(pred::kCreator)});
    add("creator of", PredicatePairs(g, pred::kCreator, true),
        {bwd(pred::kCreator)});
    add("develop", PredicatePairs(g, pred::kDeveloper, true),
        {bwd(pred::kDeveloper)});

    // --- organisations ---
    add("found", PredicatePairs(g, pred::kFoundedBy, true),
        {bwd(pred::kFoundedBy)});
    add("founder of", PredicatePairs(g, pred::kFoundedBy, true),
        {bwd(pred::kFoundedBy)});
    add("member of", PredicatePairs(g, pred::kBandMember, true),
        {bwd(pred::kBandMember)});
    // "have" is deliberately the most ambiguous phrase in the dataset:
    // bands have members, parents have children.
    {
      std::vector<Pair> pool = PredicatePairs(g, pred::kBandMember, false);
      std::vector<Pair> kids = PredicatePairs(g, pred::kHasChild, false);
      rng.Shuffle(&kids);
      size_t extra = std::min(kids.size(), options.pairs_per_phrase / 2 + 1);
      pool.insert(pool.end(), kids.begin(), kids.begin() + extra);
      add("have", std::move(pool),
          {fwd(pred::kBandMember), fwd(pred::kHasChild)});
    }
    add("members of", PredicatePairs(g, pred::kBandMember, true),
        {bwd(pred::kBandMember)});
    add("be located in", PredicatePairs(g, pred::kLocationCity, false),
        {fwd(pred::kLocationCity)});
    add("headquarters of", PredicatePairs(g, pred::kLocationCity, true),
        {bwd(pred::kLocationCity)});
    add("manufacture", PredicatePairs(g, pred::kManufacturer, true),
        {bwd(pred::kManufacturer)});
    add("be produced in", PredicatePairs(g, pred::kAssembly, false),
        {fwd(pred::kAssembly)});

    // --- places ---
    add("mayor of", PredicatePairs(g, pred::kMayor, true),
        {bwd(pred::kMayor)});
    add("governor of", PredicatePairs(g, pred::kGovernor, true),
        {bwd(pred::kGovernor)});
    add("capital of", PredicatePairs(g, pred::kCapital, true),
        {bwd(pred::kCapital)});
    add("capital", PredicatePairs(g, pred::kCapital, true),
        {bwd(pred::kCapital)});
    add("largest city in", PredicatePairs(g, pred::kLargestCity, true),
        {bwd(pred::kLargestCity)});
    add("flow through", PredicatePairs(g, pred::kFlowsThrough, false),
        {fwd(pred::kFlowsThrough)});
    add("cross", PredicatePairs(g, pred::kCrosses, false),
        {fwd(pred::kCrosses)});
    add("be connected by", PredicatePairs(g, pred::kCrosses, true),
        {bwd(pred::kCrosses)});
    add("high", PredicatePairs(g, pred::kElevation, false),
        {fwd(pred::kElevation)});
    add("time zone of", PredicatePairs(g, pred::kTimeZone, true),
        {bwd(pred::kTimeZone)});
    add("population of", PredicatePairs(g, pred::kPopulationTotal, true),
        {bwd(pred::kPopulationTotal)});
  }

  // Filler phrases over random data predicates: corpus scale + idf signal.
  std::vector<std::string> data_preds;
  for (TermId p : g.Predicates()) {
    std::string_view name = g.dict().text(p);
    if (name == rdf::kTypePredicate || name == rdf::kSubClassOfPredicate ||
        name == rdf::kLabelPredicate) {
      continue;
    }
    data_preds.emplace_back(name);
  }
  const char* filler_verbs[] = {"quassel", "brindle", "farrow", "welkin",
                                "dapple",  "murk",    "sorrel", "tiffin"};
  const char* filler_preps[] = {"with", "at", "over", "near"};
  for (size_t i = 0; i < options.num_filler_phrases && !data_preds.empty();
       ++i) {
    const std::string& p = data_preds[rng.Next(data_preds.size())];
    bool swap = rng.Chance(0.5);
    std::string text = std::string(filler_verbs[rng.Next(8)]) + "_" +
                       std::to_string(i) + " " + filler_preps[rng.Next(4)];
    std::vector<std::vector<GoldStep>> gold = {{GoldStep{p, !swap}}};
    add(text, PredicatePairs(g, p, swap), std::move(gold));
  }

  return out;
}

std::vector<paraphrase::RelationPhrase> PhraseDatasetGenerator::StripGold(
    const std::vector<PhraseWithGold>& dataset) {
  std::vector<paraphrase::RelationPhrase> out;
  out.reserve(dataset.size());
  for (const PhraseWithGold& p : dataset) out.push_back(p.phrase);
  return out;
}

std::optional<paraphrase::PredicatePath> GoldToPath(
    const std::vector<GoldStep>& steps, const RdfGraph& graph) {
  paraphrase::PredicatePath path;
  for (const GoldStep& s : steps) {
    auto p = graph.Find(s.predicate);
    if (!p.has_value()) return std::nullopt;
    path.steps.push_back({*p, s.forward});
  }
  return path;
}

void VerifyDictionary(const std::vector<PhraseWithGold>& gold,
                      const RdfGraph& graph,
                      const paraphrase::ParaphraseDictionary& mined,
                      paraphrase::ParaphraseDictionary* verified) {
  for (const PhraseWithGold& spec : gold) {
    // Admissible paths for this phrase, in either orientation (a path and
    // its reverse denote the same connection read from the other side).
    std::vector<paraphrase::PredicatePath> accepted;
    for (const auto& gold_steps : spec.gold) {
      auto p = GoldToPath(gold_steps, graph);
      if (!p.has_value()) continue;
      accepted.push_back(p->Reversed());
      accepted.push_back(std::move(*p));
    }
    std::vector<paraphrase::ParaphraseEntry> kept;
    // Locate the mined phrase record by lemma-insensitive text match.
    for (paraphrase::PhraseId id = 0; id < mined.NumPhrases(); ++id) {
      if (mined.PhraseText(id) != ToLower(spec.phrase.text)) continue;
      for (const paraphrase::ParaphraseEntry& e : mined.Entries(id)) {
        if (std::find(accepted.begin(), accepted.end(), e.path) !=
            accepted.end()) {
          kept.push_back(e);
        }
      }
      break;
    }
    verified->AddPhrase(spec.phrase.text, std::move(kept));
  }
  verified->NormalizeConfidences();
}

}  // namespace datagen
}  // namespace ganswer
