#ifndef GANSWER_DATAGEN_NAME_POOLS_H_
#define GANSWER_DATAGEN_NAME_POOLS_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace ganswer {
namespace datagen {

/// \brief Deterministic name factories for the synthetic KB.
///
/// Names look like DBpedia IRI local names ("Elena_Varga",
/// "Copper_Harbor", "Silver_Lantern_(film)") and are generated from fixed
/// syllable/word pools so runs are reproducible from the seed and labels
/// are realistic enough to exercise entity linking (token overlap,
/// parenthetical disambiguators, shared base names across kinds).
class NamePools {
 public:
  explicit NamePools(uint64_t seed) : rng_(seed) {}

  /// "Firstname_Lastname", unique across calls.
  std::string PersonName();
  /// A fresh city base name ("Copper_Harbor").
  std::string CityName();
  /// A film title; when \p base is non-empty produces "base_(film)" to
  /// create label ambiguity with the base entity.
  std::string FilmName(const std::string& base = "");
  /// A team name derived from a city ("Copper_Harbor_76ers" style).
  std::string TeamName(const std::string& city);
  std::string CompanyName();
  std::string BandName();
  std::string BookName();
  std::string CountryName();
  std::string RiverName();
  std::string MountainName();
  std::string GameName();
  std::string ComicName();
  std::string CarName();
  std::string UniversityName(const std::string& city);
  std::string StateName();

  Rng& rng() { return rng_; }

 private:
  std::string Unique(std::string base);

  Rng rng_;
  std::vector<std::string> used_;
};

}  // namespace datagen
}  // namespace ganswer

#endif  // GANSWER_DATAGEN_NAME_POOLS_H_
