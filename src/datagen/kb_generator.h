#ifndef GANSWER_DATAGEN_KB_GENERATOR_H_
#define GANSWER_DATAGEN_KB_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace datagen {

/// \brief Generates the DBpedia-like synthetic knowledge graph.
///
/// The graph has two layers:
///
///  1. A hand-written seed with the entities of the paper's running example
///     and its QALD-3 sample questions (Antonio Banderas / Melanie Griffith
///     / the three "Philadelphia"s, Berlin's mayor, the Kennedy family for
///     "uncle of", ...), so the paper's examples run verbatim.
///  2. A procedural layer scaled by Options: families with spouse/hasChild/
///     hasGender structure (which is what makes multi-hop paths like
///     "uncle of" minable), films/teams/companies/rivers with the schema of
///     datagen/schema.h, plus deliberate label ambiguity (films and teams
///     named after cities) so entity linking faces the paper's
///     disambiguation problem everywhere.
class KbGenerator {
 public:
  struct Options {
    uint64_t seed = 42;
    size_t num_countries = 12;
    size_t num_states = 10;
    size_t num_cities = 80;
    size_t num_families = 220;    // couples; children are generated per family
    size_t num_films = 200;
    size_t num_teams = 20;
    size_t num_companies = 90;
    size_t num_bands = 30;
    size_t num_books = 80;
    size_t num_rivers = 10;
    size_t num_mountains = 8;
    size_t num_games = 25;
    size_t num_comics = 25;
    size_t num_cars = 40;
    /// Probability that a film/team reuses a city name (label ambiguity).
    double ambiguity_rate = 0.25;
  };

  /// The generated graph plus entity-name rosters for downstream
  /// generators (phrases, workload).
  struct GeneratedKb {
    rdf::RdfGraph graph;
    std::vector<std::string> people;
    std::vector<std::string> actors;
    std::vector<std::string> politicians;
    std::vector<std::string> writers;
    std::vector<std::string> athletes;
    std::vector<std::string> films;
    std::vector<std::string> cities;
    std::vector<std::string> countries;
    std::vector<std::string> states;
    std::vector<std::string> companies;
    std::vector<std::string> bands;
    std::vector<std::string> books;
    std::vector<std::string> teams;
    std::vector<std::string> rivers;
    std::vector<std::string> mountains;
    std::vector<std::string> games;
    std::vector<std::string> comics;
    std::vector<std::string> cars;
  };

  static StatusOr<GeneratedKb> Generate(const Options& options);
};

}  // namespace datagen
}  // namespace ganswer

#endif  // GANSWER_DATAGEN_KB_GENERATOR_H_
