#include "qa/semantic_relation.h"

#include <algorithm>

namespace ganswer {
namespace qa {

bool Embedding::Contains(int node) const {
  return std::binary_search(nodes.begin(), nodes.end(), node);
}

std::string SemanticRelation::ToString() const {
  return "<\"" + relation_text + "\", \"" + arg1_text + "\", \"" + arg2_text +
         "\">";
}

std::string ArgumentPhrase(const nlp::DependencyTree& tree, int node) {
  std::vector<int> parts{node};
  bool head_is_name =
      tree.node(node).token.pos == nlp::PosTag::kProperNoun ||
      tree.node(node).token.pos == nlp::PosTag::kNumber;
  for (int c : tree.node(node).children) {
    const std::string& rel = tree.node(c).relation;
    if (rel != nlp::dep::kNn && rel != nlp::dep::kAmod &&
        rel != nlp::dep::kNum) {
      continue;
    }
    // Inside a proper-name chunk, common-noun modifiers are appositive
    // class words ("the comic Doctor Valiant"), not part of the name.
    if (head_is_name) {
      nlp::PosTag pos = tree.node(c).token.pos;
      if (pos != nlp::PosTag::kProperNoun && pos != nlp::PosTag::kNumber) {
        continue;
      }
    }
    parts.push_back(c);
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (int p : parts) {
    if (!out.empty()) out += ' ';
    out += tree.node(p).token.text;
  }
  return out;
}

}  // namespace qa
}  // namespace ganswer
