#include "qa/semantic_query_graph.h"

#include <sstream>

namespace ganswer {
namespace qa {

int SemanticQueryGraph::VertexForNode(int tree_node) const {
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (vertices[i].tree_node == tree_node) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> SemanticQueryGraph::IncidentEdges(int v) const {
  std::vector<int> out;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (edges[i].from == v || edges[i].to == v) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::string SemanticQueryGraph::ToString() const {
  std::ostringstream out;
  out << (form == QuestionForm::kAsk ? "ASK" : "SELECT") << " Q^S with "
      << vertices.size() << " vertices, " << edges.size() << " edges\n";
  for (size_t i = 0; i < vertices.size(); ++i) {
    const SqgVertex& v = vertices[i];
    out << "  v" << i << ": \"" << v.text << "\"";
    if (v.is_wh) out << " [wh]";
    if (v.is_target) out << " [target]";
    if (v.wildcard) out << " [wildcard]";
    out << " (" << v.candidates.size() << " candidates)\n";
  }
  for (const SqgEdge& e : edges) {
    out << "  v" << e.from << " --\"" << e.relation.relation_text << "\"-- v"
        << e.to;
    if (e.wildcard) out << " [wildcard]";
    out << " (" << e.candidates.size() << " candidates)\n";
  }
  return out.str();
}

}  // namespace qa
}  // namespace ganswer
