#include "qa/superlative.h"

#include <cstdlib>
#include <limits>

namespace ganswer {
namespace qa {

namespace {

struct SuperlativeRule {
  const char* adjective;   // lemma of the superlative form
  const char* noun;        // required modified-noun lemma, or nullptr = any
  const char* predicate;
  bool take_max;
};

// The superlative vocabulary of the QALD-style workload. "youngest" means
// the LATEST birth date, hence take_max.
const SuperlativeRule kRules[] = {
    {"youngest", nullptr, "birthDate", true},
    {"oldest", nullptr, "birthDate", false},
    {"highest", nullptr, "elevation", true},
    {"tallest", nullptr, "height", true},
    {"largest", nullptr, "populationTotal", true},
    {"biggest", nullptr, "populationTotal", true},
    {"smallest", nullptr, "populationTotal", false},
    {"most", "inhabitant", "populationTotal", true},
    {"most", "people", "populationTotal", true},
};

}  // namespace

SuperlativeResolver::SuperlativeResolver(const rdf::RdfGraph* graph)
    : graph_(graph) {}

std::optional<SuperlativeResolver::Detection> SuperlativeResolver::Detect(
    const nlp::DependencyTree& tree) const {
  for (int i = 0; i < static_cast<int>(tree.size()); ++i) {
    const nlp::DepNode& node = tree.node(i);
    if (node.token.pos != nlp::PosTag::kAdjective) continue;
    const std::string& adj = node.token.lemma;
    // The noun the adjective modifies (its amod parent).
    std::string noun;
    if (node.parent >= 0 && node.relation == nlp::dep::kAmod) {
      noun = tree.node(node.parent).token.lemma;
    }
    for (const SuperlativeRule& rule : kRules) {
      if (adj != rule.adjective) continue;
      if (rule.noun != nullptr && noun != rule.noun) continue;
      if (!graph_->Find(rule.predicate).has_value()) continue;
      Detection d;
      d.surface = rule.noun == nullptr ? adj : adj + " " + noun;
      d.value_predicate = rule.predicate;
      d.take_max = rule.take_max;
      return d;
    }
  }
  return std::nullopt;
}

bool SuperlativeResolver::DetectCount(const nlp::DependencyTree& tree) {
  for (int i = 0; i + 1 < static_cast<int>(tree.size()); ++i) {
    if (tree.node(i).token.lower == "how" &&
        tree.node(i + 1).token.lower == "many") {
      return true;
    }
  }
  return false;
}

std::vector<rdf::TermId> SuperlativeResolver::Apply(
    const Detection& detection,
    const std::vector<rdf::TermId>& candidates) const {
  auto pred = graph_->Find(detection.value_predicate);
  if (!pred.has_value()) return {};

  const rdf::TermDictionary& dict = graph_->dict();
  auto value_key = [&](rdf::TermId value) {
    // text() views the term arena without a terminator; strtod needs one.
    std::string text(dict.text(value));
    char* end = nullptr;
    double num = std::strtod(text.c_str(), &end);
    bool numeric = end != text.c_str() && *end == '\0';
    return std::pair<bool, double>(numeric, num);
  };

  std::vector<rdf::TermId> best;
  bool have_best = false;
  std::pair<bool, double> best_num{false, 0};
  std::string best_text;

  for (rdf::TermId c : candidates) {
    auto values = graph_->Objects(c, *pred);
    if (values.empty()) continue;
    // An entity with several values counts by its extreme one (numeric
    // compare when both sides parse, else lexicographic — widths differ
    // for populations, so string compare would mis-order them).
    rdf::TermId extreme = values[0];
    for (rdf::TermId v : values) {
      auto [vn, vv] = value_key(v);
      auto [en, ev] = value_key(extreme);
      bool better;
      if (vn && en) {
        better = detection.take_max ? vv > ev : vv < ev;
      } else {
        std::string_view a = dict.text(v);
        std::string_view b = dict.text(extreme);
        better = detection.take_max ? a > b : a < b;
      }
      if (better) extreme = v;
    }
    auto [numeric, num] = value_key(extreme);
    std::string_view text = dict.text(extreme);

    int cmp;  // -1: worse than best, 0: tie, 1: better
    if (!have_best) {
      cmp = 1;
    } else if (numeric && best_num.first) {
      cmp = num == best_num.second ? 0
            : (detection.take_max ? num > best_num.second
                                  : num < best_num.second)
                ? 1
                : -1;
    } else {
      cmp = text == best_text
                ? 0
                : (detection.take_max ? text > best_text : text < best_text)
                      ? 1
                      : -1;
    }
    if (cmp > 0) {
      best.clear();
      best.push_back(c);
      best_num = {numeric, num};
      best_text = text;
      have_best = true;
    } else if (cmp == 0) {
      best.push_back(c);
    }
  }
  return best;
}

}  // namespace qa
}  // namespace ganswer
