#ifndef GANSWER_QA_SEMANTIC_RELATION_H_
#define GANSWER_QA_SEMANTIC_RELATION_H_

#include <string>
#include <vector>

#include "nlp/dependency_tree.h"
#include "paraphrase/paraphrase_dictionary.h"

namespace ganswer {
namespace qa {

/// Sentinel phrase id for relations not backed by a dictionary phrase
/// (default prepositional relations, whose edge matches any predicate).
inline constexpr paraphrase::PhraseId kNoPhrase =
    static_cast<paraphrase::PhraseId>(-1);

/// An embedding of a relation phrase in the dependency tree (Definition 5):
/// a connected subtree each of whose nodes carries one word of the phrase
/// and which covers all phrase words.
struct Embedding {
  paraphrase::PhraseId phrase = kNoPhrase;
  int root = -1;                ///< Root node of the subtree.
  std::vector<int> nodes;      ///< All subtree node indices, sorted.

  bool Contains(int node) const;
};

/// A semantic relation <rel, arg1, arg2> (Definition 1), anchored to the
/// dependency tree it was extracted from.
struct SemanticRelation {
  std::string relation_text;   ///< Surface form, e.g. "married to".
  paraphrase::PhraseId phrase = kNoPhrase;
  Embedding embedding;
  int arg1_node = -1;
  int arg2_node = -1;
  std::string arg1_text;
  std::string arg2_text;

  std::string ToString() const;
};

/// The argument phrase for dependency-tree node \p node: the node word plus
/// its compound/modifier children (nn, amod, num), in sentence order — the
/// text handed to entity linking ("Francis Ford Coppola", "Argentine
/// films").
std::string ArgumentPhrase(const nlp::DependencyTree& tree, int node);

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_SEMANTIC_RELATION_H_
