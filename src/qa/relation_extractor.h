#ifndef GANSWER_QA_RELATION_EXTRACTOR_H_
#define GANSWER_QA_RELATION_EXTRACTOR_H_

#include <vector>

#include "nlp/dependency_tree.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "qa/semantic_relation.h"

namespace ganswer {
namespace qa {

/// \brief Algorithm 2: finds all relation-phrase embeddings (Definition 5)
/// in a dependency tree, using the paraphrase dictionary's word-level
/// inverted index.
///
/// For every tree node w, the candidate phrase list is the set of phrases
/// containing w's lemma; a depth-first probe descends only into children
/// whose lemma also belongs to the phrase, so the visited region is exactly
/// a connected subtree each of whose nodes carries a phrase word. A phrase
/// occurs at w when the probe covers all its words. Maximality (Def. 5
/// condition 2) and overlaps are then resolved by keeping largest
/// embeddings first and dropping embeddings that reuse already-claimed
/// nodes.
class RelationExtractor {
 public:
  struct Options {
    /// Also emit default relations for prepositions attaching a nominal to
    /// a nominal that no dictionary embedding claimed ("companies in
    /// Munich"): the relation phrase is the preposition and the edge later
    /// maps to any predicate with low confidence.
    bool default_prep_relations = true;
  };

  /// \p dict must outlive the extractor.
  explicit RelationExtractor(const paraphrase::ParaphraseDictionary* dict);
  RelationExtractor(const paraphrase::ParaphraseDictionary* dict,
                    Options options);

  /// All maximal, mutually node-disjoint embeddings in \p tree, largest
  /// first.
  std::vector<Embedding> FindEmbeddings(const nlp::DependencyTree& tree) const;

  /// Default prepositional relations not claimed by \p embeddings.
  std::vector<Embedding> FindDefaultPrepEmbeddings(
      const nlp::DependencyTree& tree,
      const std::vector<Embedding>& embeddings) const;

  const paraphrase::ParaphraseDictionary& dict() const { return *dict_; }

 private:
  const paraphrase::ParaphraseDictionary* dict_;
  Options options_;
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_RELATION_EXTRACTOR_H_
