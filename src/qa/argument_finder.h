#ifndef GANSWER_QA_ARGUMENT_FINDER_H_
#define GANSWER_QA_ARGUMENT_FINDER_H_

#include <optional>

#include "nlp/dependency_tree.h"
#include "qa/semantic_relation.h"

namespace ganswer {
namespace qa {

/// \brief Finds the two arguments of a relation-phrase embedding
/// (Sec. 4.1.2): first by the grammatical subject-like / object-like
/// relations around the embedding, then by the paper's four heuristic
/// recall rules, each individually toggleable (Table 9 ablates them).
class ArgumentFinder {
 public:
  struct Options {
    /// Rule 1: extend the embedding across light words (prepositions,
    /// auxiliaries, copulas) and re-check the new frontier.
    bool rule1_extend_light_words = true;
    /// Rule 2: when the embedding root is itself grammatically bound to its
    /// parent — as a subject/object (the head noun doubles as the answer
    /// argument: "all members of Prodigy") or as an rcmod/partmod modifier
    /// (the modified NP is the missing argument: "movies directed by X") —
    /// take that binding as arg1.
    bool rule2_root_parent = true;
    /// Rule 3: a subject-like sibling of the embedding root (child of its
    /// parent) becomes arg1 ("born in Vienna AND DIED in Berlin": the
    /// conjoined verb inherits "that" from its parent clause).
    bool rule3_parent_subject = true;
    /// Rule 4: fall back to the nearest wh-word, then to the first nominal
    /// inside the embedding.
    bool rule4_wh_fallback = true;
  };

  ArgumentFinder() : options_() {}
  explicit ArgumentFinder(Options options) : options_(options) {}

  /// Fills arg1/arg2 of \p rel (whose embedding must be set) from \p tree.
  /// Returns false when no arguments could be found even with the enabled
  /// rules — the paper then discards the relation.
  bool FindArguments(const nlp::DependencyTree& tree,
                     SemanticRelation* rel) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_ARGUMENT_FINDER_H_
