#ifndef GANSWER_QA_QUESTION_UNDERSTANDER_H_
#define GANSWER_QA_QUESTION_UNDERSTANDER_H_

#include <string_view>

#include "common/status.h"
#include "linking/entity_linker.h"
#include "nlp/dependency_parser.h"
#include "qa/argument_finder.h"
#include "qa/relation_extractor.h"
#include "qa/semantic_query_graph.h"

namespace ganswer {
namespace qa {

/// \brief The question-understanding stage (Sec. 4.1): natural language
/// question -> semantic query graph Q^S with candidate mappings.
///
/// Pipeline: dependency parse -> relation-phrase embeddings (Alg. 2) ->
/// argument finding (Sec. 4.1.2) -> coreference resolution -> Q^S assembly
/// (Sec. 4.1.3) -> candidate mapping of vertices (entity linking) and edges
/// (paraphrase dictionary). Ambiguity is deliberately preserved: every
/// phrase keeps its whole ranked candidate list, and disambiguation is left
/// to query evaluation.
class QuestionUnderstander {
 public:
  struct Options {
    ArgumentFinder::Options argument_options;
    RelationExtractor::Options extractor_options;
    /// Confidence assigned to wildcard (default-preposition) edges.
    double wildcard_edge_confidence = 0.3;
  };

  struct Timings {
    double parse_ms = 0;
    double extract_ms = 0;
    double build_ms = 0;
    double map_ms = 0;
    double TotalMs() const {
      return parse_ms + extract_ms + build_ms + map_ms;
    }
  };

  struct Result {
    nlp::DependencyTree tree;
    std::vector<SemanticRelation> relations;
    SemanticQueryGraph sqg;
    Timings timings;
  };

  /// All dependencies must outlive the understander.
  QuestionUnderstander(const nlp::DependencyParser* parser,
                       const paraphrase::ParaphraseDictionary* dict,
                       const linking::EntityLinker* linker);
  QuestionUnderstander(const nlp::DependencyParser* parser,
                       const paraphrase::ParaphraseDictionary* dict,
                       const linking::EntityLinker* linker, Options options);

  /// Runs the full understanding stage on one question.
  StatusOr<Result> Understand(std::string_view question) const;

  const Options& options() const { return options_; }

 private:
  void BuildSqg(Result* result) const;
  void MapCandidates(Result* result) const;
  void DetermineFormAndTarget(Result* result) const;

  const nlp::DependencyParser* parser_;
  const paraphrase::ParaphraseDictionary* dict_;
  const linking::EntityLinker* linker_;
  RelationExtractor extractor_;
  ArgumentFinder argument_finder_;
  Options options_;
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_QUESTION_UNDERSTANDER_H_
