#include "qa/ganswer.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/timer.h"

namespace ganswer {
namespace qa {

GAnswer::GAnswer(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
                 const paraphrase::ParaphraseDictionary* dict)
    : GAnswer(graph, lexicon, dict, Options()) {}

GAnswer::GAnswer(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
                 const paraphrase::ParaphraseDictionary* dict, Options options)
    : graph_(graph), options_(options) {
  parser_ = std::make_unique<nlp::DependencyParser>(*lexicon);
  // Snapshot-served startup: prebuilt indexes skip the per-vertex rebuild
  // passes entirely; the from-scratch path builds them as before.
  const linking::EntityIndex* entity_index = options.entity_index;
  if (entity_index == nullptr) {
    entity_index_ = std::make_unique<linking::EntityIndex>(*graph);
    entity_index = entity_index_.get();
  }
  linker_ = std::make_unique<linking::EntityLinker>(entity_index);
  understander_ = std::make_unique<QuestionUnderstander>(
      parser_.get(), dict, linker_.get(), options.understanding);
  match::TopKMatcher::Options matching = options.matching;
  if (matching.signatures == nullptr) {
    signatures_ = std::make_unique<rdf::SignatureIndex>(*graph);
    matching.signatures = signatures_.get();
  }
  if (matching.stats == nullptr) {
    if (options.graph_stats != nullptr) {
      matching.stats = options.graph_stats;
    } else {
      stats_ = std::make_unique<rdf::GraphStats>(
          rdf::GraphStats::Compute(*graph));
      matching.stats = stats_.get();
    }
  }
  matcher_ = std::make_unique<match::TopKMatcher>(graph, matching);
  superlatives_ = std::make_unique<SuperlativeResolver>(graph);
  if (options.shared_cache != nullptr) {
    cache_ = options.shared_cache;
  } else if (options.question_cache_capacity > 0) {
    cache_ = std::make_shared<ShardedLruCache<Response>>(
        ShardedLruCache<Response>::Options{options.question_cache_capacity,
                                           options.question_cache_shards});
  }
}

std::string GAnswer::CacheKey(std::string_view question) const {
  // Normalized question text: lowercase, runs of whitespace collapsed to
  // one space, leading/trailing whitespace dropped — "Who  likes X?" and
  // "who likes X?" share an entry. The snapshot identity prefix makes
  // entries from different offline data unservable by construction.
  std::string key = std::to_string(options_.snapshot_identity);
  key += '\x1f';
  const size_t prefix_len = key.size();
  bool pending_space = false;
  for (char c : question) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = key.size() > prefix_len;
      continue;
    }
    if (pending_space) {
      key += ' ';
      pending_space = false;
    }
    key += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return key;
}

std::shared_ptr<const GAnswer::Response> GAnswer::ProbeCache(
    std::string_view question) const {
  if (cache_ == nullptr) return nullptr;
  return cache_->Get(CacheKey(question), /*count_miss=*/false);
}

GAnswer::CacheStats GAnswer::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : CacheStats{};
}

void GAnswer::InvalidateCache() const {
  if (cache_ != nullptr) cache_->Clear();
}

match::QueryGraph GAnswer::ToQueryGraph(const SemanticQueryGraph& sqg) const {
  match::QueryGraph q;
  q.vertices.reserve(sqg.vertices.size());
  for (const SqgVertex& v : sqg.vertices) {
    match::QueryVertex qv;
    qv.candidates = v.candidates;
    qv.wildcard = v.wildcard;
    qv.wildcard_confidence = 1.0;
    q.vertices.push_back(std::move(qv));
  }
  q.edges.reserve(sqg.edges.size());
  for (const SqgEdge& e : sqg.edges) {
    match::QueryEdge qe;
    qe.from = e.from;
    qe.to = e.to;
    qe.candidates = e.candidates;
    qe.wildcard = e.wildcard;
    qe.wildcard_confidence =
        options_.understanding.wildcard_edge_confidence;
    q.edges.push_back(std::move(qe));
  }
  return q;
}

std::vector<StatusOr<GAnswer::Response>> GAnswer::BatchAnswer(
    const std::vector<std::string>& questions) const {
  std::vector<StatusOr<Response>> out(
      questions.size(),
      StatusOr<Response>(Status::Internal("question not processed")));
  ThreadPool::Run(options_.exec.threads, 0, questions.size(),
                  [&](size_t i) { out[i] = Ask(questions[i]); });
  return out;
}

StatusOr<GAnswer::Response> GAnswer::Ask(std::string_view question) const {
  if (cache_ == nullptr) return AskUncached(question);
  std::string key = CacheKey(question);
  if (std::shared_ptr<const Response> hit = cache_->Get(key)) {
    // Served entirely from the cache: neither understanding nor matching
    // ran, which the zeroed stage timers make observable.
    Response resp = *hit;
    resp.cache_hit = true;
    resp.understanding_ms = 0;
    resp.evaluation_ms = 0;
    return resp;
  }
  StatusOr<Response> computed = AskUncached(question);
  // A partial response reflects transient shard failures, not the
  // question: caching it would keep serving degraded answers after the
  // shards recover.
  if (computed.ok() && !computed->partial) cache_->Put(key, *computed);
  return computed;
}

StatusOr<GAnswer::Response> GAnswer::AskUncached(
    std::string_view question) const {
  Response resp;
  WallTimer timer;

  auto understood = understander_->Understand(question);
  if (!understood.ok()) {
    resp.failure = FailureStage::kParse;
    resp.understanding_ms = timer.ElapsedMillis();
    return resp;
  }
  resp.understanding = std::move(understood).value();
  resp.understanding_ms = timer.ElapsedMillis();

  const SemanticQueryGraph& sqg = resp.understanding.sqg;
  resp.is_ask = sqg.form == SemanticQueryGraph::QuestionForm::kAsk;

  if (sqg.vertices.empty()) {
    resp.failure = FailureStage::kNoRelations;
    return resp;
  }
  bool any_concrete = false;
  for (const SqgVertex& v : sqg.vertices) {
    if (!v.wildcard) any_concrete = true;
  }
  if (!any_concrete) {
    resp.failure = FailureStage::kNoLinking;
    return resp;
  }

  timer.Restart();
  match::QueryGraph query = ToQueryGraph(sqg);
  bool remote_handled = false;
  if (options_.remote_match) {
    RemoteMatchOutcome remote = options_.remote_match(query, options_.matching.k);
    if (remote.handled) {
      remote_handled = true;
      resp.remote_match = true;
      resp.partial = remote.partial;
      resp.matches = std::move(remote.matches);
    }
  }
  if (!remote_handled) {
    auto matches = matcher_->FindTopK(query, &resp.match_stats);
    if (!matches.ok()) {
      resp.evaluation_ms = timer.ElapsedMillis();
      resp.failure = FailureStage::kNoMatches;
      return resp;
    }
    resp.matches = std::move(matches).value();
  }
  resp.evaluation_ms = timer.ElapsedMillis();

  if (resp.is_ask) {
    resp.ask_result = !resp.matches.empty();
    if (resp.matches.empty()) resp.failure = FailureStage::kNoMatches;
    return resp;
  }

  // Distinct target bindings, best score first.
  int target = sqg.target_vertex >= 0 ? sqg.target_vertex : 0;
  std::unordered_map<rdf::TermId, double> best;
  for (const match::Match& m : resp.matches) {
    rdf::TermId u = m.assignment[target];
    if (u == rdf::kInvalidTerm) continue;
    auto [it, inserted] = best.emplace(u, m.score);
    if (!inserted) it->second = std::max(it->second, m.score);
  }
  resp.answers.reserve(best.size());
  for (const auto& [u, score] : best) {
    Answer a;
    a.term = u;
    a.text = graph_->dict().text(u);
    a.score = score;
    resp.answers.push_back(std::move(a));
  }
  std::sort(resp.answers.begin(), resp.answers.end(),
            [](const Answer& a, const Answer& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.text < b.text;
            });
  // Dominated interpretations are not reported; the paper's system returns
  // fewer than k answers when the remaining matches are low-confidence.
  if (options_.answer_score_window > 0 && !resp.answers.empty()) {
    double cutoff = resp.answers.front().score - options_.answer_score_window;
    std::erase_if(resp.answers,
                  [&](const Answer& a) { return a.score < cutoff; });
  }
  // EXTENSION: superlative post-processing (paper's aggregation gap).
  // Runs after the confidence window (the argmax must not range over
  // dominated interpretations' answers) but BEFORE the top-k cut (it must
  // see every candidate of the winning interpretation).
  if (options_.enable_superlatives && !resp.answers.empty()) {
    auto detection = superlatives_->Detect(resp.understanding.tree);
    if (detection.has_value()) {
      std::vector<rdf::TermId> candidates;
      candidates.reserve(resp.answers.size());
      for (const Answer& a : resp.answers) candidates.push_back(a.term);
      std::vector<rdf::TermId> kept =
          superlatives_->Apply(*detection, candidates);
      if (!kept.empty()) {
        std::erase_if(resp.answers, [&](const Answer& a) {
          return std::find(kept.begin(), kept.end(), a.term) == kept.end();
        });
        resp.superlative_applied = true;
      }
    }
  }
  // EXTENSION: count questions ("How many ...") report the cardinality of
  // the (un-truncated) answer set.
  if (options_.enable_superlatives && !resp.answers.empty() &&
      SuperlativeResolver::DetectCount(resp.understanding.tree)) {
    Answer count;
    count.term = rdf::kInvalidTerm;
    count.text = std::to_string(resp.answers.size());
    count.score = resp.answers.front().score;
    resp.answers.assign(1, std::move(count));
    resp.superlative_applied = true;
  }
  // The system reports at most k answers (the paper evaluates "all top-10
  // correct").
  if (resp.answers.size() > options_.matching.k) {
    resp.answers.resize(options_.matching.k);
  }

  if (resp.answers.empty()) resp.failure = FailureStage::kNoMatches;
  return resp;
}

}  // namespace qa
}  // namespace ganswer
