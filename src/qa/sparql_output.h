#ifndef GANSWER_QA_SPARQL_OUTPUT_H_
#define GANSWER_QA_SPARQL_OUTPUT_H_

#include <vector>

#include <optional>

#include "common/status.h"
#include "match/query_graph.h"
#include "qa/semantic_query_graph.h"
#include "rdf/sparql.h"

namespace ganswer {
namespace qa {

/// \brief Lowers subgraph matches back to SPARQL.
///
/// The paper's Algorithm 3 is literally titled "Generating Top-k SPARQL
/// Queries": every top-k match of Q^S corresponds to one concrete SPARQL
/// query — the disambiguated interpretation the match instantiates. The
/// gAnswer pipeline answers directly from the matches, but exposing the
/// queries matters for interoperability (run them on any SPARQL endpoint)
/// and for explaining answers.
///
/// Lowering rules per match:
///  - the target vertex stays a variable (plus an rdf:type pattern when the
///    match entered through a class candidate);
///  - every other vertex is frozen to its matched entity;
///  - each edge emits the candidate predicate/path that actually connects
///    the matched endpoints, in the connecting orientation, chaining fresh
///    variables for multi-hop paths.
class SparqlOutput {
 public:
  /// Lowers one match. Fails when the match does not actually instantiate
  /// the query graph (no candidate connects some matched edge).
  static StatusOr<rdf::SparqlQuery> MatchToSparql(
      const SemanticQueryGraph& sqg, const match::Match& match,
      const rdf::RdfGraph& graph);

  /// Lowers the top-k matches, skipping duplicates (two matches that differ
  /// only in the target binding lower to the same query).
  static std::vector<rdf::SparqlQuery> TopKQueries(
      const SemanticQueryGraph& sqg, const std::vector<match::Match>& matches,
      const rdf::RdfGraph& graph, size_t k);

  /// The candidate predicate path that actually connects the two matched
  /// endpoints of \p edge, oriented from \p u_from; nullopt when nothing
  /// connects them (the match would be invalid). Exposed for answer
  /// explanation.
  static std::optional<paraphrase::PredicatePath> ConnectingPath(
      const rdf::RdfGraph& graph, const SqgEdge& edge, rdf::TermId u_from,
      rdf::TermId u_to);
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_SPARQL_OUTPUT_H_
