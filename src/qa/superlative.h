#ifndef GANSWER_QA_SUPERLATIVE_H_
#define GANSWER_QA_SUPERLATIVE_H_

#include <optional>
#include <string>
#include <vector>

#include "nlp/dependency_tree.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace qa {

/// \brief EXTENSION (beyond the paper): superlative / aggregation
/// questions.
///
/// The paper's Table 10 reports 35% of its failures as aggregation
/// questions ("Who is the youngest player in the Premier League?") that
/// would need SPARQL with ORDER BY/OFFSET/LIMIT, and leaves them as future
/// work. This resolver closes that gap for the common superlative shapes:
///
///   - a superlative adjective modifying a noun phrase
///     ("youngest player", "highest mountain"), and
///   - "the most <noun>" ("the most inhabitants"),
///
/// by mapping the superlative onto a value predicate and an argmax/argmin
/// over the candidate answers the ordinary pipeline produced. It is off by
/// default (GAnswer::Options::enable_superlatives) so the paper-faithful
/// behavior — these questions fail — stays the default.
class SuperlativeResolver {
 public:
  struct Detection {
    std::string surface;          ///< "youngest", "most inhabitants".
    std::string value_predicate;  ///< e.g. "birthDate".
    bool take_max = true;         ///< argmax vs argmin of the value.
  };

  /// \p graph must be finalized and outlive the resolver.
  explicit SuperlativeResolver(const rdf::RdfGraph* graph);

  /// Scans the dependency tree for a superlative pattern with a known
  /// value-predicate mapping.
  std::optional<Detection> Detect(const nlp::DependencyTree& tree) const;

  /// True when the question is a count question ("How many X ..."): the
  /// COUNT flavour of the paper's aggregation category. The caller then
  /// reports the size of the answer set instead of the answers.
  static bool DetectCount(const nlp::DependencyTree& tree);

  /// Keeps, among \p candidates, those with the extreme value of the
  /// detection's predicate (ties kept; candidates without a value
  /// dropped). Values that parse as numbers compare numerically, others
  /// lexicographically (ISO dates order correctly).
  std::vector<rdf::TermId> Apply(const Detection& detection,
                                 const std::vector<rdf::TermId>& candidates) const;

 private:
  const rdf::RdfGraph* graph_;
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_SUPERLATIVE_H_
