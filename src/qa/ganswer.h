#ifndef GANSWER_QA_GANSWER_H_
#define GANSWER_QA_GANSWER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "linking/entity_index.h"
#include "linking/entity_linker.h"
#include "match/top_k_matcher.h"
#include "nlp/dependency_parser.h"
#include "qa/question_understander.h"
#include "qa/superlative.h"
#include "rdf/graph_stats.h"
#include "rdf/signature_index.h"

namespace ganswer {
namespace qa {

/// \brief The complete RDF Q/A system of the paper: graph data-driven
/// natural-language question answering.
///
/// Offline inputs: a finalized RDF graph and a paraphrase dictionary D
/// (mined by paraphrase::DictionaryBuilder, Algorithm 1). Online, Ask()
/// runs the two stages — question understanding (semantic query graph with
/// ambiguous candidate lists) and query evaluation (top-k subgraph matching
/// with TA-style termination) — and disambiguation falls out of the
/// matching, as the paper's title promises.
class GAnswer {
 public:
  struct Response;  // defined below; Options::shared_cache refers to it

  /// What a remote (scatter-gather) matching tier returned for one query.
  /// `handled == false` means the remote tier declined — the query was not
  /// scatter-safe or every shard failed — and the local matcher runs
  /// instead, so remote serving degrades to exact local answers, never to
  /// an error.
  struct RemoteMatchOutcome {
    bool handled = false;
    /// Some shards answered and some failed: the match list may be
    /// incomplete. Partial responses are reported but never cached.
    bool partial = false;
    std::vector<match::Match> matches;
  };

  /// Pluggable replacement for the local TopKMatcher call — the seam the
  /// sharded serving tier (server/shard_client.h) hooks into. Receives the
  /// fully-built query graph (candidate confidences included, so scoring
  /// is caller-independent) and the configured k. Must be thread-safe:
  /// concurrent Ask() calls invoke it concurrently.
  using RemoteMatchFn = std::function<RemoteMatchOutcome(
      const match::QueryGraph& query, size_t k)>;

  struct Options {
    QuestionUnderstander::Options understanding;
    match::TopKMatcher::Options matching;
    /// Answers scoring more than this below the best answer are not
    /// reported: with Definition 6 log-scores, a gap of log(1.35) means the
    /// interpretation is at least 35% less confident. 0 disables.
    double answer_score_window = 0.3;
    /// EXTENSION (off by default = paper behavior): resolve superlative /
    /// aggregation questions ("youngest player in ...") by argmax/argmin
    /// post-processing over the matched answers (see qa/superlative.h).
    bool enable_superlatives = false;
    /// Parallelism for BatchAnswer: questions fan out across a thread pool,
    /// each answered by an independent Ask() over the shared read-only
    /// graph, dictionary and indexes. Per-question matching parallelism is
    /// controlled separately via matching.exec; batch-parallel callers
    /// usually pin matching.exec.threads = 1 to avoid oversubscription.
    ExecutionOptions exec;
    /// Question-result cache capacity (entries). 0 disables the cache (the
    /// default, preserving per-call behavior). When on, Ask() first probes
    /// a sharded LRU keyed by the normalized question text and a hit is
    /// served without running understanding or matching.
    size_t question_cache_capacity = 0;
    /// 0 = derive the shard count from the CPU topology (see
    /// common/lru_cache.h — power of two, scales with available cores).
    size_t question_cache_shards = 0;
    /// Identity of the offline data this system serves (use the snapshot
    /// fingerprint, store::Snapshot::fingerprint). Mixed into every cache
    /// key, so entries cached against different snapshot contents can never
    /// be served — the cache is invalidated by snapshot identity.
    uint64_t snapshot_identity = 0;
    /// Prebuilt entity index from a loaded snapshot; must be built over
    /// *graph and outlive the system. When null the constructor builds one
    /// (the from-scratch path). The analogous prebuilt SignatureIndex is
    /// passed via matching.signatures.
    const linking::EntityIndex* entity_index = nullptr;
    /// Prebuilt graph statistics (rdf/graph_stats.h) steering candidate
    /// build and matcher plan order; must describe *graph and outlive the
    /// system. When null the constructor computes them. Ordering-only: the
    /// ranked answers are identical whatever statistics source is used.
    const rdf::GraphStats* graph_stats = nullptr;
    /// A question cache shared with other GAnswer instances (the live
    /// serving tier shares one cache across epoch views; stale-epoch
    /// entries are unreachable because snapshot_identity is part of every
    /// key and age out by LRU). When set it overrides
    /// question_cache_capacity/shards.
    std::shared_ptr<ShardedLruCache<Response>> shared_cache;
    /// When set, Ask() offers each query graph to this remote matching
    /// tier first and only runs the local matcher when the tier declines
    /// (RemoteMatchOutcome::handled == false). Understanding, answer
    /// extraction and caching are unchanged either way.
    RemoteMatchFn remote_match;
  };

  /// Why a question produced no answers; used by failure analysis
  /// (Table 10).
  enum class FailureStage {
    kNone,             ///< Answers produced.
    kParse,            ///< Dependency parse failed.
    kNoRelations,      ///< No semantic relation extracted and no fallback.
    kNoLinking,        ///< Every vertex unlinkable (all wildcards).
    kNoMatches,        ///< Q^S built but no subgraph match found.
  };

  struct Answer {
    rdf::TermId term = rdf::kInvalidTerm;
    std::string text;
    double score = 0.0;
  };

  struct Response {
    bool is_ask = false;
    bool ask_result = false;
    /// True when this response was served from the question cache without
    /// invoking understanding or matching (the stage timers then measure
    /// only the lookup, ≈ 0).
    bool cache_hit = false;
    /// Set when the superlative extension rewrote the answer set.
    bool superlative_applied = false;
    /// True when matching was served by the remote tier (Options::
    /// remote_match handled the query) rather than the local matcher.
    bool remote_match = false;
    /// True when the remote tier answered with incomplete shard coverage;
    /// such responses are returned to the caller but never cached.
    bool partial = false;
    /// Distinct bindings of the target vertex, best score first.
    std::vector<Answer> answers;
    /// The underlying top-k subgraph matches.
    std::vector<match::Match> matches;
    QuestionUnderstander::Result understanding;
    FailureStage failure = FailureStage::kNone;
    double understanding_ms = 0;
    double evaluation_ms = 0;
    double TotalMs() const { return understanding_ms + evaluation_ms; }
    match::TopKMatcher::RunStats match_stats;
  };

  /// Hit/miss counters of the question cache, cumulative for the system.
  using CacheStats = ShardedLruCache<Response>::Stats;

  /// \p graph (finalized), \p lexicon and \p dict must outlive the system.
  GAnswer(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
          const paraphrase::ParaphraseDictionary* dict);
  GAnswer(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
          const paraphrase::ParaphraseDictionary* dict, Options options);

  /// Answers one natural-language question. Thread-safe: the pipeline is
  /// stateless over the shared read-only inputs, so concurrent Ask() calls
  /// are allowed (BatchAnswer relies on this).
  StatusOr<Response> Ask(std::string_view question) const;

  /// Answers a batch of questions; result i corresponds to questions[i],
  /// identical to calling Ask(questions[i]) serially. With
  /// options().exec.threads != 1 the questions fan out across a thread
  /// pool — the QPS entry point the throughput benches measure.
  std::vector<StatusOr<Response>> BatchAnswer(
      const std::vector<std::string>& questions) const;

  /// Builds the matcher-facing query graph from an understood question.
  /// Exposed for benchmarks that time the stages separately.
  match::QueryGraph ToQueryGraph(const SemanticQueryGraph& sqg) const;

  /// Probes the question cache without ever running understanding or
  /// matching: the stored Response on a hit (cache_hit is false on the
  /// stored copy — the caller decides how to mark it), nullptr on a miss
  /// or when the cache is off. A hit counts in cache_stats() and promotes
  /// the entry exactly like an Ask() hit; a miss is NOT counted, because
  /// the expected follow-up Ask() records it. This is the serving tier's
  /// cached fast path: hits are serialized on the event-loop thread and
  /// never enter the worker queue.
  std::shared_ptr<const Response> ProbeCache(std::string_view question) const;

  /// Cumulative question-cache counters (all zero when the cache is off).
  CacheStats cache_stats() const;
  /// Drops every cached response; call after the underlying offline data
  /// changes identity. Thread-safe.
  void InvalidateCache() const;
  /// The cache key Ask() uses for \p question: lowercased, whitespace-
  /// collapsed, prefixed with the snapshot identity.
  std::string CacheKey(std::string_view question) const;

  const rdf::RdfGraph& graph() const { return *graph_; }
  const QuestionUnderstander& understander() const { return *understander_; }
  const Options& options() const { return options_; }

 private:
  /// The uncached pipeline behind Ask(): understanding + matching.
  StatusOr<Response> AskUncached(std::string_view question) const;

  const rdf::RdfGraph* graph_;
  Options options_;
  std::unique_ptr<nlp::DependencyParser> parser_;
  std::unique_ptr<linking::EntityIndex> entity_index_;
  std::unique_ptr<linking::EntityLinker> linker_;
  std::unique_ptr<QuestionUnderstander> understander_;
  std::unique_ptr<match::TopKMatcher> matcher_;
  std::unique_ptr<SuperlativeResolver> superlatives_;
  std::unique_ptr<rdf::SignatureIndex> signatures_;
  std::unique_ptr<rdf::GraphStats> stats_;
  /// Online-path result cache; null when question_cache_capacity == 0 and
  /// no shared cache was supplied. Possibly shared across systems (live
  /// epoch views). Mutable: Ask() is logically const and the cache is
  /// internally locked.
  mutable std::shared_ptr<ShardedLruCache<Response>> cache_;
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_GANSWER_H_
