#include "qa/relation_extractor.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace ganswer {
namespace qa {

namespace {

bool IsNominal(const nlp::Token& t) {
  return t.pos == nlp::PosTag::kNoun || t.pos == nlp::PosTag::kProperNoun;
}

}  // namespace

RelationExtractor::RelationExtractor(
    const paraphrase::ParaphraseDictionary* dict)
    : RelationExtractor(dict, Options()) {}

RelationExtractor::RelationExtractor(
    const paraphrase::ParaphraseDictionary* dict, Options options)
    : dict_(dict), options_(options) {}

std::vector<Embedding> RelationExtractor::FindEmbeddings(
    const nlp::DependencyTree& tree) const {
  std::vector<Embedding> found;
  int n = static_cast<int>(tree.size());

  for (int root = 0; root < n; ++root) {
    const std::string& root_lemma = tree.node(root).token.lemma;
    for (paraphrase::PhraseId pid : dict_->PhrasesContaining(root_lemma)) {
      const std::vector<std::string>& words = dict_->PhraseLemmas(pid);
      std::set<std::string> want(words.begin(), words.end());

      // Probe: DFS from root, descending only into nodes whose lemma is a
      // phrase word (Algorithm 2's PL-intersection pruning).
      std::set<std::string> covered;
      std::vector<int> nodes;
      auto dfs = [&](auto&& self, int w) -> void {
        covered.insert(tree.node(w).token.lemma);
        nodes.push_back(w);
        for (int c : tree.node(w).children) {
          if (want.count(tree.node(c).token.lemma)) self(self, c);
        }
      };
      dfs(dfs, root);

      if (covered.size() == want.size()) {
        Embedding e;
        e.phrase = pid;
        e.root = root;
        std::sort(nodes.begin(), nodes.end());
        e.nodes = std::move(nodes);
        found.push_back(std::move(e));
      }
    }
  }

  // Maximality + overlap resolution: prefer embeddings covering more nodes
  // (and, at equal size, more phrase words); an embedding that reuses a
  // node already claimed by a kept embedding is dropped. This both
  // implements Def. 5 condition 2 (an embedding strictly inside a larger
  // one loses) and guarantees each tree node contributes to one relation.
  std::sort(found.begin(), found.end(), [&](const Embedding& a,
                                            const Embedding& b) {
    if (a.nodes.size() != b.nodes.size()) {
      return a.nodes.size() > b.nodes.size();
    }
    if (a.root != b.root) return a.root < b.root;
    return a.phrase < b.phrase;
  });
  std::vector<Embedding> kept;
  std::unordered_set<int> claimed;
  for (Embedding& e : found) {
    bool overlaps = std::any_of(e.nodes.begin(), e.nodes.end(),
                                [&](int w) { return claimed.count(w) > 0; });
    if (overlaps) continue;
    for (int w : e.nodes) claimed.insert(w);
    kept.push_back(std::move(e));
  }
  return kept;
}

std::vector<Embedding> RelationExtractor::FindDefaultPrepEmbeddings(
    const nlp::DependencyTree& tree,
    const std::vector<Embedding>& embeddings) const {
  std::vector<Embedding> out;
  if (!options_.default_prep_relations) return out;

  std::unordered_set<int> claimed;
  for (const Embedding& e : embeddings) {
    claimed.insert(e.nodes.begin(), e.nodes.end());
  }

  int n = static_cast<int>(tree.size());
  for (int i = 0; i < n; ++i) {
    const nlp::DepNode& node = tree.node(i);
    if (node.token.pos != nlp::PosTag::kPreposition) continue;
    if (claimed.count(i)) continue;
    if (node.parent < 0) continue;
    // Nominal-attached preposition with a nominal object, neither claimed:
    // "companies in Munich" -> default relation "in".
    if (!IsNominal(tree.node(node.parent).token)) continue;
    int pobj = -1;
    for (int c : node.children) {
      if (tree.node(c).relation == nlp::dep::kPobj &&
          IsNominal(tree.node(c).token)) {
        pobj = c;
        break;
      }
    }
    if (pobj < 0) continue;
    Embedding e;
    e.phrase = kNoPhrase;
    e.root = i;
    e.nodes = {i};
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace qa
}  // namespace ganswer
