#include "qa/explain.h"

#include <sstream>

#include "paraphrase/predicate_path.h"
#include "qa/sparql_output.h"

namespace ganswer {
namespace qa {

StatusOr<std::string> ExplainQueryPlans(
    const rdf::SparqlEngine& engine,
    const std::vector<rdf::SparqlQuery>& queries) {
  std::ostringstream out;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto plan = engine.ExplainPlan(queries[i]);
    if (!plan.ok()) return plan.status();
    out << "-- interpretation " << (i + 1) << " of " << queries.size()
        << " --\n";
    out << *plan;
    if (!plan->empty() && plan->back() != '\n') out << "\n";
  }
  return out.str();
}

StatusOr<std::string> AnswerExplainer::Explain(const SemanticQueryGraph& sqg,
                                               const match::Match& match) const {
  if (match.assignment.size() != sqg.vertices.size()) {
    return Status::InvalidArgument("match/query size mismatch");
  }
  const rdf::TermDictionary& dict = graph_->dict();
  std::ostringstream out;

  // Header: the argument bindings.
  for (size_t v = 0; v < sqg.vertices.size(); ++v) {
    rdf::TermId u = match.assignment[v];
    if (u == rdf::kInvalidTerm) continue;
    out << "\"" << sqg.vertices[v].text << "\" = <" << dict.text(u) << ">";
    if (static_cast<int>(v) == sqg.target_vertex) out << "   [answer]";
    out << "\n";
  }

  // Witness triples per edge.
  for (const SqgEdge& edge : sqg.edges) {
    rdf::TermId uf = match.assignment[edge.from];
    rdf::TermId ut = match.assignment[edge.to];
    if (uf == rdf::kInvalidTerm || ut == rdf::kInvalidTerm) continue;
    auto path = SparqlOutput::ConnectingPath(*graph_, edge, uf, ut);
    if (!path.has_value()) {
      return Status::Internal("match does not instantiate edge \"" +
                              edge.relation.relation_text + "\"");
    }
    auto witness = paraphrase::PathWitness(*graph_, uf, ut, *path);
    if (!witness.has_value()) {
      return Status::Internal("no witness chain for edge \"" +
                              edge.relation.relation_text + "\"");
    }
    for (size_t s = 0; s < path->steps.size(); ++s) {
      rdf::TermId a = (*witness)[s];
      rdf::TermId b = (*witness)[s + 1];
      const paraphrase::PathStep& step = path->steps[s];
      rdf::TermId subj = step.forward ? a : b;
      rdf::TermId obj = step.forward ? b : a;
      out << "  <" << dict.text(subj) << "> --"
          << dict.text(step.predicate) << "--> <" << dict.text(obj) << ">";
      if (s == 0) out << "   [" << edge.relation.relation_text << "]";
      out << "\n";
    }
  }

  // Type facts for class-matched vertices.
  for (size_t v = 0; v < sqg.vertices.size(); ++v) {
    rdf::TermId u = match.assignment[v];
    if (u == rdf::kInvalidTerm) continue;
    for (const linking::LinkCandidate& c : sqg.vertices[v].candidates) {
      if (c.is_class && graph_->IsInstanceOf(u, c.vertex)) {
        out << "  <" << dict.text(u) << "> rdf:type <" << dict.text(c.vertex)
            << ">\n";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace qa
}  // namespace ganswer
