#include "qa/argument_finder.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace ganswer {
namespace qa {

namespace {

using nlp::DependencyTree;

bool IsNominal(const nlp::Token& t) {
  return t.pos == nlp::PosTag::kNoun || t.pos == nlp::PosTag::kProperNoun;
}

bool IsArgumentish(const nlp::Token& t) {
  return IsNominal(t) || t.pos == nlp::PosTag::kWhWord ||
         t.pos == nlp::PosTag::kPronoun || t.pos == nlp::PosTag::kNumber;
}

// Among candidates, the one closest to the embedding root in the sentence
// (the paper: "we choose the nearest one to rel").
int Nearest(const std::vector<int>& candidates, int root) {
  int best = -1;
  int best_dist = 1 << 30;
  for (int c : candidates) {
    int dist = std::abs(c - root);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

}  // namespace

bool ArgumentFinder::FindArguments(const DependencyTree& tree,
                                   SemanticRelation* rel) const {
  const Embedding& emb = rel->embedding;
  rel->arg1_node = -1;
  rel->arg2_node = -1;

  // Default prepositional relation: the preposition's nominal parent and
  // its pobj child are the arguments by construction.
  if (rel->phrase == kNoPhrase && emb.nodes.size() == 1) {
    int prep = emb.root;
    const nlp::DepNode& node = tree.node(prep);
    rel->arg1_node = node.parent;
    for (int c : node.children) {
      if (tree.node(c).relation == nlp::dep::kPobj) {
        rel->arg2_node = c;
        break;
      }
    }
    if (rel->arg1_node < 0 || rel->arg2_node < 0) return false;
    rel->arg1_text = ArgumentPhrase(tree, rel->arg1_node);
    rel->arg2_text = ArgumentPhrase(tree, rel->arg2_node);
    return true;
  }

  std::vector<int> frontier = emb.nodes;  // nodes whose children we inspect

  // Base step: subject-like / object-like children just outside the
  // embedding.
  auto collect = [&](std::vector<int>* subj, std::vector<int>* obj) {
    for (int w : frontier) {
      for (int c : tree.node(w).children) {
        if (emb.Contains(c)) continue;
        if (std::find(frontier.begin(), frontier.end(), c) != frontier.end()) {
          continue;
        }
        const std::string& r = tree.node(c).relation;
        if (!IsArgumentish(tree.node(c).token)) continue;
        if (nlp::dep::IsSubjectLike(r)) subj->push_back(c);
        if (nlp::dep::IsObjectLike(r)) obj->push_back(c);
      }
    }
  };

  std::vector<int> subj, obj;
  collect(&subj, &obj);
  if (!subj.empty()) rel->arg1_node = Nearest(subj, emb.root);
  if (!obj.empty()) rel->arg2_node = Nearest(obj, emb.root);

  // Rule 1: extend the embedding with light words (prepositions,
  // auxiliaries, copulas) hanging off it, then re-run the base step on the
  // extended frontier.
  if (options_.rule1_extend_light_words &&
      (rel->arg1_node < 0 || rel->arg2_node < 0)) {
    bool grew = true;
    while (grew) {
      grew = false;
      for (size_t fi = 0; fi < frontier.size(); ++fi) {
        for (int c : tree.node(frontier[fi]).children) {
          if (std::find(frontier.begin(), frontier.end(), c) !=
              frontier.end()) {
            continue;
          }
          if (nlp::dep::IsLightRelation(tree.node(c).relation)) {
            frontier.push_back(c);
            grew = true;
          }
        }
      }
    }
    subj.clear();
    obj.clear();
    collect(&subj, &obj);
    if (rel->arg1_node < 0 && !subj.empty()) {
      rel->arg1_node = Nearest(subj, emb.root);
    }
    if (rel->arg2_node < 0 && !obj.empty()) {
      int cand = Nearest(obj, emb.root);
      if (cand != rel->arg1_node) rel->arg2_node = cand;
    }
  }

  // Rule 2: the embedding root's own attachment supplies an argument — the
  // root itself when it is a subject/object of its parent ("all members of
  // Prodigy": 'members' is the answer argument), or the modified NP when
  // the embedding is a reduced/full relative clause ("movies directed by
  // X").
  if (options_.rule2_root_parent &&
      (rel->arg1_node < 0 || rel->arg2_node < 0)) {
    const nlp::DepNode& root_node = tree.node(emb.root);
    int arg = -1;
    if (root_node.parent >= 0) {
      if (nlp::dep::IsSubjectLike(root_node.relation) ||
          nlp::dep::IsObjectLike(root_node.relation)) {
        arg = emb.root;
      } else if (root_node.relation == nlp::dep::kRcmod ||
                 root_node.relation == nlp::dep::kPartmod) {
        arg = root_node.parent;
      }
    }
    if (arg >= 0 && arg != rel->arg1_node && arg != rel->arg2_node) {
      if (rel->arg1_node < 0) {
        rel->arg1_node = arg;
      } else if (rel->arg2_node < 0) {
        rel->arg2_node = arg;
      }
    }
  }

  // Rule 3: a subject-like child of the embedding root's parent ("born in
  // Vienna and DIED in Berlin": the conjoined verb inherits the subject of
  // its parent verb).
  if (options_.rule3_parent_subject &&
      (rel->arg1_node < 0 || rel->arg2_node < 0)) {
    const nlp::DepNode& root_node = tree.node(emb.root);
    if (root_node.parent >= 0) {
      for (int c : tree.node(root_node.parent).children) {
        if (c == emb.root || emb.Contains(c)) continue;
        if (!nlp::dep::IsSubjectLike(tree.node(c).relation)) continue;
        if (c == rel->arg1_node || c == rel->arg2_node) continue;
        if (rel->arg1_node < 0) {
          rel->arg1_node = c;
        } else if (rel->arg2_node < 0) {
          rel->arg2_node = c;
        }
        break;
      }
    }
  }

  // Rule 4: nearest wh-word, then the first nominal inside the embedding.
  if (options_.rule4_wh_fallback &&
      (rel->arg1_node < 0 || rel->arg2_node < 0)) {
    std::vector<int> whs;
    for (int i = 0; i < static_cast<int>(tree.size()); ++i) {
      if (tree.node(i).token.pos == nlp::PosTag::kWhWord &&
          i != rel->arg1_node && i != rel->arg2_node) {
        whs.push_back(i);
      }
    }
    int wh = Nearest(whs, emb.root);
    if (wh >= 0) {
      if (rel->arg1_node < 0) {
        rel->arg1_node = wh;
      } else if (rel->arg2_node < 0) {
        rel->arg2_node = wh;
      }
    }
    if (rel->arg1_node < 0 || rel->arg2_node < 0) {
      for (int w : emb.nodes) {
        if (!IsNominal(tree.node(w).token)) continue;
        if (w == rel->arg1_node || w == rel->arg2_node) continue;
        if (rel->arg1_node < 0) {
          rel->arg1_node = w;
        } else if (rel->arg2_node < 0) {
          rel->arg2_node = w;
        }
        break;
      }
    }
  }

  if (rel->arg1_node < 0 || rel->arg2_node < 0) return false;
  rel->arg1_text = ArgumentPhrase(tree, rel->arg1_node);
  rel->arg2_text = ArgumentPhrase(tree, rel->arg2_node);
  return true;
}

}  // namespace qa
}  // namespace ganswer
