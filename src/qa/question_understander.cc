#include "qa/question_understander.h"

#include <algorithm>

#include "common/timer.h"
#include "nlp/coreference.h"

namespace ganswer {
namespace qa {

namespace {

const char* const kImperativeVerbs[] = {"give", "list", "show", "name",
                                        "tell"};

bool IsImperativeVerb(const std::string& lemma) {
  for (const char* v : kImperativeVerbs) {
    if (lemma == v) return true;
  }
  return false;
}

bool IsNominal(const nlp::Token& t) {
  return t.pos == nlp::PosTag::kNoun || t.pos == nlp::PosTag::kProperNoun;
}

}  // namespace

QuestionUnderstander::QuestionUnderstander(
    const nlp::DependencyParser* parser,
    const paraphrase::ParaphraseDictionary* dict,
    const linking::EntityLinker* linker)
    : QuestionUnderstander(parser, dict, linker, Options()) {}

QuestionUnderstander::QuestionUnderstander(
    const nlp::DependencyParser* parser,
    const paraphrase::ParaphraseDictionary* dict,
    const linking::EntityLinker* linker, Options options)
    : parser_(parser),
      dict_(dict),
      linker_(linker),
      extractor_(dict, options.extractor_options),
      argument_finder_(options.argument_options),
      options_(options) {}

StatusOr<QuestionUnderstander::Result> QuestionUnderstander::Understand(
    std::string_view question) const {
  Result result;
  WallTimer timer;

  auto tree = parser_->Parse(question);
  if (!tree.ok()) return tree.status();
  result.tree = std::move(tree).value();
  result.timings.parse_ms = timer.ElapsedMillis();

  // Relation extraction: dictionary embeddings first, default prepositional
  // relations for what remains.
  timer.Restart();
  std::vector<Embedding> embeddings = extractor_.FindEmbeddings(result.tree);
  std::vector<Embedding> defaults =
      extractor_.FindDefaultPrepEmbeddings(result.tree, embeddings);
  embeddings.insert(embeddings.end(), defaults.begin(), defaults.end());

  for (Embedding& emb : embeddings) {
    SemanticRelation rel;
    rel.phrase = emb.phrase;
    rel.embedding = emb;
    // Surface text of the relation: embedding words in sentence order.
    for (int w : emb.nodes) {
      if (!rel.relation_text.empty()) rel.relation_text += ' ';
      rel.relation_text += result.tree.node(w).token.text;
    }
    if (!argument_finder_.FindArguments(result.tree, &rel)) continue;
    if (rel.arg1_node == rel.arg2_node) continue;
    result.relations.push_back(std::move(rel));
  }
  result.timings.extract_ms = timer.ElapsedMillis();

  // Coreference resolution: relative-pronoun arguments are identified with
  // the noun phrase they modify, so relations come to share vertices
  // (Sec. 4.1.3).
  timer.Restart();
  for (SemanticRelation& rel : result.relations) {
    for (int* arg : {&rel.arg1_node, &rel.arg2_node}) {
      int antecedent = nlp::CoreferenceResolver::Antecedent(result.tree, *arg);
      if (antecedent >= 0 && antecedent != *arg) {
        *arg = antecedent;
        std::string text = ArgumentPhrase(result.tree, antecedent);
        if (arg == &rel.arg1_node) {
          rel.arg1_text = text;
        } else {
          rel.arg2_text = text;
        }
      }
    }
  }
  BuildSqg(&result);
  DetermineFormAndTarget(&result);
  result.timings.build_ms = timer.ElapsedMillis();

  timer.Restart();
  MapCandidates(&result);
  result.timings.map_ms = timer.ElapsedMillis();
  return result;
}

void QuestionUnderstander::BuildSqg(Result* result) const {
  SemanticQueryGraph& sqg = result->sqg;

  auto vertex_for = [&](int node, const std::string& text) -> int {
    int existing = sqg.VertexForNode(node);
    if (existing >= 0) return existing;
    SqgVertex v;
    v.tree_node = node;
    v.text = text;
    v.is_wh = result->tree.node(node).token.pos == nlp::PosTag::kWhWord;
    v.is_wh_target = v.is_wh;
    // "which movies": a wh-determiner child makes this argument the
    // preferred answer variable, while the noun itself still constrains the
    // match by class.
    for (int c : result->tree.node(node).children) {
      if (result->tree.node(c).token.pos == nlp::PosTag::kWhWord) {
        v.is_wh_target = true;
      }
    }
    sqg.vertices.push_back(std::move(v));
    return static_cast<int>(sqg.vertices.size()) - 1;
  };

  for (const SemanticRelation& rel : result->relations) {
    SqgEdge edge;
    edge.from = vertex_for(rel.arg1_node, rel.arg1_text);
    edge.to = vertex_for(rel.arg2_node, rel.arg2_text);
    edge.relation = rel;
    if (edge.from == edge.to) continue;
    sqg.edges.push_back(std::move(edge));
  }

  if (!sqg.vertices.empty()) return;

  // No semantic relations ("Give me all Argentine films."): fall back to a
  // single-vertex query over the answer noun phrase. A wh-determined noun
  // ("Which city has the most inhabitants?") is the answer phrase even when
  // it is not the clause root.
  const nlp::DependencyTree& tree = result->tree;
  int answer_node = -1;
  for (int i = 0; i < static_cast<int>(tree.size()) && answer_node < 0; ++i) {
    if (!IsNominal(tree.node(i).token)) continue;
    for (int c : tree.node(i).children) {
      if (tree.node(c).token.pos == nlp::PosTag::kWhWord) {
        answer_node = i;
        break;
      }
    }
  }
  int root = tree.root();
  if (root >= 0 && IsImperativeVerb(tree.node(root).token.lemma)) {
    for (int c : tree.node(root).children) {
      if (tree.node(c).relation == nlp::dep::kDobj &&
          IsNominal(tree.node(c).token)) {
        answer_node = c;
        break;
      }
    }
  }
  if (answer_node < 0 && root >= 0 && IsNominal(tree.node(root).token)) {
    answer_node = root;  // copular fragment: "the capital of Canada"
  }
  if (answer_node < 0) {
    for (int i = 0; i < static_cast<int>(tree.size()); ++i) {
      if (IsNominal(tree.node(i).token)) {
        answer_node = i;
        break;
      }
    }
  }
  if (answer_node >= 0) {
    vertex_for(answer_node, ArgumentPhrase(tree, answer_node));
  }
}

void QuestionUnderstander::DetermineFormAndTarget(Result* result) const {
  SemanticQueryGraph& sqg = result->sqg;
  const nlp::DependencyTree& tree = result->tree;

  bool has_wh = false;
  for (size_t i = 0; i < tree.size(); ++i) {
    if (tree.node(i).token.pos == nlp::PosTag::kWhWord) has_wh = true;
  }
  bool aux_initial =
      !tree.empty() && tree.node(0).token.pos == nlp::PosTag::kAux;
  sqg.form = (!has_wh && aux_initial) ? SemanticQueryGraph::QuestionForm::kAsk
                                      : SemanticQueryGraph::QuestionForm::kSelect;

  if (sqg.form == SemanticQueryGraph::QuestionForm::kAsk) {
    sqg.target_vertex = -1;
    return;
  }

  // 1) A wh vertex ("who", or "which movies" via wh-determiner) is the
  // target.
  for (size_t i = 0; i < sqg.vertices.size(); ++i) {
    if (sqg.vertices[i].is_wh_target) {
      sqg.target_vertex = static_cast<int>(i);
      sqg.vertices[i].is_target = true;
      return;
    }
  }
  // 2) The object of an imperative ("Give me all X ...").
  int root = tree.root();
  if (root >= 0 && IsImperativeVerb(tree.node(root).token.lemma)) {
    for (int c : tree.node(root).children) {
      if (tree.node(c).relation != nlp::dep::kDobj) continue;
      int v = sqg.VertexForNode(c);
      if (v >= 0) {
        sqg.target_vertex = v;
        sqg.vertices[v].is_target = true;
        return;
      }
    }
  }
  // 3) A vertex that doubles as a relation-phrase head (Rule 2: "all
  // members of Prodigy") — its node lies inside its own edge's embedding.
  for (const SqgEdge& e : sqg.edges) {
    for (int v : {e.from, e.to}) {
      if (e.relation.embedding.Contains(sqg.vertices[v].tree_node)) {
        sqg.target_vertex = v;
        sqg.vertices[v].is_target = true;
        return;
      }
    }
  }
  // 4) Fall back to the first vertex.
  if (!sqg.vertices.empty()) {
    sqg.target_vertex = 0;
    sqg.vertices[0].is_target = true;
  }
}

void QuestionUnderstander::MapCandidates(Result* result) const {
  SemanticQueryGraph& sqg = result->sqg;

  for (SqgVertex& v : sqg.vertices) {
    if (v.is_wh) {
      v.wildcard = true;  // wh-words match all entities and classes
      continue;
    }
    v.candidates = linker_->Link(v.text);

    // A vertex whose node sits inside a relation-phrase embedding ("all
    // MEMBERS of Prodigy") is an answer variable; only a class reading can
    // constrain it, entity readings are spurious.
    bool inside_embedding = false;
    for (const SqgEdge& e : sqg.edges) {
      if ((e.from == sqg.VertexForNode(v.tree_node) ||
           e.to == sqg.VertexForNode(v.tree_node)) &&
          e.relation.embedding.Contains(v.tree_node)) {
        inside_embedding = true;
      }
    }
    if (inside_embedding) {
      std::erase_if(v.candidates,
                    [](const linking::LinkCandidate& c) { return !c.is_class; });
    }
    if (v.candidates.empty()) v.wildcard = true;
  }

  for (SqgEdge& e : sqg.edges) {
    if (e.relation.phrase == kNoPhrase) {
      e.wildcard = true;
      continue;
    }
    e.candidates = dict_->Entries(e.relation.phrase);
    if (e.candidates.empty()) e.wildcard = true;
  }
}

}  // namespace qa
}  // namespace ganswer
