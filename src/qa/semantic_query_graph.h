#ifndef GANSWER_QA_SEMANTIC_QUERY_GRAPH_H_
#define GANSWER_QA_SEMANTIC_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "linking/entity_linker.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "qa/semantic_relation.h"

namespace ganswer {
namespace qa {

/// A vertex of the semantic query graph: one argument (Definition 2).
struct SqgVertex {
  int tree_node = -1;        ///< Anchor node in the dependency tree.
  std::string text;          ///< Argument phrase ("Philadelphia", "actor").
  bool is_wh = false;        ///< wh-word argument: matches everything.
  /// Preferred answer variable: a wh-word argument or an argument with a
  /// wh-determiner ("which movies").
  bool is_wh_target = false;
  bool is_target = false;    ///< The answer variable of the question.
  /// Candidate entities/classes with confidences (C_v). Empty plus
  /// wildcard==true means "match any vertex".
  std::vector<linking::LinkCandidate> candidates;
  bool wildcard = false;
};

/// An edge of the semantic query graph: one semantic relation.
struct SqgEdge {
  int from = -1;             ///< SqgVertex index of arg1.
  int to = -1;               ///< SqgVertex index of arg2.
  SemanticRelation relation;
  /// Candidate predicates / predicate paths with confidences (C_edge),
  /// oriented from arg1 to arg2. Empty plus wildcard==true means "match
  /// any single predicate in either direction".
  std::vector<paraphrase::ParaphraseEntry> candidates;
  bool wildcard = false;
};

/// \brief The semantic query graph Q^S (Definition 2): the structural
/// representation of the question's intention. Vertices carry argument
/// phrases, edges carry relation phrases; semantic relations sharing an
/// argument (directly or through coreference) share the vertex.
struct SemanticQueryGraph {
  enum class QuestionForm { kSelect, kAsk };

  std::vector<SqgVertex> vertices;
  std::vector<SqgEdge> edges;
  QuestionForm form = QuestionForm::kSelect;
  /// Index of the answer vertex (the wh / imperative-object variable);
  /// -1 for ASK questions with no variable.
  int target_vertex = -1;

  /// Vertex index anchored at dependency node \p tree_node, or -1.
  int VertexForNode(int tree_node) const;

  /// Edge indices incident to vertex \p v.
  std::vector<int> IncidentEdges(int v) const;

  std::string ToString() const;
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_SEMANTIC_QUERY_GRAPH_H_
