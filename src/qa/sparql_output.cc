#include "qa/sparql_output.h"

#include <algorithm>
#include <set>

#include "match/candidates.h"
#include "paraphrase/predicate_path.h"

namespace ganswer {
namespace qa {

namespace {

using paraphrase::PredicatePath;
using rdf::PatternTerm;
using rdf::TriplePattern;

}  // namespace

// The candidate path (and orientation, read from the 'from' endpoint) that
// connects the matched endpoints of this edge, best confidence first.
std::optional<PredicatePath> SparqlOutput::ConnectingPath(
    const rdf::RdfGraph& graph, const SqgEdge& edge, rdf::TermId u_from,
    rdf::TermId u_to) {
  if (edge.wildcard) {
    // Any direct predicate: emit the first one found, oriented as stored.
    for (const rdf::Edge& e : graph.OutEdges(u_from)) {
      if (e.neighbor == u_to) {
        return PredicatePath{{{e.predicate, true}}};
      }
    }
    for (const rdf::Edge& e : graph.InEdges(u_from)) {
      if (e.neighbor == u_to) {
        return PredicatePath{{{e.predicate, false}}};
      }
    }
    return std::nullopt;
  }
  for (const paraphrase::ParaphraseEntry& cand : edge.candidates) {
    if (cand.path.IsSinglePredicate()) {
      rdf::TermId p = cand.path.steps[0].predicate;
      if (graph.HasTriple(u_from, p, u_to)) {
        return PredicatePath{{{p, true}}};
      }
      if (graph.HasTriple(u_to, p, u_from)) {
        return PredicatePath{{{p, false}}};
      }
    } else {
      if (paraphrase::PathConnects(graph, u_from, u_to, cand.path)) {
        return cand.path;
      }
      PredicatePath reversed = cand.path.Reversed();
      if (paraphrase::PathConnects(graph, u_from, u_to, reversed)) {
        return reversed;
      }
    }
  }
  return std::nullopt;
}

StatusOr<rdf::SparqlQuery> SparqlOutput::MatchToSparql(
    const SemanticQueryGraph& sqg, const match::Match& match,
    const rdf::RdfGraph& graph) {
  if (match.assignment.size() != sqg.vertices.size()) {
    return Status::InvalidArgument("match/query size mismatch");
  }
  const rdf::TermDictionary& dict = graph.dict();
  rdf::SparqlQuery query;
  query.form = sqg.form == SemanticQueryGraph::QuestionForm::kAsk
                   ? rdf::SparqlQuery::Form::kAsk
                   : rdf::SparqlQuery::Form::kSelect;
  query.distinct = true;

  int target = sqg.target_vertex;
  std::vector<PatternTerm> terms(sqg.vertices.size());
  for (size_t v = 0; v < sqg.vertices.size(); ++v) {
    rdf::TermId u = match.assignment[v];
    bool is_target = static_cast<int>(v) == target;
    if (is_target || u == rdf::kInvalidTerm) {
      terms[v] = PatternTerm::Var("v" + std::to_string(v));
      // Type-constrain the variable when the vertex was matched through a
      // class candidate (Definition 3 condition 2).
      if (is_target && u != rdf::kInvalidTerm) {
        for (const linking::LinkCandidate& c : sqg.vertices[v].candidates) {
          if (c.is_class && graph.IsInstanceOf(u, c.vertex)) {
            TriplePattern tp;
            tp.subject = terms[v];
            tp.predicate = PatternTerm::Iri(std::string(rdf::kTypePredicate));
            tp.object = PatternTerm::Iri(std::string(dict.text(c.vertex)));
            query.patterns.push_back(std::move(tp));
            break;
          }
        }
      }
    } else {
      std::string text(dict.text(u));
      terms[v] = dict.IsLiteral(u) ? PatternTerm::Literal(std::move(text))
                                   : PatternTerm::Iri(std::move(text));
    }
  }

  for (size_t e = 0; e < sqg.edges.size(); ++e) {
    const SqgEdge& edge = sqg.edges[e];
    rdf::TermId uf = match.assignment[edge.from];
    rdf::TermId ut = match.assignment[edge.to];
    if (uf == rdf::kInvalidTerm || ut == rdf::kInvalidTerm) continue;
    auto path = ConnectingPath(graph, edge, uf, ut);
    if (!path.has_value()) {
      return Status::Internal(
          "match does not instantiate edge \"" +
          edge.relation.relation_text + "\"");
    }
    PatternTerm current = terms[edge.from];
    for (size_t s = 0; s < path->steps.size(); ++s) {
      PatternTerm next = (s + 1 == path->steps.size())
                             ? terms[edge.to]
                             : PatternTerm::Var("m" + std::to_string(e) + "_" +
                                                std::to_string(s));
      const paraphrase::PathStep& step = path->steps[s];
      TriplePattern tp;
      PatternTerm pred = PatternTerm::Iri(std::string(dict.text(step.predicate)));
      if (step.forward) {
        tp.subject = current;
        tp.predicate = pred;
        tp.object = next;
      } else {
        tp.subject = next;
        tp.predicate = pred;
        tp.object = current;
      }
      query.patterns.push_back(std::move(tp));
      current = next;
    }
  }

  if (query.form == rdf::SparqlQuery::Form::kSelect) {
    int t = target >= 0 ? target : 0;
    if (terms[t].is_var) {
      query.select_vars.push_back(terms[t].text);
    } else {
      query.select_all = true;
    }
  }
  return query;
}

std::vector<rdf::SparqlQuery> SparqlOutput::TopKQueries(
    const SemanticQueryGraph& sqg, const std::vector<match::Match>& matches,
    const rdf::RdfGraph& graph, size_t k) {
  std::vector<rdf::SparqlQuery> out;
  std::set<std::string> seen;
  for (const match::Match& m : matches) {
    if (out.size() >= k) break;
    auto q = MatchToSparql(sqg, m, graph);
    if (!q.ok()) continue;
    std::string text = q->ToString();
    if (seen.insert(text).second) out.push_back(std::move(*q));
  }
  return out;
}

}  // namespace qa
}  // namespace ganswer
