#ifndef GANSWER_QA_EXPLAIN_H_
#define GANSWER_QA_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "match/query_graph.h"
#include "qa/semantic_query_graph.h"
#include "rdf/rdf_graph.h"
#include "rdf/sparql_engine.h"

namespace ganswer {
namespace qa {

/// Renders \p engine's evaluation plan for each lowered SPARQL query
/// (qa/sparql_output.h TopKQueries), one numbered section per query: the
/// chosen join order with per-pattern cardinality estimates and access
/// paths — the "how" next to AnswerExplainer's "why". Fails when any
/// query fails to plan (unknown variables etc.).
StatusOr<std::string> ExplainQueryPlans(
    const rdf::SparqlEngine& engine,
    const std::vector<rdf::SparqlQuery>& queries);

/// \brief Renders the subgraph witness behind one match as human-readable
/// triples — the "why" of an answer.
///
/// The paper's central claim is that a candidate mapping is right exactly
/// when the data holds a subgraph using it; the explainer surfaces that
/// subgraph: for every Q^S edge, the concrete RDF triples (including
/// intermediate vertices of predicate paths) that instantiate it, plus the
/// rdf:type fact for each class-matched vertex. Example for the running
/// question:
///
///   "who" = <Melanie_Griffith>
///     <Melanie_Griffith> --spouse--> <Antonio_Banderas>      [be married to]
///     <Philadelphia_(film)> --starring--> <Antonio_Banderas> [played in]
///     <Antonio_Banderas> rdf:type <Actor>
class AnswerExplainer {
 public:
  /// \p graph must be finalized and outlive the explainer.
  explicit AnswerExplainer(const rdf::RdfGraph* graph) : graph_(graph) {}

  /// Multi-line explanation of \p match against \p sqg. Fails when the
  /// match does not instantiate the query graph.
  StatusOr<std::string> Explain(const SemanticQueryGraph& sqg,
                                const match::Match& match) const;

 private:
  const rdf::RdfGraph* graph_;
};

}  // namespace qa
}  // namespace ganswer

#endif  // GANSWER_QA_EXPLAIN_H_
