#include "deanna/ilp_solver.h"

#include <algorithm>
#include <functional>

namespace ganswer {
namespace deanna {

namespace {

constexpr int8_t kUnset = -1;

}  // namespace

StatusOr<IlpSolver::Solution> IlpSolver::Solve(const Problem& problem) const {
  size_t n = problem.num_vars;
  if (problem.objective.size() != n) {
    return Status::InvalidArgument("objective size != num_vars");
  }
  std::vector<int> group_of(n, -1);
  for (size_t g = 0; g < problem.exactly_one_groups.size(); ++g) {
    const auto& group = problem.exactly_one_groups[g];
    if (group.empty()) {
      return Status::InvalidArgument("empty exactly-one group");
    }
    for (int v : group) {
      if (v < 0 || static_cast<size_t>(v) >= n) {
        return Status::InvalidArgument("group variable out of range");
      }
      group_of[v] = static_cast<int>(g);
    }
  }
  for (const auto& [a, b] : problem.implications) {
    if (a < 0 || b < 0 || static_cast<size_t>(a) >= n ||
        static_cast<size_t>(b) >= n) {
      return Status::InvalidArgument("implication variable out of range");
    }
  }

  // Implications indexed by source (a <= b: b is a's requirement).
  std::vector<std::vector<int>> requirements(n);
  for (const auto& [a, b] : problem.implications) {
    requirements[a].push_back(b);
  }

  std::vector<int> free_vars;
  for (size_t v = 0; v < n; ++v) {
    if (group_of[v] < 0) free_vars.push_back(static_cast<int>(v));
  }

  // Precompute per-group optimistic contribution.
  std::vector<double> group_best(problem.exactly_one_groups.size(), 0.0);
  for (size_t g = 0; g < problem.exactly_one_groups.size(); ++g) {
    double best = -1e18;
    for (int v : problem.exactly_one_groups[g]) {
      best = std::max(best, problem.objective[v]);
    }
    group_best[g] = best;
  }

  Solution best_solution;
  best_solution.objective = -1e18;
  std::vector<int8_t> x(n, kUnset);
  size_t explored = 0;
  bool budget_hit = false;

  // Greedy fix-point for free variables given fully assigned group vars:
  // a free var takes 1 when its objective is positive and all its
  // requirements are 1.
  auto settle_free = [&](std::vector<int8_t>* vars) {
    bool changed = true;
    // Initialize: optimistic 1 for positive-weight vars, 0 otherwise.
    for (int v : free_vars) {
      (*vars)[v] = problem.objective[v] > 0 ? 1 : 0;
    }
    while (changed) {
      changed = false;
      for (int v : free_vars) {
        if ((*vars)[v] != 1) continue;
        for (int req : requirements[v]) {
          if ((*vars)[req] != 1) {
            (*vars)[v] = 0;
            changed = true;
            break;
          }
        }
      }
    }
  };

  auto objective_of = [&](const std::vector<int8_t>& vars) {
    double total = 0.0;
    for (size_t v = 0; v < n; ++v) {
      if (vars[v] == 1) total += problem.objective[v];
    }
    return total;
  };

  // Optimistic bound for remaining groups + free vars.
  auto bound = [&](size_t next_group, double fixed) {
    double b = fixed;
    for (size_t g = next_group; g < problem.exactly_one_groups.size(); ++g) {
      b += group_best[g];
    }
    for (int v : free_vars) {
      if (problem.objective[v] <= 0) continue;
      bool violated = false;
      for (int req : requirements[v]) {
        if (x[req] == 0) {
          violated = true;
          break;
        }
      }
      if (!violated) b += problem.objective[v];
    }
    return b;
  };

  std::function<void(size_t, double)> branch = [&](size_t g, double fixed) {
    if (budget_hit) return;
    if (options_.max_nodes > 0 && explored >= options_.max_nodes) {
      budget_hit = true;
      return;
    }
    ++explored;
    if (g == problem.exactly_one_groups.size()) {
      std::vector<int8_t> full = x;
      settle_free(&full);
      // A chosen group variable whose requirement is unmet makes this
      // branch infeasible (group vars cannot be dropped without breaking
      // exactly-one).
      for (size_t g2 = 0; g2 < problem.exactly_one_groups.size(); ++g2) {
        for (int v : problem.exactly_one_groups[g2]) {
          if (full[v] != 1) continue;
          for (int req : requirements[v]) {
            if (full[req] != 1) return;  // infeasible branch
          }
        }
      }
      double obj = objective_of(full);
      if (obj > best_solution.objective) {
        best_solution.objective = obj;
        best_solution.assignment.assign(n, false);
        for (size_t v = 0; v < n; ++v) {
          best_solution.assignment[v] = full[v] == 1;
        }
      }
      return;
    }
    if (bound(g, fixed) <= best_solution.objective) return;  // prune

    // Try candidates in non-ascending objective order (better pruning).
    std::vector<int> order = problem.exactly_one_groups[g];
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return problem.objective[a] > problem.objective[b];
    });
    for (int choice : order) {
      for (int v : problem.exactly_one_groups[g]) {
        x[v] = (v == choice) ? 1 : 0;
      }
      branch(g + 1, fixed + problem.objective[choice]);
      if (budget_hit) break;
    }
    for (int v : problem.exactly_one_groups[g]) x[v] = kUnset;
  };

  branch(0, 0.0);

  if (best_solution.objective <= -1e17) {
    return Status::Internal("ILP solver found no feasible solution");
  }
  best_solution.nodes_explored = explored;
  best_solution.optimal = !budget_hit;
  return best_solution;
}

}  // namespace deanna
}  // namespace ganswer
