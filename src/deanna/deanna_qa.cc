#include "deanna/deanna_qa.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/timer.h"
#include "deanna/sparql_generator.h"

namespace ganswer {
namespace deanna {

DeannaQa::DeannaQa(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
                   const paraphrase::ParaphraseDictionary* dict)
    : DeannaQa(graph, lexicon, dict, Options()) {}

DeannaQa::DeannaQa(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
                   const paraphrase::ParaphraseDictionary* dict,
                   Options options)
    : graph_(graph), options_(options) {
  parser_ = std::make_unique<nlp::DependencyParser>(*lexicon);
  entity_index_ = std::make_unique<linking::EntityIndex>(*graph);
  linker_ =
      std::make_unique<linking::EntityLinker>(entity_index_.get(), options.linking);
  understander_ = std::make_unique<qa::QuestionUnderstander>(
      parser_.get(), dict, linker_.get(), options.understanding);
  engine_ = std::make_unique<rdf::SparqlEngine>(*graph);
}

StatusOr<DeannaQa::Response> DeannaQa::Ask(std::string_view question) const {
  Response resp;
  WallTimer timer;

  // Phrase detection + candidate mapping (shared front-end).
  auto understood = understander_->Understand(question);
  if (!understood.ok()) {
    resp.understanding_ms = timer.ElapsedMillis();
    return resp;
  }
  qa::SemanticQueryGraph sqg = understood->sqg;
  resp.is_ask = sqg.form == qa::SemanticQueryGraph::QuestionForm::kAsk;
  if (sqg.vertices.empty()) {
    resp.understanding_ms = timer.ElapsedMillis();
    return resp;
  }

  // DEANNA's q-units: a wh-phrase must itself be jointly disambiguated to
  // a semantic class (Yahya et al. map question tokens onto YAGO classes).
  // Every class of the KB becomes a candidate with a flat prior; coherence
  // against the other mappings decides — that choice is a big part of both
  // DEANNA's cost and its brittleness (a wrong class kills recall
  // unrecoverably).
  const rdf::TermDictionary& term_dict = graph_->dict();
  auto person_cls = graph_->Find("Person");
  for (qa::SqgVertex& v : sqg.vertices) {
    if (!v.wildcard || !v.candidates.empty()) continue;
    // "who" carries a person prior (DEANNA's wh-word semantics); other
    // wh-phrases stay open over every class.
    std::string wh = ToLower(v.text);
    bool person_wh = wh == "who" || wh == "whom";
    for (rdf::TermId t = 0; t < term_dict.size(); ++t) {
      if (!graph_->IsClass(t)) continue;
      bool person_like =
          person_cls.has_value() &&
          (t == *person_cls ||
           graph_->HasTriple(t, graph_->subclass_predicate(), *person_cls));
      if (person_wh && !person_like) continue;
      linking::LinkCandidate c;
      c.vertex = t;
      c.is_class = true;
      c.confidence = person_like && t == *person_cls ? 0.4 : 0.3;
      v.candidates.push_back(c);
    }
  }

  // Joint disambiguation: disambiguation graph + exact ILP. This is the
  // stage the paper's Table 12 marks NP-hard for DEANNA.
  DisambiguationGraph dgraph(*graph_, sqg);
  resp.coherence_pairs = dgraph.stats().coherence_pairs_evaluated;

  std::vector<int> choice(sqg.vertices.size() + sqg.edges.size(), -1);
  if (!dgraph.nodes().empty()) {
    IlpSolver solver(options_.ilp);
    auto solution =
        solver.Solve(dgraph.ToIlp(options_.alpha, options_.beta));
    if (!solution.ok()) {
      resp.understanding_ms = timer.ElapsedMillis();
      return resp;
    }
    resp.ilp_nodes = solution->nodes_explored;
    choice = dgraph.DecodeAssignment(solution->assignment, sqg);
  }

  auto query = SparqlGenerator::Generate(sqg, choice, *graph_);
  resp.understanding_ms = timer.ElapsedMillis();
  if (!query.ok()) return resp;
  resp.sparql = query->ToString();
  resp.processed = true;

  timer.Restart();
  auto result = engine_->Execute(*query);
  resp.evaluation_ms = timer.ElapsedMillis();
  if (!result.ok()) {
    resp.processed = false;
    return resp;
  }
  if (resp.is_ask) {
    resp.ask_result = result->ask_result;
    return resp;
  }
  const rdf::TermDictionary& dict = graph_->dict();
  for (const auto& row : result->rows) {
    if (row.empty() || row[0] == rdf::kInvalidTerm) continue;
    resp.answers.emplace_back(dict.text(row[0]));
  }
  std::sort(resp.answers.begin(), resp.answers.end());
  resp.answers.erase(std::unique(resp.answers.begin(), resp.answers.end()),
                     resp.answers.end());
  return resp;
}

}  // namespace deanna
}  // namespace ganswer
