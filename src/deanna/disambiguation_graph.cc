#include "deanna/disambiguation_graph.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ganswer {
namespace deanna {

namespace {

// True when u has an incident RDF edge whose predicate can begin path P in
// either orientation.
bool CanAnchorPath(const rdf::RdfGraph& g, rdf::TermId u,
                   const paraphrase::PredicatePath& path) {
  if (path.steps.empty()) return false;
  auto check = [&](const paraphrase::PathStep& s) {
    auto edges = s.forward ? g.OutEdges(u) : g.InEdges(u);
    return std::any_of(edges.begin(), edges.end(), [&](const rdf::Edge& e) {
      return e.predicate == s.predicate;
    });
  };
  paraphrase::PathStep first = path.steps.front();
  paraphrase::PathStep last = path.steps.back();
  last.forward = !last.forward;  // reversed orientation anchor
  return check(first) || check(last);
}

}  // namespace

DisambiguationGraph::DisambiguationGraph(const rdf::RdfGraph& graph,
                                         const qa::SemanticQueryGraph& sqg)
    : graph_(graph) {
  size_t nv = sqg.vertices.size();
  item_nodes_.resize(nv + sqg.edges.size());

  // Mapping nodes for vertex candidates (classes are expanded per Def. 3 at
  // evaluation time; here the class itself is the candidate, as in DEANNA).
  for (size_t v = 0; v < nv; ++v) {
    const qa::SqgVertex& qv = sqg.vertices[v];
    for (size_t c = 0; c < qv.candidates.size(); ++c) {
      MappingNode node;
      node.is_edge = false;
      node.query_item = static_cast<int>(v);
      node.candidate_index = static_cast<int>(c);
      node.similarity = qv.candidates[c].confidence;
      item_nodes_[v].push_back(static_cast<int>(nodes_.size()));
      nodes_.push_back(node);
    }
  }
  for (size_t e = 0; e < sqg.edges.size(); ++e) {
    const qa::SqgEdge& qe = sqg.edges[e];
    for (size_t c = 0; c < qe.candidates.size(); ++c) {
      MappingNode node;
      node.is_edge = true;
      node.query_item = static_cast<int>(e);
      node.candidate_index = static_cast<int>(c);
      node.similarity = qe.candidates[c].confidence;
      item_nodes_[nv + e].push_back(static_cast<int>(nodes_.size()));
      nodes_.push_back(node);
    }
  }
  stats_.nodes = nodes_.size();

  // Coherence edges, computed pairwise on the fly (DEANNA's bottleneck).
  // (a) vertex candidate vs candidate of an incident SQG edge. For class
  // candidates the anchor test must scan the class's instances — exactly
  // the kind of on-the-fly graph probing the paper calls "very costly".
  for (size_t e = 0; e < sqg.edges.size(); ++e) {
    const qa::SqgEdge& qe = sqg.edges[e];
    for (int endpoint : {qe.from, qe.to}) {
      for (int vn : item_nodes_[endpoint]) {
        const auto& vcand =
            sqg.vertices[endpoint].candidates[nodes_[vn].candidate_index];
        for (int en : item_nodes_[nv + e]) {
          const auto& ecand =
              sqg.edges[e].candidates[nodes_[en].candidate_index];
          ++stats_.coherence_pairs_evaluated;
          bool anchors = false;
          if (vcand.is_class) {
            for (rdf::TermId inst : graph_.InstancesOf(vcand.vertex)) {
              if (CanAnchorPath(graph_, inst, ecand.path)) {
                anchors = true;
                break;
              }
            }
          } else {
            anchors = CanAnchorPath(graph_, vcand.vertex, ecand.path);
          }
          if (anchors) edges_.push_back({vn, en, 1.0});
        }
      }
    }
  }
  // (b) candidates of adjacent query vertices: neighborhood cosine over
  // two-hop link neighborhoods (class neighborhoods span their instances).
  for (const qa::SqgEdge& qe : sqg.edges) {
    for (int a : item_nodes_[qe.from]) {
      const auto& ca = sqg.vertices[qe.from].candidates[nodes_[a].candidate_index];
      for (int b : item_nodes_[qe.to]) {
        const auto& cb = sqg.vertices[qe.to].candidates[nodes_[b].candidate_index];
        ++stats_.coherence_pairs_evaluated;
        double coh = VertexVertexCoherence(ca.vertex, cb.vertex);
        if (coh > 0) edges_.push_back({a, b, coh});
      }
    }
  }
  stats_.coherence_edges = edges_.size();
}

const std::vector<rdf::TermId>& DisambiguationGraph::TwoHopNeighborhood(
    rdf::TermId u) const {
  auto it = two_hop_cache_.find(u);
  if (it != two_hop_cache_.end()) return it->second;
  // DEANNA-style semantic coherence relates entities through their link
  // neighborhoods (Milne-Witten over in-links on Wikipedia/DBpedia, where
  // these sets run into the thousands). The two-hop undirected
  // neighborhood is the KB-graph equivalent — and computing it per
  // candidate on the fly is exactly the cost the paper calls out.
  std::unordered_set<rdf::TermId> seen;
  auto expand = [&](rdf::TermId x) {
    for (const rdf::Edge& e : graph_.OutEdges(x)) seen.insert(e.neighbor);
    for (const rdf::Edge& e : graph_.InEdges(x)) seen.insert(e.neighbor);
  };
  expand(u);
  std::vector<rdf::TermId> first_hop(seen.begin(), seen.end());
  for (rdf::TermId n : first_hop) expand(n);
  std::vector<rdf::TermId> sorted(seen.begin(), seen.end());
  std::sort(sorted.begin(), sorted.end());
  return two_hop_cache_.emplace(u, std::move(sorted)).first->second;
}

double DisambiguationGraph::VertexVertexCoherence(rdf::TermId u,
                                                  rdf::TermId v) const {
  const std::vector<rdf::TermId>& nu = TwoHopNeighborhood(u);
  const std::vector<rdf::TermId>& nv = TwoHopNeighborhood(v);
  if (nu.empty() || nv.empty()) return 0.0;
  size_t common = 0;
  auto iu = nu.begin();
  auto iv = nv.begin();
  while (iu != nu.end() && iv != nv.end()) {
    if (*iu < *iv) {
      ++iu;
    } else if (*iv < *iu) {
      ++iv;
    } else {
      ++common;
      ++iu;
      ++iv;
    }
  }
  bool direct = std::binary_search(nu.begin(), nu.end(), v);
  double cos = static_cast<double>(common) /
               std::sqrt(static_cast<double>(nu.size()) *
                         static_cast<double>(nv.size()));
  return direct ? std::max(cos, 1.0) : cos;
}

IlpSolver::Problem DisambiguationGraph::ToIlp(double alpha,
                                              double beta) const {
  IlpSolver::Problem problem;
  problem.num_vars = nodes_.size() + edges_.size();
  problem.objective.resize(problem.num_vars, 0.0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    problem.objective[i] = alpha * nodes_[i].similarity;
  }
  for (size_t i = 0; i < edges_.size(); ++i) {
    int var = static_cast<int>(nodes_.size() + i);
    problem.objective[var] = beta * edges_[i].coherence;
    problem.implications.emplace_back(var, edges_[i].node_a);
    problem.implications.emplace_back(var, edges_[i].node_b);
  }
  for (const auto& group : item_nodes_) {
    if (group.empty()) continue;  // wildcard item: nothing to choose
    problem.exactly_one_groups.push_back(group);
  }
  return problem;
}

std::vector<int> DisambiguationGraph::DecodeAssignment(
    const std::vector<bool>& assignment,
    const qa::SemanticQueryGraph& sqg) const {
  std::vector<int> choice(sqg.vertices.size() + sqg.edges.size(), -1);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!assignment[i]) continue;
    const MappingNode& node = nodes_[i];
    size_t item = node.is_edge ? sqg.vertices.size() + node.query_item
                               : static_cast<size_t>(node.query_item);
    choice[item] = node.candidate_index;
  }
  return choice;
}

}  // namespace deanna
}  // namespace ganswer
