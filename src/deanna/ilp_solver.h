#ifndef GANSWER_DEANNA_ILP_SOLVER_H_
#define GANSWER_DEANNA_ILP_SOLVER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ganswer {
namespace deanna {

/// \brief Exact 0/1 integer linear program solver by branch-and-bound,
/// for the joint-disambiguation ILP of the DEANNA baseline (Yahya et al.
/// 2012), which the paper contrasts with its own polynomial understanding
/// stage.
///
/// Supported structure (all DEANNA's disambiguation ILP needs):
///   maximize  c . x
///   s.t.      sum_{i in G} x_i = 1        for every exactly-one group G
///             x_a <= x_b                  for every implication (a, b)
///             x in {0,1}^n
///
/// Branching follows group order (one candidate per group), with a
/// fractional-free optimistic bound: chosen weight so far + the best
/// remaining choice per open group + every still-selectable implication
/// variable. Worst-case exponential in the number of groups — that IS the
/// point of the comparison (Table 12).
class IlpSolver {
 public:
  struct Problem {
    size_t num_vars = 0;
    std::vector<double> objective;
    std::vector<std::vector<int>> exactly_one_groups;
    /// (a, b): x_a <= x_b. Auxiliary conjunction variables (coherence edge
    /// selectors) use two implications.
    std::vector<std::pair<int, int>> implications;
  };

  struct Solution {
    std::vector<bool> assignment;
    double objective = 0.0;
    size_t nodes_explored = 0;
    bool optimal = true;  ///< false when the node budget was exhausted
  };

  struct Options {
    /// Budget on branch-and-bound nodes (0 = unlimited).
    size_t max_nodes = 2'000'000;
  };

  IlpSolver() : options_() {}
  explicit IlpSolver(Options options) : options_(options) {}

  /// Solves the maximization problem. Variables outside every group are
  /// free; they are set greedily (respecting implications) after group
  /// branching. Fails when a group is empty or indexes out of range.
  StatusOr<Solution> Solve(const Problem& problem) const;

 private:
  Options options_;
};

}  // namespace deanna
}  // namespace ganswer

#endif  // GANSWER_DEANNA_ILP_SOLVER_H_
