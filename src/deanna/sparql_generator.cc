#include "deanna/sparql_generator.h"

#include <string>

namespace ganswer {
namespace deanna {

namespace {

using rdf::PatternTerm;
using rdf::TriplePattern;

}  // namespace

StatusOr<rdf::SparqlQuery> SparqlGenerator::Generate(
    const qa::SemanticQueryGraph& sqg, const std::vector<int>& choice,
    const rdf::RdfGraph& graph) {
  if (choice.size() != sqg.vertices.size() + sqg.edges.size()) {
    return Status::InvalidArgument("choice vector size mismatch");
  }
  rdf::SparqlQuery query;
  query.form = sqg.form == qa::SemanticQueryGraph::QuestionForm::kAsk
                   ? rdf::SparqlQuery::Form::kAsk
                   : rdf::SparqlQuery::Form::kSelect;
  query.distinct = true;

  const rdf::TermDictionary& dict = graph.dict();

  // Vertex terms: constants for chosen entities, variables otherwise
  // (classes add a type pattern). The target vertex always stays a
  // variable.
  std::vector<PatternTerm> vertex_terms(sqg.vertices.size());
  for (size_t v = 0; v < sqg.vertices.size(); ++v) {
    const qa::SqgVertex& qv = sqg.vertices[v];
    std::string var = "v" + std::to_string(v);
    int c = choice[v];
    bool is_target = static_cast<int>(v) == sqg.target_vertex;
    if (c < 0 || static_cast<size_t>(c) >= qv.candidates.size()) {
      vertex_terms[v] = PatternTerm::Var(var);
      continue;
    }
    const linking::LinkCandidate& cand = qv.candidates[c];
    if (cand.is_class || is_target) {
      vertex_terms[v] = PatternTerm::Var(var);
      if (cand.is_class) {
        TriplePattern tp;
        tp.subject = vertex_terms[v];
        tp.predicate = PatternTerm::Iri(std::string(rdf::kTypePredicate));
        tp.object = PatternTerm::Iri(std::string(dict.text(cand.vertex)));
        query.patterns.push_back(std::move(tp));
      }
    } else {
      std::string text(dict.text(cand.vertex));
      vertex_terms[v] = dict.IsLiteral(cand.vertex)
                            ? PatternTerm::Literal(std::move(text))
                            : PatternTerm::Iri(std::move(text));
    }
  }

  // Edge patterns.
  for (size_t e = 0; e < sqg.edges.size(); ++e) {
    const qa::SqgEdge& qe = sqg.edges[e];
    int c = choice[sqg.vertices.size() + e];
    if (c < 0 || static_cast<size_t>(c) >= qe.candidates.size()) {
      // No predicate chosen: variable predicate.
      TriplePattern tp;
      tp.subject = vertex_terms[qe.from];
      tp.predicate = PatternTerm::Var("p" + std::to_string(e));
      tp.object = vertex_terms[qe.to];
      query.patterns.push_back(std::move(tp));
      continue;
    }
    const paraphrase::PredicatePath& path = qe.candidates[c].path;
    PatternTerm current = vertex_terms[qe.from];
    for (size_t s = 0; s < path.steps.size(); ++s) {
      PatternTerm next =
          (s + 1 == path.steps.size())
              ? vertex_terms[qe.to]
              : PatternTerm::Var("m" + std::to_string(e) + "_" +
                                 std::to_string(s));
      const paraphrase::PathStep& step = path.steps[s];
      TriplePattern tp;
      PatternTerm pred = PatternTerm::Iri(std::string(dict.text(step.predicate)));
      if (step.forward) {
        tp.subject = current;
        tp.predicate = pred;
        tp.object = next;
      } else {
        tp.subject = next;
        tp.predicate = pred;
        tp.object = current;
      }
      query.patterns.push_back(std::move(tp));
      current = next;
    }
  }

  if (query.form == rdf::SparqlQuery::Form::kSelect) {
    int target = sqg.target_vertex >= 0 ? sqg.target_vertex : 0;
    if (!vertex_terms[target].is_var) {
      // Degenerate: the target collapsed to a constant; select everything.
      query.select_all = true;
    } else {
      query.select_vars.push_back(vertex_terms[target].text);
    }
  }
  return query;
}

}  // namespace deanna
}  // namespace ganswer
