#ifndef GANSWER_DEANNA_DISAMBIGUATION_GRAPH_H_
#define GANSWER_DEANNA_DISAMBIGUATION_GRAPH_H_

#include <unordered_map>
#include <vector>

#include "deanna/ilp_solver.h"
#include "qa/semantic_query_graph.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace deanna {

/// One mapping node of the disambiguation graph: a (query item ->
/// candidate) pair, either a vertex mapping (argument -> entity/class) or
/// an edge mapping (relation phrase -> predicate/path).
struct MappingNode {
  bool is_edge = false;
  int query_item = -1;            ///< SQG vertex or edge index.
  int candidate_index = -1;       ///< Index into the item's candidate list.
  double similarity = 0.0;        ///< Phrase-to-candidate confidence.
};

/// A coherence edge between two mapping nodes of different query items,
/// weighted by semantic coherence computed against the RDF graph.
struct CoherenceEdge {
  int node_a = -1;
  int node_b = -1;
  double coherence = 0.0;
};

/// \brief DEANNA's disambiguation graph (Yahya et al. 2012, as summarized
/// in the paper's Secs. 1.2 and 7): mapping nodes for every phrase-to-
/// candidate pair, plus coherence edges whose weights are computed *on the
/// fly* against the RDF graph — the pairwise computation the paper
/// identifies as DEANNA's main cost.
///
/// Coherence used here:
///  - vertex-candidate u  vs  incident-edge candidate P: 1 when u has an
///    incident RDF edge whose predicate can begin P (else 0);
///  - vertex-candidate u  vs  vertex-candidate v of an adjacent query
///    vertex: cosine of their neighbor sets (common-neighborhood scan).
class DisambiguationGraph {
 public:
  struct Stats {
    size_t nodes = 0;
    size_t coherence_pairs_evaluated = 0;
    size_t coherence_edges = 0;
  };

  /// Builds the graph for \p sqg against \p graph. All candidate lists of
  /// the SQG become mapping nodes (no pruning — neighborhood pruning is the
  /// compared system's technique, not DEANNA's).
  DisambiguationGraph(const rdf::RdfGraph& graph,
                      const qa::SemanticQueryGraph& sqg);

  const std::vector<MappingNode>& nodes() const { return nodes_; }
  const std::vector<CoherenceEdge>& edges() const { return edges_; }
  const Stats& stats() const { return stats_; }

  /// Encodes joint disambiguation as the 0/1 ILP of DEANNA: one candidate
  /// per query item (exactly-one groups), node weights = alpha *
  /// similarity, coherence selector variables (x_e <= x_a, x_e <= x_b)
  /// with weights = beta * coherence.
  IlpSolver::Problem ToIlp(double alpha, double beta) const;

  /// Decodes an ILP assignment back to per-item candidate choices;
  /// choice[i] is the candidate index selected for query item i (vertices
  /// first, then edges), or -1 for wildcard items with no candidates.
  std::vector<int> DecodeAssignment(const std::vector<bool>& assignment,
                                    const qa::SemanticQueryGraph& sqg) const;

 private:
  double VertexVertexCoherence(rdf::TermId u, rdf::TermId v) const;
  const std::vector<rdf::TermId>& TwoHopNeighborhood(rdf::TermId u) const;

  mutable std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>
      two_hop_cache_;
  const rdf::RdfGraph& graph_;
  std::vector<MappingNode> nodes_;
  std::vector<CoherenceEdge> edges_;
  /// Node ids per query item: vertex items first (index = vertex id), then
  /// edge items (index = |V| + edge id).
  std::vector<std::vector<int>> item_nodes_;
  Stats stats_;
};

}  // namespace deanna
}  // namespace ganswer

#endif  // GANSWER_DEANNA_DISAMBIGUATION_GRAPH_H_
