#ifndef GANSWER_DEANNA_SPARQL_GENERATOR_H_
#define GANSWER_DEANNA_SPARQL_GENERATOR_H_

#include <vector>

#include "common/status.h"
#include "qa/semantic_query_graph.h"
#include "rdf/sparql.h"

namespace ganswer {
namespace deanna {

/// \brief Generates the SPARQL query DEANNA's pipeline emits after joint
/// disambiguation: every query item is replaced by its single chosen
/// candidate (entities become constants, classes become rdf:type
/// constraints, predicate paths become chains of patterns over fresh
/// intermediate variables).
class SparqlGenerator {
 public:
  /// \p choice[i]: chosen candidate index for query item i (vertices first,
  /// then edges), -1 for items with no candidates (wildcards -> plain
  /// variables; edges -> variable predicates).
  static StatusOr<rdf::SparqlQuery> Generate(
      const qa::SemanticQueryGraph& sqg, const std::vector<int>& choice,
      const rdf::RdfGraph& graph);
};

}  // namespace deanna
}  // namespace ganswer

#endif  // GANSWER_DEANNA_SPARQL_GENERATOR_H_
