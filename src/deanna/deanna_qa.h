#ifndef GANSWER_DEANNA_DEANNA_QA_H_
#define GANSWER_DEANNA_DEANNA_QA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "deanna/disambiguation_graph.h"
#include "deanna/ilp_solver.h"
#include "linking/entity_index.h"
#include "linking/entity_linker.h"
#include "nlp/dependency_parser.h"
#include "qa/question_understander.h"
#include "rdf/sparql_engine.h"

namespace ganswer {
namespace deanna {

/// \brief The DEANNA-style baseline (Yahya et al. 2012): joint
/// disambiguation in the question-understanding stage.
///
/// Pipeline: phrase detection and candidate generation (shared front-end
/// with the gAnswer system, so the comparison isolates the disambiguation
/// strategy), then a disambiguation graph with on-the-fly pairwise
/// coherence against the RDF graph, joint disambiguation as an exact 0/1
/// ILP (NP-hard; branch-and-bound here), SPARQL generation from the single
/// chosen interpretation, and BGP evaluation.
///
/// This is the architecture the paper's Figure 6 / Tables 8 and 12 compare
/// against: understanding is expensive (ILP + pairwise coherence) and
/// mapping errors are unrecoverable because only one interpretation
/// survives to evaluation.
class DeannaQa {
 public:
  struct Options {
    /// ILP objective weights: alpha * similarity + beta * coherence.
    double alpha = 1.0;
    double beta = 0.5;
    IlpSolver::Options ilp;
    /// Candidate lists are larger than gAnswer's defaults: DEANNA has no
    /// data-driven pruning before disambiguation.
    linking::EntityLinker::Options linking = DefaultLinkingOptions();
    qa::QuestionUnderstander::Options understanding;

    static linking::EntityLinker::Options DefaultLinkingOptions() {
      linking::EntityLinker::Options o;
      o.max_candidates = 25;
      o.min_confidence = 0.15;
      return o;
    }
  };

  struct Response {
    bool processed = false;      ///< SPARQL was generated and evaluated.
    bool is_ask = false;
    bool ask_result = false;
    std::vector<std::string> answers;
    std::string sparql;          ///< The generated query text.
    double understanding_ms = 0; ///< Parse + mapping + coherence + ILP.
    double evaluation_ms = 0;
    double TotalMs() const { return understanding_ms + evaluation_ms; }
    size_t ilp_nodes = 0;
    size_t coherence_pairs = 0;
  };

  DeannaQa(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
           const paraphrase::ParaphraseDictionary* dict);
  DeannaQa(const rdf::RdfGraph* graph, const nlp::Lexicon* lexicon,
           const paraphrase::ParaphraseDictionary* dict, Options options);

  StatusOr<Response> Ask(std::string_view question) const;

  const Options& options() const { return options_; }

 private:
  const rdf::RdfGraph* graph_;
  Options options_;
  std::unique_ptr<nlp::DependencyParser> parser_;
  std::unique_ptr<linking::EntityIndex> entity_index_;
  std::unique_ptr<linking::EntityLinker> linker_;
  std::unique_ptr<qa::QuestionUnderstander> understander_;
  std::unique_ptr<rdf::SparqlEngine> engine_;
};

}  // namespace deanna
}  // namespace ganswer

#endif  // GANSWER_DEANNA_DEANNA_QA_H_
