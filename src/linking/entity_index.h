#ifndef GANSWER_LINKING_ENTITY_INDEX_H_
#define GANSWER_LINKING_ENTITY_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace linking {

/// \brief Label index over the entities and classes of an RDF graph.
///
/// Every entity/class vertex is indexed under (a) each of its rdfs:label
/// literals and (b) the label derived from its IRI local name (underscores
/// to spaces, parenthetical disambiguators stripped) — so "Philadelphia"
/// hits <Philadelphia>, <Philadelphia_(film)> and <Philadelphia_76ers>,
/// which is precisely the ambiguity the paper's pipeline must cope with.
///
/// Two indexes are kept: full normalized label -> vertices (exact lookups)
/// and single token -> vertices (partial-match candidate generation).
class EntityIndex {
 public:
  /// \p graph must be finalized and outlive the index.
  explicit EntityIndex(const rdf::RdfGraph& graph);

  /// Overlay over an immutable \p base index (live views): re-derives the
  /// labels of \p touched vertices from \p graph (an overlay graph), merges
  /// their postings with the base's (with empty lists as tombstones masking
  /// the base), and serves every unaffected key from the base. Exact w.r.t.
  /// a full rebuild because every label input — the IRI/literal text, the
  /// rdfs:label out-edges, the class/entity status, the in-degree gate for
  /// name-like literals — is a function of the vertex's own adjacency, and
  /// both endpoints of every changed edge are in \p touched. O(|touched| +
  /// affected postings), never O(V).
  static std::unique_ptr<EntityIndex> BuildOverlay(
      const rdf::RdfGraph& graph, std::shared_ptr<const EntityIndex> base,
      const std::vector<rdf::TermId>& touched);

  /// Vertices whose normalized label equals the normalization of \p text.
  const std::vector<rdf::TermId>& ExactMatches(std::string_view text) const;

  /// Vertices one of whose label tokens equals the (lowercased) token.
  const std::vector<rdf::TermId>& TokenMatches(std::string_view token) const;

  /// All normalized labels of vertex \p v (IRI-derived first).
  const std::vector<std::string>& LabelsOf(rdf::TermId v) const;

  const rdf::RdfGraph& graph() const { return graph_; }
  size_t NumIndexedVertices() const {
    return base_ != nullptr ? num_indexed_ : labels_of_.size();
  }

  /// Snapshot serialization of the three label maps, with deterministic key
  /// order so identical indexes produce identical bytes. \p compressed
  /// front-codes the sorted keys and delta-varints the sorted posting
  /// lists (several times smaller; the loader must pass the same flag).
  void SaveBinary(BinaryWriter* out, bool compressed = false) const;
  /// Restores an index over \p graph (the same graph the saved index was
  /// built from; postings are restored verbatim, nothing is re-derived).
  static StatusOr<std::unique_ptr<EntityIndex>> LoadBinary(
      const rdf::RdfGraph& graph, BinaryReader* in, bool compressed = false);

 private:
  struct LoadTag {};
  EntityIndex(const rdf::RdfGraph& graph, LoadTag) : graph_(graph) {}

  /// The per-vertex indexing rule shared by the full build and the overlay
  /// build: name-like in-referenced literals and entity/class vertices get
  /// their labels added, everything else is skipped.
  void MaybeIndex(rdf::TermId v);
  void IndexVertex(rdf::TermId v);
  void AddLabel(rdf::TermId v, std::string_view raw_label);
  /// Construction appends postings without duplicate checks (the scans were
  /// quadratic on hub tokens); this one pass sort+uniques every postings
  /// list. Insertion happens in ascending vertex order, so the sorted lists
  /// equal the old first-occurrence order exactly.
  void FinalizePostings();

  const rdf::RdfGraph& graph_;
  std::unordered_map<std::string, std::vector<rdf::TermId>> by_label_;
  std::unordered_map<std::string, std::vector<rdf::TermId>> by_token_;
  std::unordered_map<rdf::TermId, std::vector<std::string>> labels_of_;
  std::vector<rdf::TermId> empty_;
  std::vector<std::string> no_labels_;
  // Overlay mode: lookups probe this index's maps first (affected keys are
  // always present locally, possibly as empty tombstones) and fall through
  // to the shared immutable base. Null for a flat index.
  std::shared_ptr<const EntityIndex> base_;
  size_t num_indexed_ = 0;  // overlay mode only
};

}  // namespace linking
}  // namespace ganswer

#endif  // GANSWER_LINKING_ENTITY_INDEX_H_
