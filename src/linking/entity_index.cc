#include "linking/entity_index.h"

#include <algorithm>
#include <unordered_set>

#include <cstring>

#include "common/binary_io.h"
#include "common/string_util.h"

namespace ganswer {
namespace linking {

EntityIndex::EntityIndex(const rdf::RdfGraph& graph) : graph_(graph) {
  for (rdf::TermId v = 0; v < graph.dict().size(); ++v) {
    MaybeIndex(v);
  }
  FinalizePostings();
}

void EntityIndex::MaybeIndex(rdf::TermId v) {
  const rdf::TermDictionary& dict = graph_.dict();
  if (dict.IsLiteral(v)) {
    // Name-like literals (capitalized, connected) are indexed too:
    // "Who was called Scarface?" must link "Scarface" to the nickname
    // literal vertex. Numeric/date literals stay out.
    std::string_view text = dict.text(v);
    bool name_like =
        !text.empty() && std::isupper(static_cast<unsigned char>(text[0]));
    if (name_like && graph_.InDegree(v) > 0) AddLabel(v, text);
    return;
  }
  if (!graph_.IsEntity(v) && !graph_.IsClass(v)) return;
  IndexVertex(v);
}

std::unique_ptr<EntityIndex> EntityIndex::BuildOverlay(
    const rdf::RdfGraph& graph, std::shared_ptr<const EntityIndex> base,
    const std::vector<rdf::TermId>& touched) {
  auto index = std::unique_ptr<EntityIndex>(new EntityIndex(graph, LoadTag{}));
  std::vector<rdf::TermId> sorted(touched);
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  // Fresh postings for the touched vertices, derived from the overlay
  // graph's merged state by the same rule the full build uses.
  for (rdf::TermId v : sorted) index->MaybeIndex(v);
  index->FinalizePostings();

  // Affected keys: everything a touched vertex carries now (the local maps)
  // plus everything it carried in the base. Keys outside this union have
  // identical postings in base and rebuilt index, so the base serves them.
  std::unordered_set<rdf::TermId> touched_set(sorted.begin(), sorted.end());
  std::unordered_set<std::string> affected_labels, affected_tokens;
  size_t base_labeled_touched = 0;
  for (rdf::TermId v : sorted) {
    const std::vector<std::string>& old_labels = base->LabelsOf(v);
    if (!old_labels.empty()) ++base_labeled_touched;
    for (const std::string& label : old_labels) {
      affected_labels.insert(label);
      for (const std::string& token : SplitWhitespace(label)) {
        affected_tokens.insert(token);
      }
    }
  }

  // Every affected key gets a definitive local posting list: base carriers
  // outside the touched set plus the fresh touched carriers, sorted — which
  // is exactly the list a from-scratch rebuild would produce. An empty list
  // stays in the map as a tombstone masking the base.
  auto merge_affected =
      [&](std::unordered_map<std::string, std::vector<rdf::TermId>>* own,
          const std::unordered_map<std::string, std::vector<rdf::TermId>>&
              base_map,
          std::unordered_set<std::string>* affected) {
        for (const auto& [key, list] : *own) affected->insert(key);
        for (const std::string& key : *affected) {
          std::vector<rdf::TermId> merged;
          auto base_it = base_map.find(key);
          if (base_it != base_map.end()) {
            for (rdf::TermId v : base_it->second) {
              if (touched_set.find(v) == touched_set.end()) {
                merged.push_back(v);
              }
            }
          }
          auto own_it = own->find(key);
          if (own_it != own->end()) {
            merged.insert(merged.end(), own_it->second.begin(),
                          own_it->second.end());
          }
          std::sort(merged.begin(), merged.end());
          merged.erase(std::unique(merged.begin(), merged.end()),
                       merged.end());
          (*own)[key] = std::move(merged);
        }
      };
  merge_affected(&index->by_label_, base->by_label_, &affected_labels);
  merge_affected(&index->by_token_, base->by_token_, &affected_tokens);

  size_t own_labeled = 0;
  for (const auto& [v, labels] : index->labels_of_) {
    if (!labels.empty()) ++own_labeled;
  }
  // A touched vertex that lost all its labels needs an empty tombstone so
  // LabelsOf falls through to "no labels", not to the stale base entry.
  for (rdf::TermId v : sorted) index->labels_of_.try_emplace(v);
  index->num_indexed_ =
      base->NumIndexedVertices() - base_labeled_touched + own_labeled;
  index->base_ = std::move(base);
  return index;
}

void EntityIndex::IndexVertex(rdf::TermId v) {
  const rdf::TermDictionary& dict = graph_.dict();
  // IRI-derived label.
  AddLabel(v, dict.text(v));
  // Explicit rdfs:label literals.
  for (rdf::TermId label : graph_.Objects(v, graph_.label_predicate())) {
    AddLabel(v, dict.text(label));
  }
}

void EntityIndex::AddLabel(rdf::TermId v, std::string_view raw_label) {
  std::string norm = NormalizeLabel(raw_label);
  if (norm.empty()) return;
  // Leading-article variant: "The Godfather" is mentioned as "Godfather"
  // once the parser strips the determiner, so index both forms.
  for (const char* article : {"the ", "a ", "an "}) {
    if (norm.rfind(article, 0) == 0 && norm.size() > strlen(article)) {
      AddLabel(v, norm.substr(strlen(article)));
      break;
    }
  }
  auto& labels = labels_of_[v];
  if (std::find(labels.begin(), labels.end(), norm) != labels.end()) return;

  by_label_[norm].push_back(v);
  for (const std::string& token : SplitWhitespace(norm)) {
    by_token_[token].push_back(v);
  }
  labels.push_back(std::move(norm));
}

void EntityIndex::FinalizePostings() {
  for (auto& [label, list] : by_label_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  for (auto& [token, list] : by_token_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

void EntityIndex::SaveBinary(BinaryWriter* out, bool compressed) const {
  // Both postings maps are written in sorted key order; the compressed
  // encoding exploits that twice — keys are front-coded against their
  // predecessor (normalized labels share long prefixes) and the sorted
  // posting lists become delta varints instead of fixed u32s.
  auto write_postings =
      [&](const std::unordered_map<std::string, std::vector<rdf::TermId>>& m) {
        std::vector<const std::string*> keys;
        keys.reserve(m.size());
        for (const auto& [key, list] : m) keys.push_back(&key);
        std::sort(keys.begin(), keys.end(),
                  [](const std::string* a, const std::string* b) {
                    return *a < *b;
                  });
        out->WriteVarint(keys.size());
        const std::string* prev = nullptr;
        for (const std::string* key : keys) {
          if (compressed) {
            size_t lcp = 0;
            if (prev != nullptr) {
              size_t limit = std::min(prev->size(), key->size());
              while (lcp < limit && (*prev)[lcp] == (*key)[lcp]) ++lcp;
            }
            out->WriteVarint(lcp);
            out->WriteString(std::string_view(*key).substr(lcp));
            WriteDeltaVarints<rdf::TermId>(*out, m.at(*key));
            prev = key;
          } else {
            out->WriteString(*key);
            out->WritePodVector(m.at(*key));
          }
        }
      };
  write_postings(by_label_);
  write_postings(by_token_);

  std::vector<rdf::TermId> vertices;
  vertices.reserve(labels_of_.size());
  for (const auto& [v, labels] : labels_of_) vertices.push_back(v);
  std::sort(vertices.begin(), vertices.end());
  if (compressed) {
    WriteDeltaVarints<rdf::TermId>(*out, vertices);
  } else {
    out->WriteVarint(vertices.size());
  }
  for (rdf::TermId v : vertices) {
    const std::vector<std::string>& labels = labels_of_.at(v);
    if (!compressed) out->WriteU32(v);
    out->WriteVarint(labels.size());
    for (const std::string& label : labels) out->WriteString(label);
  }
}

StatusOr<std::unique_ptr<EntityIndex>> EntityIndex::LoadBinary(
    const rdf::RdfGraph& graph, BinaryReader* in, bool compressed) {
  auto index =
      std::unique_ptr<EntityIndex>(new EntityIndex(graph, LoadTag{}));
  auto read_postings =
      [&](std::unordered_map<std::string, std::vector<rdf::TermId>>* m) {
        uint64_t count = 0;
        GANSWER_RETURN_NOT_OK(in->ReadVarint(&count));
        m->reserve(count);
        std::string prev;
        for (uint64_t i = 0; i < count; ++i) {
          std::string key;
          std::vector<rdf::TermId> list;
          if (compressed) {
            uint64_t lcp = 0;
            GANSWER_RETURN_NOT_OK(in->ReadVarint(&lcp));
            if (lcp > prev.size()) {
              return Status::Corruption(
                  "entity index key prefix exceeds predecessor");
            }
            std::string suffix;
            GANSWER_RETURN_NOT_OK(in->ReadString(&suffix));
            key = prev.substr(0, lcp) + suffix;
            GANSWER_RETURN_NOT_OK(ReadDeltaVarints<rdf::TermId>(*in, &list));
            prev = key;
          } else {
            GANSWER_RETURN_NOT_OK(in->ReadString(&key));
            GANSWER_RETURN_NOT_OK(in->ReadPodVector(&list));
          }
          if (!m->emplace(std::move(key), std::move(list)).second) {
            return Status::Corruption("duplicate entity index key");
          }
        }
        return Status::Ok();
      };
  GANSWER_RETURN_NOT_OK(read_postings(&index->by_label_));
  GANSWER_RETURN_NOT_OK(read_postings(&index->by_token_));

  std::vector<rdf::TermId> vertices;
  uint64_t num_vertices = 0;
  if (compressed) {
    GANSWER_RETURN_NOT_OK(ReadDeltaVarints<rdf::TermId>(*in, &vertices));
    num_vertices = vertices.size();
  } else {
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_vertices));
  }
  index->labels_of_.reserve(num_vertices);
  for (uint64_t i = 0; i < num_vertices; ++i) {
    rdf::TermId v = rdf::kInvalidTerm;
    if (compressed) {
      v = vertices[i];
    } else {
      GANSWER_RETURN_NOT_OK(in->ReadU32(&v));
    }
    if (v >= graph.dict().size()) {
      return Status::Corruption("entity index vertex out of range");
    }
    uint64_t num_labels = 0;
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_labels));
    std::vector<std::string>& labels = index->labels_of_[v];
    labels.reserve(num_labels);
    for (uint64_t j = 0; j < num_labels; ++j) {
      std::string label;
      GANSWER_RETURN_NOT_OK(in->ReadString(&label));
      labels.push_back(std::move(label));
    }
  }
  return index;
}

const std::vector<rdf::TermId>& EntityIndex::ExactMatches(
    std::string_view text) const {
  std::string norm = NormalizeLabel(text);
  for (const EntityIndex* idx = this; idx != nullptr; idx = idx->base_.get()) {
    auto it = idx->by_label_.find(norm);
    if (it != idx->by_label_.end()) return it->second;
  }
  return empty_;
}

const std::vector<rdf::TermId>& EntityIndex::TokenMatches(
    std::string_view token) const {
  std::string lower = ToLower(token);
  for (const EntityIndex* idx = this; idx != nullptr; idx = idx->base_.get()) {
    auto it = idx->by_token_.find(lower);
    if (it != idx->by_token_.end()) return it->second;
  }
  return empty_;
}

const std::vector<std::string>& EntityIndex::LabelsOf(rdf::TermId v) const {
  for (const EntityIndex* idx = this; idx != nullptr; idx = idx->base_.get()) {
    auto it = idx->labels_of_.find(v);
    if (it != idx->labels_of_.end()) return it->second;
  }
  return no_labels_;
}

}  // namespace linking
}  // namespace ganswer
