#include "linking/entity_index.h"

#include <algorithm>

#include <cstring>

#include "common/binary_io.h"
#include "common/string_util.h"

namespace ganswer {
namespace linking {

EntityIndex::EntityIndex(const rdf::RdfGraph& graph) : graph_(graph) {
  const rdf::TermDictionary& dict = graph.dict();
  for (rdf::TermId v = 0; v < dict.size(); ++v) {
    if (dict.IsLiteral(v)) {
      // Name-like literals (capitalized, connected) are indexed too:
      // "Who was called Scarface?" must link "Scarface" to the nickname
      // literal vertex. Numeric/date literals stay out.
      std::string_view text = dict.text(v);
      bool name_like = !text.empty() &&
                       std::isupper(static_cast<unsigned char>(text[0]));
      if (name_like && graph.InDegree(v) > 0) AddLabel(v, text);
      continue;
    }
    if (!graph.IsEntity(v) && !graph.IsClass(v)) continue;
    IndexVertex(v);
  }
  FinalizePostings();
}

void EntityIndex::IndexVertex(rdf::TermId v) {
  const rdf::TermDictionary& dict = graph_.dict();
  // IRI-derived label.
  AddLabel(v, dict.text(v));
  // Explicit rdfs:label literals.
  for (rdf::TermId label : graph_.Objects(v, graph_.label_predicate())) {
    AddLabel(v, dict.text(label));
  }
}

void EntityIndex::AddLabel(rdf::TermId v, std::string_view raw_label) {
  std::string norm = NormalizeLabel(raw_label);
  if (norm.empty()) return;
  // Leading-article variant: "The Godfather" is mentioned as "Godfather"
  // once the parser strips the determiner, so index both forms.
  for (const char* article : {"the ", "a ", "an "}) {
    if (norm.rfind(article, 0) == 0 && norm.size() > strlen(article)) {
      AddLabel(v, norm.substr(strlen(article)));
      break;
    }
  }
  auto& labels = labels_of_[v];
  if (std::find(labels.begin(), labels.end(), norm) != labels.end()) return;

  by_label_[norm].push_back(v);
  for (const std::string& token : SplitWhitespace(norm)) {
    by_token_[token].push_back(v);
  }
  labels.push_back(std::move(norm));
}

void EntityIndex::FinalizePostings() {
  for (auto& [label, list] : by_label_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  for (auto& [token, list] : by_token_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
}

void EntityIndex::SaveBinary(BinaryWriter* out, bool compressed) const {
  // Both postings maps are written in sorted key order; the compressed
  // encoding exploits that twice — keys are front-coded against their
  // predecessor (normalized labels share long prefixes) and the sorted
  // posting lists become delta varints instead of fixed u32s.
  auto write_postings =
      [&](const std::unordered_map<std::string, std::vector<rdf::TermId>>& m) {
        std::vector<const std::string*> keys;
        keys.reserve(m.size());
        for (const auto& [key, list] : m) keys.push_back(&key);
        std::sort(keys.begin(), keys.end(),
                  [](const std::string* a, const std::string* b) {
                    return *a < *b;
                  });
        out->WriteVarint(keys.size());
        const std::string* prev = nullptr;
        for (const std::string* key : keys) {
          if (compressed) {
            size_t lcp = 0;
            if (prev != nullptr) {
              size_t limit = std::min(prev->size(), key->size());
              while (lcp < limit && (*prev)[lcp] == (*key)[lcp]) ++lcp;
            }
            out->WriteVarint(lcp);
            out->WriteString(std::string_view(*key).substr(lcp));
            WriteDeltaVarints<rdf::TermId>(*out, m.at(*key));
            prev = key;
          } else {
            out->WriteString(*key);
            out->WritePodVector(m.at(*key));
          }
        }
      };
  write_postings(by_label_);
  write_postings(by_token_);

  std::vector<rdf::TermId> vertices;
  vertices.reserve(labels_of_.size());
  for (const auto& [v, labels] : labels_of_) vertices.push_back(v);
  std::sort(vertices.begin(), vertices.end());
  if (compressed) {
    WriteDeltaVarints<rdf::TermId>(*out, vertices);
  } else {
    out->WriteVarint(vertices.size());
  }
  for (rdf::TermId v : vertices) {
    const std::vector<std::string>& labels = labels_of_.at(v);
    if (!compressed) out->WriteU32(v);
    out->WriteVarint(labels.size());
    for (const std::string& label : labels) out->WriteString(label);
  }
}

StatusOr<std::unique_ptr<EntityIndex>> EntityIndex::LoadBinary(
    const rdf::RdfGraph& graph, BinaryReader* in, bool compressed) {
  auto index =
      std::unique_ptr<EntityIndex>(new EntityIndex(graph, LoadTag{}));
  auto read_postings =
      [&](std::unordered_map<std::string, std::vector<rdf::TermId>>* m) {
        uint64_t count = 0;
        GANSWER_RETURN_NOT_OK(in->ReadVarint(&count));
        m->reserve(count);
        std::string prev;
        for (uint64_t i = 0; i < count; ++i) {
          std::string key;
          std::vector<rdf::TermId> list;
          if (compressed) {
            uint64_t lcp = 0;
            GANSWER_RETURN_NOT_OK(in->ReadVarint(&lcp));
            if (lcp > prev.size()) {
              return Status::Corruption(
                  "entity index key prefix exceeds predecessor");
            }
            std::string suffix;
            GANSWER_RETURN_NOT_OK(in->ReadString(&suffix));
            key = prev.substr(0, lcp) + suffix;
            GANSWER_RETURN_NOT_OK(ReadDeltaVarints<rdf::TermId>(*in, &list));
            prev = key;
          } else {
            GANSWER_RETURN_NOT_OK(in->ReadString(&key));
            GANSWER_RETURN_NOT_OK(in->ReadPodVector(&list));
          }
          if (!m->emplace(std::move(key), std::move(list)).second) {
            return Status::Corruption("duplicate entity index key");
          }
        }
        return Status::Ok();
      };
  GANSWER_RETURN_NOT_OK(read_postings(&index->by_label_));
  GANSWER_RETURN_NOT_OK(read_postings(&index->by_token_));

  std::vector<rdf::TermId> vertices;
  uint64_t num_vertices = 0;
  if (compressed) {
    GANSWER_RETURN_NOT_OK(ReadDeltaVarints<rdf::TermId>(*in, &vertices));
    num_vertices = vertices.size();
  } else {
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_vertices));
  }
  index->labels_of_.reserve(num_vertices);
  for (uint64_t i = 0; i < num_vertices; ++i) {
    rdf::TermId v = rdf::kInvalidTerm;
    if (compressed) {
      v = vertices[i];
    } else {
      GANSWER_RETURN_NOT_OK(in->ReadU32(&v));
    }
    if (v >= graph.dict().size()) {
      return Status::Corruption("entity index vertex out of range");
    }
    uint64_t num_labels = 0;
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_labels));
    std::vector<std::string>& labels = index->labels_of_[v];
    labels.reserve(num_labels);
    for (uint64_t j = 0; j < num_labels; ++j) {
      std::string label;
      GANSWER_RETURN_NOT_OK(in->ReadString(&label));
      labels.push_back(std::move(label));
    }
  }
  return index;
}

const std::vector<rdf::TermId>& EntityIndex::ExactMatches(
    std::string_view text) const {
  auto it = by_label_.find(NormalizeLabel(text));
  return it == by_label_.end() ? empty_ : it->second;
}

const std::vector<rdf::TermId>& EntityIndex::TokenMatches(
    std::string_view token) const {
  auto it = by_token_.find(ToLower(token));
  return it == by_token_.end() ? empty_ : it->second;
}

const std::vector<std::string>& EntityIndex::LabelsOf(rdf::TermId v) const {
  auto it = labels_of_.find(v);
  return it == labels_of_.end() ? no_labels_ : it->second;
}

}  // namespace linking
}  // namespace ganswer
