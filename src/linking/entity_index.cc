#include "linking/entity_index.h"

#include <algorithm>

#include <cstring>

#include "common/string_util.h"

namespace ganswer {
namespace linking {

EntityIndex::EntityIndex(const rdf::RdfGraph& graph) : graph_(graph) {
  const rdf::TermDictionary& dict = graph.dict();
  for (rdf::TermId v = 0; v < dict.size(); ++v) {
    if (dict.IsLiteral(v)) {
      // Name-like literals (capitalized, connected) are indexed too:
      // "Who was called Scarface?" must link "Scarface" to the nickname
      // literal vertex. Numeric/date literals stay out.
      const std::string& text = dict.text(v);
      bool name_like = !text.empty() &&
                       std::isupper(static_cast<unsigned char>(text[0]));
      if (name_like && graph.InDegree(v) > 0) AddLabel(v, text);
      continue;
    }
    if (!graph.IsEntity(v) && !graph.IsClass(v)) continue;
    IndexVertex(v);
  }
}

void EntityIndex::IndexVertex(rdf::TermId v) {
  const rdf::TermDictionary& dict = graph_.dict();
  // IRI-derived label.
  AddLabel(v, dict.text(v));
  // Explicit rdfs:label literals.
  for (rdf::TermId label : graph_.Objects(v, graph_.label_predicate())) {
    AddLabel(v, dict.text(label));
  }
}

void EntityIndex::AddLabel(rdf::TermId v, std::string_view raw_label) {
  std::string norm = NormalizeLabel(raw_label);
  if (norm.empty()) return;
  // Leading-article variant: "The Godfather" is mentioned as "Godfather"
  // once the parser strips the determiner, so index both forms.
  for (const char* article : {"the ", "a ", "an "}) {
    if (norm.rfind(article, 0) == 0 && norm.size() > strlen(article)) {
      AddLabel(v, norm.substr(strlen(article)));
      break;
    }
  }
  auto& labels = labels_of_[v];
  if (std::find(labels.begin(), labels.end(), norm) != labels.end()) return;
  labels.push_back(norm);

  auto& exact = by_label_[norm];
  if (std::find(exact.begin(), exact.end(), v) == exact.end()) {
    exact.push_back(v);
  }
  for (const std::string& token : SplitWhitespace(norm)) {
    auto& list = by_token_[token];
    if (std::find(list.begin(), list.end(), v) == list.end()) {
      list.push_back(v);
    }
  }
}

const std::vector<rdf::TermId>& EntityIndex::ExactMatches(
    std::string_view text) const {
  auto it = by_label_.find(NormalizeLabel(text));
  return it == by_label_.end() ? empty_ : it->second;
}

const std::vector<rdf::TermId>& EntityIndex::TokenMatches(
    std::string_view token) const {
  auto it = by_token_.find(ToLower(token));
  return it == by_token_.end() ? empty_ : it->second;
}

const std::vector<std::string>& EntityIndex::LabelsOf(rdf::TermId v) const {
  auto it = labels_of_.find(v);
  return it == labels_of_.end() ? no_labels_ : it->second;
}

}  // namespace linking
}  // namespace ganswer
