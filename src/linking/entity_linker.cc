#include "linking/entity_linker.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "common/string_util.h"

namespace ganswer {
namespace linking {

EntityLinker::EntityLinker(const EntityIndex* index)
    : EntityLinker(index, Options()) {}

EntityLinker::EntityLinker(const EntityIndex* index, Options options)
    : index_(index), options_(options) {
  log_max_degree_ =
      std::log(1.0 + static_cast<double>(index->graph().MaxDegree()));
  if (log_max_degree_ <= 0) log_max_degree_ = 1.0;
}

double EntityLinker::Popularity(rdf::TermId v) const {
  double d = std::log(1.0 + static_cast<double>(index_->graph().Degree(v)));
  return d / log_max_degree_;
}

std::vector<LinkCandidate> EntityLinker::Link(std::string_view phrase) const {
  std::string norm = NormalizeLabel(phrase);
  if (norm.empty()) return {};

  // Best string similarity per candidate vertex.
  std::unordered_map<rdf::TermId, double> similarity;

  // 1) Exact normalized matches.
  for (rdf::TermId v : index_->ExactMatches(norm)) {
    similarity[v] = std::max(similarity[v], 1.0);
  }

  // Singular fallbacks for plural class mentions: try every plausible
  // de-pluralization ("movies" -> "movie", "cities" -> "city",
  // "crosses" -> "cross") and keep whichever the index knows.
  std::vector<std::string> tokens = SplitWhitespace(norm);
  if (!tokens.empty() && EndsWith(tokens.back(), "s")) {
    const std::string& last = tokens.back();
    std::vector<std::string> singulars;
    if (EndsWith(last, "ies") && last.size() > 3) {
      singulars.push_back(last.substr(0, last.size() - 3) + "y");
    }
    if (EndsWith(last, "es") && last.size() > 2) {
      singulars.push_back(last.substr(0, last.size() - 2));
    }
    if (last.size() > 1) {
      singulars.push_back(last.substr(0, last.size() - 1));
    }
    for (const std::string& singular_last : singulars) {
      std::vector<std::string> singular_tokens = tokens;
      singular_tokens.back() = singular_last;
      for (rdf::TermId v : index_->ExactMatches(Join(singular_tokens, " "))) {
        similarity[v] = std::max(similarity[v], 0.95);
      }
    }
  }

  // 2) Token-level candidates: vertices sharing a token with the phrase.
  // Similarity rewards the label *containing* the whole mention: the paper
  // needs "Philadelphia" -> <Philadelphia_76ers> and "actor" ->
  // <An_Actor_Prepares> to stay candidates, while "Salt Lake City" ->
  // class <City> (mention barely covered) should not survive an exact
  // match.
  std::set<std::string> query_tokens(tokens.begin(), tokens.end());
  for (const std::string& token : tokens) {
    for (rdf::TermId v : index_->TokenMatches(token)) {
      auto [it, inserted] = similarity.try_emplace(v, 0.0);
      if (!inserted && it->second >= 1.0) continue;
      double best = it->second;
      for (const std::string& label : index_->LabelsOf(v)) {
        std::vector<std::string> label_tokens = SplitWhitespace(label);
        size_t covered = 0;
        size_t shared = 0;
        std::set<std::string> label_set(label_tokens.begin(),
                                        label_tokens.end());
        for (const std::string& t : query_tokens) {
          if (label_set.count(t)) {
            ++covered;
            ++shared;
          }
        }
        size_t uni = query_tokens.size() + label_set.size() - shared;
        double jac = uni == 0 ? 0.0
                              : static_cast<double>(shared) /
                                    static_cast<double>(uni);
        double coverage =
            query_tokens.empty()
                ? 0.0
                : static_cast<double>(covered) /
                      static_cast<double>(query_tokens.size());
        best = std::max(best, 0.4 + 0.35 * coverage + 0.25 * jac);
      }
      it->second = best;
    }
  }

  // 3) Fuzzy fallback over token candidates of similar-looking tokens is
  // covered by the bigram check against every candidate's labels. Fuzzy
  // similarity is capped at 0.7 so it can never rival an exact match; it
  // exists to rescue near-misses, so it is skipped when token matching
  // already produced a crowd of candidates or a solid score.
  if (similarity.size() <= 32) {
    for (auto& [v, sim] : similarity) {
      if (sim >= 0.75) continue;
      for (const std::string& label : index_->LabelsOf(v)) {
        double dice = BigramDice(norm, label);
        if (dice >= options_.fuzzy_threshold) {
          sim = std::max(sim, 0.3 + 0.4 * dice);
        }
      }
    }
  }

  // Exact-match dominance: when the mention names some vertex exactly, the
  // remaining ambiguity is among exact matches (the three Philadelphias);
  // weak partial-token candidates (the City class for "Salt Lake City")
  // are spurious, not ambiguous.
  double best_sim = 0.0;
  for (const auto& [v, sim] : similarity) best_sim = std::max(best_sim, sim);
  if (best_sim >= 0.95) {
    std::erase_if(similarity,
                  [](const auto& entry) { return entry.second < 0.7; });
    // Surviving partial matches stay candidates (the data-driven fallback
    // may still need them) but at a clear confidence discount, so their
    // interpretations never tie an exact match's answers.
    for (auto& [v, sim] : similarity) {
      if (sim < 0.95) sim *= 0.6;
    }
  }

  std::vector<LinkCandidate> out;
  out.reserve(similarity.size());
  for (const auto& [v, sim] : similarity) {
    LinkCandidate c;
    c.vertex = v;
    c.is_class = index_->graph().IsClass(v);
    c.confidence = options_.similarity_weight * sim +
                   (1.0 - options_.similarity_weight) * Popularity(v);
    if (c.confidence < options_.min_confidence) continue;
    out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const LinkCandidate& a, const LinkCandidate& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              return a.vertex < b.vertex;
            });
  if (out.size() > options_.max_candidates) {
    out.resize(options_.max_candidates);
  }
  return out;
}

}  // namespace linking
}  // namespace ganswer
