#ifndef GANSWER_LINKING_ENTITY_LINKER_H_
#define GANSWER_LINKING_ENTITY_LINKER_H_

#include <string_view>
#include <vector>

#include "linking/entity_index.h"

namespace ganswer {
namespace linking {

/// One candidate mapping of an argument phrase to a graph vertex, with the
/// paper's confidence probability delta(arg, u).
struct LinkCandidate {
  rdf::TermId vertex = rdf::kInvalidTerm;
  bool is_class = false;
  double confidence = 0.0;
};

/// \brief Entity linking (Sec. 4.2.1): maps an argument phrase to a ranked
/// list of candidate entities and classes with confidence probabilities.
///
/// Stands in for the DBpedia Lookup web service the paper calls. Candidate
/// generation: exact normalized-label matches first, then vertices sharing
/// label tokens, then fuzzy (bigram-Dice) matches over token-candidates.
/// Confidence blends string similarity with a degree-based popularity prior
/// — deliberately NOT enough to disambiguate "Philadelphia"; that is the
/// query evaluation stage's job.
class EntityLinker {
 public:
  struct Options {
    size_t max_candidates = 8;
    /// Candidates below this confidence are dropped.
    double min_confidence = 0.25;
    /// Weight of string similarity vs popularity prior in the confidence.
    double similarity_weight = 0.75;
    /// Minimum bigram-Dice similarity for fuzzy token candidates.
    double fuzzy_threshold = 0.55;
  };

  /// \p index must outlive the linker.
  explicit EntityLinker(const EntityIndex* index);
  EntityLinker(const EntityIndex* index, Options options);

  /// Ranked candidates (non-ascending confidence) for \p phrase. Classes
  /// are flagged; both a class and entities may be returned for the same
  /// phrase ("actor" -> class <Actor> and entity <An_Actor_Prepares>).
  std::vector<LinkCandidate> Link(std::string_view phrase) const;

  const Options& options() const { return options_; }

 private:
  double Popularity(rdf::TermId v) const;

  const EntityIndex* index_;
  Options options_;
  double log_max_degree_;
};

}  // namespace linking
}  // namespace ganswer

#endif  // GANSWER_LINKING_ENTITY_LINKER_H_
