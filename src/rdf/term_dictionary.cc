#include "rdf/term_dictionary.h"

namespace ganswer {
namespace rdf {

namespace {

// Index key: literals get a prefix byte that cannot begin an IRI text used
// by this codebase, separating the two term spaces in one map.
std::string IndexKey(std::string_view text, TermKind kind) {
  std::string key;
  key.reserve(text.size() + 1);
  key += kind == TermKind::kLiteral ? '\x01' : '\x02';
  key += text;
  return key;
}

}  // namespace

TermId TermDictionary::Intern(std::string_view text, TermKind kind) {
  std::string key = IndexKey(text, kind);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(texts_.size());
  texts_.emplace_back(text);
  kinds_.push_back(kind);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> TermDictionary::Lookup(std::string_view text,
                                             TermKind kind) const {
  auto it = index_.find(IndexKey(text, kind));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<TermId> TermDictionary::LookupAny(std::string_view text) const {
  auto iri = Lookup(text, TermKind::kIri);
  if (iri.has_value()) return iri;
  return Lookup(text, TermKind::kLiteral);
}

}  // namespace rdf
}  // namespace ganswer
