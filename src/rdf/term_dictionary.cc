#include "rdf/term_dictionary.h"

#include <algorithm>

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

namespace {

// Index key: literals get a prefix byte that cannot begin an IRI text used
// by this codebase, separating the two term spaces in one map.
std::string IndexKey(std::string_view text, TermKind kind) {
  std::string key;
  key.reserve(text.size() + 1);
  key += kind == TermKind::kLiteral ? '\x01' : '\x02';
  key += text;
  return key;
}

}  // namespace

void TermDictionary::InitExtension(const TermDictionary* base) {
  base_ = base;
  base_size_ = base->size();
}

TermId TermDictionary::Intern(std::string_view text, TermKind kind) {
  std::string key = IndexKey(text, kind);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  if (base_ != nullptr) {
    auto base_it = base_->index_.find(key);
    if (base_it != base_->index_.end()) return base_it->second;
  }
  TermId id = static_cast<TermId>(size());
  // Interning migrates mmap-backed columns to owned storage first. Append
  // from the key (which embeds a copy of the text) rather than from the
  // caller's view: the view may alias this very arena, which is about to
  // reallocate.
  std::vector<char>& arena = arena_.owned();
  arena.insert(arena.end(), key.begin() + 1, key.end());
  arena_.Publish();
  offsets_.owned().push_back(arena.size());
  offsets_.Publish();
  kinds_.owned().push_back(static_cast<uint8_t>(kind));
  kinds_.Publish();
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> TermDictionary::Lookup(std::string_view text,
                                             TermKind kind) const {
  std::string key = IndexKey(text, kind);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  if (base_ != nullptr) {
    auto base_it = base_->index_.find(key);
    if (base_it != base_->index_.end()) return base_it->second;
  }
  return std::nullopt;
}

void TermDictionary::SaveBinary(BinaryWriter* out) const {
  out->WritePodSpan(offsets_.span());
  out->WriteString(std::string_view(arena_.data(), arena_.size()));
  out->WritePodSpan(kinds_.span());
}

Status TermDictionary::LoadBinary(BinaryReader* in) {
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&offsets_));
  // The arena is a length-prefixed byte run — identical layout to a pod
  // column of char, so the column read applies and stays zero-copy under an
  // mmap-backed reader.
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&arena_));
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&kinds_));
  return RebuildIndex();
}

Status TermDictionary::RebuildIndex() {
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != arena_.size() ||
      kinds_.size() + 1 != offsets_.size()) {
    return Status::Corruption("term dictionary arena/offset mismatch");
  }
  size_t n = kinds_.size();
  index_.clear();
  index_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (offsets_[i] > offsets_[i + 1]) {
      return Status::Corruption("term dictionary offsets not monotone");
    }
    if (kinds_[i] > static_cast<uint8_t>(TermKind::kLiteral)) {
      return Status::Corruption("term dictionary bad term kind");
    }
    std::string_view t = text(static_cast<TermId>(i));
    auto [it, inserted] = index_.emplace(
        IndexKey(t, static_cast<TermKind>(kinds_[i])), static_cast<TermId>(i));
    if (!inserted) {
      return Status::Corruption("term dictionary duplicate term '" +
                                std::string(t) + "'");
    }
  }
  return Status::Ok();
}

void TermDictionary::SaveFrontCoded(BinaryWriter* out) const {
  size_t n = size();
  out->WriteVarint(n);
  std::vector<bool> literal(n);
  for (size_t i = 0; i < n; ++i) {
    literal[i] = kinds_[i] == static_cast<uint8_t>(TermKind::kLiteral);
  }
  out->WriteBoolVector(literal);

  // Blocks are encoded into a scratch writer first so the sparse directory
  // of block offsets can precede the blob (the directory is tiny: one entry
  // per kFrontCodingBlock terms).
  BinaryWriter blob;
  std::vector<uint64_t> directory;
  for (size_t i = 0; i < n; ++i) {
    std::string_view cur = text(static_cast<TermId>(i));
    if (i % kFrontCodingBlock == 0) {
      directory.push_back(blob.size());
      blob.WriteString(cur);
      continue;
    }
    std::string_view prev = text(static_cast<TermId>(i - 1));
    size_t max_lcp = std::min(cur.size(), prev.size());
    size_t lcp = 0;
    while (lcp < max_lcp && cur[lcp] == prev[lcp]) ++lcp;
    blob.WriteVarint(lcp);
    blob.WriteString(cur.substr(lcp));
  }
  WriteDeltaVarints<uint64_t>(*out, directory);
  out->WriteString(blob.buffer());
}

Status TermDictionary::LoadFrontCoded(BinaryReader* in) {
  uint64_t n = 0;
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&n));
  std::vector<bool> literal;
  GANSWER_RETURN_NOT_OK(in->ReadBoolVector(&literal));
  if (literal.size() != n) {
    return Status::Corruption("front-coded dictionary kind bitmap mismatch");
  }
  std::vector<uint64_t> directory;
  GANSWER_RETURN_NOT_OK(ReadDeltaVarints<uint64_t>(*in, &directory));
  std::string_view blob_bytes;
  GANSWER_RETURN_NOT_OK(in->ReadStringView(&blob_bytes));
  size_t expected_blocks = (n + kFrontCodingBlock - 1) / kFrontCodingBlock;
  if (directory.size() != expected_blocks) {
    return Status::Corruption("front-coded dictionary directory mismatch");
  }

  std::vector<char> arena;
  std::vector<uint64_t> offsets;
  offsets.reserve(n + 1);
  offsets.push_back(0);
  std::vector<uint8_t> kinds;
  kinds.reserve(n);
  BinaryReader blob(blob_bytes);
  std::string prev;
  for (uint64_t i = 0; i < n; ++i) {
    if (i % kFrontCodingBlock == 0) {
      // The directory pins each block's start; a decoder that drifted off
      // (or a doctored directory) is corruption, and the check is what
      // makes the directory trustworthy for O(block) random access.
      if (blob_bytes.size() - blob.remaining() !=
          directory[i / kFrontCodingBlock]) {
        return Status::Corruption("front-coded block directory out of sync");
      }
      GANSWER_RETURN_NOT_OK(blob.ReadString(&prev));
    } else {
      uint64_t lcp = 0;
      GANSWER_RETURN_NOT_OK(blob.ReadVarint(&lcp));
      if (lcp > prev.size()) {
        return Status::Corruption("front-coded prefix longer than base term");
      }
      std::string_view suffix;
      GANSWER_RETURN_NOT_OK(blob.ReadStringView(&suffix));
      prev.resize(lcp);
      prev.append(suffix);
    }
    arena.insert(arena.end(), prev.begin(), prev.end());
    offsets.push_back(arena.size());
    kinds.push_back(static_cast<uint8_t>(literal[i] ? TermKind::kLiteral
                                                    : TermKind::kIri));
  }
  if (!blob.AtEnd()) {
    return Status::Corruption("front-coded dictionary trailing bytes");
  }
  arena_.Assign(std::move(arena));
  offsets_.Assign(std::move(offsets));
  kinds_.Assign(std::move(kinds));
  return RebuildIndex();
}

std::optional<TermId> TermDictionary::LookupAny(std::string_view text) const {
  auto iri = Lookup(text, TermKind::kIri);
  if (iri.has_value()) return iri;
  return Lookup(text, TermKind::kLiteral);
}

}  // namespace rdf
}  // namespace ganswer
