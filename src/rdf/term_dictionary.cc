#include "rdf/term_dictionary.h"

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

namespace {

// Index key: literals get a prefix byte that cannot begin an IRI text used
// by this codebase, separating the two term spaces in one map.
std::string IndexKey(std::string_view text, TermKind kind) {
  std::string key;
  key.reserve(text.size() + 1);
  key += kind == TermKind::kLiteral ? '\x01' : '\x02';
  key += text;
  return key;
}

}  // namespace

TermId TermDictionary::Intern(std::string_view text, TermKind kind) {
  std::string key = IndexKey(text, kind);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(texts_.size());
  texts_.emplace_back(text);
  kinds_.push_back(kind);
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<TermId> TermDictionary::Lookup(std::string_view text,
                                             TermKind kind) const {
  auto it = index_.find(IndexKey(text, kind));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void TermDictionary::SaveBinary(BinaryWriter* out) const {
  std::vector<uint64_t> offsets;
  offsets.reserve(texts_.size() + 1);
  uint64_t total = 0;
  offsets.push_back(0);
  for (const std::string& t : texts_) {
    total += t.size();
    offsets.push_back(total);
  }
  out->WritePodVector(offsets);
  std::string arena;
  arena.reserve(total);
  for (const std::string& t : texts_) arena += t;
  out->WriteString(arena);
  std::vector<uint8_t> kinds(kinds_.size());
  for (size_t i = 0; i < kinds_.size(); ++i) {
    kinds[i] = static_cast<uint8_t>(kinds_[i]);
  }
  out->WritePodVector(kinds);
}

Status TermDictionary::LoadBinary(BinaryReader* in) {
  std::vector<uint64_t> offsets;
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&offsets));
  std::string_view arena;
  GANSWER_RETURN_NOT_OK(in->ReadStringView(&arena));
  std::vector<uint8_t> kinds;
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&kinds));
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != arena.size() || kinds.size() + 1 != offsets.size()) {
    return Status::Corruption("term dictionary arena/offset mismatch");
  }
  size_t n = kinds.size();
  texts_.clear();
  texts_.reserve(n);
  kinds_.resize(n);
  index_.clear();
  index_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return Status::Corruption("term dictionary offsets not monotone");
    }
    if (kinds[i] > static_cast<uint8_t>(TermKind::kLiteral)) {
      return Status::Corruption("term dictionary bad term kind");
    }
    std::string_view text = arena.substr(offsets[i], offsets[i + 1] - offsets[i]);
    kinds_[i] = static_cast<TermKind>(kinds[i]);
    texts_.emplace_back(text);
    auto [it, inserted] =
        index_.emplace(IndexKey(text, kinds_[i]), static_cast<TermId>(i));
    if (!inserted) {
      return Status::Corruption("term dictionary duplicate term '" +
                                std::string(text) + "'");
    }
  }
  return Status::Ok();
}

std::optional<TermId> TermDictionary::LookupAny(std::string_view text) const {
  auto iri = Lookup(text, TermKind::kIri);
  if (iri.has_value()) return iri;
  return Lookup(text, TermKind::kLiteral);
}

}  // namespace rdf
}  // namespace ganswer
