#ifndef GANSWER_RDF_SIGNATURE_INDEX_H_
#define GANSWER_RDF_SIGNATURE_INDEX_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/pod_column.h"
#include "common/status.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace rdf {

/// \brief gStore-style vertex signatures (Zou, Mo, Chen, Özsu, Zhao:
/// "gStore: Answering SPARQL Queries via Subgraph Matching", PVLDB 2011 —
/// the authors' engine, which production gAnswer evaluates its queries on).
///
/// Every vertex carries two fixed-width bit signatures, one per edge
/// direction, OR-ing a hash bit per incident predicate. Signature
/// containment (sig_required & sig_vertex == sig_required) is then a
/// constant-time NECESSARY condition for "this vertex has an incident edge
/// with predicate p" — false positives possible (hash collisions), false
/// negatives impossible. The matcher's neighborhood pruning (Sec. 4.2.2)
/// consults it before touching adjacency lists.
class SignatureIndex {
 public:
  /// Signature width. 64 bits keeps the check to a single AND even with
  /// the ~40 predicates of the generated schema; real gStore uses wider
  /// signatures plus a VS-tree over them.
  using Signature = uint64_t;

  /// Builds signatures for every vertex of the finalized \p graph, which
  /// must outlive the index.
  explicit SignatureIndex(const RdfGraph& graph);

  /// Overlay over an immutable \p base index (live views): recomputes the
  /// signatures of \p touched vertices from \p graph's merged runs (an
  /// overlay graph) and serves every other vertex from the base. O(|touched|
  /// * degree), never O(V). A vertex's signatures depend only on its own
  /// incident edges, so untouched vertices' base signatures stay exact.
  static SignatureIndex BuildOverlay(const RdfGraph& graph,
                                     std::shared_ptr<const SignatureIndex> base,
                                     const std::vector<TermId>& touched);

  /// The hash bit of predicate \p p.
  static Signature PredicateBit(TermId p);

  Signature OutSignature(TermId v) const;
  Signature InSignature(TermId v) const;

  /// Possibly-has checks: false means definitely no incident edge with
  /// \p p in that direction; true means "check the adjacency list".
  bool MaybeHasOut(TermId v, TermId p) const {
    return (OutSignature(v) & PredicateBit(p)) != 0;
  }
  bool MaybeHasIn(TermId v, TermId p) const {
    return (InSignature(v) & PredicateBit(p)) != 0;
  }
  bool MaybeHasEither(TermId v, TermId p) const {
    return MaybeHasOut(v, p) || MaybeHasIn(v, p);
  }

  /// Containment check for a whole required signature (the gStore
  /// primitive): every required bit present.
  static bool Covers(Signature vertex_sig, Signature required) {
    return (vertex_sig & required) == required;
  }

  size_t NumVertices() const {
    return base_ != nullptr ? num_vertices_ : out_.size();
  }

  /// Heap / mapped bytes pinned by the signature columns.
  size_t heap_bytes() const { return out_.heap_bytes() + in_.heap_bytes(); }
  size_t view_bytes() const { return out_.view_bytes() + in_.view_bytes(); }

  /// Snapshot serialization: the two per-vertex signature arrays as-is
  /// (zero-copy over an mmap-ed raw section), or — compressed — each
  /// signature as a popcount byte plus its set bit positions, since most
  /// vertices touch only a handful of predicates.
  void SaveBinary(BinaryWriter* out, bool compressed = false) const;
  /// Restores an index previously saved with SaveBinary, skipping the
  /// per-edge rebuild of the graph constructor.
  static StatusOr<SignatureIndex> LoadBinary(BinaryReader* in,
                                             bool compressed = false);

 private:
  SignatureIndex() = default;  // empty shell for LoadBinary / BuildOverlay

  PodColumn<Signature> out_;
  PodColumn<Signature> in_;
  // Overlay mode: touched-vertex (out, in) signature pairs over a shared
  // immutable base. Null base_ (the common case) keeps the flat fast path.
  std::shared_ptr<const SignatureIndex> base_;
  std::unordered_map<TermId, std::pair<Signature, Signature>> overrides_;
  size_t num_vertices_ = 0;  // overlay mode only
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_SIGNATURE_INDEX_H_
