#include "rdf/signature_index.h"

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

SignatureIndex::SignatureIndex(const RdfGraph& graph) {
  size_t n = graph.dict().size();
  out_.assign(n, 0);
  in_.assign(n, 0);
  for (TermId v = 0; v < n; ++v) {
    for (const Edge& e : graph.OutEdges(v)) {
      out_[v] |= PredicateBit(e.predicate);
      in_[e.neighbor] |= PredicateBit(e.predicate);
    }
  }
}

SignatureIndex::Signature SignatureIndex::PredicateBit(TermId p) {
  // Fibonacci hash of the predicate id onto one of 64 bits.
  uint64_t h = static_cast<uint64_t>(p) * 0x9e3779b97f4a7c15ULL;
  return Signature{1} << (h >> 58);
}

void SignatureIndex::SaveBinary(BinaryWriter* out) const {
  out->WritePodVector(out_);
  out->WritePodVector(in_);
}

StatusOr<SignatureIndex> SignatureIndex::LoadBinary(BinaryReader* in) {
  SignatureIndex index;
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&index.out_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&index.in_));
  if (index.out_.size() != index.in_.size()) {
    return Status::Corruption("signature arrays differ in length");
  }
  return index;
}

SignatureIndex::Signature SignatureIndex::OutSignature(TermId v) const {
  return v < out_.size() ? out_[v] : 0;
}

SignatureIndex::Signature SignatureIndex::InSignature(TermId v) const {
  return v < in_.size() ? in_[v] : 0;
}

}  // namespace rdf
}  // namespace ganswer
