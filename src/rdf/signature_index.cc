#include "rdf/signature_index.h"

#include <bit>

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

namespace {

// Compressed signature column: varint vertex count, then per vertex a
// popcount byte followed by the set bit positions in ascending order. A
// typical vertex touches a handful of predicates, so this is 1-4 bytes per
// signature against 8 raw; an empty signature costs one byte.
void EncodeSignatures(BinaryWriter* out,
                      std::span<const SignatureIndex::Signature> sigs) {
  out->WriteVarint(sigs.size());
  for (uint64_t sig : sigs) {
    out->WriteU8(static_cast<uint8_t>(std::popcount(sig)));
    while (sig != 0) {
      out->WriteU8(static_cast<uint8_t>(std::countr_zero(sig)));
      sig &= sig - 1;  // clear lowest set bit
    }
  }
}

Status DecodeSignatures(BinaryReader* in,
                        std::vector<SignatureIndex::Signature>* out) {
  uint64_t count = 0;
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&count));
  if (count > in->remaining()) {
    return Status::Corruption("signature count exceeds remaining bytes");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t v = 0; v < count; ++v) {
    uint8_t bits = 0;
    GANSWER_RETURN_NOT_OK(in->ReadU8(&bits));
    if (bits > 64) {
      return Status::Corruption("signature popcount exceeds width");
    }
    uint64_t sig = 0;
    for (uint8_t i = 0; i < bits; ++i) {
      uint8_t pos = 0;
      GANSWER_RETURN_NOT_OK(in->ReadU8(&pos));
      if (pos >= 64) {
        return Status::Corruption("signature bit position exceeds width");
      }
      sig |= uint64_t{1} << pos;
    }
    out->push_back(sig);
  }
  return Status::Ok();
}

}  // namespace

SignatureIndex::SignatureIndex(const RdfGraph& graph) {
  size_t n = graph.dict().size();
  std::vector<Signature> out(n, 0);
  std::vector<Signature> in(n, 0);
  for (TermId v = 0; v < n; ++v) {
    for (const Edge& e : graph.OutEdges(v)) {
      out[v] |= PredicateBit(e.predicate);
      in[e.neighbor] |= PredicateBit(e.predicate);
    }
  }
  out_.Assign(std::move(out));
  in_.Assign(std::move(in));
}

SignatureIndex SignatureIndex::BuildOverlay(
    const RdfGraph& graph, std::shared_ptr<const SignatureIndex> base,
    const std::vector<TermId>& touched) {
  SignatureIndex index;
  index.num_vertices_ = graph.dict().size();
  index.overrides_.reserve(touched.size());
  for (TermId v : touched) {
    Signature out_sig = 0;
    for (const Edge& e : graph.OutEdges(v)) {
      out_sig |= PredicateBit(e.predicate);
    }
    Signature in_sig = 0;
    for (const Edge& e : graph.InEdges(v)) {
      in_sig |= PredicateBit(e.predicate);
    }
    index.overrides_[v] = {out_sig, in_sig};
  }
  index.base_ = std::move(base);
  return index;
}

SignatureIndex::Signature SignatureIndex::PredicateBit(TermId p) {
  // Fibonacci hash of the predicate id onto one of 64 bits.
  uint64_t h = static_cast<uint64_t>(p) * 0x9e3779b97f4a7c15ULL;
  return Signature{1} << (h >> 58);
}

void SignatureIndex::SaveBinary(BinaryWriter* out, bool compressed) const {
  if (!compressed) {
    out->WritePodSpan(out_.span());
    out->WritePodSpan(in_.span());
    return;
  }
  EncodeSignatures(out, out_.span());
  EncodeSignatures(out, in_.span());
}

StatusOr<SignatureIndex> SignatureIndex::LoadBinary(BinaryReader* in,
                                                    bool compressed) {
  SignatureIndex index;
  if (!compressed) {
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&index.out_));
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&index.in_));
  } else {
    std::vector<Signature> out_sigs, in_sigs;
    GANSWER_RETURN_NOT_OK(DecodeSignatures(in, &out_sigs));
    GANSWER_RETURN_NOT_OK(DecodeSignatures(in, &in_sigs));
    index.out_.Assign(std::move(out_sigs));
    index.in_.Assign(std::move(in_sigs));
  }
  if (index.out_.size() != index.in_.size()) {
    return Status::Corruption("signature arrays differ in length");
  }
  return index;
}

SignatureIndex::Signature SignatureIndex::OutSignature(TermId v) const {
  if (base_ != nullptr) [[unlikely]] {
    auto it = overrides_.find(v);
    if (it != overrides_.end()) return it->second.first;
    return base_->OutSignature(v);
  }
  return v < out_.size() ? out_[v] : 0;
}

SignatureIndex::Signature SignatureIndex::InSignature(TermId v) const {
  if (base_ != nullptr) [[unlikely]] {
    auto it = overrides_.find(v);
    if (it != overrides_.end()) return it->second.second;
    return base_->InSignature(v);
  }
  return v < in_.size() ? in_[v] : 0;
}

}  // namespace rdf
}  // namespace ganswer
