#ifndef GANSWER_RDF_RDF_GRAPH_H_
#define GANSWER_RDF_RDF_GRAPH_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/pod_column.h"
#include "common/status.h"
#include "rdf/term_dictionary.h"
#include "rdf/triple.h"

namespace ganswer {
namespace rdf {

/// Well-known predicate names. The data generator and the QA pipeline agree
/// on these; the N-Triples parser maps full rdf:/rdfs: IRIs onto them.
inline constexpr std::string_view kTypePredicate = "rdf:type";
inline constexpr std::string_view kSubClassOfPredicate = "rdfs:subClassOf";
inline constexpr std::string_view kLabelPredicate = "rdfs:label";

/// One directed, predicate-labelled edge incident to a vertex.
struct Edge {
  TermId predicate = kInvalidTerm;
  TermId neighbor = kInvalidTerm;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class RdfGraph;

/// \brief Copy-on-write delta overlay over a finalized base graph — the
/// read-side substrate of the live ingestion subsystem (store/live).
///
/// A vertex the delta touched carries a fully merged (base + adds - deletes)
/// sorted adjacency run; every other vertex serves its base CSR run
/// untouched. Runs are shared_ptrs so successive epochs share the runs of
/// vertices a batch did not touch — building epoch N+1 from epoch N copies
/// two hash maps and re-merges only the batch's vertices, O(accumulated
/// delta), never O(base).
///
/// All fields are absolute (merged) values, not diffs: lookups are a single
/// hash probe with fallback to the base, no arithmetic at read time.
struct GraphOverlay {
  /// The immutable finalized base; pinned for the overlay's lifetime.
  std::shared_ptr<const RdfGraph> base;
  /// Merged sorted (predicate, neighbor) runs for touched vertices. A
  /// present-but-empty run masks the base (all of the vertex's edges in
  /// that direction were deleted).
  std::unordered_map<TermId, std::shared_ptr<const std::vector<Edge>>>
      out_runs;
  std::unordered_map<TermId, std::shared_ptr<const std::vector<Edge>>>
      in_runs;
  /// Absolute class status for every touched vertex (new vertices
  /// included; class-ness is a function of a vertex's own adjacency).
  std::unordered_map<TermId, bool> is_class;
  /// Absolute triple counts for predicates whose frequency changed.
  std::unordered_map<TermId, uint64_t> predicate_freq;
  /// The full ascending predicate list of the merged graph (small).
  std::vector<TermId> predicates;
  size_t num_triples = 0;
  /// Monotone upper bound on the true max degree (deletes do not shrink
  /// it); made exact again at compaction. Only /stats reports it.
  size_t max_degree = 0;
  /// Approximate heap bytes pinned by the runs and maps (for /stats).
  size_t approx_bytes = 0;
};

/// \brief In-memory RDF graph: dictionary-encoded triples with per-vertex
/// sorted adjacency in CSR form (out- and in-edges), plus the type
/// machinery the paper's match semantics need (class vertices, rdf:type
/// with subclass closure).
///
/// Adjacency is stored as two flat arrays per direction: one Edge array
/// holding every vertex's edges contiguously, sorted by (predicate,
/// neighbor) within a vertex, and one offset array indexed by vertex id.
/// OutEdges/InEdges return spans into these arrays. After Finalize() the
/// structure is immutable, so concurrent readers (the parallel miner and
/// matcher) share it without locks, and a hop touches one contiguous cache
/// run instead of chasing a per-vertex heap allocation.
///
/// The CSR arrays are PodColumns: a graph loaded from an mmap-ed snapshot
/// serves adjacency straight out of the file mapping (pages fault in on
/// first touch), while a built or bulk-loaded graph owns its arrays on the
/// heap. AddTriple + re-Finalize after an mmap-backed load transparently
/// migrates the columns to owned storage.
///
/// Vertex ids are TermIds from the owned TermDictionary, so graph ids and
/// dictionary ids can be used interchangeably.
///
/// Construction protocol: Intern terms / AddTriple in any order, then call
/// Finalize() once. Queries before Finalize() are undefined. Adding more
/// triples after Finalize() and finalizing again rebuilds the CSR from the
/// union of old and new triples.
class RdfGraph {
 public:
  RdfGraph();

  /// Overlay view constructor (store/live): serves merged base+delta
  /// adjacency through the normal span accessors, so every engine built on
  /// `const RdfGraph&` works over live data unchanged. \p dict is an
  /// extension dictionary over overlay->base->dict(), adopted by move; the
  /// resulting graph is finalized and immutable. Overlay graphs cannot be
  /// re-finalized or serialized — compaction materializes a flat graph
  /// instead. The non-live hot path pays one predictable overlay_ == null
  /// branch per accessor.
  RdfGraph(std::shared_ptr<const GraphOverlay> overlay, TermDictionary dict);

  RdfGraph(const RdfGraph&) = delete;
  RdfGraph& operator=(const RdfGraph&) = delete;
  RdfGraph(RdfGraph&&) = default;
  RdfGraph& operator=(RdfGraph&&) = default;

  /// True for a graph constructed as a live delta overlay.
  bool is_overlay() const { return overlay_ != nullptr; }
  /// The overlay, or nullptr for a flat graph.
  const GraphOverlay* overlay() const { return overlay_.get(); }

  TermDictionary& dict() { return dict_; }
  const TermDictionary& dict() const { return dict_; }

  /// Interns the three terms and records the triple. Duplicate triples are
  /// deduplicated at Finalize().
  void AddTriple(std::string_view subject, std::string_view predicate,
                 std::string_view object,
                 TermKind object_kind = TermKind::kIri);

  /// Records an already-encoded triple.
  void AddTriple(Triple t);

  /// Sorts and deduplicates adjacency, computes class/type info. Must be
  /// called exactly once after the last AddTriple.
  Status Finalize();
  bool finalized() const { return finalized_; }

  size_t NumTerms() const { return dict_.size(); }
  size_t NumTriples() const { return num_triples_; }
  size_t NumPredicates() const { return predicates_.size(); }
  size_t MaxDegree() const { return max_degree_; }

  /// Out-edges of \p v sorted by (predicate, neighbor).
  std::span<const Edge> OutEdges(TermId v) const;
  /// In-edges of \p v sorted by (predicate, neighbor); Edge::neighbor is the
  /// source vertex.
  std::span<const Edge> InEdges(TermId v) const;

  size_t OutDegree(TermId v) const { return OutEdges(v).size(); }
  size_t InDegree(TermId v) const { return InEdges(v).size(); }
  size_t Degree(TermId v) const { return OutDegree(v) + InDegree(v); }

  /// True when the exact triple <s, p, o> is present.
  bool HasTriple(TermId s, TermId p, TermId o) const;

  /// Objects o with <s, p, o> in the graph.
  std::vector<TermId> Objects(TermId s, TermId p) const;
  /// Subjects s with <s, p, o> in the graph.
  std::vector<TermId> Subjects(TermId p, TermId o) const;

  /// All distinct predicate ids used by at least one triple.
  std::span<const TermId> Predicates() const { return predicates_.span(); }

  /// True when \p v names a class: it appears as the object of an rdf:type
  /// triple or on either side of rdfs:subClassOf.
  bool IsClass(TermId v) const;

  /// True when \p v is an entity vertex (an IRI that is not a class and not
  /// a predicate-only term).
  bool IsEntity(TermId v) const;

  /// Direct rdf:type classes of \p v (no closure).
  std::vector<TermId> DirectTypes(TermId v) const;

  /// True when \p v has rdf:type \p cls, directly or through the
  /// rdfs:subClassOf closure.
  bool IsInstanceOf(TermId v, TermId cls) const;

  /// All entities whose (closed) type set contains \p cls.
  std::vector<TermId> InstancesOf(TermId cls) const;

  /// Super-classes of \p cls through rdfs:subClassOf, including \p cls.
  std::vector<TermId> SuperClassesOf(TermId cls) const;

  /// Number of triples whose predicate is \p p; 0 for unknown predicates.
  /// Used by join ordering and candidate pruning as a selectivity estimate.
  size_t PredicateFrequency(TermId p) const;

  /// Convenience for tests and examples: id of the IRI term with this
  /// text.
  std::optional<TermId> Find(std::string_view text) const {
    return dict_.Lookup(text);
  }
  /// Id of a term with this text of either kind (IRI preferred) — for
  /// callers handling user-provided names that may denote literals
  /// (nicknames, dates).
  std::optional<TermId> FindTerm(std::string_view text) const {
    return dict_.LookupAny(text);
  }

  TermId type_predicate() const { return type_pred_; }
  TermId subclass_predicate() const { return subclass_pred_; }
  TermId label_predicate() const { return label_pred_; }

  /// Heap bytes pinned by the CSR columns and dictionary text storage, and
  /// bytes served zero-copy out of a snapshot mapping. Used by /stats to
  /// report mapped-vs-heap footprint.
  size_t heap_bytes() const;
  size_t view_bytes() const;

  /// Snapshot serialization of a finalized graph: the term dictionary plus
  /// the flat CSR arrays and class bitmap, so loading restores a servable
  /// graph with bulk reads — no re-interning, no re-sorting, no Finalize().
  /// With \p compressed the CSR columns are delta-varint coded (neighbor
  /// deltas within each sorted per-vertex run) and the dictionary is
  /// front-coded — several times smaller on disk, decoded on load.
  Status SaveBinary(BinaryWriter* out, bool compressed = false) const;
  /// Replaces the contents with a previously saved graph; the loaded graph
  /// is immediately finalized. Structural invariants (offset monotonicity,
  /// edge bounds) are validated so a corrupt payload is rejected. A raw
  /// payload read through a view-allowing reader stays zero-copy.
  Status LoadBinary(BinaryReader* in, bool compressed = false);

 private:
  Status ReadRaw(BinaryReader* in);
  Status ReadCompressed(BinaryReader* in);
  Status ValidateLoaded();

  TermDictionary dict_;
  std::vector<Triple> pending_;
  // CSR adjacency: edges of vertex v live in *_edges_[*_offsets_[v] ..
  // *_offsets_[v + 1]), sorted by (predicate, neighbor). Offset arrays have
  // num_vertices + 1 entries; empty before the first Finalize().
  PodColumn<Edge> out_edges_;
  PodColumn<uint64_t> out_offsets_;
  PodColumn<Edge> in_edges_;
  PodColumn<uint64_t> in_offsets_;
  std::vector<bool> is_class_;
  PodColumn<TermId> predicates_;
  PodColumn<uint64_t> predicate_freq_;  // indexed by TermId, 0 if not a pred
  size_t num_triples_ = 0;
  size_t max_degree_ = 0;
  bool finalized_ = false;
  TermId type_pred_ = kInvalidTerm;
  TermId subclass_pred_ = kInvalidTerm;
  TermId label_pred_ = kInvalidTerm;
  // Live delta overlay; null for flat graphs (the common case). When set,
  // the CSR columns above are empty and every adjacency/class/frequency
  // accessor consults the overlay maps with fallback to overlay_->base.
  std::shared_ptr<const GraphOverlay> overlay_;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_RDF_GRAPH_H_
