#include "rdf/rdf_graph.h"

#include <algorithm>
#include <queue>

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

namespace {

// A CSR offset array must have one entry per vertex plus one, start at 0,
// be non-decreasing, and end at the edge count.
Status ValidateOffsets(const std::vector<size_t>& offsets, size_t num_vertices,
                       size_t num_edges, const char* which) {
  if (offsets.size() != num_vertices + 1 || offsets.front() != 0 ||
      offsets.back() != num_edges) {
    return Status::Corruption(std::string(which) + " offset array malformed");
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::Corruption(std::string(which) + " offsets not monotone");
    }
  }
  return Status::Ok();
}

}  // namespace

RdfGraph::RdfGraph() {
  // Reserve the well-known predicates up front so their ids exist even for
  // graphs that never mention them.
  type_pred_ = dict_.Intern(kTypePredicate);
  subclass_pred_ = dict_.Intern(kSubClassOfPredicate);
  label_pred_ = dict_.Intern(kLabelPredicate);
}

void RdfGraph::AddTriple(std::string_view subject, std::string_view predicate,
                         std::string_view object, TermKind object_kind) {
  Triple t;
  t.subject = dict_.Intern(subject);
  t.predicate = dict_.Intern(predicate);
  t.object = dict_.Intern(object, object_kind);
  AddTriple(t);
}

void RdfGraph::AddTriple(Triple t) {
  pending_.push_back(t);
  finalized_ = false;
}

Status RdfGraph::Finalize() {
  if (finalized_ && pending_.empty()) return Status::Ok();

  for (const Triple& t : pending_) {
    if (t.subject == kInvalidTerm || t.predicate == kInvalidTerm ||
        t.object == kInvalidTerm) {
      return Status::InvalidArgument("triple with invalid term id");
    }
  }

  // Gather every triple: the ones already flattened into the CSR (from a
  // previous Finalize) plus the pending batch.
  std::vector<Triple> triples;
  triples.reserve(num_triples_ + pending_.size());
  for (size_t v = 0; v + 1 < out_offsets_.size(); ++v) {
    for (size_t i = out_offsets_[v]; i < out_offsets_[v + 1]; ++i) {
      triples.push_back({static_cast<TermId>(v), out_edges_[i].predicate,
                         out_edges_[i].neighbor});
    }
  }
  triples.insert(triples.end(), pending_.begin(), pending_.end());
  pending_.clear();
  pending_.shrink_to_fit();

  // Size the vertex space to the whole dictionary (so unknown lookups are
  // safe) and to the largest id any triple mentions.
  size_t n = dict_.size();
  for (const Triple& t : triples) {
    size_t top = std::max({t.subject, t.object, t.predicate});
    n = std::max(n, top + 1);
  }

  // Out-CSR: Triple's (subject, predicate, object) order lays each
  // subject's edges out contiguously, already sorted by (predicate,
  // neighbor).
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  num_triples_ = triples.size();

  predicate_freq_.assign(n, 0);
  out_offsets_.assign(n + 1, 0);
  for (const Triple& t : triples) {
    ++out_offsets_[t.subject + 1];
    ++predicate_freq_[t.predicate];
  }
  for (size_t v = 0; v < n; ++v) out_offsets_[v + 1] += out_offsets_[v];
  out_edges_.clear();
  out_edges_.reserve(num_triples_);
  for (const Triple& t : triples) out_edges_.push_back({t.predicate, t.object});

  // In-CSR: counting sort by object, then per-vertex sort so each run is
  // ordered by (predicate, neighbor) like before.
  in_offsets_.assign(n + 1, 0);
  for (const Triple& t : triples) ++in_offsets_[t.object + 1];
  for (size_t v = 0; v < n; ++v) in_offsets_[v + 1] += in_offsets_[v];
  in_edges_.assign(num_triples_, Edge{});
  {
    std::vector<size_t> fill(in_offsets_.begin(), in_offsets_.end() - 1);
    for (const Triple& t : triples) {
      in_edges_[fill[t.object]++] = {t.predicate, t.subject};
    }
  }
  for (size_t v = 0; v < n; ++v) {
    std::sort(in_edges_.begin() + in_offsets_[v],
              in_edges_.begin() + in_offsets_[v + 1]);
  }

  max_degree_ = 0;
  for (size_t v = 0; v < n; ++v) {
    size_t deg = (out_offsets_[v + 1] - out_offsets_[v]) +
                 (in_offsets_[v + 1] - in_offsets_[v]);
    max_degree_ = std::max(max_degree_, deg);
  }

  predicates_.clear();
  for (TermId p = 0; p < predicate_freq_.size(); ++p) {
    if (predicate_freq_[p] > 0) predicates_.push_back(p);
  }

  // A vertex is a class iff it is the object of rdf:type or touches
  // rdfs:subClassOf on either side.
  is_class_.assign(n, false);
  for (const Triple& t : triples) {
    if (t.predicate == type_pred_) is_class_[t.object] = true;
    if (t.predicate == subclass_pred_) {
      is_class_[t.subject] = true;
      is_class_[t.object] = true;
    }
  }

  finalized_ = true;
  return Status::Ok();
}

std::span<const Edge> RdfGraph::OutEdges(TermId v) const {
  size_t idx = static_cast<size_t>(v);
  if (idx + 1 >= out_offsets_.size()) return {};
  return {out_edges_.data() + out_offsets_[idx],
          out_offsets_[idx + 1] - out_offsets_[idx]};
}

std::span<const Edge> RdfGraph::InEdges(TermId v) const {
  size_t idx = static_cast<size_t>(v);
  if (idx + 1 >= in_offsets_.size()) return {};
  return {in_edges_.data() + in_offsets_[idx],
          in_offsets_[idx + 1] - in_offsets_[idx]};
}

bool RdfGraph::HasTriple(TermId s, TermId p, TermId o) const {
  auto edges = OutEdges(s);
  Edge key{p, o};
  return std::binary_search(edges.begin(), edges.end(), key);
}

std::vector<TermId> RdfGraph::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  auto edges = OutEdges(s);
  auto lo = std::lower_bound(edges.begin(), edges.end(), Edge{p, 0});
  for (auto it = lo; it != edges.end() && it->predicate == p; ++it) {
    out.push_back(it->neighbor);
  }
  return out;
}

std::vector<TermId> RdfGraph::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  auto edges = InEdges(o);
  auto lo = std::lower_bound(edges.begin(), edges.end(), Edge{p, 0});
  for (auto it = lo; it != edges.end() && it->predicate == p; ++it) {
    out.push_back(it->neighbor);
  }
  return out;
}

bool RdfGraph::IsClass(TermId v) const {
  return v < is_class_.size() && is_class_[v];
}

bool RdfGraph::IsEntity(TermId v) const {
  if (v >= dict_.size() || dict_.IsLiteral(v)) return false;
  if (IsClass(v)) return false;
  // Predicate-only terms (never appear as subject or object) are not
  // entities.
  return Degree(v) > 0;
}

std::vector<TermId> RdfGraph::DirectTypes(TermId v) const {
  return Objects(v, type_pred_);
}

std::vector<TermId> RdfGraph::SuperClassesOf(TermId cls) const {
  std::vector<TermId> out;
  std::vector<bool> seen(dict_.size(), false);
  std::queue<TermId> q;
  q.push(cls);
  if (cls < seen.size()) seen[cls] = true;
  while (!q.empty()) {
    TermId c = q.front();
    q.pop();
    out.push_back(c);
    for (TermId super : Objects(c, subclass_pred_)) {
      if (!seen[super]) {
        seen[super] = true;
        q.push(super);
      }
    }
  }
  return out;
}

bool RdfGraph::IsInstanceOf(TermId v, TermId cls) const {
  for (TermId direct : DirectTypes(v)) {
    if (direct == cls) return true;
    for (TermId super : SuperClassesOf(direct)) {
      if (super == cls) return true;
    }
  }
  return false;
}

std::vector<TermId> RdfGraph::InstancesOf(TermId cls) const {
  // Instances of cls and of every subclass of cls.
  std::vector<TermId> result;
  std::vector<bool> seen_cls(dict_.size(), false);
  std::vector<bool> seen_inst(dict_.size(), false);
  std::queue<TermId> q;
  q.push(cls);
  if (cls < seen_cls.size()) seen_cls[cls] = true;
  while (!q.empty()) {
    TermId c = q.front();
    q.pop();
    for (TermId inst : Subjects(type_pred_, c)) {
      if (!seen_inst[inst]) {
        seen_inst[inst] = true;
        result.push_back(inst);
      }
    }
    for (TermId sub : Subjects(subclass_pred_, c)) {
      if (!seen_cls[sub]) {
        seen_cls[sub] = true;
        q.push(sub);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

Status RdfGraph::SaveBinary(BinaryWriter* out) const {
  if (!finalized_) {
    return Status::InvalidArgument("SaveBinary requires a finalized graph");
  }
  dict_.SaveBinary(out);
  out->WriteU64(num_triples_);
  out->WriteU64(max_degree_);
  out->WriteU32(type_pred_);
  out->WriteU32(subclass_pred_);
  out->WriteU32(label_pred_);
  // size_t offsets are written as u64 so the format does not depend on the
  // host's size_t width.
  auto write_offsets = [&](const std::vector<size_t>& offsets) {
    std::vector<uint64_t> v(offsets.begin(), offsets.end());
    out->WritePodVector(v);
  };
  out->WritePodVector(out_edges_);
  write_offsets(out_offsets_);
  out->WritePodVector(in_edges_);
  write_offsets(in_offsets_);
  out->WriteBoolVector(is_class_);
  out->WritePodVector(predicates_);
  write_offsets(predicate_freq_);
  return Status::Ok();
}

Status RdfGraph::LoadBinary(BinaryReader* in) {
  GANSWER_RETURN_NOT_OK(dict_.LoadBinary(in));
  uint64_t num_triples = 0, max_degree = 0;
  GANSWER_RETURN_NOT_OK(in->ReadU64(&num_triples));
  GANSWER_RETURN_NOT_OK(in->ReadU64(&max_degree));
  GANSWER_RETURN_NOT_OK(in->ReadU32(&type_pred_));
  GANSWER_RETURN_NOT_OK(in->ReadU32(&subclass_pred_));
  GANSWER_RETURN_NOT_OK(in->ReadU32(&label_pred_));
  auto read_offsets = [&](std::vector<size_t>* offsets) {
    std::vector<uint64_t> v;
    GANSWER_RETURN_NOT_OK(in->ReadPodVector(&v));
    offsets->assign(v.begin(), v.end());
    return Status::Ok();
  };
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&out_edges_));
  GANSWER_RETURN_NOT_OK(read_offsets(&out_offsets_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&in_edges_));
  GANSWER_RETURN_NOT_OK(read_offsets(&in_offsets_));
  GANSWER_RETURN_NOT_OK(in->ReadBoolVector(&is_class_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&predicates_));
  GANSWER_RETURN_NOT_OK(read_offsets(&predicate_freq_));

  num_triples_ = num_triples;
  max_degree_ = max_degree;
  size_t n = out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  if (n < dict_.size() || out_edges_.size() != num_triples_ ||
      in_edges_.size() != num_triples_) {
    return Status::Corruption("graph CSR sizes inconsistent");
  }
  if (type_pred_ >= n || subclass_pred_ >= n || label_pred_ >= n) {
    return Status::Corruption("well-known predicate id out of range");
  }
  GANSWER_RETURN_NOT_OK(ValidateOffsets(out_offsets_, n, out_edges_.size(),
                                        "out-edge"));
  GANSWER_RETURN_NOT_OK(ValidateOffsets(in_offsets_, n, in_edges_.size(),
                                        "in-edge"));
  if (is_class_.size() != n || predicate_freq_.size() != n ||
      in_offsets_.size() != out_offsets_.size()) {
    return Status::Corruption("graph auxiliary array sizes inconsistent");
  }
  for (const Edge& e : out_edges_) {
    if (e.predicate >= n || e.neighbor >= n) {
      return Status::Corruption("graph edge references unknown vertex");
    }
  }
  for (TermId p : predicates_) {
    if (p >= n) return Status::Corruption("predicate id out of range");
  }
  pending_.clear();
  pending_.shrink_to_fit();
  finalized_ = true;
  return Status::Ok();
}

size_t RdfGraph::PredicateFrequency(TermId p) const {
  if (p >= predicate_freq_.size()) return 0;
  return predicate_freq_[p];
}

}  // namespace rdf
}  // namespace ganswer
