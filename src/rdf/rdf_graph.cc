#include "rdf/rdf_graph.h"

#include <algorithm>
#include <queue>

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

namespace {

// A CSR offset array must have one entry per vertex plus one, start at 0,
// be non-decreasing, and end at the edge count.
Status ValidateOffsets(const PodColumn<uint64_t>& offsets, size_t num_vertices,
                       size_t num_edges, const char* which) {
  if (offsets.size() != num_vertices + 1 || offsets.front() != 0 ||
      offsets.back() != num_edges) {
    return Status::Corruption(std::string(which) + " offset array malformed");
  }
  for (size_t v = 0; v < num_vertices; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      return Status::Corruption(std::string(which) + " offsets not monotone");
    }
  }
  return Status::Ok();
}

// Compressed adjacency: within a vertex the run is sorted by (predicate,
// neighbor), so predicates are delta-coded; neighbors restart absolute on
// every predicate change (and on the first edge of the vertex, where a
// predicate delta of 0 is legitimate — rdf:type is TermId 0) and are
// strictly-increasing deltas within a (vertex, predicate) group.
void EncodeEdgeRuns(BinaryWriter* out, const PodColumn<Edge>& edges,
                    const PodColumn<uint64_t>& offsets) {
  for (size_t v = 0; v + 1 < offsets.size(); ++v) {
    TermId prev_p = 0;
    TermId prev_n = 0;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      const Edge& e = edges[i];
      uint64_t dp = static_cast<uint64_t>(e.predicate) - prev_p;
      out->WriteVarint(dp);
      if (i == offsets[v] || dp != 0) {
        out->WriteVarint(e.neighbor);
      } else {
        out->WriteVarint(static_cast<uint64_t>(e.neighbor) - prev_n);
      }
      prev_p = e.predicate;
      prev_n = e.neighbor;
    }
  }
}

Status DecodeEdgeRuns(BinaryReader* in, const std::vector<uint64_t>& offsets,
                      std::vector<Edge>* edges) {
  uint64_t total = offsets.empty() ? 0 : offsets.back();
  if (total > in->remaining()) {
    // Every encoded edge costs at least two bytes; one is already a safe
    // lower bound to reject absurd counts before allocating.
    return Status::Corruption("edge run count exceeds remaining bytes");
  }
  edges->clear();
  edges->reserve(total);
  for (size_t v = 0; v + 1 < offsets.size(); ++v) {
    uint64_t prev_p = 0;
    uint64_t prev_n = 0;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      uint64_t dp = 0, nv = 0;
      GANSWER_RETURN_NOT_OK(in->ReadVarint(&dp));
      GANSWER_RETURN_NOT_OK(in->ReadVarint(&nv));
      uint64_t p = prev_p + dp;
      uint64_t n = (i == offsets[v] || dp != 0) ? nv : prev_n + nv;
      if (p > kInvalidTerm - 1 || n > kInvalidTerm - 1) {
        return Status::Corruption("edge run term id overflow");
      }
      edges->push_back({static_cast<TermId>(p), static_cast<TermId>(n)});
      prev_p = p;
      prev_n = n;
    }
  }
  return Status::Ok();
}

}  // namespace

RdfGraph::RdfGraph() {
  // Reserve the well-known predicates up front so their ids exist even for
  // graphs that never mention them.
  type_pred_ = dict_.Intern(kTypePredicate);
  subclass_pred_ = dict_.Intern(kSubClassOfPredicate);
  label_pred_ = dict_.Intern(kLabelPredicate);
}

RdfGraph::RdfGraph(std::shared_ptr<const GraphOverlay> overlay,
                   TermDictionary dict)
    : dict_(std::move(dict)), overlay_(std::move(overlay)) {
  const RdfGraph& base = *overlay_->base;
  type_pred_ = base.type_pred_;
  subclass_pred_ = base.subclass_pred_;
  label_pred_ = base.label_pred_;
  num_triples_ = overlay_->num_triples;
  max_degree_ = overlay_->max_degree;
  // The merged predicate list is small; own a copy so Predicates() and
  // NumPredicates() need no overlay branch.
  predicates_.Assign(std::vector<TermId>(overlay_->predicates));
  finalized_ = true;
}

void RdfGraph::AddTriple(std::string_view subject, std::string_view predicate,
                         std::string_view object, TermKind object_kind) {
  Triple t;
  t.subject = dict_.Intern(subject);
  t.predicate = dict_.Intern(predicate);
  t.object = dict_.Intern(object, object_kind);
  AddTriple(t);
}

void RdfGraph::AddTriple(Triple t) {
  pending_.push_back(t);
  finalized_ = false;
}

Status RdfGraph::Finalize() {
  if (overlay_ != nullptr) {
    return Status::InvalidArgument("overlay graphs are immutable");
  }
  if (finalized_ && pending_.empty()) return Status::Ok();

  for (const Triple& t : pending_) {
    if (t.subject == kInvalidTerm || t.predicate == kInvalidTerm ||
        t.object == kInvalidTerm) {
      return Status::InvalidArgument("triple with invalid term id");
    }
  }

  // Gather every triple: the ones already flattened into the CSR (from a
  // previous Finalize) plus the pending batch.
  std::vector<Triple> triples;
  triples.reserve(num_triples_ + pending_.size());
  for (size_t v = 0; v + 1 < out_offsets_.size(); ++v) {
    for (uint64_t i = out_offsets_[v]; i < out_offsets_[v + 1]; ++i) {
      triples.push_back({static_cast<TermId>(v), out_edges_[i].predicate,
                         out_edges_[i].neighbor});
    }
  }
  triples.insert(triples.end(), pending_.begin(), pending_.end());
  pending_.clear();
  pending_.shrink_to_fit();

  // Size the vertex space to the whole dictionary (so unknown lookups are
  // safe) and to the largest id any triple mentions.
  size_t n = dict_.size();
  for (const Triple& t : triples) {
    size_t top = std::max({t.subject, t.object, t.predicate});
    n = std::max(n, top + 1);
  }

  // Out-CSR: Triple's (subject, predicate, object) order lays each
  // subject's edges out contiguously, already sorted by (predicate,
  // neighbor).
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  num_triples_ = triples.size();

  std::vector<uint64_t> predicate_freq(n, 0);
  std::vector<uint64_t> out_offsets(n + 1, 0);
  for (const Triple& t : triples) {
    ++out_offsets[t.subject + 1];
    ++predicate_freq[t.predicate];
  }
  for (size_t v = 0; v < n; ++v) out_offsets[v + 1] += out_offsets[v];
  std::vector<Edge> out_edges;
  out_edges.reserve(num_triples_);
  for (const Triple& t : triples) out_edges.push_back({t.predicate, t.object});

  // In-CSR: counting sort by object, then per-vertex sort so each run is
  // ordered by (predicate, neighbor) like before.
  std::vector<uint64_t> in_offsets(n + 1, 0);
  for (const Triple& t : triples) ++in_offsets[t.object + 1];
  for (size_t v = 0; v < n; ++v) in_offsets[v + 1] += in_offsets[v];
  std::vector<Edge> in_edges(num_triples_, Edge{});
  {
    std::vector<uint64_t> fill(in_offsets.begin(), in_offsets.end() - 1);
    for (const Triple& t : triples) {
      in_edges[fill[t.object]++] = {t.predicate, t.subject};
    }
  }
  for (size_t v = 0; v < n; ++v) {
    std::sort(in_edges.begin() + in_offsets[v],
              in_edges.begin() + in_offsets[v + 1]);
  }

  max_degree_ = 0;
  for (size_t v = 0; v < n; ++v) {
    size_t deg = (out_offsets[v + 1] - out_offsets[v]) +
                 (in_offsets[v + 1] - in_offsets[v]);
    max_degree_ = std::max(max_degree_, deg);
  }

  std::vector<TermId> predicates;
  for (TermId p = 0; p < predicate_freq.size(); ++p) {
    if (predicate_freq[p] > 0) predicates.push_back(p);
  }

  // A vertex is a class iff it is the object of rdf:type or touches
  // rdfs:subClassOf on either side.
  is_class_.assign(n, false);
  for (const Triple& t : triples) {
    if (t.predicate == type_pred_) is_class_[t.object] = true;
    if (t.predicate == subclass_pred_) {
      is_class_[t.subject] = true;
      is_class_[t.object] = true;
    }
  }

  out_edges_.Assign(std::move(out_edges));
  out_offsets_.Assign(std::move(out_offsets));
  in_edges_.Assign(std::move(in_edges));
  in_offsets_.Assign(std::move(in_offsets));
  predicates_.Assign(std::move(predicates));
  predicate_freq_.Assign(std::move(predicate_freq));

  finalized_ = true;
  return Status::Ok();
}

std::span<const Edge> RdfGraph::OutEdges(TermId v) const {
  if (overlay_ != nullptr) [[unlikely]] {
    auto it = overlay_->out_runs.find(v);
    if (it != overlay_->out_runs.end()) {
      return {it->second->data(), it->second->size()};
    }
    return overlay_->base->OutEdges(v);
  }
  size_t idx = static_cast<size_t>(v);
  if (idx + 1 >= out_offsets_.size()) return {};
  return {out_edges_.data() + out_offsets_[idx],
          out_offsets_[idx + 1] - out_offsets_[idx]};
}

std::span<const Edge> RdfGraph::InEdges(TermId v) const {
  if (overlay_ != nullptr) [[unlikely]] {
    auto it = overlay_->in_runs.find(v);
    if (it != overlay_->in_runs.end()) {
      return {it->second->data(), it->second->size()};
    }
    return overlay_->base->InEdges(v);
  }
  size_t idx = static_cast<size_t>(v);
  if (idx + 1 >= in_offsets_.size()) return {};
  return {in_edges_.data() + in_offsets_[idx],
          in_offsets_[idx + 1] - in_offsets_[idx]};
}

bool RdfGraph::HasTriple(TermId s, TermId p, TermId o) const {
  auto edges = OutEdges(s);
  Edge key{p, o};
  return std::binary_search(edges.begin(), edges.end(), key);
}

std::vector<TermId> RdfGraph::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  auto edges = OutEdges(s);
  auto lo = std::lower_bound(edges.begin(), edges.end(), Edge{p, 0});
  for (auto it = lo; it != edges.end() && it->predicate == p; ++it) {
    out.push_back(it->neighbor);
  }
  return out;
}

std::vector<TermId> RdfGraph::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  auto edges = InEdges(o);
  auto lo = std::lower_bound(edges.begin(), edges.end(), Edge{p, 0});
  for (auto it = lo; it != edges.end() && it->predicate == p; ++it) {
    out.push_back(it->neighbor);
  }
  return out;
}

bool RdfGraph::IsClass(TermId v) const {
  if (overlay_ != nullptr) [[unlikely]] {
    auto it = overlay_->is_class.find(v);
    if (it != overlay_->is_class.end()) return it->second;
    return overlay_->base->IsClass(v);
  }
  return v < is_class_.size() && is_class_[v];
}

bool RdfGraph::IsEntity(TermId v) const {
  if (v >= dict_.size() || dict_.IsLiteral(v)) return false;
  if (IsClass(v)) return false;
  // Predicate-only terms (never appear as subject or object) are not
  // entities.
  return Degree(v) > 0;
}

std::vector<TermId> RdfGraph::DirectTypes(TermId v) const {
  return Objects(v, type_pred_);
}

std::vector<TermId> RdfGraph::SuperClassesOf(TermId cls) const {
  std::vector<TermId> out;
  std::vector<bool> seen(dict_.size(), false);
  std::queue<TermId> q;
  q.push(cls);
  if (cls < seen.size()) seen[cls] = true;
  while (!q.empty()) {
    TermId c = q.front();
    q.pop();
    out.push_back(c);
    for (TermId super : Objects(c, subclass_pred_)) {
      if (!seen[super]) {
        seen[super] = true;
        q.push(super);
      }
    }
  }
  return out;
}

bool RdfGraph::IsInstanceOf(TermId v, TermId cls) const {
  for (TermId direct : DirectTypes(v)) {
    if (direct == cls) return true;
    for (TermId super : SuperClassesOf(direct)) {
      if (super == cls) return true;
    }
  }
  return false;
}

std::vector<TermId> RdfGraph::InstancesOf(TermId cls) const {
  // Instances of cls and of every subclass of cls.
  std::vector<TermId> result;
  std::vector<bool> seen_cls(dict_.size(), false);
  std::vector<bool> seen_inst(dict_.size(), false);
  std::queue<TermId> q;
  q.push(cls);
  if (cls < seen_cls.size()) seen_cls[cls] = true;
  while (!q.empty()) {
    TermId c = q.front();
    q.pop();
    for (TermId inst : Subjects(type_pred_, c)) {
      if (!seen_inst[inst]) {
        seen_inst[inst] = true;
        result.push_back(inst);
      }
    }
    for (TermId sub : Subjects(subclass_pred_, c)) {
      if (!seen_cls[sub]) {
        seen_cls[sub] = true;
        q.push(sub);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

size_t RdfGraph::heap_bytes() const {
  if (overlay_ != nullptr) {
    // The base's bytes are reported by its own snapshot accounting; this
    // graph pins the extension dictionary, its predicate list and the
    // delta runs/maps.
    return dict_.heap_bytes() + predicates_.heap_bytes() +
           overlay_->approx_bytes;
  }
  return dict_.heap_bytes() + out_edges_.heap_bytes() +
         out_offsets_.heap_bytes() + in_edges_.heap_bytes() +
         in_offsets_.heap_bytes() + predicates_.heap_bytes() +
         predicate_freq_.heap_bytes() + is_class_.size() / 8;
}

size_t RdfGraph::view_bytes() const {
  if (overlay_ != nullptr) return overlay_->base->view_bytes();
  return out_edges_.view_bytes() + out_offsets_.view_bytes() +
         in_edges_.view_bytes() + in_offsets_.view_bytes() +
         predicates_.view_bytes() + predicate_freq_.view_bytes();
}

Status RdfGraph::SaveBinary(BinaryWriter* out, bool compressed) const {
  if (!finalized_) {
    return Status::InvalidArgument("SaveBinary requires a finalized graph");
  }
  if (overlay_ != nullptr) {
    return Status::InvalidArgument(
        "overlay graphs are not serializable; compact to a flat graph first");
  }
  if (!compressed) {
    dict_.SaveBinary(out);
    out->WriteU64(num_triples_);
    out->WriteU64(max_degree_);
    out->WriteU32(type_pred_);
    out->WriteU32(subclass_pred_);
    out->WriteU32(label_pred_);
    out->WritePodSpan(out_edges_.span());
    out->WritePodSpan(out_offsets_.span());
    out->WritePodSpan(in_edges_.span());
    out->WritePodSpan(in_offsets_.span());
    out->WriteBoolVector(is_class_);
    out->WritePodSpan(predicates_.span());
    out->WritePodSpan(predicate_freq_.span());
    return Status::Ok();
  }
  dict_.SaveFrontCoded(out);
  out->WriteVarint(num_triples_);
  out->WriteVarint(max_degree_);
  out->WriteVarint(type_pred_);
  out->WriteVarint(subclass_pred_);
  out->WriteVarint(label_pred_);
  WriteDeltaVarints<uint64_t>(*out, out_offsets_.span());
  EncodeEdgeRuns(out, out_edges_, out_offsets_);
  WriteDeltaVarints<uint64_t>(*out, in_offsets_.span());
  EncodeEdgeRuns(out, in_edges_, in_offsets_);
  out->WriteBoolVector(is_class_);
  WriteDeltaVarints<TermId>(*out, predicates_.span());
  // Frequencies are not sorted; plain varints (they are small counts).
  out->WriteVarint(predicate_freq_.size());
  for (uint64_t f : predicate_freq_) out->WriteVarint(f);
  return Status::Ok();
}

Status RdfGraph::ReadRaw(BinaryReader* in) {
  GANSWER_RETURN_NOT_OK(dict_.LoadBinary(in));
  uint64_t num_triples = 0, max_degree = 0;
  GANSWER_RETURN_NOT_OK(in->ReadU64(&num_triples));
  GANSWER_RETURN_NOT_OK(in->ReadU64(&max_degree));
  GANSWER_RETURN_NOT_OK(in->ReadU32(&type_pred_));
  GANSWER_RETURN_NOT_OK(in->ReadU32(&subclass_pred_));
  GANSWER_RETURN_NOT_OK(in->ReadU32(&label_pred_));
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&out_edges_));
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&out_offsets_));
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&in_edges_));
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&in_offsets_));
  GANSWER_RETURN_NOT_OK(in->ReadBoolVector(&is_class_));
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&predicates_));
  GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&predicate_freq_));
  num_triples_ = num_triples;
  max_degree_ = max_degree;
  return Status::Ok();
}

Status RdfGraph::ReadCompressed(BinaryReader* in) {
  GANSWER_RETURN_NOT_OK(dict_.LoadFrontCoded(in));
  uint64_t num_triples = 0, max_degree = 0;
  uint64_t type_pred = 0, subclass_pred = 0, label_pred = 0;
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_triples));
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&max_degree));
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&type_pred));
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&subclass_pred));
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&label_pred));
  if (type_pred >= kInvalidTerm || subclass_pred >= kInvalidTerm ||
      label_pred >= kInvalidTerm) {
    return Status::Corruption("well-known predicate id overflow");
  }
  type_pred_ = static_cast<TermId>(type_pred);
  subclass_pred_ = static_cast<TermId>(subclass_pred);
  label_pred_ = static_cast<TermId>(label_pred);

  std::vector<uint64_t> out_offsets, in_offsets;
  std::vector<Edge> out_edges, in_edges;
  GANSWER_RETURN_NOT_OK(ReadDeltaVarints<uint64_t>(*in, &out_offsets));
  GANSWER_RETURN_NOT_OK(DecodeEdgeRuns(in, out_offsets, &out_edges));
  GANSWER_RETURN_NOT_OK(ReadDeltaVarints<uint64_t>(*in, &in_offsets));
  GANSWER_RETURN_NOT_OK(DecodeEdgeRuns(in, in_offsets, &in_edges));
  GANSWER_RETURN_NOT_OK(in->ReadBoolVector(&is_class_));
  std::vector<TermId> predicates;
  GANSWER_RETURN_NOT_OK(ReadDeltaVarints<TermId>(*in, &predicates));
  uint64_t freq_count = 0;
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&freq_count));
  if (freq_count > in->remaining()) {
    return Status::Corruption("frequency count exceeds remaining bytes");
  }
  std::vector<uint64_t> predicate_freq;
  predicate_freq.reserve(freq_count);
  for (uint64_t i = 0; i < freq_count; ++i) {
    uint64_t f = 0;
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&f));
    predicate_freq.push_back(f);
  }

  out_edges_.Assign(std::move(out_edges));
  out_offsets_.Assign(std::move(out_offsets));
  in_edges_.Assign(std::move(in_edges));
  in_offsets_.Assign(std::move(in_offsets));
  predicates_.Assign(std::move(predicates));
  predicate_freq_.Assign(std::move(predicate_freq));
  num_triples_ = num_triples;
  max_degree_ = max_degree;
  return Status::Ok();
}

Status RdfGraph::LoadBinary(BinaryReader* in, bool compressed) {
  GANSWER_RETURN_NOT_OK(compressed ? ReadCompressed(in) : ReadRaw(in));
  return ValidateLoaded();
}

Status RdfGraph::ValidateLoaded() {
  size_t n = out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  if (n < dict_.size() || out_edges_.size() != num_triples_ ||
      in_edges_.size() != num_triples_) {
    return Status::Corruption("graph CSR sizes inconsistent");
  }
  if (type_pred_ >= n || subclass_pred_ >= n || label_pred_ >= n) {
    return Status::Corruption("well-known predicate id out of range");
  }
  GANSWER_RETURN_NOT_OK(ValidateOffsets(out_offsets_, n, out_edges_.size(),
                                        "out-edge"));
  GANSWER_RETURN_NOT_OK(ValidateOffsets(in_offsets_, n, in_edges_.size(),
                                        "in-edge"));
  if (is_class_.size() != n || predicate_freq_.size() != n ||
      in_offsets_.size() != out_offsets_.size()) {
    return Status::Corruption("graph auxiliary array sizes inconsistent");
  }
  for (const Edge& e : out_edges_) {
    if (e.predicate >= n || e.neighbor >= n) {
      return Status::Corruption("graph edge references unknown vertex");
    }
  }
  for (TermId p : predicates_) {
    if (p >= n) return Status::Corruption("predicate id out of range");
  }
  pending_.clear();
  pending_.shrink_to_fit();
  finalized_ = true;
  return Status::Ok();
}

size_t RdfGraph::PredicateFrequency(TermId p) const {
  if (overlay_ != nullptr) [[unlikely]] {
    auto it = overlay_->predicate_freq.find(p);
    if (it != overlay_->predicate_freq.end()) return it->second;
    return overlay_->base->PredicateFrequency(p);
  }
  if (p >= predicate_freq_.size()) return 0;
  return predicate_freq_[p];
}

}  // namespace rdf
}  // namespace ganswer
