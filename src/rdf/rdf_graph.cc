#include "rdf/rdf_graph.h"

#include <algorithm>
#include <queue>

namespace ganswer {
namespace rdf {

RdfGraph::RdfGraph() {
  // Reserve the well-known predicates up front so their ids exist even for
  // graphs that never mention them.
  type_pred_ = dict_.Intern(kTypePredicate);
  subclass_pred_ = dict_.Intern(kSubClassOfPredicate);
  label_pred_ = dict_.Intern(kLabelPredicate);
}

void RdfGraph::AddTriple(std::string_view subject, std::string_view predicate,
                         std::string_view object, TermKind object_kind) {
  Triple t;
  t.subject = dict_.Intern(subject);
  t.predicate = dict_.Intern(predicate);
  t.object = dict_.Intern(object, object_kind);
  AddTriple(t);
}

void RdfGraph::AddTriple(Triple t) {
  pending_.push_back(t);
  finalized_ = false;
}

void RdfGraph::EnsureVertex(TermId v) {
  if (out_.size() <= v) {
    out_.resize(v + 1);
    in_.resize(v + 1);
  }
}

Status RdfGraph::Finalize() {
  if (finalized_ && pending_.empty()) return Status::Ok();

  // Size vectors to the whole dictionary so unknown lookups are safe.
  size_t n = dict_.size();
  if (out_.size() < n) {
    out_.resize(n);
    in_.resize(n);
  }
  if (predicate_freq_.size() < n) predicate_freq_.resize(n, 0);

  for (const Triple& t : pending_) {
    if (t.subject == kInvalidTerm || t.predicate == kInvalidTerm ||
        t.object == kInvalidTerm) {
      return Status::InvalidArgument("triple with invalid term id");
    }
    EnsureVertex(std::max({t.subject, t.object, t.predicate}));
    out_[t.subject].push_back({t.predicate, t.object});
    in_[t.object].push_back({t.predicate, t.subject});
  }
  pending_.clear();
  pending_.shrink_to_fit();

  num_triples_ = 0;
  max_degree_ = 0;
  std::fill(predicate_freq_.begin(), predicate_freq_.end(), 0);
  if (predicate_freq_.size() < dict_.size()) {
    predicate_freq_.resize(dict_.size(), 0);
  }
  for (size_t v = 0; v < out_.size(); ++v) {
    auto& edges = out_[v];
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    num_triples_ += edges.size();
    for (const Edge& e : edges) ++predicate_freq_[e.predicate];
  }
  for (size_t v = 0; v < in_.size(); ++v) {
    auto& edges = in_[v];
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    max_degree_ = std::max(max_degree_, out_[v].size() + edges.size());
  }

  predicates_.clear();
  for (TermId p = 0; p < predicate_freq_.size(); ++p) {
    if (predicate_freq_[p] > 0) predicates_.push_back(p);
  }

  // A vertex is a class iff it is the object of rdf:type or touches
  // rdfs:subClassOf on either side.
  is_class_.assign(dict_.size(), false);
  for (TermId v = 0; v < out_.size(); ++v) {
    for (const Edge& e : out_[v]) {
      if (e.predicate == type_pred_) is_class_[e.neighbor] = true;
      if (e.predicate == subclass_pred_) {
        is_class_[v] = true;
        is_class_[e.neighbor] = true;
      }
    }
  }

  finalized_ = true;
  return Status::Ok();
}

std::span<const Edge> RdfGraph::OutEdges(TermId v) const {
  if (v >= out_.size()) return {};
  return out_[v];
}

std::span<const Edge> RdfGraph::InEdges(TermId v) const {
  if (v >= in_.size()) return {};
  return in_[v];
}

bool RdfGraph::HasTriple(TermId s, TermId p, TermId o) const {
  auto edges = OutEdges(s);
  Edge key{p, o};
  return std::binary_search(edges.begin(), edges.end(), key);
}

std::vector<TermId> RdfGraph::Objects(TermId s, TermId p) const {
  std::vector<TermId> out;
  auto edges = OutEdges(s);
  auto lo = std::lower_bound(edges.begin(), edges.end(), Edge{p, 0});
  for (auto it = lo; it != edges.end() && it->predicate == p; ++it) {
    out.push_back(it->neighbor);
  }
  return out;
}

std::vector<TermId> RdfGraph::Subjects(TermId p, TermId o) const {
  std::vector<TermId> out;
  auto edges = InEdges(o);
  auto lo = std::lower_bound(edges.begin(), edges.end(), Edge{p, 0});
  for (auto it = lo; it != edges.end() && it->predicate == p; ++it) {
    out.push_back(it->neighbor);
  }
  return out;
}

bool RdfGraph::IsClass(TermId v) const {
  return v < is_class_.size() && is_class_[v];
}

bool RdfGraph::IsEntity(TermId v) const {
  if (v >= dict_.size() || dict_.IsLiteral(v)) return false;
  if (IsClass(v)) return false;
  // Predicate-only terms (never appear as subject or object) are not
  // entities.
  return Degree(v) > 0;
}

std::vector<TermId> RdfGraph::DirectTypes(TermId v) const {
  return Objects(v, type_pred_);
}

std::vector<TermId> RdfGraph::SuperClassesOf(TermId cls) const {
  std::vector<TermId> out;
  std::vector<bool> seen(dict_.size(), false);
  std::queue<TermId> q;
  q.push(cls);
  if (cls < seen.size()) seen[cls] = true;
  while (!q.empty()) {
    TermId c = q.front();
    q.pop();
    out.push_back(c);
    for (TermId super : Objects(c, subclass_pred_)) {
      if (!seen[super]) {
        seen[super] = true;
        q.push(super);
      }
    }
  }
  return out;
}

bool RdfGraph::IsInstanceOf(TermId v, TermId cls) const {
  for (TermId direct : DirectTypes(v)) {
    if (direct == cls) return true;
    for (TermId super : SuperClassesOf(direct)) {
      if (super == cls) return true;
    }
  }
  return false;
}

std::vector<TermId> RdfGraph::InstancesOf(TermId cls) const {
  // Instances of cls and of every subclass of cls.
  std::vector<TermId> result;
  std::vector<bool> seen_cls(dict_.size(), false);
  std::vector<bool> seen_inst(dict_.size(), false);
  std::queue<TermId> q;
  q.push(cls);
  if (cls < seen_cls.size()) seen_cls[cls] = true;
  while (!q.empty()) {
    TermId c = q.front();
    q.pop();
    for (TermId inst : Subjects(type_pred_, c)) {
      if (!seen_inst[inst]) {
        seen_inst[inst] = true;
        result.push_back(inst);
      }
    }
    for (TermId sub : Subjects(subclass_pred_, c)) {
      if (!seen_cls[sub]) {
        seen_cls[sub] = true;
        q.push(sub);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

size_t RdfGraph::PredicateFrequency(TermId p) const {
  if (p >= predicate_freq_.size()) return 0;
  return predicate_freq_[p];
}

}  // namespace rdf
}  // namespace ganswer
