#ifndef GANSWER_RDF_NTRIPLES_H_
#define GANSWER_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace rdf {

/// One streaming update operation (the live ingestion wire/WAL unit): a
/// parsed N-Triples triple plus the add/delete flag. Subject and predicate
/// are always IRIs; the object carries its kind.
struct UpdateOp {
  std::string subject;
  std::string predicate;
  std::string object;
  TermKind object_kind = TermKind::kIri;
  bool is_delete = false;

  friend bool operator==(const UpdateOp&, const UpdateOp&) = default;
};

/// \brief Line-oriented N-Triples reader/writer.
///
/// Supported syntax per line:
///   <subject> <predicate> <object> .
///   <subject> <predicate> "literal" .
///   # comment lines and blank lines are skipped.
///
/// IRIs are stored verbatim (without angle brackets). The common namespace
/// IRIs for rdf:type / rdfs:subClassOf / rdfs:label are canonicalized to the
/// short forms RdfGraph uses.
class NTriplesReader {
 public:
  /// Parses \p text, adding triples into \p graph. Does not Finalize().
  /// Returns the first syntax error with its line number.
  static Status ParseString(std::string_view text, RdfGraph* graph);

  /// Reads \p path and parses it as N-Triples.
  static Status ParseFile(const std::string& path, RdfGraph* graph);

  /// Parses a streaming update batch (the POST /update body format): every
  /// non-comment line is either a normal N-Triples triple (an add) or the
  /// same prefixed with `-` (a delete), e.g.
  ///   <Berlin> <population> "3700000" .
  ///   - <Berlin> <population> "3500000" .
  /// Returns the ops in line order (batch semantics are sequential
  /// last-wins) or the first syntax error with its line number.
  static StatusOr<std::vector<UpdateOp>> ParseUpdate(std::string_view text);
};

class NTriplesWriter {
 public:
  /// Serializes all triples of a finalized \p graph to \p out.
  static Status Write(const RdfGraph& graph, std::ostream* out);
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_NTRIPLES_H_
