#ifndef GANSWER_RDF_NTRIPLES_H_
#define GANSWER_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace rdf {

/// \brief Line-oriented N-Triples reader/writer.
///
/// Supported syntax per line:
///   <subject> <predicate> <object> .
///   <subject> <predicate> "literal" .
///   # comment lines and blank lines are skipped.
///
/// IRIs are stored verbatim (without angle brackets). The common namespace
/// IRIs for rdf:type / rdfs:subClassOf / rdfs:label are canonicalized to the
/// short forms RdfGraph uses.
class NTriplesReader {
 public:
  /// Parses \p text, adding triples into \p graph. Does not Finalize().
  /// Returns the first syntax error with its line number.
  static Status ParseString(std::string_view text, RdfGraph* graph);

  /// Reads \p path and parses it as N-Triples.
  static Status ParseFile(const std::string& path, RdfGraph* graph);
};

class NTriplesWriter {
 public:
  /// Serializes all triples of a finalized \p graph to \p out.
  static Status Write(const RdfGraph& graph, std::ostream* out);
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_NTRIPLES_H_
