#include "rdf/sparql_engine.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <limits>
#include <set>

#include "rdf/sparql_parser.h"

namespace ganswer {
namespace rdf {

namespace {

constexpr size_t kUnboundVar = static_cast<size_t>(-1);

// A triple pattern with constants resolved to term ids and variables
// resolved to slots in the binding vector.
struct ResolvedPattern {
  // For each position: var slot (if is_var) or constant term id.
  std::array<bool, 3> is_var{};
  std::array<size_t, 3> var_slot{};
  std::array<TermId, 3> constant{};
};

}  // namespace

SparqlEngine::SparqlEngine(const RdfGraph& graph) : graph_(graph) {
  for (TermId p : graph.Predicates()) {
    by_predicate_.emplace(p, std::vector<std::pair<TermId, TermId>>());
  }
  const TermDictionary& dict = graph.dict();
  for (TermId s = 0; s < dict.size(); ++s) {
    for (const Edge& e : graph.OutEdges(s)) {
      by_predicate_[e.predicate].emplace_back(s, e.neighbor);
    }
  }
}

const std::vector<std::pair<TermId, TermId>>* SparqlEngine::PredicateScan(
    TermId p) const {
  auto it = by_predicate_.find(p);
  if (it == by_predicate_.end()) return nullptr;
  return &it->second;
}

StatusOr<std::vector<std::vector<TermId>>> SparqlEngine::EvaluateBgp(
    const std::vector<TriplePattern>& patterns,
    const std::vector<std::string>& out_vars, bool stop_at_first) const {
  // Assign variable slots.
  std::unordered_map<std::string, size_t> var_slots;
  auto slot_of = [&](const std::string& name) {
    auto [it, _] = var_slots.emplace(name, var_slots.size());
    return it->second;
  };

  std::vector<ResolvedPattern> resolved;
  resolved.reserve(patterns.size());
  // An unknown constant makes the whole BGP unsatisfiable, but every
  // pattern must still be walked so all written variables get slots: a
  // selected variable appearing only alongside an unknown constant is
  // bound-but-empty (SPARQL semantics), not an InvalidArgument.
  bool impossible = false;
  for (const TriplePattern& tp : patterns) {
    ResolvedPattern rp;
    const PatternTerm* terms[3] = {&tp.subject, &tp.predicate, &tp.object};
    for (int i = 0; i < 3; ++i) {
      if (terms[i]->is_var) {
        rp.is_var[i] = true;
        rp.var_slot[i] = slot_of(terms[i]->text);
      } else {
        auto id = graph_.dict().Lookup(terms[i]->text, terms[i]->kind);
        if (!id.has_value()) {
          impossible = true;  // constant never interned: no matches
          continue;
        }
        rp.is_var[i] = false;
        rp.constant[i] = *id;
      }
    }
    resolved.push_back(rp);
  }

  std::vector<size_t> out_slots;
  for (const std::string& v : out_vars) {
    auto it = var_slots.find(v);
    if (it == var_slots.end()) {
      return Status::InvalidArgument("selected variable ?" + v +
                                     " not bound by any pattern");
    }
    out_slots.push_back(it->second);
  }
  if (impossible) return std::vector<std::vector<TermId>>{};

  std::vector<TermId> binding(var_slots.size(), kInvalidTerm);
  std::vector<bool> used(resolved.size(), false);
  std::vector<std::vector<TermId>> rows;

  // Value of pattern position i under the current binding, or kInvalidTerm.
  auto value_of = [&](const ResolvedPattern& rp, int i) -> TermId {
    if (!rp.is_var[i]) return rp.constant[i];
    return binding[rp.var_slot[i]];
  };

  // Estimated number of candidate triples for a pattern under the current
  // binding. Lower is more selective.
  auto estimate = [&](const ResolvedPattern& rp) -> size_t {
    TermId s = value_of(rp, 0), p = value_of(rp, 1), o = value_of(rp, 2);
    bool sb = s != kInvalidTerm, pb = p != kInvalidTerm, ob = o != kInvalidTerm;
    if (sb && pb && ob) return graph_.HasTriple(s, p, o) ? 1 : 0;
    if (sb) return graph_.OutDegree(s);
    if (ob) return graph_.InDegree(o);
    if (pb) return graph_.PredicateFrequency(p);
    return graph_.NumTriples();
  };

  // Materializes the concrete triples matching pattern rp under the current
  // binding.
  auto candidates = [&](const ResolvedPattern& rp) {
    std::vector<std::array<TermId, 3>> out;
    TermId s = value_of(rp, 0), p = value_of(rp, 1), o = value_of(rp, 2);
    bool sb = s != kInvalidTerm, pb = p != kInvalidTerm, ob = o != kInvalidTerm;
    if (sb && pb && ob) {
      if (graph_.HasTriple(s, p, o)) out.push_back({s, p, o});
    } else if (sb) {
      for (const Edge& e : graph_.OutEdges(s)) {
        if (pb && e.predicate != p) continue;
        if (ob && e.neighbor != o) continue;
        out.push_back({s, e.predicate, e.neighbor});
      }
    } else if (ob) {
      for (const Edge& e : graph_.InEdges(o)) {
        if (pb && e.predicate != p) continue;
        out.push_back({e.neighbor, e.predicate, o});
      }
    } else if (pb) {
      if (const auto* scan = PredicateScan(p)) {
        for (const auto& [subj, obj] : *scan) out.push_back({subj, p, obj});
      }
    } else {
      for (const auto& [pred, scan] : by_predicate_) {
        for (const auto& [subj, obj] : scan) out.push_back({subj, pred, obj});
      }
    }
    return out;
  };

  // Depth-first join with greedy selectivity ordering.
  bool done = false;
  auto recurse = [&](auto&& self, size_t depth) -> void {
    if (done) return;
    if (depth == resolved.size()) {
      std::vector<TermId> row;
      row.reserve(out_slots.size());
      for (size_t slot : out_slots) row.push_back(binding[slot]);
      rows.push_back(std::move(row));
      if (stop_at_first) done = true;
      return;
    }
    // Pick the most selective unused pattern.
    size_t best = kUnboundVar;
    size_t best_cost = std::numeric_limits<size_t>::max();
    for (size_t i = 0; i < resolved.size(); ++i) {
      if (used[i]) continue;
      size_t cost = estimate(resolved[i]);
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    const ResolvedPattern& rp = resolved[best];
    used[best] = true;
    for (const auto& triple : candidates(rp)) {
      // Bind unbound vars; check consistency for repeated vars within the
      // pattern (e.g. ?x p ?x).
      std::vector<size_t> newly_bound;
      bool consistent = true;
      for (int i = 0; i < 3 && consistent; ++i) {
        if (!rp.is_var[i]) continue;
        size_t slot = rp.var_slot[i];
        if (binding[slot] == kInvalidTerm) {
          binding[slot] = triple[i];
          newly_bound.push_back(slot);
        } else if (binding[slot] != triple[i]) {
          consistent = false;
        }
      }
      if (consistent) self(self, depth + 1);
      for (size_t slot : newly_bound) binding[slot] = kInvalidTerm;
      if (done) break;
    }
    used[best] = false;
  };

  if (resolved.empty()) {
    // Empty BGP: one empty solution (SPARQL semantics).
    rows.emplace_back(out_slots.size(), kInvalidTerm);
  } else {
    recurse(recurse, 0);
  }
  return rows;
}

StatusOr<SparqlResult> SparqlEngine::Execute(const SparqlQuery& query) const {
  SparqlResult result;

  // Collect output variables.
  std::vector<std::string> out_vars = query.select_vars;
  if (query.form == SparqlQuery::Form::kSelect && query.select_all) {
    std::set<std::string> seen;
    for (const TriplePattern& tp : query.patterns) {
      for (const PatternTerm* t : {&tp.subject, &tp.predicate, &tp.object}) {
        if (t->is_var && seen.insert(t->text).second) {
          out_vars.push_back(t->text);
        }
      }
    }
  }
  if (query.form == SparqlQuery::Form::kAsk) out_vars.clear();

  bool stop_at_first = query.form == SparqlQuery::Form::kAsk;
  auto rows = EvaluateBgp(query.patterns, out_vars, stop_at_first);
  if (!rows.ok()) return rows.status();

  if (query.form == SparqlQuery::Form::kAsk) {
    result.ask_result = !rows->empty();
    return result;
  }

  result.var_names = out_vars;
  result.rows = std::move(rows).value();
  if (query.distinct) {
    std::sort(result.rows.begin(), result.rows.end());
    result.rows.erase(std::unique(result.rows.begin(), result.rows.end()),
                      result.rows.end());
  }
  if (query.order_by.has_value()) {
    size_t col = out_vars.size();
    for (size_t i = 0; i < out_vars.size(); ++i) {
      if (out_vars[i] == query.order_by->var) col = i;
    }
    if (col == out_vars.size()) {
      return Status::InvalidArgument("ORDER BY variable ?" +
                                     query.order_by->var +
                                     " is not among the result variables");
    }
    bool desc = query.order_by->descending;
    const TermDictionary& dict = graph_.dict();
    auto sort_key = [&](TermId t) -> std::pair<double, const std::string*> {
      const std::string& text = dict.text(t);
      char* end = nullptr;
      double num = std::strtod(text.c_str(), &end);
      bool numeric = end != text.c_str() && *end == '\0';
      return {numeric ? num : std::numeric_limits<double>::quiet_NaN(), &text};
    };
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const std::vector<TermId>& a,
                         const std::vector<TermId>& b) {
                       auto [na, ta] = sort_key(a[col]);
                       auto [nb, tb] = sort_key(b[col]);
                       bool both_numeric = na == na && nb == nb;  // !NaN
                       bool less = both_numeric ? na < nb : *ta < *tb;
                       bool greater = both_numeric ? nb < na : *tb < *ta;
                       return desc ? greater : less;
                     });
  }
  if (query.offset.has_value()) {
    size_t off = std::min(*query.offset, result.rows.size());
    result.rows.erase(result.rows.begin(), result.rows.begin() + off);
  }
  if (query.limit.has_value() && result.rows.size() > *query.limit) {
    result.rows.resize(*query.limit);
  }
  return result;
}

StatusOr<SparqlResult> SparqlEngine::ExecuteText(std::string_view text) const {
  auto query = SparqlParser::Parse(text);
  if (!query.ok()) return query.status();
  return Execute(*query);
}

StatusOr<std::vector<TermId>> SparqlEngine::SelectOne(
    const std::vector<TriplePattern>& patterns, const std::string& var) const {
  auto rows = EvaluateBgp(patterns, {var}, /*stop_at_first=*/false);
  if (!rows.ok()) return rows.status();
  std::vector<TermId> out;
  out.reserve(rows->size());
  for (const auto& row : *rows) out.push_back(row[0]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string SparqlQuery::ToString() const {
  auto term_text = [](const PatternTerm& t) -> std::string {
    if (t.is_var) return "?" + t.text;
    if (t.kind == TermKind::kLiteral) return "\"" + t.text + "\"";
    if (t.text.find(':') != std::string::npos &&
        t.text.find("://") == std::string::npos) {
      return t.text;  // prefixed name
    }
    return "<" + t.text + ">";
  };
  std::string out;
  if (form == Form::kAsk) {
    out = "ASK";
  } else {
    out = "SELECT";
    if (distinct) out += " DISTINCT";
    if (select_all || select_vars.empty()) {
      out += " *";
    } else {
      for (const auto& v : select_vars) out += " ?" + v;
    }
  }
  out += " WHERE { ";
  for (const TriplePattern& tp : patterns) {
    out += term_text(tp.subject) + " " + term_text(tp.predicate) + " " +
           term_text(tp.object) + " . ";
  }
  out += "}";
  if (order_by.has_value()) {
    out += " ORDER BY ";
    out += order_by->descending ? "DESC(" : "ASC(";
    out += "?" + order_by->var + ")";
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  if (offset.has_value()) out += " OFFSET " + std::to_string(*offset);
  return out;
}

}  // namespace rdf
}  // namespace ganswer
