#include "rdf/sparql_engine.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <set>
#include <span>
#include <type_traits>
#include <unordered_map>

#include "common/search.h"
#include "rdf/sparql_parser.h"

namespace ganswer {
namespace rdf {

namespace {

constexpr uint32_t kNoSlot = std::numeric_limits<uint32_t>::max();

// The SIMD probe kernels treat Edge and the PSO/POS pairs as sorted runs
// of (key, payload) uint32 records; these asserts pin the layout the
// reinterpret_casts below rely on.
static_assert(sizeof(Edge) == 2 * sizeof(uint32_t));
static_assert(offsetof(Edge, predicate) == 0);
static_assert(offsetof(Edge, neighbor) == sizeof(uint32_t));
static_assert(sizeof(std::pair<TermId, TermId>) == 2 * sizeof(uint32_t));
static_assert(std::is_standard_layout_v<std::pair<TermId, TermId>>);

// SIMD lower bound for the first Edge with .predicate >= p. Byte-identical
// to BranchlessLowerBound(begin, end, Edge{p, 0}): neighbor = 0 is minimal,
// so the full (predicate, neighbor) lower bound is exactly the first-key
// lower bound the stride-2 kernel computes.
const Edge* EdgeRunLowerBound(std::span<const Edge> edges, TermId p) {
  const uint32_t* base = reinterpret_cast<const uint32_t*>(edges.data());
  const uint32_t* lb =
      SimdLowerBoundPairKey(base, base + 2 * edges.size(), p);
  return edges.data() + (lb - base) / 2;
}

// SIMD galloping advance over a sorted (key, payload) pair run; identical
// to GallopingLowerBound with a first-field comparator and key {k, 0}.
const std::pair<TermId, TermId>* PairRunGallop(
    const std::pair<TermId, TermId>* first,
    const std::pair<TermId, TermId>* last, TermId k) {
  const uint32_t* base = reinterpret_cast<const uint32_t*>(first);
  const uint32_t* end = reinterpret_cast<const uint32_t*>(last);
  const uint32_t* lb = SimdGallopingLowerBoundPairKey(base, end, k);
  return first + (lb - base) / 2;
}

// A triple pattern with constants resolved to term ids and variables
// resolved to slots in the binding vector.
struct ResolvedPattern {
  // For each position: var slot (if is_var) or constant term id.
  std::array<bool, 3> is_var{};
  std::array<size_t, 3> var_slot{};
  std::array<TermId, 3> constant{};
};

struct ResolveOutcome {
  std::vector<ResolvedPattern> resolved;
  std::unordered_map<std::string, size_t> var_slots;
  // An unknown constant makes the whole BGP unsatisfiable, but every
  // pattern must still be walked so all written variables get slots: a
  // selected variable appearing only alongside an unknown constant is
  // bound-but-empty (SPARQL semantics), not an InvalidArgument.
  bool impossible = false;
};

ResolveOutcome ResolvePatterns(const RdfGraph& graph,
                               const std::vector<TriplePattern>& patterns) {
  ResolveOutcome out;
  auto slot_of = [&](const std::string& name) {
    auto [it, _] = out.var_slots.emplace(name, out.var_slots.size());
    return it->second;
  };
  out.resolved.reserve(patterns.size());
  for (const TriplePattern& tp : patterns) {
    ResolvedPattern rp;
    const PatternTerm* terms[3] = {&tp.subject, &tp.predicate, &tp.object};
    for (int i = 0; i < 3; ++i) {
      if (terms[i]->is_var) {
        rp.is_var[i] = true;
        rp.var_slot[i] = slot_of(terms[i]->text);
      } else {
        auto id = graph.dict().Lookup(terms[i]->text, terms[i]->kind);
        if (!id.has_value()) {
          out.impossible = true;  // constant never interned: no matches
          continue;
        }
        rp.is_var[i] = false;
        rp.constant[i] = *id;
      }
    }
    out.resolved.push_back(rp);
  }
  return out;
}

// Estimated candidate rows for `rp` given which variable slots are already
// bound. Constants contribute exact degrees where the graph has them; bound
// variables contribute statistics averages (their value is unknown at plan
// time). Lower is more selective.
double EstimatePattern(const RdfGraph& graph, const GraphStats& stats,
                       const ResolvedPattern& rp,
                       const std::vector<bool>& bound) {
  auto known = [&](int i) { return !rp.is_var[i] || bound[rp.var_slot[i]]; };
  bool sk = known(0), pk = known(1), ok = known(2);
  bool s_const = !rp.is_var[0], p_const = !rp.is_var[1],
       o_const = !rp.is_var[2];
  if (sk && pk && ok) return 1.0;  // pure existence filter
  if (sk) {
    if (ok) return 1.0;  // both endpoints fixed, predicate free
    double est = s_const ? static_cast<double>(graph.OutDegree(rp.constant[0]))
                         : stats.AvgOutFanout();
    if (pk && p_const) {
      est = std::min(est, stats.AvgObjectsPerSubject(rp.constant[1]));
    }
    return est;
  }
  if (ok) {
    if (pk && p_const) {
      TermId p = rp.constant[1];
      // `?x rdf:type <C>` yields the class's instances — the statistic the
      // planner keeps exactly for this, far tighter than the per-object
      // average of the heavily skewed type predicate.
      if (o_const && p == graph.type_predicate()) {
        return static_cast<double>(stats.ClassInstanceCount(rp.constant[2]));
      }
      double est = stats.AvgSubjectsPerObject(p);
      if (o_const) est = std::min(
          est, static_cast<double>(graph.InDegree(rp.constant[2])));
      return est;
    }
    return o_const ? static_cast<double>(graph.InDegree(rp.constant[2]))
                   : stats.AvgInFanout();
  }
  if (pk) {
    if (p_const) return static_cast<double>(stats.TripleCount(rp.constant[1]));
    // Predicate is a bound variable: one group of unknown identity.
    return stats.num_predicates() > 0
               ? static_cast<double>(stats.num_triples()) /
                     static_cast<double>(stats.num_predicates())
               : 0.0;
  }
  return static_cast<double>(stats.num_triples());
}

// True when `rp` shares at least one variable with the bound set (or has no
// variables at all, making it a pure filter).
bool SharesBoundVar(const ResolvedPattern& rp, const std::vector<bool>& bound) {
  bool any_var = false;
  for (int i = 0; i < 3; ++i) {
    if (!rp.is_var[i]) continue;
    any_var = true;
    if (bound[rp.var_slot[i]]) return true;
  }
  return !any_var;
}

}  // namespace

SparqlEngine::SparqlEngine(const RdfGraph& graph)
    : SparqlEngine(graph, Options()) {}

SparqlEngine::SparqlEngine(const RdfGraph& graph, Options options)
    : graph_(graph), options_(options) {
  if (const char* env = std::getenv("GANSWER_SPARQL_NAIVE");
      env != nullptr && env[0] == '1') {
    options_.use_planner = false;
  }
  if (options_.stats != nullptr) {
    stats_ = options_.stats;
  } else {
    owned_stats_ = std::make_unique<GraphStats>(GraphStats::Compute(graph));
    stats_ = owned_stats_.get();
  }

  // Permutation indexes, built by one counting pass per direction straight
  // off the CSR: group sizes are the (exact) predicate frequencies, and
  // because vertices are visited in ascending id order and per-vertex
  // adjacency is sorted by (predicate, neighbor), each predicate's pairs
  // come out sorted by (s, o) in PSO resp. (o, s) in POS — no hashing, no
  // comparison sort, and edge-less terms (literals) cost one empty span.
  auto predicates = graph.Predicates();
  slot_predicate_.assign(predicates.begin(), predicates.end());
  std::sort(slot_predicate_.begin(), slot_predicate_.end());
  const size_t num_slots = slot_predicate_.size();
  pred_slot_.assign(graph.NumTerms(), kNoSlot);
  for (size_t k = 0; k < num_slots; ++k) {
    pred_slot_[slot_predicate_[k]] = static_cast<uint32_t>(k);
  }
  slot_offsets_.assign(num_slots + 1, 0);
  for (size_t k = 0; k < num_slots; ++k) {
    slot_offsets_[k + 1] =
        slot_offsets_[k] + graph.PredicateFrequency(slot_predicate_[k]);
  }
  pso_.resize(slot_offsets_.back());
  pos_.resize(slot_offsets_.back());
  std::vector<size_t> cursor(slot_offsets_.begin(), slot_offsets_.end() - 1);
  const TermId n = static_cast<TermId>(graph.NumTerms());
  for (TermId s = 0; s < n; ++s) {
    for (const Edge& e : graph.OutEdges(s)) {
      pso_[cursor[pred_slot_[e.predicate]]++] = {s, e.neighbor};
    }
  }
  cursor.assign(slot_offsets_.begin(), slot_offsets_.end() - 1);
  for (TermId o = 0; o < n; ++o) {
    for (const Edge& e : graph.InEdges(o)) {
      pos_[cursor[pred_slot_[e.predicate]]++] = {o, e.neighbor};
    }
  }
}

size_t SparqlEngine::PredSlot(TermId p) const {
  if (p >= pred_slot_.size() || pred_slot_[p] == kNoSlot) {
    return slot_predicate_.size();
  }
  return pred_slot_[p];
}

SparqlEngine::PlannerCounters SparqlEngine::planner_counters() const {
  PlannerCounters c;
  c.planned_queries = planned_queries_.Value();
  c.naive_queries = naive_queries_.Value();
  c.range_lookups = range_lookups_.Value();
  c.full_scans = full_scans_.Value();
  c.intermediate_bindings = intermediate_bindings_.Value();
  c.merge_joins = merge_joins_.Value();
  return c;
}

namespace {

// Greedy cost-based join order: cheapest-estimated pattern first, then
// repeatedly the pattern connected to the bound variables that minimizes
// the estimated intermediate-result size; a cross product is taken only
// when no unused pattern touches a bound variable.
std::vector<std::pair<size_t, double>> PlanJoinOrder(
    const RdfGraph& graph, const GraphStats& stats,
    const std::vector<ResolvedPattern>& resolved, size_t num_slots) {
  const size_t n = resolved.size();
  std::vector<bool> used(n, false);
  std::vector<bool> bound(num_slots, false);
  std::vector<std::pair<size_t, double>> plan;
  plan.reserve(n);
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    double best_cost = 0.0;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      bool connected = step == 0 || SharesBoundVar(resolved[i], bound);
      double cost = EstimatePattern(graph, stats, resolved[i], bound);
      if (best == n || (connected && !best_connected) ||
          (connected == best_connected && cost < best_cost)) {
        best = i;
        best_cost = cost;
        best_connected = connected;
      }
    }
    used[best] = true;
    plan.emplace_back(best, best_cost);
    for (int i = 0; i < 3; ++i) {
      if (resolved[best].is_var[i]) bound[resolved[best].var_slot[i]] = true;
    }
  }
  return plan;
}

// One side of a leading sort-merge join: the sorted (key, other) pair run
// of a pattern's predicate group, keyed on the shared join variable.
struct MergeSide {
  const std::pair<TermId, TermId>* begin = nullptr;
  const std::pair<TermId, TermId>* end = nullptr;
  size_t other_slot = 0;  // binding slot of the non-key variable
};

}  // namespace

StatusOr<std::vector<std::vector<TermId>>> SparqlEngine::EvaluateBgp(
    const std::vector<TriplePattern>& patterns,
    const std::vector<std::string>& out_vars, bool stop_at_first) const {
  ResolveOutcome rs = ResolvePatterns(graph_, patterns);
  const std::vector<ResolvedPattern>& resolved = rs.resolved;

  std::vector<size_t> out_slots;
  for (const std::string& v : out_vars) {
    auto it = rs.var_slots.find(v);
    if (it == rs.var_slots.end()) {
      return Status::InvalidArgument("selected variable ?" + v +
                                     " not bound by any pattern");
    }
    out_slots.push_back(it->second);
  }
  if (rs.impossible) return std::vector<std::vector<TermId>>{};

  std::vector<std::vector<TermId>> rows;
  if (resolved.empty()) {
    // Empty BGP: one empty solution (SPARQL semantics).
    rows.emplace_back(out_slots.size(), kInvalidTerm);
    return rows;
  }

  const bool planned = options_.use_planner;
  uint64_t local_range = 0, local_full = 0, local_bind = 0, local_merge = 0;

  std::vector<size_t> order;
  order.reserve(resolved.size());
  if (planned) {
    for (const auto& [i, est] :
         PlanJoinOrder(graph_, *stats_, resolved, rs.var_slots.size())) {
      order.push_back(i);
    }
    planned_queries_.Increment();
  } else {
    for (size_t i = 0; i < resolved.size(); ++i) order.push_back(i);
    naive_queries_.Increment();
  }

  std::vector<TermId> binding(rs.var_slots.size(), kInvalidTerm);

  // Value of pattern position i under the current binding, or kInvalidTerm.
  auto value_of = [&](const ResolvedPattern& rp, int i) -> TermId {
    if (!rp.is_var[i]) return rp.constant[i];
    return binding[rp.var_slot[i]];
  };

  // Enumerates the concrete triples matching `rp` under the current
  // binding, calling fn(s, p, o) for each; fn returns false to stop early.
  // Planned mode resolves bound terms to sorted runs by binary search;
  // naive mode reproduces the baseline's linear scans and filters.
  auto enumerate = [&](const ResolvedPattern& rp, auto&& fn) {
    TermId s = value_of(rp, 0), p = value_of(rp, 1), o = value_of(rp, 2);
    bool sb = s != kInvalidTerm, pb = p != kInvalidTerm, ob = o != kInvalidTerm;
    if (sb && pb && ob) {
      if (planned) ++local_range;
      if (graph_.HasTriple(s, p, o)) {
        ++local_bind;
        fn(s, p, o);
      }
      return;
    }
    if (sb) {
      auto edges = graph_.OutEdges(s);
      if (planned && pb) {
        // Vector probe to the predicate run instead of filtering the
        // whole adjacency list.
        ++local_range;
        const Edge* it = EdgeRunLowerBound(edges, p);
        const Edge* end = edges.data() + edges.size();
        for (; it != end && it->predicate == p; ++it) {
          ++local_bind;
          if (!fn(s, p, it->neighbor)) return;
        }
        return;
      }
      for (const Edge& e : edges) {
        if (pb && e.predicate != p) continue;
        if (ob && e.neighbor != o) continue;
        ++local_bind;
        if (!fn(s, e.predicate, e.neighbor)) return;
      }
      return;
    }
    if (ob) {
      if (planned && pb) {
        // The in-edge adjacency is sorted by (predicate, neighbor), so the
        // subjects form one binary-searched run — degree-sized, always no
        // larger than the POS group the same probe would search.
        ++local_range;
        auto edges = graph_.InEdges(o);
        const Edge* it = EdgeRunLowerBound(edges, p);
        const Edge* end = edges.data() + edges.size();
        for (; it != end && it->predicate == p; ++it) {
          ++local_bind;
          if (!fn(it->neighbor, p, o)) return;
        }
        return;
      }
      for (const Edge& e : graph_.InEdges(o)) {
        if (pb && e.predicate != p) continue;
        ++local_bind;
        if (!fn(e.neighbor, e.predicate, o)) return;
      }
      return;
    }
    if (pb) {
      ++local_full;
      size_t slot = PredSlot(p);
      if (slot == slot_predicate_.size()) return;
      for (size_t i = slot_offsets_[slot]; i < slot_offsets_[slot + 1]; ++i) {
        ++local_bind;
        if (!fn(pso_[i].first, p, pso_[i].second)) return;
      }
      return;
    }
    ++local_full;
    for (size_t k = 0; k < slot_predicate_.size(); ++k) {
      for (size_t i = slot_offsets_[k]; i < slot_offsets_[k + 1]; ++i) {
        ++local_bind;
        if (!fn(pso_[i].first, slot_predicate_[k], pso_[i].second)) return;
      }
    }
  };

  bool done = false;
  auto recurse = [&](auto&& self, size_t idx) -> void {
    if (done) return;
    if (idx == order.size()) {
      std::vector<TermId> row;
      row.reserve(out_slots.size());
      for (size_t slot : out_slots) row.push_back(binding[slot]);
      rows.push_back(std::move(row));
      if (stop_at_first) done = true;
      return;
    }
    const ResolvedPattern& rp = resolved[order[idx]];
    enumerate(rp, [&](TermId s, TermId p, TermId o) -> bool {
      // Bind unbound vars; check consistency for repeated vars within the
      // pattern (e.g. ?x p ?x).
      TermId vals[3] = {s, p, o};
      std::array<size_t, 3> newly_bound;
      size_t num_new = 0;
      bool consistent = true;
      for (int i = 0; i < 3 && consistent; ++i) {
        if (!rp.is_var[i]) continue;
        size_t slot = rp.var_slot[i];
        if (binding[slot] == kInvalidTerm) {
          binding[slot] = vals[i];
          newly_bound[num_new++] = slot;
        } else if (binding[slot] != vals[i]) {
          consistent = false;
        }
      }
      if (consistent) self(self, idx + 1);
      for (size_t i = 0; i < num_new; ++i) binding[newly_bound[i]] = kInvalidTerm;
      return !done;
    });
  };

  // Leading sort-merge join: when the plan's first two patterns have
  // constant predicates, share exactly one variable and have free
  // variables everywhere else, both predicate groups are sorted on the
  // shared variable's side (PSO when it is the subject, POS when it is the
  // object), so the join is one linear merge of two sorted runs instead of
  // |A| binary probes.
  auto merge_side = [&](const ResolvedPattern& rp,
                        size_t key_slot) -> std::optional<MergeSide> {
    if (rp.is_var[1]) return std::nullopt;  // predicate must be constant
    size_t slot = PredSlot(rp.constant[1]);
    if (slot == slot_predicate_.size()) return std::nullopt;
    bool key_at_subject = rp.is_var[0] && rp.var_slot[0] == key_slot;
    bool key_at_object = rp.is_var[2] && rp.var_slot[2] == key_slot;
    if (key_at_subject == key_at_object) return std::nullopt;  // need one side
    MergeSide side;
    const auto& arr = key_at_subject ? pso_ : pos_;
    side.begin = arr.data() + slot_offsets_[slot];
    side.end = arr.data() + slot_offsets_[slot + 1];
    // The non-key side must be a free variable. A constant there means the
    // pattern resolves to a selective PSO/POS probe on that constant — the
    // plan the orderer already picked — and merging would instead scan the
    // whole predicate group (catastrophic for skewed groups like rdf:type).
    int other_pos = key_at_subject ? 2 : 0;
    if (!rp.is_var[other_pos] || rp.var_slot[other_pos] == key_slot) {
      return std::nullopt;
    }
    side.other_slot = rp.var_slot[other_pos];
    return side;
  };

  auto try_merge_join = [&]() -> bool {
    if (!planned || order.size() < 2) return false;
    const ResolvedPattern& a = resolved[order[0]];
    const ResolvedPattern& b = resolved[order[1]];
    // Exactly one shared variable (predicates are constants below, so only
    // subject/object slots participate).
    std::set<size_t> va, vb;
    for (int i = 0; i < 3; ++i) {
      if (a.is_var[i]) va.insert(a.var_slot[i]);
      if (b.is_var[i]) vb.insert(b.var_slot[i]);
    }
    std::vector<size_t> shared;
    for (size_t s : va) {
      if (vb.count(s) > 0) shared.push_back(s);
    }
    if (shared.size() != 1) return false;
    size_t key = shared[0];
    auto sa = merge_side(a, key);
    auto sb = merge_side(b, key);
    if (!sa.has_value() || !sb.has_value()) return false;

    ++local_merge;
    const auto* ia = sa->begin;
    const auto* ib = sb->begin;
    while (ia != sa->end && ib != sb->end && !done) {
      if (ia->first < ib->first) {
        // The next matching key is usually a few entries ahead, so gallop:
        // exponential probe + vector-counted binary search in the bracket
        // beats a full-width lower_bound on long permutation runs.
        ia = PairRunGallop(ia, sa->end, ib->first);
        continue;
      }
      if (ib->first < ia->first) {
        ib = PairRunGallop(ib, sb->end, ia->first);
        continue;
      }
      TermId k = ia->first;
      const auto* ea = ia;
      while (ea != sa->end && ea->first == k) ++ea;
      const auto* eb = ib;
      while (eb != sb->end && eb->first == k) ++eb;
      binding[key] = k;
      for (const auto* pa = ia; pa != ea && !done; ++pa) {
        binding[sa->other_slot] = pa->second;
        for (const auto* pb = ib; pb != eb && !done; ++pb) {
          ++local_bind;
          binding[sb->other_slot] = pb->second;
          recurse(recurse, 2);
          binding[sb->other_slot] = kInvalidTerm;
        }
        binding[sa->other_slot] = kInvalidTerm;
      }
      binding[key] = kInvalidTerm;
      ia = ea;
      ib = eb;
    }
    return true;
  };

  if (!try_merge_join()) recurse(recurse, 0);

  range_lookups_.Add(local_range);
  full_scans_.Add(local_full);
  intermediate_bindings_.Add(local_bind);
  merge_joins_.Add(local_merge);
  return rows;
}

StatusOr<SparqlResult> SparqlEngine::Execute(const SparqlQuery& query) const {
  SparqlResult result;

  // Collect output variables.
  std::vector<std::string> out_vars = query.select_vars;
  if (query.form == SparqlQuery::Form::kSelect && query.select_all) {
    std::set<std::string> seen;
    for (const TriplePattern& tp : query.patterns) {
      for (const PatternTerm* t : {&tp.subject, &tp.predicate, &tp.object}) {
        if (t->is_var && seen.insert(t->text).second) {
          out_vars.push_back(t->text);
        }
      }
    }
  }
  if (query.form == SparqlQuery::Form::kAsk) out_vars.clear();

  bool stop_at_first = query.form == SparqlQuery::Form::kAsk;
  auto rows = EvaluateBgp(query.patterns, out_vars, stop_at_first);
  if (!rows.ok()) return rows.status();

  if (query.form == SparqlQuery::Form::kAsk) {
    result.ask_result = !rows->empty();
    return result;
  }

  result.var_names = out_vars;
  result.rows = std::move(rows).value();
  if (query.distinct) {
    std::sort(result.rows.begin(), result.rows.end());
    result.rows.erase(std::unique(result.rows.begin(), result.rows.end()),
                      result.rows.end());
  }
  if (query.order_by.has_value()) {
    size_t col = out_vars.size();
    for (size_t i = 0; i < out_vars.size(); ++i) {
      if (out_vars[i] == query.order_by->var) col = i;
    }
    if (col == out_vars.size()) {
      return Status::InvalidArgument("ORDER BY variable ?" +
                                     query.order_by->var +
                                     " is not among the result variables");
    }
    bool desc = query.order_by->descending;
    const TermDictionary& dict = graph_.dict();
    auto sort_key = [&](TermId t) -> std::pair<double, std::string_view> {
      std::string_view text = dict.text(t);
      // The arena view is not NUL-terminated; strtod needs a terminated
      // copy (ORDER BY keys are short literals).
      std::string buf(text);
      char* end = nullptr;
      double num = std::strtod(buf.c_str(), &end);
      bool numeric = end != buf.c_str() && *end == '\0';
      return {numeric ? num : std::numeric_limits<double>::quiet_NaN(), text};
    };
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const std::vector<TermId>& a,
                         const std::vector<TermId>& b) {
                       auto [na, ta] = sort_key(a[col]);
                       auto [nb, tb] = sort_key(b[col]);
                       bool both_numeric = na == na && nb == nb;  // !NaN
                       bool less = both_numeric ? na < nb : ta < tb;
                       bool greater = both_numeric ? nb < na : tb < ta;
                       return desc ? greater : less;
                     });
  }
  if (query.offset.has_value()) {
    size_t off = std::min(*query.offset, result.rows.size());
    result.rows.erase(result.rows.begin(), result.rows.begin() + off);
  }
  if (query.limit.has_value() && result.rows.size() > *query.limit) {
    result.rows.resize(*query.limit);
  }
  return result;
}

StatusOr<SparqlResult> SparqlEngine::ExecuteText(std::string_view text) const {
  auto query = SparqlParser::Parse(text);
  if (!query.ok()) return query.status();
  return Execute(*query);
}

StatusOr<std::vector<TermId>> SparqlEngine::SelectOne(
    const std::vector<TriplePattern>& patterns, const std::string& var) const {
  auto rows = EvaluateBgp(patterns, {var}, /*stop_at_first=*/false);
  if (!rows.ok()) return rows.status();
  std::vector<TermId> out;
  out.reserve(rows->size());
  for (const auto& row : *rows) out.push_back(row[0]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

std::string RenderPatternTerm(const PatternTerm& t) {
  if (t.is_var) return "?" + t.text;
  if (t.kind == TermKind::kLiteral) return "\"" + t.text + "\"";
  if (t.text.find(':') != std::string::npos &&
      t.text.find("://") == std::string::npos) {
    return t.text;  // prefixed name
  }
  return "<" + t.text + ">";
}

std::string RenderPattern(const TriplePattern& tp) {
  return RenderPatternTerm(tp.subject) + " " + RenderPatternTerm(tp.predicate) +
         " " + RenderPatternTerm(tp.object);
}

// Access path the executor takes for `rp` given the already-bound slots —
// mirrors the case analysis in EvaluateBgp's enumerate().
const char* AccessPathName(const ResolvedPattern& rp,
                           const std::vector<bool>& bound, bool planned) {
  auto known = [&](int i) { return !rp.is_var[i] || bound[rp.var_slot[i]]; };
  bool sk = known(0), pk = known(1), ok = known(2);
  if (sk && pk && ok) return "existence probe (HasTriple)";
  if (sk && pk) {
    return planned ? "subject+predicate range (out-edge run)"
                   : "subject scan + predicate filter";
  }
  if (sk) return "subject scan (out-edges)";
  if (ok && pk) {
    return planned ? "object+predicate range (in-edge run)"
                   : "object scan + predicate filter";
  }
  if (ok) return "object scan (in-edges)";
  if (pk) return "predicate scan (PSO)";
  return "full scan";
}

}  // namespace

StatusOr<std::string> SparqlEngine::ExplainPlan(const SparqlQuery& query) const {
  ResolveOutcome rs = ResolvePatterns(graph_, query.patterns);
  std::string out;
  const bool planned = options_.use_planner;
  out += planned ? "query plan: cost-based join order"
                 : "query plan: naive textual order (planner disabled)";
  out += " (" + std::to_string(query.patterns.size()) + " pattern";
  if (query.patterns.size() != 1) out += "s";
  out += ")\n";
  if (rs.impossible) {
    out += "  unsatisfiable: a constant is not in the dictionary; "
           "empty result\n";
    return out;
  }
  if (rs.resolved.empty()) {
    out += "  empty BGP: one empty solution\n";
    return out;
  }

  std::vector<std::pair<size_t, double>> plan;
  if (planned) {
    plan = PlanJoinOrder(graph_, *stats_, rs.resolved, rs.var_slots.size());
  } else {
    std::vector<bool> bound(rs.var_slots.size(), false);
    for (size_t i = 0; i < rs.resolved.size(); ++i) {
      plan.emplace_back(
          i, EstimatePattern(graph_, *stats_, rs.resolved[i], bound));
      for (int j = 0; j < 3; ++j) {
        if (rs.resolved[i].is_var[j]) bound[rs.resolved[i].var_slot[j]] = true;
      }
    }
  }

  std::vector<bool> bound(rs.var_slots.size(), false);
  for (size_t step = 0; step < plan.size(); ++step) {
    const auto& [pi, est] = plan[step];
    const ResolvedPattern& rp = rs.resolved[pi];
    char est_buf[32];
    std::snprintf(est_buf, sizeof(est_buf), "%.1f", est);
    out += "  " + std::to_string(step + 1) + ". " +
           RenderPattern(query.patterns[pi]) + "   ~" + est_buf +
           " rows via " + AccessPathName(rp, bound, planned) + "\n";
    for (int j = 0; j < 3; ++j) {
      if (rp.is_var[j]) bound[rp.var_slot[j]] = true;
    }
  }
  return out;
}

std::string SparqlQuery::ToString() const {
  auto term_text = [](const PatternTerm& t) -> std::string {
    if (t.is_var) return "?" + t.text;
    if (t.kind == TermKind::kLiteral) return "\"" + t.text + "\"";
    if (t.text.find(':') != std::string::npos &&
        t.text.find("://") == std::string::npos) {
      return t.text;  // prefixed name
    }
    return "<" + t.text + ">";
  };
  std::string out;
  if (form == Form::kAsk) {
    out = "ASK";
  } else {
    out = "SELECT";
    if (distinct) out += " DISTINCT";
    if (select_all || select_vars.empty()) {
      out += " *";
    } else {
      for (const auto& v : select_vars) out += " ?" + v;
    }
  }
  out += " WHERE { ";
  for (const TriplePattern& tp : patterns) {
    out += term_text(tp.subject) + " " + term_text(tp.predicate) + " " +
           term_text(tp.object) + " . ";
  }
  out += "}";
  if (order_by.has_value()) {
    out += " ORDER BY ";
    out += order_by->descending ? "DESC(" : "ASC(";
    out += "?" + order_by->var + ")";
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  if (offset.has_value()) out += " OFFSET " + std::to_string(*offset);
  return out;
}

}  // namespace rdf
}  // namespace ganswer
