#include "rdf/sparql_parser.h"

#include <cctype>
#include <charconv>
#include <vector>

#include "common/string_util.h"

namespace ganswer {
namespace rdf {

namespace {

enum class TokKind { kWord, kVar, kIri, kLiteral, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  /// Byte offset of the token's first character in the input, so every
  /// error can point at where it happened.
  size_t pos = 0;
};

std::string AtByte(size_t pos) {
  return " at byte " + std::to_string(pos);
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      size_t start_pos = pos_;
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '?' || c == '$') {
        ++pos_;
        size_t start = pos_;
        while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
        if (pos_ == start) {
          return Status::InvalidArgument("empty variable name" +
                                         AtByte(start_pos));
        }
        out.push_back({TokKind::kVar,
                       std::string(text_.substr(start, pos_ - start)),
                       start_pos});
        continue;
      }
      if (c == '<') {
        size_t end = text_.find('>', pos_ + 1);
        if (end == std::string_view::npos) {
          return Status::InvalidArgument("unterminated IRI" +
                                         AtByte(start_pos));
        }
        out.push_back({TokKind::kIri,
                       std::string(text_.substr(pos_ + 1, end - pos_ - 1)),
                       start_pos});
        pos_ = end + 1;
        continue;
      }
      if (c == '"') {
        std::string value;
        ++pos_;
        bool closed = false;
        while (pos_ < text_.size()) {
          char d = text_[pos_];
          if (d == '\\' && pos_ + 1 < text_.size()) {
            value += text_[pos_ + 1];
            pos_ += 2;
            continue;
          }
          if (d == '"') {
            closed = true;
            ++pos_;
            break;
          }
          value += d;
          ++pos_;
        }
        if (!closed) {
          return Status::InvalidArgument("unterminated literal" +
                                         AtByte(start_pos));
        }
        out.push_back({TokKind::kLiteral, std::move(value), start_pos});
        continue;
      }
      if (c == '{' || c == '}' || c == '.' || c == '*' || c == ';' ||
          c == '(' || c == ')') {
        out.push_back({TokKind::kPunct, std::string(1, c), start_pos});
        ++pos_;
        continue;
      }
      if (IsNameChar(c)) {
        size_t start = pos_;
        while (pos_ < text_.size() && (IsNameChar(text_[pos_]) || text_[pos_] == ':')) {
          ++pos_;
        }
        out.push_back({TokKind::kWord,
                       std::string(text_.substr(start, pos_ - start)),
                       start_pos});
        continue;
      }
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'" + AtByte(start_pos));
    }
    out.push_back({TokKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-';
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SparqlQuery> Run() {
    SparqlQuery q;
    if (MatchKeyword("SELECT")) {
      q.form = SparqlQuery::Form::kSelect;
      if (MatchKeyword("DISTINCT")) q.distinct = true;
      if (MatchPunct("*")) {
        q.select_all = true;
      } else {
        while (Peek().kind == TokKind::kVar) {
          q.select_vars.push_back(Next().text);
        }
        if (q.select_vars.empty()) {
          return Status::InvalidArgument("SELECT requires '*' or variables" +
                                         Here());
        }
      }
    } else if (MatchKeyword("ASK")) {
      q.form = SparqlQuery::Form::kAsk;
    } else {
      return Status::InvalidArgument("query must start with SELECT or ASK" +
                                     Here());
    }

    MatchKeyword("WHERE");  // optional
    GANSWER_RETURN_NOT_OK(ParseGroup(&q));

    if (MatchKeyword("ORDER")) {
      if (!MatchKeyword("BY")) {
        return Status::InvalidArgument("ORDER must be followed by BY" +
                                       Here());
      }
      SparqlQuery::OrderBy order;
      if (MatchKeyword("DESC")) {
        order.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      bool parenthesized = MatchPunct("(");
      if (Peek().kind != TokKind::kVar) {
        return Status::InvalidArgument("ORDER BY requires a variable" +
                                       Here());
      }
      order.var = Next().text;
      if (parenthesized && !MatchPunct(")")) {
        return Status::InvalidArgument("unterminated ORDER BY (...)" +
                                       Here());
      }
      q.order_by = std::move(order);
    }
    auto parse_count = [&](const char* kw, std::optional<size_t>* out) -> Status {
      const Token& t = Peek();
      if (t.kind != TokKind::kWord || !IsAllDigits(t.text)) {
        return Status::InvalidArgument(std::string(kw) +
                                       " requires an integer" + Here());
      }
      // from_chars, not stoull: a digit string exceeding the size_t range
      // must surface as a parse error, never as a thrown exception.
      size_t value = 0;
      auto [ptr, ec] = std::from_chars(t.text.data(),
                                       t.text.data() + t.text.size(), value);
      if (ec != std::errc() || ptr != t.text.data() + t.text.size()) {
        return Status::InvalidArgument(std::string(kw) + " value '" + t.text +
                                       "' out of range" + Here());
      }
      Next();
      *out = value;
      return Status::Ok();
    };
    // LIMIT and OFFSET in either order (SPARQL allows both orders).
    for (int i = 0; i < 2; ++i) {
      if (MatchKeyword("LIMIT")) {
        GANSWER_RETURN_NOT_OK(parse_count("LIMIT", &q.limit));
      } else if (MatchKeyword("OFFSET")) {
        GANSWER_RETURN_NOT_OK(parse_count("OFFSET", &q.offset));
      }
    }
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("trailing tokens after query: '" +
                                     Peek().text + "'" + Here());
    }
    return q;
  }

 private:
  Status ParseGroup(SparqlQuery* q) {
    if (!MatchPunct("{")) {
      return Status::InvalidArgument("expected '{'" + Here());
    }
    while (!MatchPunct("}")) {
      if (Peek().kind == TokKind::kEnd) {
        return Status::InvalidArgument("unterminated group pattern" + Here());
      }
      TriplePattern tp;
      GANSWER_RETURN_NOT_OK(ParseTerm(&tp.subject));
      GANSWER_RETURN_NOT_OK(ParseTerm(&tp.predicate));
      GANSWER_RETURN_NOT_OK(ParseTerm(&tp.object));
      q->patterns.push_back(std::move(tp));
      MatchPunct(".");  // optional between and after patterns
    }
    return Status::Ok();
  }

  Status ParseTerm(PatternTerm* out) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kVar:
        *out = PatternTerm::Var(Next().text);
        return Status::Ok();
      case TokKind::kIri:
        *out = PatternTerm::Iri(Next().text);
        return Status::Ok();
      case TokKind::kLiteral:
        *out = PatternTerm::Literal(Next().text);
        return Status::Ok();
      case TokKind::kWord: {
        // Prefixed name like rdf:type, or the shorthand 'a' for rdf:type.
        std::string text = Next().text;
        if (text == "a") text = "rdf:type";
        *out = PatternTerm::Iri(std::move(text));
        return Status::Ok();
      }
      default:
        return Status::InvalidArgument("expected a term, got '" + t.text +
                                       "'" + Here());
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }
  /// Position suffix for errors: byte offset of the current token.
  std::string Here() const { return AtByte(Peek().pos); }

  bool MatchKeyword(std::string_view kw) {
    const Token& t = Peek();
    if (t.kind == TokKind::kWord && ToLower(t.text) == ToLower(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchPunct(std::string_view p) {
    const Token& t = Peek();
    if (t.kind == TokKind::kPunct && t.text == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<SparqlQuery> SparqlParser::Parse(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Run();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Run();
}

}  // namespace rdf
}  // namespace ganswer
