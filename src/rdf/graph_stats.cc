#include "rdf/graph_stats.h"

#include <algorithm>

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

GraphStats GraphStats::Compute(const RdfGraph& graph) {
  GraphStats stats;
  stats.num_triples_ = graph.NumTriples();
  stats.num_vertices_ = graph.NumTerms();

  stats.predicates_ = graph.Predicates();
  std::sort(stats.predicates_.begin(), stats.predicates_.end());
  size_t np = stats.predicates_.size();
  stats.triples_.assign(np, 0);
  stats.distinct_subjects_.assign(np, 0);
  stats.distinct_objects_.assign(np, 0);

  // Adjacency is sorted by (predicate, neighbor) within a vertex, so each
  // vertex contributes one run per predicate it uses: run length goes to
  // the triple count, the run itself counts one distinct subject (out
  // direction) resp. object (in direction).
  const size_t n = graph.NumTerms();
  for (TermId v = 0; v < n; ++v) {
    auto outs = graph.OutEdges(v);
    if (!outs.empty()) ++stats.subjects_with_out_;
    for (size_t i = 0; i < outs.size();) {
      TermId p = outs[i].predicate;
      size_t j = i;
      while (j < outs.size() && outs[j].predicate == p) ++j;
      size_t slot = stats.PredicateSlot(p);
      stats.triples_[slot] += j - i;
      ++stats.distinct_subjects_[slot];
      i = j;
    }
    auto ins = graph.InEdges(v);
    if (!ins.empty()) ++stats.objects_with_in_;
    for (size_t i = 0; i < ins.size();) {
      TermId p = ins[i].predicate;
      size_t j = i;
      while (j < ins.size() && ins[j].predicate == p) ++j;
      ++stats.distinct_objects_[stats.PredicateSlot(p)];
      i = j;
    }
  }

  for (TermId v = 0; v < n; ++v) {
    if (!graph.IsClass(v)) continue;
    stats.classes_.push_back(v);
    stats.instance_counts_.push_back(graph.InstancesOf(v).size());
  }
  return stats;
}

size_t GraphStats::PredicateSlot(TermId p) const {
  auto it = std::lower_bound(predicates_.begin(), predicates_.end(), p);
  if (it == predicates_.end() || *it != p) return predicates_.size();
  return static_cast<size_t>(it - predicates_.begin());
}

double GraphStats::AvgOutFanout() const {
  if (subjects_with_out_ == 0) return 0.0;
  return static_cast<double>(num_triples_) /
         static_cast<double>(subjects_with_out_);
}

double GraphStats::AvgInFanout() const {
  if (objects_with_in_ == 0) return 0.0;
  return static_cast<double>(num_triples_) /
         static_cast<double>(objects_with_in_);
}

uint64_t GraphStats::TripleCount(TermId p) const {
  size_t slot = PredicateSlot(p);
  return slot < triples_.size() ? triples_[slot] : 0;
}

uint64_t GraphStats::DistinctSubjects(TermId p) const {
  size_t slot = PredicateSlot(p);
  return slot < distinct_subjects_.size() ? distinct_subjects_[slot] : 0;
}

uint64_t GraphStats::DistinctObjects(TermId p) const {
  size_t slot = PredicateSlot(p);
  return slot < distinct_objects_.size() ? distinct_objects_[slot] : 0;
}

uint64_t GraphStats::ClassInstanceCount(TermId cls) const {
  auto it = std::lower_bound(classes_.begin(), classes_.end(), cls);
  if (it == classes_.end() || *it != cls) return 0;
  return instance_counts_[static_cast<size_t>(it - classes_.begin())];
}

double GraphStats::AvgObjectsPerSubject(TermId p) const {
  size_t slot = PredicateSlot(p);
  if (slot >= triples_.size() || distinct_subjects_[slot] == 0) return 0.0;
  return static_cast<double>(triples_[slot]) /
         static_cast<double>(distinct_subjects_[slot]);
}

double GraphStats::AvgSubjectsPerObject(TermId p) const {
  size_t slot = PredicateSlot(p);
  if (slot >= triples_.size() || distinct_objects_[slot] == 0) return 0.0;
  return static_cast<double>(triples_[slot]) /
         static_cast<double>(distinct_objects_[slot]);
}

Status GraphStats::SaveBinary(BinaryWriter* out) const {
  if (out == nullptr) return Status::InvalidArgument("null writer");
  out->WriteU64(num_triples_);
  out->WriteU64(num_vertices_);
  out->WriteU64(subjects_with_out_);
  out->WriteU64(objects_with_in_);
  out->WritePodVector(predicates_);
  out->WritePodVector(triples_);
  out->WritePodVector(distinct_subjects_);
  out->WritePodVector(distinct_objects_);
  out->WritePodVector(classes_);
  out->WritePodVector(instance_counts_);
  return Status::Ok();
}

Status GraphStats::LoadBinary(BinaryReader* in) {
  if (in == nullptr) return Status::InvalidArgument("null reader");
  GANSWER_RETURN_NOT_OK(in->ReadU64(&num_triples_));
  GANSWER_RETURN_NOT_OK(in->ReadU64(&num_vertices_));
  GANSWER_RETURN_NOT_OK(in->ReadU64(&subjects_with_out_));
  GANSWER_RETURN_NOT_OK(in->ReadU64(&objects_with_in_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&predicates_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&triples_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&distinct_subjects_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&distinct_objects_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&classes_));
  GANSWER_RETURN_NOT_OK(in->ReadPodVector(&instance_counts_));
  if (triples_.size() != predicates_.size() ||
      distinct_subjects_.size() != predicates_.size() ||
      distinct_objects_.size() != predicates_.size()) {
    return Status::Corruption("graph stats predicate columns disagree");
  }
  if (instance_counts_.size() != classes_.size()) {
    return Status::Corruption("graph stats class columns disagree");
  }
  if (!std::is_sorted(predicates_.begin(), predicates_.end()) ||
      std::adjacent_find(predicates_.begin(), predicates_.end()) !=
          predicates_.end()) {
    return Status::Corruption("graph stats predicate keys not sorted");
  }
  if (!std::is_sorted(classes_.begin(), classes_.end()) ||
      std::adjacent_find(classes_.begin(), classes_.end()) != classes_.end()) {
    return Status::Corruption("graph stats class keys not sorted");
  }
  return Status::Ok();
}

}  // namespace rdf
}  // namespace ganswer
