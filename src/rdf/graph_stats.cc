#include "rdf/graph_stats.h"

#include <algorithm>

#include "common/binary_io.h"

namespace ganswer {
namespace rdf {

namespace {

void WriteVarintCounts(BinaryWriter* out, std::span<const uint64_t> counts) {
  out->WriteVarint(counts.size());
  for (uint64_t c : counts) out->WriteVarint(c);
}

Status ReadVarintCounts(BinaryReader* in, std::vector<uint64_t>* out) {
  uint64_t count = 0;
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&count));
  if (count > in->remaining()) {
    return Status::Corruption("count column exceeds remaining bytes");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t c = 0;
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&c));
    out->push_back(c);
  }
  return Status::Ok();
}

}  // namespace

GraphStats GraphStats::Compute(const RdfGraph& graph) {
  GraphStats stats;
  stats.num_triples_ = graph.NumTriples();
  stats.num_vertices_ = graph.NumTerms();

  std::span<const TermId> preds = graph.Predicates();
  std::vector<TermId> predicates(preds.begin(), preds.end());
  std::sort(predicates.begin(), predicates.end());
  size_t np = predicates.size();
  std::vector<uint64_t> triples(np, 0);
  std::vector<uint64_t> distinct_subjects(np, 0);
  std::vector<uint64_t> distinct_objects(np, 0);
  auto slot_of = [&](TermId p) {
    return static_cast<size_t>(
        std::lower_bound(predicates.begin(), predicates.end(), p) -
        predicates.begin());
  };

  // Adjacency is sorted by (predicate, neighbor) within a vertex, so each
  // vertex contributes one run per predicate it uses: run length goes to
  // the triple count, the run itself counts one distinct subject (out
  // direction) resp. object (in direction).
  const size_t n = graph.NumTerms();
  for (TermId v = 0; v < n; ++v) {
    auto outs = graph.OutEdges(v);
    if (!outs.empty()) ++stats.subjects_with_out_;
    for (size_t i = 0; i < outs.size();) {
      TermId p = outs[i].predicate;
      size_t j = i;
      while (j < outs.size() && outs[j].predicate == p) ++j;
      size_t slot = slot_of(p);
      triples[slot] += j - i;
      ++distinct_subjects[slot];
      i = j;
    }
    auto ins = graph.InEdges(v);
    if (!ins.empty()) ++stats.objects_with_in_;
    for (size_t i = 0; i < ins.size();) {
      TermId p = ins[i].predicate;
      size_t j = i;
      while (j < ins.size() && ins[j].predicate == p) ++j;
      ++distinct_objects[slot_of(p)];
      i = j;
    }
  }

  std::vector<TermId> classes;
  std::vector<uint64_t> instance_counts;
  for (TermId v = 0; v < n; ++v) {
    if (!graph.IsClass(v)) continue;
    classes.push_back(v);
    instance_counts.push_back(graph.InstancesOf(v).size());
  }

  stats.predicates_.Assign(std::move(predicates));
  stats.triples_.Assign(std::move(triples));
  stats.distinct_subjects_.Assign(std::move(distinct_subjects));
  stats.distinct_objects_.Assign(std::move(distinct_objects));
  stats.classes_.Assign(std::move(classes));
  stats.instance_counts_.Assign(std::move(instance_counts));
  return stats;
}

size_t GraphStats::PredicateSlot(TermId p) const {
  auto it = std::lower_bound(predicates_.begin(), predicates_.end(), p);
  if (it == predicates_.end() || *it != p) return predicates_.size();
  return static_cast<size_t>(it - predicates_.begin());
}

double GraphStats::AvgOutFanout() const {
  if (subjects_with_out_ == 0) return 0.0;
  return static_cast<double>(num_triples_) /
         static_cast<double>(subjects_with_out_);
}

double GraphStats::AvgInFanout() const {
  if (objects_with_in_ == 0) return 0.0;
  return static_cast<double>(num_triples_) /
         static_cast<double>(objects_with_in_);
}

uint64_t GraphStats::TripleCount(TermId p) const {
  size_t slot = PredicateSlot(p);
  return slot < triples_.size() ? triples_[slot] : 0;
}

uint64_t GraphStats::DistinctSubjects(TermId p) const {
  size_t slot = PredicateSlot(p);
  return slot < distinct_subjects_.size() ? distinct_subjects_[slot] : 0;
}

uint64_t GraphStats::DistinctObjects(TermId p) const {
  size_t slot = PredicateSlot(p);
  return slot < distinct_objects_.size() ? distinct_objects_[slot] : 0;
}

uint64_t GraphStats::ClassInstanceCount(TermId cls) const {
  auto it = std::lower_bound(classes_.begin(), classes_.end(), cls);
  if (it == classes_.end() || *it != cls) return 0;
  return instance_counts_[static_cast<size_t>(it - classes_.begin())];
}

double GraphStats::AvgObjectsPerSubject(TermId p) const {
  size_t slot = PredicateSlot(p);
  if (slot >= triples_.size() || distinct_subjects_[slot] == 0) return 0.0;
  return static_cast<double>(triples_[slot]) /
         static_cast<double>(distinct_subjects_[slot]);
}

double GraphStats::AvgSubjectsPerObject(TermId p) const {
  size_t slot = PredicateSlot(p);
  if (slot >= triples_.size() || distinct_objects_[slot] == 0) return 0.0;
  return static_cast<double>(triples_[slot]) /
         static_cast<double>(distinct_objects_[slot]);
}

size_t GraphStats::heap_bytes() const {
  return predicates_.heap_bytes() + triples_.heap_bytes() +
         distinct_subjects_.heap_bytes() + distinct_objects_.heap_bytes() +
         classes_.heap_bytes() + instance_counts_.heap_bytes();
}

size_t GraphStats::view_bytes() const {
  return predicates_.view_bytes() + triples_.view_bytes() +
         distinct_subjects_.view_bytes() + distinct_objects_.view_bytes() +
         classes_.view_bytes() + instance_counts_.view_bytes();
}

Status GraphStats::SaveBinary(BinaryWriter* out, bool compressed) const {
  if (out == nullptr) return Status::InvalidArgument("null writer");
  if (!compressed) {
    out->WriteU64(num_triples_);
    out->WriteU64(num_vertices_);
    out->WriteU64(subjects_with_out_);
    out->WriteU64(objects_with_in_);
    out->WritePodSpan(predicates_.span());
    out->WritePodSpan(triples_.span());
    out->WritePodSpan(distinct_subjects_.span());
    out->WritePodSpan(distinct_objects_.span());
    out->WritePodSpan(classes_.span());
    out->WritePodSpan(instance_counts_.span());
    return Status::Ok();
  }
  out->WriteVarint(num_triples_);
  out->WriteVarint(num_vertices_);
  out->WriteVarint(subjects_with_out_);
  out->WriteVarint(objects_with_in_);
  WriteDeltaVarints<TermId>(*out, predicates_.span());
  WriteVarintCounts(out, triples_.span());
  WriteVarintCounts(out, distinct_subjects_.span());
  WriteVarintCounts(out, distinct_objects_.span());
  WriteDeltaVarints<TermId>(*out, classes_.span());
  WriteVarintCounts(out, instance_counts_.span());
  return Status::Ok();
}

Status GraphStats::LoadBinary(BinaryReader* in, bool compressed) {
  if (in == nullptr) return Status::InvalidArgument("null reader");
  if (!compressed) {
    GANSWER_RETURN_NOT_OK(in->ReadU64(&num_triples_));
    GANSWER_RETURN_NOT_OK(in->ReadU64(&num_vertices_));
    GANSWER_RETURN_NOT_OK(in->ReadU64(&subjects_with_out_));
    GANSWER_RETURN_NOT_OK(in->ReadU64(&objects_with_in_));
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&predicates_));
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&triples_));
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&distinct_subjects_));
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&distinct_objects_));
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&classes_));
    GANSWER_RETURN_NOT_OK(in->ReadPodColumn(&instance_counts_));
    return Validate();
  }
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_triples_));
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_vertices_));
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&subjects_with_out_));
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&objects_with_in_));
  std::vector<TermId> predicates, classes;
  std::vector<uint64_t> triples, distinct_subjects, distinct_objects,
      instance_counts;
  GANSWER_RETURN_NOT_OK(ReadDeltaVarints<TermId>(*in, &predicates));
  GANSWER_RETURN_NOT_OK(ReadVarintCounts(in, &triples));
  GANSWER_RETURN_NOT_OK(ReadVarintCounts(in, &distinct_subjects));
  GANSWER_RETURN_NOT_OK(ReadVarintCounts(in, &distinct_objects));
  GANSWER_RETURN_NOT_OK(ReadDeltaVarints<TermId>(*in, &classes));
  GANSWER_RETURN_NOT_OK(ReadVarintCounts(in, &instance_counts));
  predicates_.Assign(std::move(predicates));
  triples_.Assign(std::move(triples));
  distinct_subjects_.Assign(std::move(distinct_subjects));
  distinct_objects_.Assign(std::move(distinct_objects));
  classes_.Assign(std::move(classes));
  instance_counts_.Assign(std::move(instance_counts));
  return Validate();
}

Status GraphStats::Validate() const {
  if (triples_.size() != predicates_.size() ||
      distinct_subjects_.size() != predicates_.size() ||
      distinct_objects_.size() != predicates_.size()) {
    return Status::Corruption("graph stats predicate columns disagree");
  }
  if (instance_counts_.size() != classes_.size()) {
    return Status::Corruption("graph stats class columns disagree");
  }
  if (!std::is_sorted(predicates_.begin(), predicates_.end()) ||
      std::adjacent_find(predicates_.begin(), predicates_.end()) !=
          predicates_.end()) {
    return Status::Corruption("graph stats predicate keys not sorted");
  }
  if (!std::is_sorted(classes_.begin(), classes_.end()) ||
      std::adjacent_find(classes_.begin(), classes_.end()) != classes_.end()) {
    return Status::Corruption("graph stats class keys not sorted");
  }
  return Status::Ok();
}

}  // namespace rdf
}  // namespace ganswer
