#ifndef GANSWER_RDF_SPARQL_ENGINE_H_
#define GANSWER_RDF_SPARQL_ENGINE_H_

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/rdf_graph.h"
#include "rdf/sparql.h"

namespace ganswer {
namespace rdf {

/// \brief Basic-graph-pattern evaluator over an RdfGraph.
///
/// Evaluation is backtracking join: patterns are dynamically reordered so
/// that the next pattern evaluated is the one with the smallest estimated
/// candidate set under the current partial binding (greedy selectivity
/// ordering, the classic strategy of RDF-3X/gStore-style engines at small
/// scale). A by-predicate triple index is built once per engine so patterns
/// with only the predicate bound do not scan the whole graph.
class SparqlEngine {
 public:
  /// \p graph must be finalized and must outlive the engine.
  explicit SparqlEngine(const RdfGraph& graph);

  /// Evaluates \p query. Fails with InvalidArgument for queries that use a
  /// selected variable not bound by any pattern.
  StatusOr<SparqlResult> Execute(const SparqlQuery& query) const;

  /// Parses and evaluates SPARQL text.
  StatusOr<SparqlResult> ExecuteText(std::string_view text) const;

  /// Evaluates a bare BGP and returns every distinct binding of \p var.
  /// Convenience used by gold-answer computation and the DEANNA baseline.
  StatusOr<std::vector<TermId>> SelectOne(
      const std::vector<TriplePattern>& patterns,
      const std::string& var) const;

  const RdfGraph& graph() const { return graph_; }

 private:
  struct Binding;

  /// All (subject, object) pairs for predicate id \p p.
  const std::vector<std::pair<TermId, TermId>>* PredicateScan(TermId p) const;

  StatusOr<std::vector<std::vector<TermId>>> EvaluateBgp(
      const std::vector<TriplePattern>& patterns,
      const std::vector<std::string>& out_vars, bool stop_at_first) const;

  const RdfGraph& graph_;
  std::unordered_map<TermId, std::vector<std::pair<TermId, TermId>>>
      by_predicate_;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_SPARQL_ENGINE_H_
