#ifndef GANSWER_RDF_SPARQL_ENGINE_H_
#define GANSWER_RDF_SPARQL_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/striped_counter.h"
#include "rdf/graph_stats.h"
#include "rdf/rdf_graph.h"
#include "rdf/sparql.h"

namespace ganswer {
namespace rdf {

/// \brief Basic-graph-pattern evaluator over an RdfGraph with a
/// statistics-driven cost-based join planner.
///
/// Storage: two sorted permutation indexes built in one counting pass over
/// the CSR adjacency (no hashing, no sorting) — PSO (per-predicate (s, o)
/// pairs sorted by subject) and POS (per-predicate (o, s) pairs sorted by
/// object). Bound terms resolve to contiguous runs by binary search; a
/// leading pair of patterns with a shared join variable on the sorted side
/// of both groups is evaluated as a sort-merge join.
///
/// Planning: a greedy cost-based orderer over GraphStats picks the
/// cheapest-estimated pattern first, then repeatedly the pattern connected
/// to the bound variables that minimizes the estimated intermediate-result
/// size (cross products only when no connected pattern remains). The naive
/// baseline — textual pattern order over linear scans, the differential-
/// testing and bench reference — is selected by Options::use_planner =
/// false or the GANSWER_SPARQL_NAIVE=1 environment variable. Both modes
/// enumerate the same solution multiset.
class SparqlEngine {
 public:
  struct Options {
    /// false forces the naive baseline: patterns joined in textual order
    /// with linear-scan candidate enumeration (no binary-searched runs, no
    /// merge join). The GANSWER_SPARQL_NAIVE=1 environment variable
    /// overrides this to false at construction.
    bool use_planner = true;
    /// Statistics backing the cost model; must outlive the engine. When
    /// null the engine computes (and owns) its own from the graph.
    const GraphStats* stats = nullptr;
  };

  /// Cumulative execution counters — striped per core (StripedCounter)
  /// since one engine instance is shared across all server workers, and a
  /// shared atomic hammered per join step was a measurable hot-path
  /// contention point. Values are exact; benches read deltas around a
  /// workload to get per-query intermediate-binding counts.
  struct PlannerCounters {
    /// Queries whose BGP went through the cost-based orderer.
    uint64_t planned_queries = 0;
    /// Queries executed in naive textual order.
    uint64_t naive_queries = 0;
    /// Bound-term lookups answered by a binary-searched sorted run
    /// (adjacency runs, PSO/POS ranges, exact HasTriple probes).
    uint64_t range_lookups = 0;
    /// Whole-predicate (or whole-graph) scans.
    uint64_t full_scans = 0;
    /// Candidate triples enumerated across all join steps — the
    /// intermediate-binding count the planner tries to minimize.
    uint64_t intermediate_bindings = 0;
    /// Leading sort-merge joins executed.
    uint64_t merge_joins = 0;
  };

  /// \p graph must be finalized and must outlive the engine.
  explicit SparqlEngine(const RdfGraph& graph);
  SparqlEngine(const RdfGraph& graph, Options options);

  /// Evaluates \p query. Fails with InvalidArgument for queries that use a
  /// selected variable not bound by any pattern. Thread-safe.
  StatusOr<SparqlResult> Execute(const SparqlQuery& query) const;

  /// Parses and evaluates SPARQL text.
  StatusOr<SparqlResult> ExecuteText(std::string_view text) const;

  /// Evaluates a bare BGP and returns every distinct binding of \p var.
  /// Convenience used by gold-answer computation and the DEANNA baseline.
  StatusOr<std::vector<TermId>> SelectOne(
      const std::vector<TriplePattern>& patterns,
      const std::string& var) const;

  /// Human-readable join plan for \p query: one line per pattern in
  /// execution order with its cardinality estimate and access path. The
  /// explain subsystem (qa/explain.h) includes this in answer explanations.
  StatusOr<std::string> ExplainPlan(const SparqlQuery& query) const;

  /// Snapshot of the cumulative execution counters.
  PlannerCounters planner_counters() const;

  const RdfGraph& graph() const { return graph_; }
  const GraphStats& stats() const { return *stats_; }
  const Options& options() const { return options_; }

 private:
  struct PlanStep {
    size_t pattern = 0;     // index into the query's pattern list
    double estimate = 0.0;  // estimated candidate rows at this step
  };

  StatusOr<std::vector<std::vector<TermId>>> EvaluateBgp(
      const std::vector<TriplePattern>& patterns,
      const std::vector<std::string>& out_vars, bool stop_at_first) const;

  /// Slot of predicate \p p in the permutation indexes, or npos.
  size_t PredSlot(TermId p) const;

  const RdfGraph& graph_;
  Options options_;
  std::unique_ptr<GraphStats> owned_stats_;
  const GraphStats* stats_ = nullptr;  // never null after construction

  // Sorted permutation indexes. Predicate slot k's pairs occupy
  // [slot_offsets_[k], slot_offsets_[k + 1]) in both arrays; PSO and POS
  // group sizes are identical, so one offset array serves both.
  std::vector<TermId> slot_predicate_;                // slot -> predicate id
  std::vector<uint32_t> pred_slot_;                   // TermId -> slot
  std::vector<size_t> slot_offsets_;                  // num slots + 1
  std::vector<std::pair<TermId, TermId>> pso_;        // (s, o), sorted
  std::vector<std::pair<TermId, TermId>> pos_;        // (o, s), sorted

  mutable StripedCounter planned_queries_;
  mutable StripedCounter naive_queries_;
  mutable StripedCounter range_lookups_;
  mutable StripedCounter full_scans_;
  mutable StripedCounter intermediate_bindings_;
  mutable StripedCounter merge_joins_;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_SPARQL_ENGINE_H_
