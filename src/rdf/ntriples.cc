#include "rdf/ntriples.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace ganswer {
namespace rdf {

namespace {

constexpr std::string_view kRdfTypeIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr std::string_view kSubClassIri =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
constexpr std::string_view kLabelIri =
    "http://www.w3.org/2000/01/rdf-schema#label";

std::string_view Canonicalize(std::string_view iri) {
  if (iri == kRdfTypeIri) return kTypePredicate;
  if (iri == kSubClassIri) return kSubClassOfPredicate;
  if (iri == kLabelIri) return kLabelPredicate;
  return iri;
}

// Parses one term starting at position *pos of line. On success advances
// *pos past the term and trailing spaces, fills text/kind.
Status ParseTerm(std::string_view line, size_t* pos, std::string* text,
                 TermKind* kind, size_t line_no) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  if (*pos >= line.size()) {
    return Status::Corruption("line " + std::to_string(line_no) +
                              ": unexpected end of line");
  }
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": unterminated IRI");
    }
    *text = std::string(Canonicalize(line.substr(*pos + 1, end - *pos - 1)));
    *kind = TermKind::kIri;
    *pos = end + 1;
    return Status::Ok();
  }
  if (c == '"') {
    std::string value;
    size_t i = *pos + 1;
    bool closed = false;
    while (i < line.size()) {
      char d = line[i];
      if (d == '\\' && i + 1 < line.size()) {
        char esc = line[i + 1];
        switch (esc) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case '\\':
            value += '\\';
            break;
          case '"':
            value += '"';
            break;
          default:
            value += esc;
        }
        i += 2;
        continue;
      }
      if (d == '"') {
        closed = true;
        ++i;
        break;
      }
      value += d;
      ++i;
    }
    if (!closed) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": unterminated literal");
    }
    // Skip an optional datatype (^^<...>) or language tag (@xx).
    if (i + 1 < line.size() && line[i] == '^' && line[i + 1] == '^') {
      size_t gt = line.find('>', i);
      if (gt == std::string_view::npos) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": unterminated datatype IRI");
      }
      i = gt + 1;
    } else if (i < line.size() && line[i] == '@') {
      while (i < line.size() && line[i] != ' ') ++i;
    }
    *text = std::move(value);
    *kind = TermKind::kLiteral;
    *pos = i;
    return Status::Ok();
  }
  return Status::Corruption("line " + std::to_string(line_no) +
                            ": expected '<' or '\"', got '" +
                            std::string(1, c) + "'");
}

}  // namespace

Status NTriplesReader::ParseString(std::string_view text, RdfGraph* graph) {
  if (graph == nullptr) return Status::InvalidArgument("null graph");
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = Trim(text.substr(start, nl - start));
    ++line_no;
    start = nl + 1;
    if (line.empty() || line[0] == '#') {
      if (nl == text.size()) break;
      continue;
    }

    size_t pos = 0;
    std::string s, p, o;
    TermKind sk, pk, ok;
    GANSWER_RETURN_NOT_OK(ParseTerm(line, &pos, &s, &sk, line_no));
    GANSWER_RETURN_NOT_OK(ParseTerm(line, &pos, &p, &pk, line_no));
    GANSWER_RETURN_NOT_OK(ParseTerm(line, &pos, &o, &ok, line_no));
    if (sk != TermKind::kIri || pk != TermKind::kIri) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": subject and predicate must be IRIs");
    }
    std::string_view rest = Trim(line.substr(pos));
    if (rest != ".") {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected terminating '.'");
    }
    graph->AddTriple(s, p, o, ok);
    if (nl == text.size()) break;
  }
  return Status::Ok();
}

StatusOr<std::vector<UpdateOp>> NTriplesReader::ParseUpdate(
    std::string_view text) {
  std::vector<UpdateOp> ops;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = Trim(text.substr(start, nl - start));
    ++line_no;
    start = nl + 1;
    if (line.empty() || line[0] == '#') {
      if (nl == text.size()) break;
      continue;
    }

    UpdateOp op;
    if (line[0] == '-') {
      op.is_delete = true;
      line = Trim(line.substr(1));
      if (line.empty()) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bare '-' with no triple");
      }
    }
    size_t pos = 0;
    TermKind sk, pk;
    GANSWER_RETURN_NOT_OK(ParseTerm(line, &pos, &op.subject, &sk, line_no));
    GANSWER_RETURN_NOT_OK(ParseTerm(line, &pos, &op.predicate, &pk, line_no));
    GANSWER_RETURN_NOT_OK(
        ParseTerm(line, &pos, &op.object, &op.object_kind, line_no));
    if (sk != TermKind::kIri || pk != TermKind::kIri) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": subject and predicate must be IRIs");
    }
    std::string_view rest = Trim(line.substr(pos));
    if (rest != ".") {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": expected terminating '.'");
    }
    ops.push_back(std::move(op));
    if (nl == text.size()) break;
  }
  return ops;
}

Status NTriplesReader::ParseFile(const std::string& path, RdfGraph* graph) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseString(buf.str(), graph);
}

namespace {

void WriteTerm(const TermDictionary& dict, TermId id, std::ostream* out) {
  std::string_view text = dict.text(id);
  if (dict.IsLiteral(id)) {
    *out << '"';
    for (char c : text) {
      switch (c) {
        case '"':
          *out << "\\\"";
          break;
        case '\\':
          *out << "\\\\";
          break;
        case '\n':
          *out << "\\n";
          break;
        default:
          *out << c;
      }
    }
    *out << '"';
  } else {
    *out << '<' << text << '>';
  }
}

}  // namespace

Status NTriplesWriter::Write(const RdfGraph& graph, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized before writing");
  }
  const TermDictionary& dict = graph.dict();
  for (TermId s = 0; s < dict.size(); ++s) {
    for (const Edge& e : graph.OutEdges(s)) {
      WriteTerm(dict, s, out);
      *out << ' ';
      WriteTerm(dict, e.predicate, out);
      *out << ' ';
      WriteTerm(dict, e.neighbor, out);
      *out << " .\n";
    }
  }
  return Status::Ok();
}

}  // namespace rdf
}  // namespace ganswer
