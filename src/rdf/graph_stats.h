#ifndef GANSWER_RDF_GRAPH_STATS_H_
#define GANSWER_RDF_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "common/pod_column.h"
#include "common/status.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace rdf {

/// \brief Cardinality statistics of a finalized RdfGraph, computed once at
/// build time and consumed by the query planners (SparqlEngine join
/// ordering, CandidateSpace/TopKMatcher anchor and expansion ordering).
///
/// Per predicate: triple count, distinct subject count, distinct object
/// count. Per class: instance count through the rdfs:subClassOf closure
/// (what an `?x rdf:type <C>` pattern actually yields). Global: average
/// out/in fan-out over vertices that have edges at all. Everything is a
/// plain sorted column, so lookups are binary searches and the whole object
/// round-trips through the snapshot as POD vectors — zero-copy over an
/// mmap-ed raw section, delta-varint coded in a compressed one (the key
/// columns are ascending, the count columns are small integers).
///
/// Statistics only steer *ordering* decisions, never filtering: a planner
/// consulting a stale or empty GraphStats still returns exact results, just
/// in a worse join order.
class GraphStats {
 public:
  GraphStats() = default;

  /// One pass over the CSR adjacency (O(V + E)) plus one InstancesOf walk
  /// per class vertex. \p graph must be finalized.
  static GraphStats Compute(const RdfGraph& graph);

  uint64_t num_triples() const { return num_triples_; }
  uint64_t num_vertices() const { return num_vertices_; }
  uint64_t num_predicates() const { return predicates_.size(); }
  uint64_t num_classes() const { return classes_.size(); }

  /// Mean out-degree over vertices with at least one out-edge (>= 1 when
  /// the graph has triples); the fan-out of "follow any predicate forward".
  double AvgOutFanout() const;
  /// Mean in-degree over vertices with at least one in-edge.
  double AvgInFanout() const;

  /// Number of triples with predicate \p p; 0 for unknown terms.
  uint64_t TripleCount(TermId p) const;
  /// Number of distinct subjects appearing with predicate \p p.
  uint64_t DistinctSubjects(TermId p) const;
  /// Number of distinct objects appearing with predicate \p p.
  uint64_t DistinctObjects(TermId p) const;
  /// Instances of class \p cls through the subclass closure; 0 when \p cls
  /// is not a class vertex.
  uint64_t ClassInstanceCount(TermId cls) const;

  /// Expected |{o : <s, p, o>}| for a subject that uses \p p at all:
  /// TripleCount(p) / DistinctSubjects(p). 0 for unknown predicates.
  double AvgObjectsPerSubject(TermId p) const;
  /// Expected |{s : <s, p, o>}| for an object that \p p points at.
  double AvgSubjectsPerObject(TermId p) const;

  Status SaveBinary(BinaryWriter* out, bool compressed = false) const;
  /// Replaces the contents with previously saved statistics; validates that
  /// the key arrays are sorted and the column lengths agree.
  Status LoadBinary(BinaryReader* in, bool compressed = false);

  /// Heap / mapped bytes pinned by the columns (snapshot accounting).
  size_t heap_bytes() const;
  size_t view_bytes() const;

  friend bool operator==(const GraphStats&, const GraphStats&) = default;

 private:
  size_t PredicateSlot(TermId p) const;
  Status Validate() const;

  uint64_t num_triples_ = 0;
  uint64_t num_vertices_ = 0;
  uint64_t subjects_with_out_ = 0;  // vertices with >= 1 out-edge
  uint64_t objects_with_in_ = 0;    // vertices with >= 1 in-edge
  // Columnar per-predicate records, keyed by the sorted predicates_ column
  // (parallel columns rather than a struct so the snapshot bytes contain no
  // padding and the section is deterministic).
  PodColumn<TermId> predicates_;  // ascending
  PodColumn<uint64_t> triples_;
  PodColumn<uint64_t> distinct_subjects_;
  PodColumn<uint64_t> distinct_objects_;
  // Per-class instance counts, keyed by the sorted classes_ column.
  PodColumn<TermId> classes_;  // ascending
  PodColumn<uint64_t> instance_counts_;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_GRAPH_STATS_H_
