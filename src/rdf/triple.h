#ifndef GANSWER_RDF_TRIPLE_H_
#define GANSWER_RDF_TRIPLE_H_

#include <cstddef>
#include <functional>

#include "rdf/term_dictionary.h"

namespace ganswer {
namespace rdf {

/// A dictionary-encoded RDF triple <subject, predicate, object>.
struct Triple {
  TermId subject = kInvalidTerm;
  TermId predicate = kInvalidTerm;
  TermId object = kInvalidTerm;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple&, const Triple&) = default;
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t h = std::hash<uint64_t>()(
        (static_cast<uint64_t>(t.subject) << 32) | t.predicate);
    return h ^ (std::hash<uint32_t>()(t.object) + 0x9e3779b97f4a7c15ULL +
                (h << 6) + (h >> 2));
  }
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_TRIPLE_H_
