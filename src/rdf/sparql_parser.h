#ifndef GANSWER_RDF_SPARQL_PARSER_H_
#define GANSWER_RDF_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rdf/sparql.h"

namespace ganswer {
namespace rdf {

/// \brief Hand-rolled recursive-descent parser for the SPARQL-lite fragment
/// (see SparqlQuery). Grammar:
///
///   query    := select | ask
///   select   := "SELECT" "DISTINCT"? ( "*" | var+ ) "WHERE"? group
///               ("LIMIT" INT)?
///   ask      := "ASK" "WHERE"? group
///   group    := "{" (pattern ("." pattern?)*)? "}"
///   pattern  := term term term
///   term     := "?"NAME | "<"IRI">" | '"'LITERAL'"' | PREFIXED_NAME
///
/// Keywords are case-insensitive. PREFIXED_NAME ("rdf:type") is kept
/// verbatim as an IRI text.
///
/// Malformed input always fails with Status::InvalidArgument whose message
/// carries the byte offset of the offending token ("... at byte N") — the
/// parser never throws and never crashes, whatever the bytes (the fuzz
/// drivers under tests/fuzz/ enforce this).
class SparqlParser {
 public:
  static StatusOr<SparqlQuery> Parse(std::string_view text);
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_SPARQL_PARSER_H_
