#ifndef GANSWER_RDF_SPARQL_H_
#define GANSWER_RDF_SPARQL_H_

#include <optional>
#include <string>
#include <vector>

#include "rdf/term_dictionary.h"

namespace ganswer {
namespace rdf {

/// One position of a triple pattern: either a variable ("?x", stored
/// without the '?') or a constant RDF term.
struct PatternTerm {
  bool is_var = false;
  std::string text;
  /// Literal constants match literal terms; IRI constants match IRIs.
  TermKind kind = TermKind::kIri;

  static PatternTerm Var(std::string name) {
    return PatternTerm{true, std::move(name), TermKind::kIri};
  }
  static PatternTerm Iri(std::string text) {
    return PatternTerm{false, std::move(text), TermKind::kIri};
  }
  static PatternTerm Literal(std::string text) {
    return PatternTerm{false, std::move(text), TermKind::kLiteral};
  }

  friend bool operator==(const PatternTerm&, const PatternTerm&) = default;
};

/// A SPARQL triple pattern `s p o`.
struct TriplePattern {
  PatternTerm subject;
  PatternTerm predicate;
  PatternTerm object;

  friend bool operator==(const TriplePattern&, const TriplePattern&) = default;
};

/// \brief The SPARQL fragment the engine evaluates: SELECT/ASK over a basic
/// graph pattern, with DISTINCT and LIMIT. This is the fragment both the
/// DEANNA baseline emits and gold-answer computation uses; the paper's own
/// failure analysis (Table 10) notes that aggregation (ORDER BY/OFFSET)
/// is out of scope for the QA pipeline.
struct SparqlQuery {
  enum class Form { kSelect, kAsk };

  /// ORDER BY [ASC|DESC](?var). Values that parse as numbers compare
  /// numerically, others lexicographically — enough for the paper's own
  /// aggregation example "ORDER BY DESC(?x) OFFSET 0 LIMIT 1".
  struct OrderBy {
    std::string var;
    bool descending = false;
  };

  Form form = Form::kSelect;
  bool distinct = false;
  /// Empty with select_all == true means `SELECT *`.
  std::vector<std::string> select_vars;
  bool select_all = false;
  std::vector<TriplePattern> patterns;
  std::optional<OrderBy> order_by;
  std::optional<size_t> limit;
  std::optional<size_t> offset;

  /// Serializes back to SPARQL text (stable formatting, for logs/tests).
  std::string ToString() const;
};

/// Result of query evaluation. For ASK queries only ask_result is
/// meaningful; for SELECT, rows are parallel to var_names.
struct SparqlResult {
  std::vector<std::string> var_names;
  std::vector<std::vector<TermId>> rows;
  bool ask_result = false;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_SPARQL_H_
