#ifndef GANSWER_RDF_TERM_DICTIONARY_H_
#define GANSWER_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/pod_column.h"
#include "common/status.h"

namespace ganswer {

class BinaryWriter;
class BinaryReader;

namespace rdf {

/// Integer id of an interned RDF term. Ids are dense, starting at 0, and
/// double as vertex ids in RdfGraph.
using TermId = uint32_t;

/// Sentinel for "no term".
constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// Kind of an interned term. IRIs name entities, classes and predicates;
/// literals carry values ("1.98", "1962-03-21").
enum class TermKind : uint8_t { kIri = 0, kLiteral = 1 };

/// \brief Bidirectional string <-> id mapping for RDF terms.
///
/// All triples in an RdfGraph are dictionary-encoded: parsing interns each
/// subject/predicate/object once and the engine works on dense uint32 ids,
/// in the style of every disk-based RDF store (RDF-3X, gStore, Virtuoso).
///
/// Term texts live in one contiguous arena addressed by an offset column;
/// both are PodColumns, so a dictionary loaded from an mmap-ed snapshot
/// serves text() straight out of the file mapping. Interning after such a
/// load first migrates the columns to owned storage.
class TermDictionary {
 public:
  TermDictionary() { offsets_.Assign({0}); }

  // Movable, not copyable: the dictionary backs id stability for a graph.
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;

  /// Interns \p text with \p kind, returning the existing id when already
  /// present. IRIs and literals live in SEPARATE term spaces: the literal
  /// "country" (a label) and the IRI <country> (a predicate) are distinct
  /// terms even though their texts match — as in any real RDF store.
  TermId Intern(std::string_view text, TermKind kind = TermKind::kIri);

  /// Id of the term with \p text and \p kind, or std::nullopt.
  std::optional<TermId> Lookup(std::string_view text,
                               TermKind kind = TermKind::kIri) const;

  /// Id of a term with \p text of either kind, preferring the IRI.
  std::optional<TermId> LookupAny(std::string_view text) const;

  /// Text of term \p id. \p id must be valid. The view is stable for the
  /// life of the dictionary (or its backing snapshot mapping) as long as no
  /// further Intern happens.
  std::string_view text(TermId id) const {
    return std::string_view(arena_.data() + offsets_[id],
                            offsets_[id + 1] - offsets_[id]);
  }

  TermKind kind(TermId id) const { return static_cast<TermKind>(kinds_[id]); }
  bool IsLiteral(TermId id) const {
    return kinds_[id] == static_cast<uint8_t>(TermKind::kLiteral);
  }

  /// Number of interned terms; valid ids are [0, size()).
  size_t size() const { return kinds_.size(); }

  /// Heap bytes pinned by the text storage (0 when fully mmap-backed; the
  /// hash index always lives on the heap and is reported separately by the
  /// snapshot accounting).
  size_t heap_bytes() const {
    return arena_.heap_bytes() + offsets_.heap_bytes() + kinds_.heap_bytes();
  }

  /// Snapshot serialization: one contiguous string arena + an offset array
  /// + the kind array, so the matching load is three bulk reads.
  void SaveBinary(BinaryWriter* out) const;
  /// Replaces the contents with a previously saved dictionary. Term ids are
  /// preserved exactly; the lookup index is rebuilt in one reserving pass.
  /// When the reader allows views, the arena/offset/kind columns stay
  /// zero-copy over the input bytes.
  Status LoadBinary(BinaryReader* in);

  /// Front-coded serialization for compressed snapshot sections: terms are
  /// grouped into blocks of kFrontCodingBlock; each block stores its first
  /// term in full and every following term as (shared-prefix length, suffix)
  /// — consecutive term texts share long prefixes because IRIs interned from
  /// the same namespace sort near each other in id order. A delta-varint
  /// directory of block offsets gives O(block) random access to the blob.
  void SaveFrontCoded(BinaryWriter* out) const;
  Status LoadFrontCoded(BinaryReader* in);

  static constexpr size_t kFrontCodingBlock = 16;

 private:
  Status RebuildIndex();

  PodColumn<char> arena_;
  PodColumn<uint64_t> offsets_;  // size()+1 entries; offsets_[0] == 0
  PodColumn<uint8_t> kinds_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_TERM_DICTIONARY_H_
