#ifndef GANSWER_RDF_TERM_DICTIONARY_H_
#define GANSWER_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ganswer {

class BinaryWriter;
class BinaryReader;

namespace rdf {

/// Integer id of an interned RDF term. Ids are dense, starting at 0, and
/// double as vertex ids in RdfGraph.
using TermId = uint32_t;

/// Sentinel for "no term".
constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// Kind of an interned term. IRIs name entities, classes and predicates;
/// literals carry values ("1.98", "1962-03-21").
enum class TermKind : uint8_t { kIri = 0, kLiteral = 1 };

/// \brief Bidirectional string <-> id mapping for RDF terms.
///
/// All triples in an RdfGraph are dictionary-encoded: parsing interns each
/// subject/predicate/object once and the engine works on dense uint32 ids,
/// in the style of every disk-based RDF store (RDF-3X, gStore, Virtuoso).
class TermDictionary {
 public:
  TermDictionary() = default;

  // Movable, not copyable: the dictionary backs id stability for a graph.
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;

  /// Interns \p text with \p kind, returning the existing id when already
  /// present. IRIs and literals live in SEPARATE term spaces: the literal
  /// "country" (a label) and the IRI <country> (a predicate) are distinct
  /// terms even though their texts match — as in any real RDF store.
  TermId Intern(std::string_view text, TermKind kind = TermKind::kIri);

  /// Id of the term with \p text and \p kind, or std::nullopt.
  std::optional<TermId> Lookup(std::string_view text,
                               TermKind kind = TermKind::kIri) const;

  /// Id of a term with \p text of either kind, preferring the IRI.
  std::optional<TermId> LookupAny(std::string_view text) const;

  /// Text of term \p id. \p id must be valid.
  const std::string& text(TermId id) const { return texts_[id]; }

  TermKind kind(TermId id) const { return kinds_[id]; }
  bool IsLiteral(TermId id) const { return kinds_[id] == TermKind::kLiteral; }

  /// Number of interned terms; valid ids are [0, size()).
  size_t size() const { return texts_.size(); }

  /// Snapshot serialization: one contiguous string arena + an offset array
  /// + the kind array, so the matching load is three bulk reads.
  void SaveBinary(BinaryWriter* out) const;
  /// Replaces the contents with a previously saved dictionary. Term ids are
  /// preserved exactly; the lookup index is rebuilt in one reserving pass.
  Status LoadBinary(BinaryReader* in);

 private:
  std::vector<std::string> texts_;
  std::vector<TermKind> kinds_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_TERM_DICTIONARY_H_
