#ifndef GANSWER_RDF_TERM_DICTIONARY_H_
#define GANSWER_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/pod_column.h"
#include "common/status.h"

namespace ganswer {

class BinaryWriter;
class BinaryReader;

namespace rdf {

/// Integer id of an interned RDF term. Ids are dense, starting at 0, and
/// double as vertex ids in RdfGraph.
using TermId = uint32_t;

/// Sentinel for "no term".
constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

/// Kind of an interned term. IRIs name entities, classes and predicates;
/// literals carry values ("1.98", "1962-03-21").
enum class TermKind : uint8_t { kIri = 0, kLiteral = 1 };

/// \brief Bidirectional string <-> id mapping for RDF terms.
///
/// All triples in an RdfGraph are dictionary-encoded: parsing interns each
/// subject/predicate/object once and the engine works on dense uint32 ids,
/// in the style of every disk-based RDF store (RDF-3X, gStore, Virtuoso).
///
/// Term texts live in one contiguous arena addressed by an offset column;
/// both are PodColumns, so a dictionary loaded from an mmap-ed snapshot
/// serves text() straight out of the file mapping. Interning after such a
/// load first migrates the columns to owned storage.
///
/// EXTENSION MODE (the live-update delta layer): InitExtension(base) turns a
/// freshly constructed dictionary into an overlay over an immutable \p base.
/// Ids [0, base->size()) resolve through the base; new terms intern locally
/// and receive the next dense ids above it, so TermIds stay stable across
/// batch commits and double as vertex ids in the overlay graph. An extension
/// dictionary is in-memory only — it is never serialized (compaction
/// re-interns every term into a flat dictionary in id order instead).
class TermDictionary {
 public:
  TermDictionary() { offsets_.Assign({0}); }

  // Movable, not copyable: the dictionary backs id stability for a graph.
  TermDictionary(const TermDictionary&) = delete;
  TermDictionary& operator=(const TermDictionary&) = delete;
  TermDictionary(TermDictionary&&) = default;
  TermDictionary& operator=(TermDictionary&&) = default;

  /// Interns \p text with \p kind, returning the existing id when already
  /// present. IRIs and literals live in SEPARATE term spaces: the literal
  /// "country" (a label) and the IRI <country> (a predicate) are distinct
  /// terms even though their texts match — as in any real RDF store.
  TermId Intern(std::string_view text, TermKind kind = TermKind::kIri);

  /// Id of the term with \p text and \p kind, or std::nullopt.
  std::optional<TermId> Lookup(std::string_view text,
                               TermKind kind = TermKind::kIri) const;

  /// Id of a term with \p text of either kind, preferring the IRI.
  std::optional<TermId> LookupAny(std::string_view text) const;

  /// Turns this dictionary into an extension over \p base (see class
  /// comment). Must be called on a freshly constructed, empty dictionary;
  /// \p base must outlive this object and stay un-Interned (callers pin the
  /// owning snapshot). Ids below base->size() delegate to the base; local
  /// terms get ids base->size(), base->size()+1, ...
  void InitExtension(const TermDictionary* base);

  /// The base dictionary of an extension, or nullptr for a flat dictionary.
  const TermDictionary* extension_base() const { return base_; }
  /// Number of ids served by the base (0 for a flat dictionary); local
  /// (delta) terms are exactly the ids in [base_size(), size()).
  size_t base_size() const { return base_size_; }

  /// Text of term \p id. \p id must be valid. The view is stable for the
  /// life of the dictionary (or its backing snapshot mapping) as long as no
  /// further Intern happens.
  std::string_view text(TermId id) const {
    if (id < base_size_) return base_->text(id);
    id -= static_cast<TermId>(base_size_);
    return std::string_view(arena_.data() + offsets_[id],
                            offsets_[id + 1] - offsets_[id]);
  }

  TermKind kind(TermId id) const {
    if (id < base_size_) return base_->kind(id);
    return static_cast<TermKind>(kinds_[id - base_size_]);
  }
  bool IsLiteral(TermId id) const {
    return kind(id) == TermKind::kLiteral;
  }

  /// Number of interned terms; valid ids are [0, size()).
  size_t size() const { return base_size_ + kinds_.size(); }

  /// Heap bytes pinned by the text storage (0 when fully mmap-backed; the
  /// hash index always lives on the heap and is reported separately by the
  /// snapshot accounting).
  size_t heap_bytes() const {
    return arena_.heap_bytes() + offsets_.heap_bytes() + kinds_.heap_bytes();
  }

  /// Snapshot serialization: one contiguous string arena + an offset array
  /// + the kind array, so the matching load is three bulk reads.
  void SaveBinary(BinaryWriter* out) const;
  /// Replaces the contents with a previously saved dictionary. Term ids are
  /// preserved exactly; the lookup index is rebuilt in one reserving pass.
  /// When the reader allows views, the arena/offset/kind columns stay
  /// zero-copy over the input bytes.
  Status LoadBinary(BinaryReader* in);

  /// Front-coded serialization for compressed snapshot sections: terms are
  /// grouped into blocks of kFrontCodingBlock; each block stores its first
  /// term in full and every following term as (shared-prefix length, suffix)
  /// — consecutive term texts share long prefixes because IRIs interned from
  /// the same namespace sort near each other in id order. A delta-varint
  /// directory of block offsets gives O(block) random access to the blob.
  void SaveFrontCoded(BinaryWriter* out) const;
  Status LoadFrontCoded(BinaryReader* in);

  static constexpr size_t kFrontCodingBlock = 16;

 private:
  Status RebuildIndex();

  PodColumn<char> arena_;
  PodColumn<uint64_t> offsets_;  // local count + 1 entries; offsets_[0] == 0
  PodColumn<uint8_t> kinds_;
  std::unordered_map<std::string, TermId> index_;  // key -> GLOBAL id
  // Extension mode (see class comment). The base stays un-Interned and is
  // kept alive by the caller; base_size_ caches base_->size() so the hot
  // text()/kind() branch never chases the pointer for flat dictionaries.
  const TermDictionary* base_ = nullptr;
  size_t base_size_ = 0;
};

}  // namespace rdf
}  // namespace ganswer

#endif  // GANSWER_RDF_TERM_DICTIONARY_H_
