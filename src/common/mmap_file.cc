#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ganswer {

Status MmapFile::Open(const std::string& path,
                      std::shared_ptr<MmapFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat '" + path +
                           "': " + std::strerror(err));
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IoError("cannot mmap empty file '" + path + "'");
  }
  size_t size = static_cast<size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping survives the close; the fd is only needed to establish it.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::IoError("cannot mmap '" + path +
                           "': " + std::strerror(errno));
  }
  out->reset(new MmapFile(static_cast<const char*>(addr), size));
  return Status::Ok();
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

}  // namespace ganswer
