#include "common/topology.h"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>
#include <utility>

namespace ganswer {

namespace {

/// Reads the first line of \p path into \p out. False when the file is
/// missing or unreadable — every caller has a fallback.
bool ReadFirstLine(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[512];
  bool ok = std::fgets(buf, sizeof(buf), f) != nullptr;
  std::fclose(f);
  if (!ok) return false;
  size_t len = std::strlen(buf);
  while (len > 0 && (buf[len - 1] == '\n' || buf[len - 1] == '\r')) --len;
  out->assign(buf, len);
  return true;
}

bool ReadInt(const std::string& path, int* out) {
  std::string line;
  if (!ReadFirstLine(path, &line) || line.empty()) return false;
  char* end = nullptr;
  long v = std::strtol(line.c_str(), &end, 10);
  if (end == line.c_str()) return false;
  *out = static_cast<int>(v);
  return true;
}

/// Parses a sysfs cpu list ("0-3,8,10-11") into sorted ids. Malformed
/// pieces are skipped rather than failing the whole list.
std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  const char* p = text.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    long lo = std::strtol(p, &end, 10);
    if (end == p) break;
    long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtol(p, &end, 10);
      if (end == p) break;
      p = end;
    }
    for (long c = lo; c <= hi && c - lo < 4096; ++c) {
      if (c >= 0) cpus.push_back(static_cast<int>(c));
    }
    if (*p == ',') ++p;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

/// The cpu ids this process may run on per sched_getaffinity; falls back
/// to hardware_concurrency-many sequential ids when the syscall fails.
std::vector<int> AllowedCpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    std::vector<int> cpus;
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
    if (!cpus.empty()) return cpus;
  }
  unsigned hw = std::thread::hardware_concurrency();
  std::vector<int> cpus;
  for (unsigned c = 0; c < std::max(1u, hw); ++c) {
    cpus.push_back(static_cast<int>(c));
  }
  return cpus;
}

}  // namespace

CpuTopology ReadCpuTopology(const std::string& sysfs_cpu_root,
                            const std::vector<int>& allowed) {
  CpuTopology topo;
  topo.cpus = allowed;
  if (topo.cpus.empty()) {
    // No restriction supplied: prefer the tree's own "online" (or
    // "present") cpu-list file, the authoritative enumeration.
    std::string list;
    if (ReadFirstLine(sysfs_cpu_root + "/online", &list) ||
        ReadFirstLine(sysfs_cpu_root + "/present", &list)) {
      topo.cpus = ParseCpuList(list);
    }
  }
  if (topo.cpus.empty()) {
    // Older trees and sparse fixtures: take every cpuN/ directory present,
    // probed by files that exist in every real tree and every fixture.
    for (int c = 0; c < 4096; ++c) {
      std::string dir = sysfs_cpu_root + "/cpu" + std::to_string(c);
      std::FILE* probe =
          std::fopen((dir + "/topology/physical_package_id").c_str(), "r");
      std::FILE* online = probe == nullptr
                              ? std::fopen((dir + "/online").c_str(), "r")
                              : nullptr;
      if (probe != nullptr) {
        std::fclose(probe);
        topo.cpus.push_back(c);
      } else if (online != nullptr) {
        std::fclose(online);
        topo.cpus.push_back(c);
      } else if (c > 0) {
        break;  // dense numbering: the first gap ends the scan
      }
    }
  }
  if (topo.cpus.empty()) topo.cpus.push_back(0);
  std::sort(topo.cpus.begin(), topo.cpus.end());
  topo.cpus.erase(std::unique(topo.cpus.begin(), topo.cpus.end()),
                  topo.cpus.end());

  int max_cpu = topo.cpus.back();
  topo.cpu_socket.assign(static_cast<size_t>(max_cpu) + 1, -1);
  topo.cpu_core.assign(static_cast<size_t>(max_cpu) + 1, -1);

  std::set<int> sockets;
  std::set<std::pair<int, int>> cores;  // (socket, core id) pairs
  bool any_topology = false;
  for (int c : topo.cpus) {
    std::string base =
        sysfs_cpu_root + "/cpu" + std::to_string(c) + "/topology/";
    int pkg = -1;
    int core = -1;
    if (ReadInt(base + "physical_package_id", &pkg)) any_topology = true;
    ReadInt(base + "core_id", &core);
    topo.cpu_socket[static_cast<size_t>(c)] = pkg;
    sockets.insert(pkg < 0 ? 0 : pkg);
    // Fold (socket, core) into one global key so cpu_core values collide
    // exactly for SMT siblings; a cpu with no core_id is its own core.
    cores.insert({pkg < 0 ? 0 : pkg, core < 0 ? -(c + 1) : core});
  }
  // Assign dense core keys once the set is complete (set order is stable).
  for (int c : topo.cpus) {
    std::string base =
        sysfs_cpu_root + "/cpu" + std::to_string(c) + "/topology/";
    int pkg = topo.cpu_socket[static_cast<size_t>(c)];
    int core = -1;
    ReadInt(base + "core_id", &core);
    std::pair<int, int> key{pkg < 0 ? 0 : pkg, core < 0 ? -(c + 1) : core};
    topo.cpu_core[static_cast<size_t>(c)] =
        static_cast<int>(std::distance(cores.begin(), cores.find(key)));
  }
  topo.sockets = std::max<int>(1, static_cast<int>(sockets.size()));
  topo.physical_cores = std::max<int>(1, static_cast<int>(cores.size()));
  topo.smt = topo.physical_cores < static_cast<int>(topo.cpus.size());
  if (!any_topology) {
    // Fixture/container without the topology files: one socket of
    // independent cores — the conservative single-node fallback.
    topo.sockets = 1;
    topo.physical_cores = static_cast<int>(topo.cpus.size());
    topo.smt = false;
  }

  int line = 0;
  if (ReadInt(sysfs_cpu_root + "/cpu" + std::to_string(topo.cpus.front()) +
                  "/cache/index0/coherency_line_size",
              &line) &&
      line > 0 && line <= 4096) {
    topo.cache_line_bytes = line;
  }
  return topo;
}

const CpuTopology& Topology() {
  static const CpuTopology topo =
      ReadCpuTopology("/sys/devices/system/cpu", AllowedCpus());
  return topo;
}

int AvailableCpus() { return Topology().hardware_threads(); }

bool AffinityEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("GANSWER_NO_AFFINITY");
    return env == nullptr || std::strcmp(env, "1") != 0;
  }();
  return enabled;
}

bool PinCurrentThreadToCpu(int cpu) {
  if (!AffinityEnabled()) return false;
  const CpuTopology& topo = Topology();
  if (std::find(topo.cpus.begin(), topo.cpus.end(), cpu) == topo.cpus.end()) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

namespace {
thread_local int tls_cpu_hint = -1;
std::atomic<int> next_cpu_hint{0};
}  // namespace

int CurrentCpuHint() {
  if (tls_cpu_hint < 0) {
    tls_cpu_hint = next_cpu_hint.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_cpu_hint;
}

void SetCurrentCpuHint(int hint) { tls_cpu_hint = hint < 0 ? -1 : hint; }

}  // namespace ganswer
