#ifndef GANSWER_COMMON_TIMER_H_
#define GANSWER_COMMON_TIMER_H_

#include <chrono>

namespace ganswer {

/// Simple wall-clock stopwatch used by the bench harnesses and the online
/// pipeline's per-stage timing diagnostics.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_TIMER_H_
