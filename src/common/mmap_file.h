#ifndef GANSWER_COMMON_MMAP_FILE_H_
#define GANSWER_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ganswer {

/// \brief A read-only memory mapping of a whole file.
///
/// The mapping is private and read-only; pages fault in on first touch, so
/// a snapshot load that views the mapping directly pays only for the pages
/// it actually dereferences. The object is the keepalive token for every
/// span handed out over it: Snapshot stores a shared_ptr<MmapFile> next to
/// the structures built from it.
class MmapFile {
 public:
  /// Maps \p path read-only. Returns IoError on open/stat/mmap failure and
  /// on empty files (an empty snapshot is never valid, and mmap(0) is not
  /// portable anyway).
  static Status Open(const std::string& path, std::shared_ptr<MmapFile>* out);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return std::string_view(data_, size_); }

 private:
  MmapFile(const char* data, size_t size) : data_(data), size_(size) {}

  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_MMAP_FILE_H_
