#ifndef GANSWER_COMMON_THREAD_POOL_H_
#define GANSWER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ganswer {

/// Threading knob shared by every parallelizable stage (offline mining,
/// top-k matching, batch answering). Plumbed through the owning component's
/// Options struct so each caller chooses its own parallelism.
///
/// `threads == 0` resolves to the CPUs actually available to this process
/// (cpuset-aware, see common/topology.h — NOT hardware_concurrency(), which
/// reports the whole box even inside a confined container);
/// `threads == 1` pins the stage to the serial code path, reproducing the
/// pre-parallel behaviour exactly (parallel results are asserted identical
/// to serial, so this is a debugging/benchmark aid, not a correctness
/// requirement).
struct ExecutionOptions {
  int threads = 0;
};

/// \brief Fixed-size worker pool over a single locked task queue.
///
/// The pool is intentionally simple — a mutex + condition variable queue —
/// because every parallel stage in this codebase is coarse-grained (one
/// task enumerates paths for a whole phrase chunk, or runs a whole anchored
/// subgraph search); queue contention is negligible next to task cost, and
/// the simple design is ThreadSanitizer-clean by construction.
///
/// Core awareness: every worker publishes a dense worker id — readable from
/// inside a task via CurrentWorkerId() and installed as the thread's
/// CurrentCpuHint so striped counters align increments with workers — and
/// Options::pin_workers additionally pins worker i to the i-th available
/// CPU (round-robin over Topology().cpus). Pinning is strictly best-effort:
/// when the syscall is refused or GANSWER_NO_AFFINITY=1, workers run
/// unpinned and everything else is unchanged.
///
/// Destruction drains nothing: outstanding tasks are completed, then the
/// workers join. Submit after destruction has begun is a programming error.
class ThreadPool {
 public:
  struct Options {
    /// ResolveThreads() applied: 0 -> available CPUs.
    int threads = 0;
    /// Pin worker i to the i-th available CPU (best-effort; see class
    /// comment). Off by default — oversubscribed or shared boxes schedule
    /// better unpinned.
    bool pin_workers = false;
  };

  /// Resolves a user-facing thread count: 0 -> AvailableCpus() (cpuset-
  /// aware, at least 1), negative values are treated as 1.
  static int ResolveThreads(int requested);

  /// Spawns ResolveThreads(threads) workers. A pool of size 1 still spawns
  /// one worker thread; callers wanting a truly serial path should branch
  /// on ResolveThreads(...) <= 1 before constructing a pool (ParallelFor
  /// does this internally via the static Run helper).
  explicit ThreadPool(int threads = 0) : ThreadPool(Options{threads, false}) {}
  explicit ThreadPool(Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// How many workers actually got pinned to a CPU (0 when pin_workers was
  /// off or affinity is unavailable). Exposed for tests and /stats; may be
  /// read while workers are still starting up, hence atomic.
  int pinned_workers() const {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

  /// The dense worker id [0, size()) of the calling pool worker, or -1 on
  /// any thread that is not a pool worker (including the caller of
  /// ParallelFor while it blocks).
  static int CurrentWorkerId();

  /// Enqueues \p fn and returns a future for its result. Exceptions thrown
  /// by \p fn are captured in the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for every i in [begin, end), partitioned into contiguous
  /// blocks across the workers, and blocks until all complete. If an
  /// invocation throws, its block abandons its remaining indices; every
  /// other block still runs to completion, and the first exception (in
  /// block order) is rethrown after all blocks have finished. Deterministic
  /// work assignment: block boundaries depend only on the range size and
  /// pool size, never on timing.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Convenience: runs fn(i) over [begin, end) with \p threads workers
  /// (ResolveThreads applied). threads <= 1 or a sub-2 range runs inline
  /// on the calling thread — the serial fallback the reproducibility
  /// guarantee pins.
  static void Run(int threads, size_t begin, size_t end,
                  const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop(int worker_id, bool pin);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<int> pinned_workers_{0};
  std::vector<std::thread> workers_;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_THREAD_POOL_H_
