#include "common/latency_histogram.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace ganswer {

LatencyHistogram::LatencyHistogram(int precision_bits)
    : precision_bits_(precision_bits) {
  assert(precision_bits >= 1 && precision_bits <= 12);
  sub_buckets_ = 1ull << precision_bits_;
  // Decade 0 holds the exact values [0, 2^p); each of the 63 - p remaining
  // power-of-two decades [2^(k-1), 2^k) gets 2^p linear sub-buckets.
  counts_.assign(sub_buckets_ * (64 - static_cast<size_t>(precision_bits_)),
                 0);
}

size_t LatencyHistogram::BucketIndex(uint64_t value) const {
  if (value < sub_buckets_) return static_cast<size_t>(value);
  // value lives in decade k = bit_width(value) > p; its sub-bucket is the
  // top p bits below the leading one.
  int k = std::bit_width(value);
  int shift = k - 1 - precision_bits_;
  uint64_t offset = (value - (1ull << (k - 1))) >> shift;
  return static_cast<size_t>(
      sub_buckets_ * static_cast<uint64_t>(k - precision_bits_) + offset);
}

uint64_t LatencyHistogram::BucketHigh(size_t index) const {
  if (index < sub_buckets_) return index;  // exact decade
  uint64_t decade = index / sub_buckets_ + precision_bits_ - 1;
  uint64_t offset = index % sub_buckets_;
  int shift = static_cast<int>(decade) - precision_bits_;
  uint64_t low = (1ull << decade) + (offset << shift);
  return low + (1ull << shift) - 1;
}

void LatencyHistogram::Record(uint64_t value_us) {
  // The top bit would index past the table; saturate instead (nothing a
  // latency bench records is within 10 orders of magnitude of this).
  if (value_us >= (1ull << 62)) value_us = (1ull << 62) - 1;
  ++counts_[BucketIndex(value_us)];
  ++count_;
  sum_us_ += value_us;
  if (value_us < min_us_) min_us_ = value_us;
  if (value_us > max_us_) max_us_ = value_us;
}

void LatencyHistogram::RecordMillis(double ms) {
  if (ms < 0 || std::isnan(ms)) ms = 0;
  Record(static_cast<uint64_t>(std::llround(ms * 1000.0)));
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  assert(precision_bits_ == other.precision_bits_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  if (other.count_ > 0 && other.min_us_ < min_us_) min_us_ = other.min_us_;
  if (other.max_us_ > max_us_) max_us_ = other.max_us_;
}

void LatencyHistogram::Clear() {
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  sum_us_ = 0;
  min_us_ = ~0ull;
  max_us_ = 0;
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the order statistic we report: the ceil(q * n)-th smallest
  // sample (1-based), matching the sorted-vector oracle in the tests.
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      uint64_t high = BucketHigh(i);
      return high < max_us_ ? high : max_us_;
    }
  }
  return max_us_;
}

}  // namespace ganswer
