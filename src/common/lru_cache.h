#ifndef GANSWER_COMMON_LRU_CACHE_H_
#define GANSWER_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ganswer {

/// \brief Thread-safe sharded LRU cache, string keys to shared immutable
/// values.
///
/// Keys hash to one of `shards` independent LRU lists, each behind its own
/// mutex, so concurrent lookups from a BatchAnswer fan-out contend only
/// when they land on the same shard. Values are handed out as
/// shared_ptr<const V>: a hit never copies the value under the lock, and an
/// entry evicted while a reader still holds it stays alive until the reader
/// drops it.
template <typename V>
class ShardedLruCache {
 public:
  struct Options {
    /// Total entry capacity across all shards (rounded up to shards).
    size_t capacity = 1024;
    size_t shards = 8;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  explicit ShardedLruCache(Options options) : options_(options) {
    if (options_.shards == 0) options_.shards = 1;
    if (options_.capacity < options_.shards) {
      options_.capacity = options_.shards;
    }
    per_shard_capacity_ = options_.capacity / options_.shards;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    shards_ = std::vector<Shard>(options_.shards);
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// The cached value for \p key, moved to most-recently-used, or nullptr.
  ///
  /// \p count_miss = false suppresses the miss counter (hits always count):
  /// a probe-then-compute caller — the serving tier's cached fast path
  /// probes on the event-loop thread and falls back to the full pipeline,
  /// whose own Get() records the miss — would otherwise double-count every
  /// miss.
  std::shared_ptr<const V> Get(const std::string& key,
                               bool count_miss = true) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      if (count_miss) misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Inserts or replaces \p key, evicting the least-recently-used entry of
  /// the key's shard when that shard is full.
  void Put(const std::string& key, V value) {
    auto holder = std::make_shared<const V>(std::move(value));
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(holder);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(holder));
    shard.index.emplace(key, shard.lru.begin());
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Drops every entry (hit/miss/eviction counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.index.clear();
      shard.lru.clear();
    }
  }

  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      s.entries += shard.lru.size();
    }
    return s;
  }

  const Options& options() const { return options_; }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const V>>;

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  Options options_;
  size_t per_shard_capacity_ = 1;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_LRU_CACHE_H_
