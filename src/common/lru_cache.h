#ifndef GANSWER_COMMON_LRU_CACHE_H_
#define GANSWER_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/striped_counter.h"
#include "common/topology.h"

namespace ganswer {

/// \brief Thread-safe sharded LRU cache, string keys to shared immutable
/// values — core-aware: shard count sized from the topology, shard headers
/// padded to cache lines, statistics striped per core.
///
/// Keys hash to one of `shards` independent LRU lists, each behind its own
/// mutex, so concurrent lookups from the serving fan-out contend only when
/// they land on the same shard. The default shard count derives from the
/// CPUs actually available to the process (cpuset-aware, see
/// common/topology.h): the next power of two at or above twice the
/// hardware threads, never below 8 — a power of two so the shard pick is
/// one mask, and 2x threads so two threads racing the same shard is the
/// exception, not the steady state. Each Shard is alignas(64): one shard's
/// mutex churn never writes a neighbour shard's cache line.
///
/// The hit/miss/eviction counters are StripedCounters: relaxed per-core
/// increments, exact aggregate on stats() — the previous shared atomics
/// sat adjacent on one line and were hammered from every request thread,
/// serializing the fleet on counter bookkeeping (the textbook false-
/// sharing bug). Counter values are exact, not sampled; /stats semantics
/// are unchanged.
///
/// Thread-local shard affinity: the key->shard mapping is pure hashing
/// (correctness requires the same key to reach the same shard from every
/// thread), but each probing thread carries a stable per-core hint
/// (CurrentCpuHint) that picks its counter stripe, and Get() prefetches
/// the shard header before taking the lock, so the header line is usually
/// local by the time the mutex is acquired.
///
/// Values are handed out as shared_ptr<const V>: a hit never copies the
/// value under the lock, and an entry evicted while a reader still holds
/// it stays alive until the reader drops it.
template <typename V>
class ShardedLruCache {
 public:
  struct Options {
    /// Total entry capacity across all shards (rounded up to shards).
    size_t capacity = 1024;
    /// 0 = derive from topology (see class comment). Explicit values are
    /// rounded up to a power of two.
    size_t shards = 0;
    /// Stat-counter stripes; 0 = derive from topology, 1 = one shared
    /// atomic (the contention-bench baseline).
    size_t counter_stripes = 0;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    /// Entries per shard, index-aligned with the shard array.
    std::vector<size_t> shard_entries;
    /// Occupancy skew: max shard entries over the mean (1.0 = perfectly
    /// even, 0 when empty). The /stats shard-imbalance gauge.
    double shard_imbalance = 0.0;
  };

  explicit ShardedLruCache(Options options)
      : options_(options),
        hits_(options.counter_stripes),
        misses_(options.counter_stripes),
        evictions_(options.counter_stripes) {
    options_.shards = DeriveShards(options_.shards);
    shard_mask_ = options_.shards - 1;
    if (options_.capacity < options_.shards) {
      options_.capacity = options_.shards;
    }
    per_shard_capacity_ = options_.capacity / options_.shards;
    if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    shards_ = std::vector<Shard>(options_.shards);
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// The cached value for \p key, moved to most-recently-used, or nullptr.
  ///
  /// \p count_miss = false suppresses the miss counter (hits always count):
  /// a probe-then-compute caller — the serving tier's cached fast path
  /// probes on the event-loop thread and falls back to the full pipeline,
  /// whose own Get() records the miss — would otherwise double-count every
  /// miss.
  std::shared_ptr<const V> Get(const std::string& key,
                               bool count_miss = true) {
    Shard& shard = ShardFor(key);
    __builtin_prefetch(&shard, 0, 1);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      if (count_miss) misses_.Increment();
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.Increment();
    return it->second->second;
  }

  /// Inserts or replaces \p key, evicting the least-recently-used entry of
  /// the key's shard when that shard is full.
  void Put(const std::string& key, V value) {
    auto holder = std::make_shared<const V>(std::move(value));
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(holder);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.emplace_front(key, std::move(holder));
    shard.index.emplace(key, shard.lru.begin());
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.Increment();
    }
  }

  /// Drops every entry (hit/miss/eviction counters are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.index.clear();
      shard.lru.clear();
    }
  }

  Stats stats() const {
    Stats s;
    s.hits = hits_.Value();
    s.misses = misses_.Value();
    s.evictions = evictions_.Value();
    s.shard_entries.reserve(shards_.size());
    size_t max_entries = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      size_t n = shard.lru.size();
      s.entries += n;
      s.shard_entries.push_back(n);
      if (n > max_entries) max_entries = n;
    }
    if (s.entries > 0) {
      double mean =
          static_cast<double>(s.entries) / static_cast<double>(shards_.size());
      s.shard_imbalance = static_cast<double>(max_entries) / mean;
    }
    return s;
  }

  const Options& options() const { return options_; }

  /// The shard index \p key hashes to — thread-independent by
  /// construction (the affinity test pins this down).
  size_t ShardIndex(const std::string& key) const {
    return std::hash<std::string>{}(key)&shard_mask_;
  }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const V>>;

  /// Padded to a cache line so one shard's mutex and list-head churn never
  /// invalidates a neighbour shard's header.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, typename std::list<Entry>::iterator> index;
  };

  /// 0 -> topology-derived (power of two >= max(8, 2 * hardware threads),
  /// capped at 256); explicit values round up to a power of two.
  static size_t DeriveShards(size_t requested) {
    size_t target = requested;
    if (target == 0) {
      target = 2 * static_cast<size_t>(AvailableCpus());
      if (target < 8) target = 8;
    }
    size_t p = 1;
    while (p < target && p < 256) p <<= 1;
    return p;
  }

  Shard& ShardFor(const std::string& key) {
    return shards_[std::hash<std::string>{}(key)&shard_mask_];
  }

  Options options_;
  size_t per_shard_capacity_ = 1;
  size_t shard_mask_ = 0;
  std::vector<Shard> shards_;
  mutable StripedCounter hits_;
  mutable StripedCounter misses_;
  mutable StripedCounter evictions_;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_LRU_CACHE_H_
