#include "common/binary_io.h"

#include <array>

namespace ganswer {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xffffffffu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

void BinaryWriter::WriteBoolVector(const std::vector<bool>& v) {
  WriteVarint(v.size());
  uint8_t byte = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      WriteU8(byte);
      byte = 0;
    }
  }
  if (v.size() % 8 != 0) WriteU8(byte);
}

Status BinaryReader::ReadU8(uint8_t* out) {
  GANSWER_RETURN_NOT_OK(Need(1));
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::Ok();
}

Status BinaryReader::ReadU32(uint32_t* out) {
  GANSWER_RETURN_NOT_OK(Need(sizeof(*out)));
  std::memcpy(out, data_.data() + pos_, sizeof(*out));
  pos_ += sizeof(*out);
  return Status::Ok();
}

Status BinaryReader::ReadU64(uint64_t* out) {
  GANSWER_RETURN_NOT_OK(Need(sizeof(*out)));
  std::memcpy(out, data_.data() + pos_, sizeof(*out));
  pos_ += sizeof(*out);
  return Status::Ok();
}

Status BinaryReader::ReadDouble(double* out) {
  GANSWER_RETURN_NOT_OK(Need(sizeof(*out)));
  std::memcpy(out, data_.data() + pos_, sizeof(*out));
  pos_ += sizeof(*out);
  return Status::Ok();
}

Status BinaryReader::ReadVarint(uint64_t* out) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte = 0;
    GANSWER_RETURN_NOT_OK(ReadU8(&byte));
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return Status::Ok();
    }
  }
  return Status::Corruption("varint longer than 64 bits");
}

Status BinaryReader::ReadString(std::string* out) {
  std::string_view view;
  GANSWER_RETURN_NOT_OK(ReadStringView(&view));
  out->assign(view);
  return Status::Ok();
}

Status BinaryReader::ReadStringView(std::string_view* out) {
  uint64_t len = 0;
  GANSWER_RETURN_NOT_OK(ReadVarint(&len));
  GANSWER_RETURN_NOT_OK(Need(len));
  *out = data_.substr(pos_, len);
  pos_ += len;
  return Status::Ok();
}

Status BinaryReader::ReadBoolVector(std::vector<bool>* out) {
  uint64_t count = 0;
  GANSWER_RETURN_NOT_OK(ReadVarint(&count));
  uint64_t bytes = (count + 7) / 8;
  GANSWER_RETURN_NOT_OK(Need(bytes));
  out->assign(count, false);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t byte = static_cast<uint8_t>(data_[pos_ + i / 8]);
    (*out)[i] = (byte >> (i % 8)) & 1;
  }
  pos_ += bytes;
  return Status::Ok();
}

}  // namespace ganswer
