#ifndef GANSWER_COMMON_RANDOM_H_
#define GANSWER_COMMON_RANDOM_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace ganswer {

/// Deterministic PRNG wrapper. Every data generator takes a Rng seeded by
/// the caller so that benchmark workloads are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). \p bound must be positive.
  uint64_t Next(uint64_t bound) {
    assert(bound > 0);
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability \p p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Zipf-ish skewed index in [0, n): favors small indices; used to give
  /// generated KBs hub entities and popular predicates.
  size_t SkewedIndex(size_t n, double skew = 2.0) {
    assert(n > 0);
    double u = NextDouble();
    double x = std::pow(u, skew);
    size_t idx = static_cast<size_t>(x * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

  /// Uniformly selects an element of \p v.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Next(v.size())];
  }

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_RANDOM_H_
