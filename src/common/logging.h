#ifndef GANSWER_COMMON_LOGGING_H_
#define GANSWER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ganswer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one line to stderr as "[LEVEL] message". Thread-compatible (the
/// library is single-threaded per pipeline instance).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ganswer

#define GANSWER_LOG(level) \
  ::ganswer::internal::LogStream(::ganswer::LogLevel::k##level)

#endif  // GANSWER_COMMON_LOGGING_H_
