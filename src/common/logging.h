#ifndef GANSWER_COMMON_LOGGING_H_
#define GANSWER_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace ganswer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one line as "[LEVEL] message". Thread-safe: sink invocations are
/// serialized under an internal mutex, so lines from the event-loop thread
/// and the worker pool never interleave mid-line (the server logs from
/// both).
void LogMessage(LogLevel level, const std::string& message);

/// Replaces the sink (default: one fprintf line to stderr). Passing an
/// empty function restores the default. The sink runs under the logging
/// mutex — it sees strictly serialized calls — so it must not log
/// recursively. Used by tests to capture output and by servers to redirect
/// into a file.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

/// Flushes the underlying stream of the default sink. Call on shutdown so
/// the last lines of a terminating server are never lost in stdio buffers.
void FlushLogs();

namespace internal {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ganswer

#define GANSWER_LOG(level) \
  ::ganswer::internal::LogStream(::ganswer::LogLevel::k##level)

#endif  // GANSWER_COMMON_LOGGING_H_
