#ifndef GANSWER_COMMON_STRIPED_COUNTER_H_
#define GANSWER_COMMON_STRIPED_COUNTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/topology.h"

namespace ganswer {

/// \brief An exact, cache-line-striped event counter for write-hot,
/// read-rare statistics.
///
/// A single shared std::atomic hammered with fetch_add from every request
/// thread serializes the whole fleet on one cache line: each increment
/// drags the line exclusive across cores (and sockets), so the "free"
/// relaxed counter becomes the contention point of the hot path. A
/// StripedCounter splits the count across per-thread stripes, each alone
/// on its own cache line (alignas(64)): increments are relaxed adds to the
/// calling thread's stripe — no sharing, no ping-pong — and Value() sums
/// the stripes on the rare read (/stats, bench deltas).
///
/// Exactness: every Add lands in exactly one stripe, so the sum over
/// stripes is the exact event count, not a sample — /stats values are
/// identical to the shared-atomic implementation they replace. Value()
/// concurrent with writers is a relaxed snapshot, exactly as a relaxed
/// load of the old shared atomic was.
///
/// Stripe selection uses CurrentCpuHint() (the pool worker id when on a
/// pinned worker, a stable per-thread id otherwise) masked to a power of
/// two, so a worker's increments stay on one line for its lifetime.
class StripedCounter {
 public:
  /// \p stripes = 0 sizes from topology: the next power of two at or above
  /// the available hardware threads, clamped to [1, 64]. Passing 1 yields
  /// a plain shared atomic — the contention-bench baseline.
  explicit StripedCounter(size_t stripes = 0) {
    size_t n = stripes;
    if (n == 0) {
      n = NextPowerOfTwo(static_cast<size_t>(AvailableCpus()));
    } else {
      n = NextPowerOfTwo(n);
    }
    if (n > kMaxStripes) n = kMaxStripes;
    if (n < 1) n = 1;
    mask_ = n - 1;
    stripes_ = std::make_unique<Stripe[]>(n);
  }

  StripedCounter(const StripedCounter&) = delete;
  StripedCounter& operator=(const StripedCounter&) = delete;

  void Add(uint64_t n) {
    stripes_[static_cast<size_t>(CurrentCpuHint()) & mask_].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Exact sum of all stripes (relaxed snapshot under concurrent writers).
  uint64_t Value() const {
    uint64_t sum = 0;
    for (size_t i = 0; i <= mask_; ++i) {
      sum += stripes_[i].value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  size_t stripes() const { return mask_ + 1; }

 private:
  static constexpr size_t kMaxStripes = 64;

  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  static size_t NextPowerOfTwo(size_t n) {
    size_t p = 1;
    while (p < n && p < kMaxStripes) p <<= 1;
    return p;
  }

  std::unique_ptr<Stripe[]> stripes_;
  size_t mask_ = 0;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_STRIPED_COUNTER_H_
