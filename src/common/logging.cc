#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace ganswer {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Leaked on purpose: logging must stay usable during static destruction
// (worker threads may emit a final line while the process unwinds).
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

LogSink& SinkSlot() {
  static LogSink* sink = new LogSink;
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  const LogSink& sink = SinkSlot();
  if (sink) {
    sink(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  SinkSlot() = std::move(sink);
}

void FlushLogs() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fflush(stderr);
}

}  // namespace ganswer
