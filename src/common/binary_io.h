#ifndef GANSWER_COMMON_BINARY_IO_H_
#define GANSWER_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/pod_column.h"
#include "common/status.h"

namespace ganswer {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) of \p n bytes. Chain blocks
/// by passing the previous result as \p seed.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// \brief Append-only binary encoder backing the snapshot subsystem.
///
/// Fixed-width integers are written little-endian via memcpy (the snapshot
/// header carries a byte-order mark, so a snapshot written on a weird
/// platform is rejected rather than misread). Counts and lengths use LEB128
/// varints. Vectors of trivially-copyable structs are written as one
/// contiguous memcpy so the matching read is a single bulk copy.
///
/// In aligned mode (snapshot format v3) every pod-vector payload is padded
/// to an 8-byte boundary relative to the start of the buffer, which — with
/// 8-aligned section offsets in the container — makes each payload directly
/// addressable as a typed span over the mmap-ed file.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      WriteU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    WriteU8(static_cast<uint8_t>(v));
  }

  /// Varint length + raw bytes.
  void WriteString(std::string_view s) {
    WriteVarint(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// Raw bytes, no length prefix — for container magic and concatenating
  /// pre-encoded blobs.
  void WriteBytes(std::string_view s) { WriteRaw(s.data(), s.size()); }

  /// Varint count + one contiguous memcpy of the elements. In aligned mode
  /// the element payload starts on an 8-byte boundary.
  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    WritePodSpan(std::span<const T>(v.data(), v.size()));
  }

  template <typename T>
  void WritePodSpan(std::span<const T> v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteVarint(v.size());
    if (aligned_ && sizeof(T) > 1) AlignTo(8);
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Varint count + bit-packed payload (vector<bool> has no contiguous
  /// storage to memcpy).
  void WriteBoolVector(const std::vector<bool>& v);

  /// Zero-pads until size() is a multiple of \p alignment.
  void AlignTo(size_t alignment) {
    while (buffer_.size() % alignment != 0) buffer_.push_back('\0');
  }

  void WriteZeros(size_t n) { buffer_.append(n, '\0'); }

  /// Overwrites previously written bytes in place — used to back-patch the
  /// snapshot section table after its payloads (and their CRCs) are known.
  void PatchU32(size_t offset, uint32_t v) { PatchRaw(offset, &v, sizeof(v)); }
  void PatchU64(size_t offset, uint64_t v) { PatchRaw(offset, &v, sizeof(v)); }

  /// True iff this writer pads pod payloads for in-place mapping.
  bool aligned() const { return aligned_; }
  void set_aligned(bool aligned) { aligned_ = aligned; }

  size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  void WriteRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }
  void PatchRaw(size_t offset, const void* data, size_t n) {
    std::memcpy(buffer_.data() + offset, data, n);
  }

  std::string buffer_;
  bool aligned_ = false;
};

/// \brief Bounds-checked binary decoder over a caller-owned byte range.
///
/// Every read validates the remaining length first and fails with
/// Status::Corruption instead of reading past the end, so a truncated or
/// garbage snapshot can never crash the loader. Element counts are checked
/// against the bytes actually remaining before any allocation, so a corrupt
/// count cannot trigger a huge resize.
///
/// A reader over an mmap-ed snapshot sets views_allowed(): ReadPodColumn
/// then hands out zero-copy spans over the mapping instead of copying,
/// provided the payload is suitably aligned (guaranteed by the v3 writer,
/// re-checked at runtime so a doctored file degrades to a copy, never to a
/// misaligned load).
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadDouble(double* out);
  Status ReadVarint(uint64_t* out);
  Status ReadString(std::string* out);
  /// Zero-copy view of the next length-prefixed string; valid while the
  /// underlying bytes live.
  Status ReadStringView(std::string_view* out);

  template <typename T>
  Status ReadPodVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    std::span<const T> payload;
    GANSWER_RETURN_NOT_OK(ReadPodPayload<T>(&count, &payload));
    out->resize(count);
    std::memcpy(out->data(), payload.data(), count * sizeof(T));
    return Status::Ok();
  }

  /// Reads a pod vector into a column: a zero-copy view over the input when
  /// views_allowed() and the payload happens to be aligned for T, an owned
  /// copy otherwise. Callers opting into views keep the backing bytes alive
  /// for the life of the column (the snapshot bundle pins its mapping).
  template <typename T>
  Status ReadPodColumn(PodColumn<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    std::span<const T> payload;
    GANSWER_RETURN_NOT_OK(ReadPodPayload<T>(&count, &payload));
    if (views_allowed_ &&
        reinterpret_cast<uintptr_t>(payload.data()) % alignof(T) == 0) {
      out->AssignView(payload);
    } else {
      std::vector<T> copy(count);
      std::memcpy(copy.data(), payload.data(), count * sizeof(T));
      out->Assign(std::move(copy));
    }
    return Status::Ok();
  }

  Status ReadBoolVector(std::vector<bool>* out);

  /// Mirrors BinaryWriter::set_aligned: skip the writer's pad bytes before
  /// pod payloads. Must match the writer that produced the bytes.
  void set_aligned(bool aligned) { aligned_ = aligned; }
  /// Permits ReadPodColumn to view the input instead of copying.
  void set_views_allowed(bool allowed) { views_allowed_ = allowed; }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status ReadPodPayload(uint64_t* count, std::span<const T>* payload) {
    GANSWER_RETURN_NOT_OK(ReadVarint(count));
    if (aligned_ && sizeof(T) > 1) GANSWER_RETURN_NOT_OK(SkipAlignment(8));
    if (*count > remaining() / sizeof(T)) {
      return Status::Corruption("vector count exceeds remaining bytes");
    }
    *payload = std::span<const T>(
        reinterpret_cast<const T*>(data_.data() + pos_), *count);
    pos_ += *count * sizeof(T);
    return Status::Ok();
  }

  Status SkipAlignment(size_t alignment) {
    size_t pad = (alignment - pos_ % alignment) % alignment;
    return Skip(pad);
  }

  Status Skip(size_t n) {
    GANSWER_RETURN_NOT_OK(Need(n));
    pos_ += n;
    return Status::Ok();
  }

  Status Need(size_t n) {
    if (n > remaining()) {
      return Status::Corruption("truncated input: need " + std::to_string(n) +
                                " bytes, have " + std::to_string(remaining()));
    }
    return Status::Ok();
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool aligned_ = false;
  bool views_allowed_ = false;
};

/// \brief Delta-varint codec for the snapshot's compressed sections.
///
/// The columns worth compressing (CSR offsets, sorted key columns,
/// per-vertex sorted neighbor runs) are non-decreasing, so consecutive
/// differences are small and LEB128 shrinks them to one or two bytes. The
/// writer asserts nothing — callers pass columns their own invariants
/// already keep sorted — but the reader rejects any encoding whose running
/// sum overflows or exceeds the destination type.
template <typename T>
void WriteDeltaVarints(BinaryWriter& w, std::span<const T> sorted) {
  static_assert(std::is_unsigned_v<T>);
  w.WriteVarint(sorted.size());
  uint64_t prev = 0;
  for (T x : sorted) {
    w.WriteVarint(static_cast<uint64_t>(x) - prev);
    prev = static_cast<uint64_t>(x);
  }
}

template <typename T>
Status ReadDeltaVarints(BinaryReader& r, std::vector<T>* out) {
  static_assert(std::is_unsigned_v<T>);
  uint64_t count = 0;
  GANSWER_RETURN_NOT_OK(r.ReadVarint(&count));
  // Each encoded element is at least one byte, so a count beyond the
  // remaining bytes is corrupt — checked before the allocation.
  if (count > r.remaining()) {
    return Status::Corruption("delta column count exceeds remaining bytes");
  }
  out->clear();
  out->reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    GANSWER_RETURN_NOT_OK(r.ReadVarint(&delta));
    uint64_t value = prev + delta;
    if (value < prev || value > std::numeric_limits<T>::max()) {
      return Status::Corruption("delta column overflows element type");
    }
    out->push_back(static_cast<T>(value));
    prev = value;
  }
  return Status::Ok();
}

}  // namespace ganswer

#endif  // GANSWER_COMMON_BINARY_IO_H_
