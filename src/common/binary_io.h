#ifndef GANSWER_COMMON_BINARY_IO_H_
#define GANSWER_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace ganswer {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) of \p n bytes. Chain blocks
/// by passing the previous result as \p seed.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// \brief Append-only binary encoder backing the snapshot subsystem.
///
/// Fixed-width integers are written little-endian via memcpy (the snapshot
/// header carries a byte-order mark, so a snapshot written on a weird
/// platform is rejected rather than misread). Counts and lengths use LEB128
/// varints. Vectors of trivially-copyable structs are written as one
/// contiguous memcpy so the matching read is a single bulk copy.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      WriteU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    WriteU8(static_cast<uint8_t>(v));
  }

  /// Varint length + raw bytes.
  void WriteString(std::string_view s) {
    WriteVarint(s.size());
    WriteRaw(s.data(), s.size());
  }

  /// Varint count + one contiguous memcpy of the elements.
  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteVarint(v.size());
    WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Varint count + bit-packed payload (vector<bool> has no contiguous
  /// storage to memcpy).
  void WriteBoolVector(const std::vector<bool>& v);

  size_t size() const { return buffer_.size(); }
  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  void WriteRaw(const void* data, size_t n) {
    buffer_.append(static_cast<const char*>(data), n);
  }

  std::string buffer_;
};

/// \brief Bounds-checked binary decoder over a caller-owned byte range.
///
/// Every read validates the remaining length first and fails with
/// Status::Corruption instead of reading past the end, so a truncated or
/// garbage snapshot can never crash the loader. Element counts are checked
/// against the bytes actually remaining before any allocation, so a corrupt
/// count cannot trigger a huge resize.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out);
  Status ReadU32(uint32_t* out);
  Status ReadU64(uint64_t* out);
  Status ReadDouble(double* out);
  Status ReadVarint(uint64_t* out);
  Status ReadString(std::string* out);
  /// Zero-copy view of the next length-prefixed string; valid while the
  /// underlying bytes live.
  Status ReadStringView(std::string_view* out);

  template <typename T>
  Status ReadPodVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    GANSWER_RETURN_NOT_OK(ReadVarint(&count));
    if (count > remaining() / sizeof(T)) {
      return Status::Corruption("vector count exceeds remaining bytes");
    }
    out->resize(count);
    std::memcpy(out->data(), data_.data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return Status::Ok();
  }

  Status ReadBoolVector(std::vector<bool>* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (n > remaining()) {
      return Status::Corruption("truncated input: need " + std::to_string(n) +
                                " bytes, have " + std::to_string(remaining()));
    }
    return Status::Ok();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_BINARY_IO_H_
