#ifndef GANSWER_COMMON_SEARCH_H_
#define GANSWER_COMMON_SEARCH_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define GANSWER_SEARCH_X86 1
#endif

namespace ganswer {

/// \brief Branchless lower bound over a sorted random-access range.
///
/// Identical contract to std::lower_bound(first, last, value, comp): returns
/// the first position not ordered before \p value. The probe loop halves a
/// length instead of maintaining a [lo, hi) pair, so each step is one
/// comparison feeding a conditional pointer bump — no hard-to-predict branch
/// on the comparison outcome. On the flat POD runs the engine probes
/// (adjacency slices, permutation columns) this beats std::lower_bound by
/// avoiding the per-step mispredict on random lookup keys.
template <typename It, typename T, typename Comp = std::less<>>
It BranchlessLowerBound(It first, It last, const T& value, Comp comp = {}) {
  size_t n = static_cast<size_t>(last - first);
  while (n > 1) {
    size_t half = n / 2;
    // first += comp(first[half-1], value) ? half : 0, without a branch.
    first += comp(first[half - 1], value) ? half : 0;
    n -= half;
  }
  if (n == 1 && comp(*first, value)) ++first;
  return first;
}

/// \brief Galloping (exponential) lower bound for probes expected to land
/// near \p first.
///
/// Doubles a probe offset until it overshoots, then finishes with the
/// branchless search inside the bracketed window. A merge join advancing
/// through two sorted runs probes positions that are usually a handful of
/// elements ahead, so the gallop touches O(log d) elements for distance d
/// instead of O(log n) spread across the whole run — fewer cache misses on
/// large permutation columns.
template <typename It, typename T, typename Comp = std::less<>>
It GallopingLowerBound(It first, It last, const T& value, Comp comp = {}) {
  size_t n = static_cast<size_t>(last - first);
  size_t bound = 1;
  while (bound < n && comp(first[bound - 1], value)) {
    bound *= 2;
  }
  size_t lo = bound / 2;  // first[lo - 1] < value already established
  size_t hi = bound < n ? bound : n;
  return BranchlessLowerBound(first + lo, first + hi, value, comp);
}

// ---------------------------------------------------------------------------
// SIMD probe kernels.
//
// The sorted runs the engine probes are flat uint32 columns: CSR adjacency
// slices laid out as (predicate, neighbor) records and PSO/POS permutation
// groups laid out as (key, payload) pairs, both probed by the leading
// uint32 key. A lower bound over such a run bisects until the window fits
// one vector sweep, then counts window elements below the key with packed
// compares — the count IS the lower-bound offset, because the window is
// sorted. The block sweep replaces the last ~6 data-dependent bisection
// steps (each a likely cache/branch stall on a random probe key) with a
// handful of independent 8-wide compares.
//
// Dispatch is resolved once at startup: AVX2 when the CPU has it, SSE2 on
// any x86-64, scalar elsewhere — and GANSWER_NO_SIMD=1 forces scalar, the
// knob the byte-identity differential tests flip. Every kernel returns
// positions byte-identical to std::lower_bound on the same keys.
// ---------------------------------------------------------------------------

/// Which probe kernel the runtime dispatch selected.
enum class ProbeKernel { kScalar, kSse2, kAvx2 };

namespace search_internal {

/// Elements of the sorted window p[0..n) strictly below key, scanned with
/// a compile-time stride in uint32 lanes (1 = flat column, 2 = the leading
/// key of (key, payload) records). n counts *elements*, not lanes.
template <size_t kStride>
inline size_t CountLessScalar(const uint32_t* p, size_t n, uint32_t key) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += p[i * kStride] < key ? 1 : 0;
  return count;
}

#if defined(GANSWER_SEARCH_X86)

// Unsigned compare via sign-bias: (a ^ 0x80000000) <signed (b ^ 0x80000000)
// == a <unsigned b.

__attribute__((target("sse2"))) inline size_t CountLessSse2Flat(
    const uint32_t* p, size_t n, uint32_t key) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vkey =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(key)), bias);
  size_t count = 0, i = 0;
  for (; i + 4 <= n; i += 4) {
    __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i)), bias);
    __m128i lt = _mm_cmplt_epi32(v, vkey);
    count += static_cast<size_t>(
        __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(lt))));
  }
  for (; i < n; ++i) count += p[i] < key ? 1 : 0;
  return count;
}

__attribute__((target("sse2"))) inline size_t CountLessSse2Pair(
    const uint32_t* p, size_t n, uint32_t key) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vkey =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(key)), bias);
  size_t count = 0, i = 0;
  for (; i + 4 <= n; i += 4) {
    // 4 records = 8 lanes; gather the even (key) lanes of both halves.
    // Lane order inside the vector is irrelevant: we only count.
    __m128 a = _mm_loadu_ps(reinterpret_cast<const float*>(p + 2 * i));
    __m128 b = _mm_loadu_ps(reinterpret_cast<const float*>(p + 2 * i + 4));
    __m128i keys = _mm_castps_si128(_mm_shuffle_ps(a, b, 0x88));
    __m128i lt = _mm_cmplt_epi32(_mm_xor_si128(keys, bias), vkey);
    count += static_cast<size_t>(
        __builtin_popcount(_mm_movemask_ps(_mm_castsi128_ps(lt))));
  }
  for (; i < n; ++i) count += p[i * 2] < key ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) inline size_t CountLessAvx2Flat(
    const uint32_t* p, size_t n, uint32_t key) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vkey =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(key)), bias);
  size_t count = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)), bias);
    __m256i lt = _mm256_cmpgt_epi32(vkey, v);
    count += static_cast<size_t>(
        __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(lt))));
  }
  for (; i < n; ++i) count += p[i] < key ? 1 : 0;
  return count;
}

__attribute__((target("avx2"))) inline size_t CountLessAvx2Pair(
    const uint32_t* p, size_t n, uint32_t key) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vkey =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(key)), bias);
  size_t count = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    // 8 records = 16 lanes across two vectors; shuffle the key lanes of
    // both into one vector (order scrambled across 128-bit halves — fine,
    // we only count).
    __m256 a = _mm256_loadu_ps(reinterpret_cast<const float*>(p + 2 * i));
    __m256 b =
        _mm256_loadu_ps(reinterpret_cast<const float*>(p + 2 * i + 8));
    __m256i keys = _mm256_castps_si256(_mm256_shuffle_ps(a, b, 0x88));
    __m256i lt = _mm256_cmpgt_epi32(vkey, _mm256_xor_si256(keys, bias));
    count += static_cast<size_t>(
        __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(lt))));
  }
  for (; i < n; ++i) count += p[i * 2] < key ? 1 : 0;
  return count;
}

#endif  // GANSWER_SEARCH_X86

using CountLessFn = size_t (*)(const uint32_t*, size_t, uint32_t);

struct ProbeDispatch {
  ProbeKernel kernel = ProbeKernel::kScalar;
  CountLessFn flat = &CountLessScalar<1>;
  CountLessFn pair = &CountLessScalar<2>;
};

inline ProbeDispatch ResolveProbeDispatch(ProbeKernel want) {
  ProbeDispatch d;
#if defined(GANSWER_SEARCH_X86)
  if (want == ProbeKernel::kScalar) return d;
  if (want == ProbeKernel::kAvx2 && __builtin_cpu_supports("avx2")) {
    d.kernel = ProbeKernel::kAvx2;
    d.flat = &CountLessAvx2Flat;
    d.pair = &CountLessAvx2Pair;
    return d;
  }
#if defined(__x86_64__)
  // SSE2 is architecturally guaranteed on x86-64.
  if (want == ProbeKernel::kSse2 || want == ProbeKernel::kAvx2) {
    d.kernel = ProbeKernel::kSse2;
    d.flat = &CountLessSse2Flat;
    d.pair = &CountLessSse2Pair;
  }
#endif
#else
  (void)want;
#endif
  return d;
}

inline ProbeDispatch& MutableProbeDispatch() {
  static ProbeDispatch dispatch = [] {
    const char* env = std::getenv("GANSWER_NO_SIMD");
    bool scalar = env != nullptr && std::strcmp(env, "1") == 0;
    return ResolveProbeDispatch(scalar ? ProbeKernel::kScalar
                                       : ProbeKernel::kAvx2);
  }();
  return dispatch;
}

/// Bisect to a window of at most kWindow elements, then vector-count.
constexpr size_t kProbeWindow = 64;

}  // namespace search_internal

/// The kernel the dispatch resolved at startup (or was forced to).
inline ProbeKernel ActiveProbeKernel() {
  return search_internal::MutableProbeDispatch().kernel;
}

inline const char* ProbeKernelName(ProbeKernel k) {
  switch (k) {
    case ProbeKernel::kScalar:
      return "scalar";
    case ProbeKernel::kSse2:
      return "sse2";
    case ProbeKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

/// TEST/BENCH ONLY: forces the dispatch to \p kernel (downgraded to the
/// best supported level; requesting AVX2 on a non-AVX2 CPU yields SSE2).
/// Returns the kernel actually installed. Not thread-safe against
/// concurrent probes — flip it only from single-threaded test setup.
inline ProbeKernel SetProbeKernelForTest(ProbeKernel kernel) {
  search_internal::MutableProbeDispatch() =
      search_internal::ResolveProbeDispatch(kernel);
  return ActiveProbeKernel();
}

/// \brief SIMD lower bound over a sorted flat uint32 column. Identical
/// result to std::lower_bound(first, last, key).
inline const uint32_t* SimdLowerBoundU32(const uint32_t* first,
                                         const uint32_t* last, uint32_t key) {
  size_t n = static_cast<size_t>(last - first);
  while (n > search_internal::kProbeWindow) {
    size_t half = n / 2;
    first += first[half - 1] < key ? half : 0;
    n -= half;
  }
  return first + search_internal::MutableProbeDispatch().flat(first, n, key);
}

/// \brief SIMD lower bound over a sorted run of (key, payload) uint32
/// records, compared by the leading key. \p first/\p last bound the run in
/// uint32 lanes (2 per record); the returned pointer is record-aligned.
/// Identical result to std::lower_bound over the records with a
/// first-field comparator.
inline const uint32_t* SimdLowerBoundPairKey(const uint32_t* first,
                                             const uint32_t* last,
                                             uint32_t key) {
  size_t n = static_cast<size_t>(last - first) / 2;  // records
  while (n > search_internal::kProbeWindow) {
    size_t half = n / 2;
    first += first[2 * (half - 1)] < key ? 2 * half : 0;
    n -= half;
  }
  return first +
         2 * search_internal::MutableProbeDispatch().pair(first, n, key);
}

/// \brief Galloping variant of SimdLowerBoundPairKey for probes expected
/// to land near \p first (merge-join advances). Same result contract.
inline const uint32_t* SimdGallopingLowerBoundPairKey(const uint32_t* first,
                                                      const uint32_t* last,
                                                      uint32_t key) {
  size_t n = static_cast<size_t>(last - first) / 2;  // records
  size_t bound = 1;
  while (bound < n && first[2 * (bound - 1)] < key) bound *= 2;
  size_t lo = bound / 2;  // key at record lo-1 already < key
  size_t hi = bound < n ? bound : n;
  return SimdLowerBoundPairKey(first + 2 * lo, first + 2 * hi, key);
}

}  // namespace ganswer

#endif  // GANSWER_COMMON_SEARCH_H_
