#ifndef GANSWER_COMMON_SEARCH_H_
#define GANSWER_COMMON_SEARCH_H_

#include <cstddef>
#include <functional>

namespace ganswer {

/// \brief Branchless lower bound over a sorted random-access range.
///
/// Identical contract to std::lower_bound(first, last, value, comp): returns
/// the first position not ordered before \p value. The probe loop halves a
/// length instead of maintaining a [lo, hi) pair, so each step is one
/// comparison feeding a conditional pointer bump — no hard-to-predict branch
/// on the comparison outcome. On the flat POD runs the engine probes
/// (adjacency slices, permutation columns) this beats std::lower_bound by
/// avoiding the per-step mispredict on random lookup keys.
template <typename It, typename T, typename Comp = std::less<>>
It BranchlessLowerBound(It first, It last, const T& value, Comp comp = {}) {
  size_t n = static_cast<size_t>(last - first);
  while (n > 1) {
    size_t half = n / 2;
    // first += comp(first[half-1], value) ? half : 0, without a branch.
    first += comp(first[half - 1], value) ? half : 0;
    n -= half;
  }
  if (n == 1 && comp(*first, value)) ++first;
  return first;
}

/// \brief Galloping (exponential) lower bound for probes expected to land
/// near \p first.
///
/// Doubles a probe offset until it overshoots, then finishes with the
/// branchless search inside the bracketed window. A merge join advancing
/// through two sorted runs probes positions that are usually a handful of
/// elements ahead, so the gallop touches O(log d) elements for distance d
/// instead of O(log n) spread across the whole run — fewer cache misses on
/// large permutation columns.
template <typename It, typename T, typename Comp = std::less<>>
It GallopingLowerBound(It first, It last, const T& value, Comp comp = {}) {
  size_t n = static_cast<size_t>(last - first);
  size_t bound = 1;
  while (bound < n && comp(first[bound - 1], value)) {
    bound *= 2;
  }
  size_t lo = bound / 2;  // first[lo - 1] < value already established
  size_t hi = bound < n ? bound : n;
  return BranchlessLowerBound(first + lo, first + hi, value, comp);
}

}  // namespace ganswer

#endif  // GANSWER_COMMON_SEARCH_H_
