#ifndef GANSWER_COMMON_TOPOLOGY_H_
#define GANSWER_COMMON_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ganswer {

/// \brief What the machine looks like to this process: the CPUs it may run
/// on (cpuset-aware, not the raw core count), how they group into sockets
/// and physical cores, and the cache-line size.
///
/// Discovered once from sysfs (/sys/devices/system/cpu) intersected with
/// sched_getaffinity(2); every sizing decision in the serving hot path —
/// thread-pool width, cache shard count, counter stripe count — routes
/// through this instead of std::thread::hardware_concurrency(), which
/// reports the whole box even when a container cpuset confines the process
/// to a slice of it.
///
/// Degradation is always graceful: on a machine without the sysfs tree
/// (or a fixture missing files) the description collapses to one socket of
/// independent single-thread cores with 64-byte lines — never an error.
struct CpuTopology {
  /// CPUs this process may run on, ascending. Never empty.
  std::vector<int> cpus;
  /// cpu id -> socket (physical package) id; -1 where sysfs was silent.
  /// Indexed by cpu id, so it spans [0, max cpu id].
  std::vector<int> cpu_socket;
  /// cpu id -> globally unique physical-core key (socket and core folded
  /// together); -1 where unknown. Two cpus with the same key are SMT
  /// siblings sharing one core's execution resources and L1/L2.
  std::vector<int> cpu_core;
  /// Distinct sockets among `cpus` (>= 1).
  int sockets = 1;
  /// Distinct physical cores among `cpus` (>= 1).
  int physical_cores = 1;
  /// True when at least two of our cpus are SMT siblings.
  bool smt = false;
  /// L1 coherency line size in bytes (64 when sysfs is silent).
  int cache_line_bytes = 64;

  /// Number of CPUs available to this process (cpus.size(), >= 1).
  int hardware_threads() const { return static_cast<int>(cpus.size()); }
};

/// Parses a sysfs-style cpu tree rooted at \p sysfs_cpu_root (the directory
/// holding cpu0/, cpu1/, ...), restricted to the cpu ids in \p allowed.
/// An empty \p allowed means "every cpuN/ directory present". Missing or
/// malformed files degrade field by field (see CpuTopology). Exposed
/// separately from Topology() so tests can run it over fixture trees.
CpuTopology ReadCpuTopology(const std::string& sysfs_cpu_root,
                            const std::vector<int>& allowed);

/// The live topology of this process: ReadCpuTopology over the real sysfs
/// tree, restricted by sched_getaffinity(2). Computed once and cached; the
/// serving tier sizes everything off the first call's snapshot.
const CpuTopology& Topology();

/// CPUs available to this process (cpuset-aware), always >= 1. The drop-in
/// replacement for std::thread::hardware_concurrency() call sites.
int AvailableCpus();

/// False when GANSWER_NO_AFFINITY=1 — the escape hatch that turns every
/// PinCurrentThreadToCpu() into a successful no-op, for schedulers or test
/// environments where pinning misbehaves. Read once and cached.
bool AffinityEnabled();

/// Pins the calling thread to \p cpu via pthread_setaffinity_np. Returns
/// true when the thread is now confined to that cpu; false — never an
/// error, callers keep running unpinned — when affinity is disabled
/// (GANSWER_NO_AFFINITY=1), \p cpu is not in Topology().cpus, or the
/// syscall is unavailable/refused (seccomp-confined containers).
bool PinCurrentThreadToCpu(int cpu);

/// A small dense id for the calling thread, used to pick counter stripes
/// and per-core structures without a syscall per increment: pinned pool
/// workers get their worker slot (set via SetCurrentCpuHint), every other
/// thread gets a process-wide round-robin id on first use. Stable for the
/// thread's lifetime, non-negative.
int CurrentCpuHint();

/// Overrides the calling thread's hint (ThreadPool workers call this with
/// their worker id so stripes align with workers even when unpinned).
void SetCurrentCpuHint(int hint);

}  // namespace ganswer

#endif  // GANSWER_COMMON_TOPOLOGY_H_
