#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>
#include <unordered_map>

namespace ganswer {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep, bool keep_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = s.substr(start, pos - start);
    if (keep_empty || !piece.empty()) out.emplace_back(piece);
    if (pos == s.size()) break;
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> prev(a.size() + 1);
  std::vector<size_t> cur(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) prev[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[a.size()];
}

double TokenJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = SplitWhitespace(ToLower(a));
  std::vector<std::string> tb = SplitWhitespace(ToLower(b));
  std::set<std::string> sa(ta.begin(), ta.end());
  std::set<std::string> sb(tb.begin(), tb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double BigramDice(std::string_view a_in, std::string_view b_in) {
  std::string a = ToLower(a_in);
  std::string b = ToLower(b_in);
  if (a == b) return 1.0;
  if (a.size() < 2 || b.size() < 2) return 0.0;
  // Count bigrams of `a` in a flat 2-byte-keyed map; subtract with `b`.
  // Called per (mention, candidate-label) pair by the linker, so this is
  // allocation-free on the hot path.
  std::unordered_map<uint16_t, int> counts;
  counts.reserve(a.size());
  auto key = [](char x, char y) {
    return static_cast<uint16_t>((static_cast<uint8_t>(x) << 8) |
                                 static_cast<uint8_t>(y));
  };
  for (size_t i = 0; i + 1 < a.size(); ++i) ++counts[key(a[i], a[i + 1])];
  size_t inter = 0;
  for (size_t i = 0; i + 1 < b.size(); ++i) {
    auto it = counts.find(key(b[i], b[i + 1]));
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++inter;
    }
  }
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.size() - 1 + b.size() - 1);
}

std::string NormalizeLabel(std::string_view label) {
  std::string s = ToLower(label);
  // Strip a trailing parenthetical disambiguator: "philadelphia (film)".
  size_t paren = s.find('(');
  if (paren != std::string::npos) s = s.substr(0, paren);
  std::string out;
  bool pending_space = false;
  for (char c : s) {
    if (c == '_' || std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (c == '.') continue;  // initials: "john f. kennedy" == "john f kennedy"
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += c;
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

}  // namespace ganswer
