#ifndef GANSWER_COMMON_STRING_UTIL_H_
#define GANSWER_COMMON_STRING_UTIL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace ganswer {

/// ASCII-lowercases \p s (the KB and question vocabulary are ASCII-labelled;
/// non-ASCII bytes pass through unchanged).
std::string ToLower(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on \p sep, dropping empty pieces when \p keep_empty is false.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool keep_empty = false);

/// Splits on runs of ASCII whitespace.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins \p parts with \p sep.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Replaces every occurrence of \p from with \p to.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Levenshtein edit distance; used by the entity linker's fuzzy fallback.
size_t EditDistance(std::string_view a, std::string_view b);

/// Jaccard similarity of the whitespace-token sets of \p a and \p b, in
/// [0, 1]. Both sides are lowercased first.
double TokenJaccard(std::string_view a, std::string_view b);

/// Dice coefficient over character bigrams of the lowercased inputs.
double BigramDice(std::string_view a, std::string_view b);

/// Normalizes an entity label for indexing: lowercase, strip parenthetical
/// disambiguators ("Philadelphia (film)" -> "philadelphia"), collapse
/// underscores and whitespace runs to single spaces.
std::string NormalizeLabel(std::string_view label);

/// True when \p s consists only of ASCII digits (and is non-empty).
bool IsAllDigits(std::string_view s);

/// Appends \p s to \p out escaped for inclusion inside a JSON string
/// literal (the surrounding quotes are the caller's): `"` and `\` are
/// backslash-escaped, control bytes < 0x20 become `\n`/`\t`/`\r`/`\b`/`\f`
/// or `\u00XX`, and everything else — including multi-byte UTF-8 — passes
/// through unchanged. Shared by every JSON producer (server responses,
/// BENCH_JSON lines) so answer labels containing quotes can never yield
/// invalid JSON.
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Returns \p s JSON-escaped (AppendJsonEscaped into a fresh string).
std::string JsonEscape(std::string_view s);

}  // namespace ganswer

#endif  // GANSWER_COMMON_STRING_UTIL_H_
