#ifndef GANSWER_COMMON_STATUS_H_
#define GANSWER_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ganswer {

/// \brief Result of an operation that can fail, in the RocksDB/Arrow style.
///
/// Library code never throws across API boundaries; fallible operations
/// return a Status (or a StatusOr<T> when they also produce a value).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kNotSupported,
    kIoError,
    kInternal,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// \brief A Status or a value of type T: the return type for fallible
/// producers. Dereferencing a non-OK StatusOr is a programming error
/// (checked by assert in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status: failure.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define GANSWER_RETURN_NOT_OK(expr)        \
  do {                                     \
    ::ganswer::Status _st = (expr);        \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace ganswer

#endif  // GANSWER_COMMON_STATUS_H_
