#ifndef GANSWER_COMMON_LATENCY_HISTOGRAM_H_
#define GANSWER_COMMON_LATENCY_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ganswer {

/// \brief HDR-style log-linear latency histogram: bounded memory, mergeable,
/// quantiles with bounded relative error.
///
/// Values are microseconds. The value range [0, 2^63) is covered by
/// power-of-two "decades", each split into 2^precision_bits linear
/// sub-buckets, so any recorded value lands in a bucket whose width is at
/// most value * 2^-precision_bits — at the default precision of 6 bits a
/// quantile read is within ~1.6% of the exact order statistic, independent
/// of how many samples were recorded or how they are distributed. Total
/// footprint is a few thousand uint64 counters (~30 KB), so a histogram
/// can sit inside every endpoint's stats cell and every load-generator
/// thread without memory scaling with request count — the property that
/// lets the open-loop harness record millions of samples and merge them.
///
/// Why not a sorted vector of samples: the closed-loop bench got away with
/// it at thousands of requests; an open-loop sweep records an unbounded
/// stream and must stay O(1) per sample with O(buckets) merges.
///
/// Not internally synchronized. The serving tier records under the stats
/// mutex it already holds; the load generator records into per-thread
/// histograms and merges at the end.
class LatencyHistogram {
 public:
  /// \p precision_bits in [1, 12]: sub-bucket resolution per decade;
  /// relative quantile error is bounded by 2^-precision_bits.
  explicit LatencyHistogram(int precision_bits = 6);

  /// Records one value. O(1), no allocation past construction.
  void Record(uint64_t value_us);
  /// Convenience for the WallTimer call sites: clamps negatives to zero,
  /// rounds to the nearest microsecond.
  void RecordMillis(double ms);

  /// Adds every sample of \p other into this histogram. The histograms
  /// must share precision_bits.
  void Merge(const LatencyHistogram& other);

  void Clear();

  uint64_t count() const { return count_; }
  uint64_t min_us() const { return count_ > 0 ? min_us_ : 0; }
  uint64_t max_us() const { return max_us_; }
  double mean_us() const {
    return count_ > 0 ? static_cast<double>(sum_us_) /
                            static_cast<double>(count_)
                      : 0.0;
  }

  /// The value at quantile \p q in [0, 1]: an upper bound on the
  /// ceil(q * count)-th smallest recorded value, tight to within
  /// 2^-precision_bits relative error. Returns 0 on an empty histogram.
  uint64_t ValueAtQuantile(double q) const;
  /// ValueAtQuantile in milliseconds — the reporting unit of every bench.
  double QuantileMillis(double q) const {
    return static_cast<double>(ValueAtQuantile(q)) / 1000.0;
  }

  int precision_bits() const { return precision_bits_; }
  size_t num_buckets() const { return counts_.size(); }

 private:
  size_t BucketIndex(uint64_t value) const;
  /// Highest value mapping to bucket \p index (the quantile representative).
  uint64_t BucketHigh(size_t index) const;

  int precision_bits_;
  uint64_t sub_buckets_;  ///< 1 << precision_bits_.
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_us_ = 0;
  uint64_t min_us_ = ~0ull;
  uint64_t max_us_ = 0;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_LATENCY_HISTOGRAM_H_
