#ifndef GANSWER_COMMON_ZIPF_H_
#define GANSWER_COMMON_ZIPF_H_

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

namespace ganswer {

/// \brief Seeded Zipf(s) sampler over ranks [0, n): P(i) ∝ 1/(i+1)^s.
///
/// The load harness uses this for question popularity — real question
/// streams are heavily head-skewed, and the serving tier's cache story
/// (hot head answered from the question cache, cold tail hitting the
/// matcher) only shows up under that skew. Construction precomputes the
/// normalized CDF once (O(n)); each draw is one uniform double plus a
/// binary search (O(log n)), with no rejection loop, so a draw sequence
/// is a pure function of (n, s, seed) — the property the deterministic
/// bench schedules and the distribution tests rely on.
///
/// Not thread-safe: each generator owns its engine. Give every sender
/// thread its own instance (or pre-draw the schedule, as bench_loadgen
/// does).
class ZipfGenerator {
 public:
  /// \p n must be positive; \p s >= 0 (s = 0 degenerates to uniform).
  ZipfGenerator(size_t n, double s, uint64_t seed)
      : engine_(seed), cdf_(n) {
    assert(n > 0);
    assert(s >= 0);
    double cumulative = 0;
    for (size_t i = 0; i < n; ++i) {
      cumulative += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = cumulative;
    }
    // Normalize so the final entry is exactly 1.0 and the upper_bound draw
    // can never run off the end.
    for (size_t i = 0; i < n; ++i) cdf_[i] /= cumulative;
    cdf_.back() = 1.0;
    total_ = cumulative;
    skew_ = s;
  }

  /// Next rank in [0, n); rank 0 is the most popular.
  size_t Next() {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Exact probability mass of rank \p i — the oracle the distribution
  /// sanity test checks empirical frequencies against.
  double Probability(size_t i) const {
    assert(i < cdf_.size());
    return 1.0 / (std::pow(static_cast<double>(i + 1), skew_) * total_);
  }

  size_t n() const { return cdf_.size(); }
  double skew() const { return skew_; }

 private:
  std::mt19937_64 engine_;
  std::vector<double> cdf_;
  double total_ = 1;  ///< Unnormalized harmonic mass H_{n,s}.
  double skew_ = 1;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_ZIPF_H_
