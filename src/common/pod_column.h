#ifndef GANSWER_COMMON_POD_COLUMN_H_
#define GANSWER_COMMON_POD_COLUMN_H_

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace ganswer {

/// \brief A read-mostly column of trivially-copyable values that either
/// owns its storage (a vector) or views caller-owned memory (a span into an
/// mmap-ed snapshot section).
///
/// This is the storage primitive behind the zero-copy snapshot tier: the
/// structures that serve queries (CSR adjacency, permutation offsets, term
/// arena, signature arrays) keep their accessors unchanged while the bytes
/// live either on the heap (bulk-read or decompressed sections) or directly
/// in the file mapping (raw mmap-ed sections, paged in on first touch).
///
/// A view column never outlives its backing mapping by contract: the
/// Snapshot bundle keeps the MmapFile alive alongside every structure built
/// over it. Mutation (re-finalizing a loaded graph, interning new terms)
/// first calls owned(), which converts a view into an owned copy.
template <typename T>
class PodColumn {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  PodColumn() = default;

  /// An owning column adopting \p v.
  explicit PodColumn(std::vector<T> v) { Assign(std::move(v)); }

  // Copying would silently duplicate megabytes; moving is enough everywhere
  // the codebase passes columns around.
  PodColumn(const PodColumn&) = delete;
  PodColumn& operator=(const PodColumn&) = delete;
  PodColumn(PodColumn&& other) noexcept { *this = std::move(other); }
  PodColumn& operator=(PodColumn&& other) noexcept {
    vec_ = std::move(other.vec_);
    view_ = other.view_;
    is_view_ = other.is_view_;
    other.view_ = {};
    other.is_view_ = false;
    if (!is_view_) view_ = std::span<const T>(vec_.data(), vec_.size());
    return *this;
  }

  /// Replaces the contents with an owned vector.
  void Assign(std::vector<T> v) {
    vec_ = std::move(v);
    view_ = std::span<const T>(vec_.data(), vec_.size());
    is_view_ = false;
  }

  /// Replaces the contents with a non-owning view. The caller guarantees
  /// the backing memory outlives this column.
  void AssignView(std::span<const T> s) {
    vec_.clear();
    vec_.shrink_to_fit();
    view_ = s;
    is_view_ = true;
  }

  /// Mutable access; converts a view into an owned copy first, so callers
  /// may append/modify freely afterwards.
  std::vector<T>& owned() {
    if (is_view_) {
      vec_.assign(view_.begin(), view_.end());
      is_view_ = false;
    }
    view_ = {};  // refreshed below: vec_ may reallocate under the caller
    return vec_;
  }

  /// Re-publishes the span after mutation through owned(). Callers that
  /// mutate must call this before the next read access.
  void Publish() {
    if (!is_view_) view_ = std::span<const T>(vec_.data(), vec_.size());
  }

  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  const T& front() const { return view_.front(); }
  const T& back() const { return view_.back(); }
  std::span<const T> span() const { return view_; }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }

  /// True when the column views external memory (an mmap-ed section).
  bool is_view() const { return is_view_; }

  /// Bytes of process heap this column pins (0 for views).
  size_t heap_bytes() const { return is_view_ ? 0 : vec_.capacity() * sizeof(T); }
  /// Bytes of external (mapped) memory this column references.
  size_t view_bytes() const { return is_view_ ? view_.size() * sizeof(T) : 0; }

  friend bool operator==(const PodColumn& a, const PodColumn& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  std::vector<T> vec_;
  std::span<const T> view_;
  bool is_view_ = false;
};

}  // namespace ganswer

#endif  // GANSWER_COMMON_POD_COLUMN_H_
