#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/topology.h"

namespace ganswer {

namespace {
thread_local int tls_worker_id = -1;
}  // namespace

int ThreadPool::ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (requested < 0) return 1;
  return AvailableCpus();
}

ThreadPool::ThreadPool(Options options) {
  int n = ResolveThreads(options.threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i, pin = options.pin_workers] { WorkerLoop(i, pin); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::CurrentWorkerId() { return tls_worker_id; }

void ThreadPool::WorkerLoop(int worker_id, bool pin) {
  tls_worker_id = worker_id;
  // Align this worker's counter stripe with its id so a worker's
  // increments stay on one cache line whether or not pinning succeeds.
  SetCurrentCpuHint(worker_id);
  if (pin) {
    const CpuTopology& topo = Topology();
    int cpu = topo.cpus[static_cast<size_t>(worker_id) % topo.cpus.size()];
    if (PinCurrentThreadToCpu(cpu)) {
      pinned_workers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  size_t total = end - begin;
  size_t blocks = std::min<size_t>(workers_.size(), total);
  if (blocks <= 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Contiguous block partition; the first (total % blocks) blocks get one
  // extra element. Purely a function of (total, blocks) — deterministic.
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  size_t base = total / blocks;
  size_t extra = total % blocks;
  size_t cursor = begin;
  for (size_t b = 0; b < blocks; ++b) {
    size_t len = base + (b < extra ? 1 : 0);
    size_t lo = cursor;
    size_t hi = cursor + len;
    cursor = hi;
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::Run(int threads, size_t begin, size_t end,
                     const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  int n = ResolveThreads(threads);
  if (n <= 1 || end - begin < 2) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  ThreadPool pool(n);
  pool.ParallelFor(begin, end, fn);
}

}  // namespace ganswer
