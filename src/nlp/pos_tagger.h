#ifndef GANSWER_NLP_POS_TAGGER_H_
#define GANSWER_NLP_POS_TAGGER_H_

#include <vector>

#include "nlp/lexicon.h"
#include "nlp/token.h"

namespace ganswer {
namespace nlp {

/// \brief Deterministic rule-based POS tagger over the Lexicon.
///
/// Tagging order per token: closed-class lookups (wh, aux, determiner,
/// preposition), context rules for ambiguous words ("that" as relative
/// pronoun after a noun vs determiner), verb morphology, noun lexicon,
/// capitalization-based proper-noun detection, digit numbers, fallback
/// noun. Also fills Token::lemma and Token::is_participle.
class PosTagger {
 public:
  /// \p lexicon must outlive the tagger.
  explicit PosTagger(const Lexicon& lexicon) : lexicon_(lexicon) {}

  /// Tags every token in place.
  void Tag(std::vector<Token>* tokens) const;

 private:
  const Lexicon& lexicon_;
};

}  // namespace nlp
}  // namespace ganswer

#endif  // GANSWER_NLP_POS_TAGGER_H_
