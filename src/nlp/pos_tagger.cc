#include "nlp/pos_tagger.h"

#include <cctype>

#include "common/string_util.h"

namespace ganswer {
namespace nlp {

namespace {

bool IsCapitalized(const std::string& text) {
  return !text.empty() && std::isupper(static_cast<unsigned char>(text[0]));
}

bool IsNominal(PosTag t) {
  return t == PosTag::kNoun || t == PosTag::kProperNoun;
}

}  // namespace

void PosTagger::Tag(std::vector<Token>* tokens) const {
  for (size_t i = 0; i < tokens->size(); ++i) {
    Token& tok = (*tokens)[i];
    const Token* prev = i > 0 ? &(*tokens)[i - 1] : nullptr;

    if (tok.pos == PosTag::kPunct) {
      tok.lemma = tok.lower;
      continue;
    }
    tok.is_participle = false;

    if (IsAllDigits(tok.lower)) {
      tok.pos = PosTag::kNumber;
    } else if (lexicon_.IsWhWord(tok.lower)) {
      tok.pos = PosTag::kWhWord;
    } else if (tok.lower == "that") {
      // Relative pronoun after a nominal ("an actor that played ..."),
      // determiner otherwise.
      tok.pos = (prev != nullptr && IsNominal(prev->pos)) ? PosTag::kPronoun
                                                          : PosTag::kDeterminer;
    } else if (lexicon_.IsConjunction(tok.lower)) {
      tok.pos = PosTag::kConj;
    } else if (lexicon_.IsAux(tok.lower)) {
      tok.pos = PosTag::kAux;
    } else if (lexicon_.IsDeterminer(tok.lower)) {
      tok.pos = PosTag::kDeterminer;
    } else if (lexicon_.IsPreposition(tok.lower)) {
      tok.pos = PosTag::kPreposition;
    } else if (!tok.sentence_initial && IsCapitalized(tok.text)) {
      tok.pos = PosTag::kProperNoun;
    } else if (lexicon_.IsVerbForm(tok.lower) && lexicon_.IsNoun(tok.lower)) {
      // Noun/verb ambiguity ("name", "flow", "star"): a det/adjective/common-
      // noun on the left signals a noun compound position; otherwise a verb.
      bool noun_context =
          prev != nullptr &&
          (prev->pos == PosTag::kDeterminer || prev->pos == PosTag::kAdjective ||
           prev->pos == PosTag::kNoun);
      tok.pos = noun_context ? PosTag::kNoun : PosTag::kVerb;
    } else if (lexicon_.IsVerbForm(tok.lower)) {
      tok.pos = PosTag::kVerb;
    } else if (lexicon_.IsNoun(tok.lower)) {
      tok.pos = PosTag::kNoun;
    } else if (lexicon_.IsAdjective(tok.lower)) {
      tok.pos = PosTag::kAdjective;
    } else if (lexicon_.IsPronoun(tok.lower)) {
      tok.pos = PosTag::kPronoun;
    } else if (IsCapitalized(tok.text)) {
      tok.pos = PosTag::kProperNoun;  // sentence-initial name
    } else {
      tok.pos = PosTag::kNoun;  // unknown words are most often entity parts
    }

    if (tok.pos == PosTag::kVerb) {
      tok.is_participle = lexicon_.IsPastParticiple(tok.lower);
    }
    tok.lemma =
        tok.pos == PosTag::kProperNoun ? tok.lower : lexicon_.Lemmatize(tok.lower);
  }

  // "How many members does X have?": with do-support and no other verb,
  // the trailing have/has/had is the main verb, not an auxiliary.
  size_t verbs = 0, auxes = 0;
  int last_aux = -1;
  for (size_t i = 0; i < tokens->size(); ++i) {
    if ((*tokens)[i].pos == PosTag::kVerb) ++verbs;
    if ((*tokens)[i].pos == PosTag::kAux) {
      ++auxes;
      last_aux = static_cast<int>(i);
    }
  }
  if (verbs == 0 && auxes >= 2 && last_aux >= 0 &&
      (*tokens)[last_aux].lemma == "have") {
    (*tokens)[last_aux].pos = PosTag::kVerb;
  }
}

}  // namespace nlp
}  // namespace ganswer
