#include "nlp/dependency_parser.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <vector>

namespace ganswer {
namespace nlp {

namespace {

bool IsNominalTag(PosTag t) {
  return t == PosTag::kNoun || t == PosTag::kProperNoun || t == PosTag::kNumber;
}

bool IsChunkInteriorTag(PosTag t) {
  return IsNominalTag(t) || t == PosTag::kAdjective;
}

/// A noun-phrase chunk: token range [start, end], syntactic head.
struct Chunk {
  int start = 0;
  int end = 0;  // inclusive
  int head = 0;
  bool attached = false;
};

/// Mutable parse state shared by the clause-level passes.
struct ParseState {
  DependencyTree* tree = nullptr;
  std::vector<Chunk> chunks;
  std::vector<int> chunk_of;  // token index -> chunk id, -1 if none

  const Token& tok(int i) const { return tree->node(i).token; }
  int n() const { return static_cast<int>(tree->size()); }

  bool InChunk(int i) const { return chunk_of[i] >= 0; }
  bool IsAttached(int i) const { return tree->node(i).parent >= 0; }

  Chunk* ChunkAt(int i) {
    int c = chunk_of[i];
    return c >= 0 ? &chunks[c] : nullptr;
  }
};

/// Builds maximal NP chunks. A chunk is an optional determiner (article or
/// wh-determiner) followed by adjectives/nominals and headed by the last
/// nominal. Pronouns and standalone wh-words form single-token chunks.
void BuildChunks(ParseState* st) {
  int n = st->n();
  st->chunk_of.assign(n, -1);
  int i = 0;
  while (i < n) {
    const Token& t = st->tok(i);
    if (t.pos == PosTag::kPronoun) {
      Chunk c{i, i, i, false};
      st->chunks.push_back(c);
      st->chunk_of[i] = static_cast<int>(st->chunks.size()) - 1;
      ++i;
      continue;
    }
    if (t.pos == PosTag::kWhWord) {
      // "how" before an adjective stays outside chunks (advmod).
      bool next_is_adj =
          i + 1 < n && st->tok(i + 1).pos == PosTag::kAdjective &&
          (i + 2 >= n || !IsNominalTag(st->tok(i + 2).pos));
      if (t.lower == "how" && next_is_adj) {
        ++i;
        continue;
      }
      // wh-determiner: "which movies", "which U.S. state".
      int j = i + 1;
      while (j < n && IsChunkInteriorTag(st->tok(j).pos)) ++j;
      int head = -1;
      for (int k = j - 1; k > i; --k) {
        if (IsNominalTag(st->tok(k).pos)) {
          head = k;
          break;
        }
      }
      Chunk c;
      if (head >= 0) {
        c = {i, j - 1, head, false};
      } else {
        c = {i, i, i, false};  // standalone "who"/"what"/...
      }
      st->chunks.push_back(c);
      for (int k = c.start; k <= c.end; ++k) {
        st->chunk_of[k] = static_cast<int>(st->chunks.size()) - 1;
      }
      i = c.end + 1;
      continue;
    }
    bool starts_np = t.pos == PosTag::kDeterminer || IsChunkInteriorTag(t.pos);
    if (!starts_np) {
      ++i;
      continue;
    }
    int j = i;
    if (st->tok(j).pos == PosTag::kDeterminer) ++j;
    int run_end = j;
    while (run_end < n && IsChunkInteriorTag(st->tok(run_end).pos)) ++run_end;
    // Head: last noun/proper noun; a bare number heads the chunk only when
    // nothing better exists ("The Gravity Hollow 3" is headed by "Hollow").
    int head = -1;
    for (int k = run_end - 1; k >= j; --k) {
      PosTag t = st->tok(k).pos;
      if (t == PosTag::kNoun || t == PosTag::kProperNoun) {
        head = k;
        break;
      }
    }
    if (head < 0) {
      for (int k = run_end - 1; k >= j; --k) {
        if (IsNominalTag(st->tok(k).pos)) {
          head = k;
          break;
        }
      }
    }
    if (head < 0) {
      ++i;  // bare determiner or adjectives only: no chunk
      continue;
    }
    Chunk c{i, run_end - 1, head, false};
    st->chunks.push_back(c);
    for (int k = c.start; k <= c.end; ++k) {
      st->chunk_of[k] = static_cast<int>(st->chunks.size()) - 1;
    }
    i = run_end;
  }
}

/// Attaches determiners / adjectives / compound nominals inside every chunk
/// to the chunk head. A proper-noun run directly before a common-noun head
/// is a possessor ("Barack Obama's wife" — the tokenizer strips the
/// clitic): its last name attaches as poss, which the paper's Sec. 4.1.2
/// lists among the subject-like relations.
void AttachChunkInternals(ParseState* st) {
  for (const Chunk& c : st->chunks) {
    int possessor = -1;
    bool head_is_common_word =
        st->tok(c.head).pos == PosTag::kNoun && !st->tok(c.head).text.empty() &&
        std::islower(static_cast<unsigned char>(st->tok(c.head).text[0]));
    if (head_is_common_word && c.head > c.start &&
        st->tok(c.head - 1).pos == PosTag::kProperNoun) {
      possessor = c.head - 1;
    }
    for (int k = c.start; k <= c.end; ++k) {
      if (k == c.head) continue;
      const Token& t = st->tok(k);
      if (k == possessor) {
        st->tree->Attach(k, c.head, dep::kPoss);
        continue;
      }
      if (possessor >= 0 && k < possessor &&
          t.pos == PosTag::kProperNoun) {
        st->tree->Attach(k, possessor, dep::kNn);  // "Barack" -> "Obama"
        continue;
      }
      std::string_view rel = dep::kNn;
      if (t.pos == PosTag::kDeterminer || t.pos == PosTag::kWhWord) {
        rel = dep::kDet;
      } else if (t.pos == PosTag::kAdjective) {
        rel = dep::kAmod;
      } else if (t.pos == PosTag::kNumber) {
        rel = dep::kNum;
      }
      st->tree->Attach(k, c.head, rel);
    }
  }
}

/// Everything about one clause the attacher needs.
struct ClauseInfo {
  int start = 0;
  int end = 0;  // inclusive
  bool is_relative = false;
  int rel_pronoun = -1;  // token index of "that"/"who" introducing the clause
  int root = -1;
  bool passive = false;
};

class ClauseParser {
 public:
  ClauseParser(ParseState* st, ClauseInfo* clause)
      : st_(*st), cl_(*clause), tree_(*st->tree) {}

  void Run() {
    CollectVerbs();
    DetermineRoot();
    AttachAuxiliaries();
    AttachConjVerbs();
    AttachParticipialModifiers();
    AttachPrepositions();
    AttachAdverbialWh();
    AttachSubject();
    AttachObjects();
  }

 private:
  // First unattached chunk whose head lies in [from, to].
  int FindChunk(int from, int to, bool unattached_only = true) const {
    for (const Chunk& c : st_.chunks) {
      if (c.head < from || c.head > to) continue;
      if (unattached_only && c.attached) continue;
      return static_cast<int>(&c - st_.chunks.data());
    }
    return -1;
  }

  // Last unattached chunk whose head lies in [from, to].
  int FindChunkLast(int from, int to) const {
    int best = -1;
    for (size_t i = 0; i < st_.chunks.size(); ++i) {
      const Chunk& c = st_.chunks[i];
      if (c.head < from || c.head > to || c.attached) continue;
      best = static_cast<int>(i);
    }
    return best;
  }

  void AttachChunk(int chunk_id, int parent, std::string_view rel) {
    Chunk& c = st_.chunks[chunk_id];
    tree_.Attach(c.head, parent, rel);
    c.attached = true;
  }

  void CollectVerbs() {
    for (int i = cl_.start; i <= cl_.end; ++i) {
      PosTag p = st_.tok(i).pos;
      if (p == PosTag::kVerb) verbs_.push_back(i);
      if (p == PosTag::kAux) auxes_.push_back(i);
    }
  }

  // True when verb v is a participle directly following a chunk with no
  // auxiliary in between: a reduced relative ("movies directed by X").
  bool IsParticipialModifier(int v) const {
    if (!st_.tok(v).is_participle) return false;
    int prev = v - 1;
    if (prev < cl_.start) return false;
    if (!st_.InChunk(prev)) return false;
    return true;
  }

  void DetermineRoot() {
    // Main verb: the first verb that is not a participial modifier.
    for (int v : verbs_) {
      if (!IsParticipialModifier(v)) {
        main_verb_ = v;
        break;
      }
    }
    // All-participial clause ("that were born ..." has aux so not here):
    // fall back to the first verb.
    if (main_verb_ < 0 && !verbs_.empty()) main_verb_ = verbs_[0];

    if (main_verb_ >= 0) {
      cl_.root = main_verb_;
      cl_.passive = st_.tok(main_verb_).is_participle && HasBeAuxBefore(main_verb_);
      return;
    }

    // No verb: adjective predicate ("How tall is X?") ...
    for (int i = cl_.start; i <= cl_.end; ++i) {
      if (st_.tok(i).pos == PosTag::kAdjective && !st_.InChunk(i)) {
        cl_.root = i;
        adjective_predicate_ = true;
        break;
      }
    }
    // ... or copular NP clause ("Who is the mayor of Berlin?").
    if (cl_.root < 0 && !auxes_.empty()) {
      copula_ = auxes_[0];
      bool aux_initial = copula_ == cl_.start;
      if (aux_initial) {
        // Yes/no: "Is X the wife of Y?" — subject then predicate.
        int subj = FindChunk(copula_ + 1, cl_.end);
        int pred = subj >= 0
                       ? FindChunk(st_.chunks[subj].end + 1, cl_.end)
                       : -1;
        if (pred >= 0) {
          cl_.root = st_.chunks[pred].head;
          st_.chunks[pred].attached = true;
          AttachChunk(subj, cl_.root, dep::kNsubj);
        } else if (subj >= 0) {
          cl_.root = st_.chunks[subj].head;
          st_.chunks[subj].attached = true;
        }
      } else {
        // "Who is the mayor of Berlin?" — subject before the copula.
        int pred = FindChunk(copula_ + 1, cl_.end);
        if (pred >= 0) {
          cl_.root = st_.chunks[pred].head;
          st_.chunks[pred].attached = true;
        }
        int subj = FindChunkLast(cl_.start, copula_ - 1);
        if (cl_.root < 0 && subj >= 0) {
          cl_.root = st_.chunks[subj].head;
          st_.chunks[subj].attached = true;
        } else if (subj >= 0) {
          AttachChunk(subj, cl_.root, dep::kNsubj);
        }
      }
      if (cl_.root >= 0 && copula_ >= 0) {
        tree_.Attach(copula_, cl_.root, dep::kCop);
      }
      copular_done_subject_ = true;
    }
    // Degenerate fragment: first chunk head.
    if (cl_.root < 0) {
      int c = FindChunk(cl_.start, cl_.end);
      if (c >= 0) {
        cl_.root = st_.chunks[c].head;
        st_.chunks[c].attached = true;
      } else {
        cl_.root = cl_.start;  // give up: first token
      }
    }

    if (adjective_predicate_ && !auxes_.empty()) {
      copula_ = auxes_[0];
      tree_.Attach(copula_, cl_.root, dep::kCop);
    }
  }

  bool HasBeAuxBefore(int v) const {
    for (int a : auxes_) {
      if (a < v && st_.tok(a).lemma == "be") return true;
    }
    return false;
  }

  void AttachAuxiliaries() {
    if (main_verb_ < 0) return;
    for (int a : auxes_) {
      if (a > main_verb_) continue;
      bool be_passive = cl_.passive && st_.tok(a).lemma == "be";
      tree_.Attach(a, main_verb_, be_passive ? dep::kAuxPass : dep::kAux);
    }
  }

  void AttachConjVerbs() {
    // "... born in X and died in Y and played in Z": every later verb
    // conj-attaches to the FIRST conjunct (Stanford's convention), so the
    // shared subject stays one hop away from each conjoined verb.
    if (main_verb_ < 0) return;
    for (size_t i = 1; i < verbs_.size(); ++i) {
      int v = verbs_[i];
      if (v <= main_verb_ || IsParticipialModifier(v)) continue;
      int prev_verb = verbs_[i - 1];
      for (int k = prev_verb + 1; k < v; ++k) {
        if (st_.tok(k).pos == PosTag::kConj) {
          tree_.Attach(v, main_verb_, dep::kConj);
          tree_.Attach(k, main_verb_, dep::kCc);
          conj_verbs_.push_back(v);
          break;
        }
      }
    }
  }

  void AttachParticipialModifiers() {
    for (int v : verbs_) {
      if (v == main_verb_ || st_.IsAttached(v)) continue;
      if (!IsParticipialModifier(v)) continue;
      Chunk* c = st_.ChunkAt(v - 1);
      tree_.Attach(v, c->head, dep::kPartmod);
      participles_.push_back(v);
    }
  }

  // True when token i is a verb that can govern a PP: the clause main verb,
  // a conj verb, or a participial modifier.
  bool IsVerbalGovernor(int i) const {
    if (i == main_verb_) return true;
    if (std::find(conj_verbs_.begin(), conj_verbs_.end(), i) !=
        conj_verbs_.end()) {
      return true;
    }
    return std::find(participles_.begin(), participles_.end(), i) !=
           participles_.end();
  }

  void AttachPrepositions() {
    for (int p = cl_.start; p <= cl_.end; ++p) {
      if (st_.tok(p).pos != PosTag::kPreposition || st_.IsAttached(p)) continue;

      // Attachment site for the preposition itself.
      int site = -1;
      if (p == cl_.start) {
        site = cl_.root;  // fronted PP: "In which movies did ..."
      } else if (p > cl_.start && st_.tok(p - 1).pos == PosTag::kVerb &&
                 IsVerbalGovernor(p - 1)) {
        site = p - 1;  // "star in", "directed by"
      } else if (p > cl_.start && st_.InChunk(p - 1)) {
        site = st_.ChunkAt(p - 1)->head;  // "mayor of", "companies in"
      } else {
        site = cl_.root;
      }

      // Object of the preposition: next unattached chunk to the right.
      int obj = FindChunk(p + 1, cl_.end);
      if (obj >= 0) {
        tree_.Attach(p, site, dep::kPrep);
        AttachChunk(obj, p, dep::kPobj);
      } else {
        // Stranded preposition ("... star in ?"): object is the fronted
        // wh chunk at the start of the clause.
        int fronted = FindChunk(cl_.start, p - 1);
        tree_.Attach(p, cl_.root, dep::kPrep);
        if (fronted >= 0 &&
            st_.tok(st_.chunks[fronted].start).pos == PosTag::kWhWord) {
          AttachChunk(fronted, p, dep::kPobj);
        }
      }
    }
  }

  void AttachAdverbialWh() {
    // "how" before an adjective predicate.
    for (int i = cl_.start; i <= cl_.end; ++i) {
      if (st_.tok(i).pos == PosTag::kWhWord && !st_.InChunk(i) &&
          !st_.IsAttached(i) && i + 1 <= cl_.end &&
          st_.tok(i + 1).pos == PosTag::kAdjective) {
        tree_.Attach(i, i + 1, dep::kAdvmod);
      }
    }
    // Fronted "when"/"where" chunks become advmod of the verb.
    if (main_verb_ < 0) return;
    for (size_t ci = 0; ci < st_.chunks.size(); ++ci) {
      Chunk& c = st_.chunks[ci];
      if (c.attached || c.head < cl_.start || c.head > cl_.end) continue;
      const Token& h = st_.tok(c.head);
      if (h.pos == PosTag::kWhWord &&
          (h.lower == "when" || h.lower == "where" || h.lower == "how")) {
        AttachChunk(static_cast<int>(ci), main_verb_, dep::kAdvmod);
      }
    }
  }

  void AttachSubject() {
    if (copular_done_subject_) return;
    std::string_view subj_rel = cl_.passive ? dep::kNsubjPass : dep::kNsubj;

    if (cl_.is_relative && main_verb_ >= 0) {
      // "an actor that played in X": the relative pronoun is the subject
      // unless another chunk intervenes ("the film that X directed").
      int rel_chunk = st_.chunk_of[cl_.rel_pronoun];
      int other = -1;
      for (size_t i = 0; i < st_.chunks.size(); ++i) {
        const Chunk& c = st_.chunks[i];
        if (c.attached || static_cast<int>(i) == rel_chunk) continue;
        if (c.head > cl_.rel_pronoun && c.head < main_verb_) {
          other = static_cast<int>(i);
        }
      }
      if (other >= 0) {
        AttachChunk(other, main_verb_, subj_rel);
        if (rel_chunk >= 0 && !st_.chunks[rel_chunk].attached) {
          AttachChunk(rel_chunk, main_verb_, dep::kDobj);
        }
      } else if (rel_chunk >= 0 && !st_.chunks[rel_chunk].attached) {
        AttachChunk(rel_chunk, main_verb_, subj_rel);
      }
      return;
    }

    int verb_or_root = main_verb_ >= 0 ? main_verb_ : cl_.root;

    if (main_verb_ >= 0) {
      // Subject-auxiliary inversion: "Which movies did X star in?" — the
      // subject sits between the auxiliary and the verb.
      int aux_before = -1;
      for (int a : auxes_) {
        if (a < main_verb_) aux_before = a;
      }
      if (aux_before >= 0) {
        int between = FindChunkLast(aux_before + 1, main_verb_ - 1);
        if (between >= 0) {
          AttachChunk(between, main_verb_, subj_rel);
          // The fronted chunk (before the auxiliary) becomes the object
          // unless a stranded preposition already claimed it.
          int fronted = FindChunkLast(cl_.start, aux_before - 1);
          if (fronted >= 0) {
            AttachChunk(fronted, main_verb_, dep::kDobj);
          }
          return;
        }
      }
    }

    int subj = FindChunkLast(cl_.start, verb_or_root - 1);
    if (subj >= 0) {
      // Adjective predicates put the subject after the copula instead.
      AttachChunk(subj, verb_or_root, subj_rel);
    } else if (adjective_predicate_ && copula_ >= 0) {
      int after = FindChunk(copula_ + 1, cl_.end);
      if (after >= 0) AttachChunk(after, cl_.root, dep::kNsubj);
    }
  }

  void AttachObjects() {
    if (main_verb_ < 0) return;
    // Unattached chunks to the right of the verb: iobj for a bare pronoun
    // followed by another chunk ("Give me all movies ..."), dobj next.
    std::vector<int> pending;
    for (size_t i = 0; i < st_.chunks.size(); ++i) {
      const Chunk& c = st_.chunks[i];
      if (c.attached || c.head < main_verb_ || c.head > cl_.end) continue;
      pending.push_back(static_cast<int>(i));
    }
    size_t idx = 0;
    if (pending.size() >= 2) {
      const Chunk& first = st_.chunks[pending[0]];
      if (first.start == first.end &&
          st_.tok(first.head).pos == PosTag::kPronoun) {
        AttachChunk(pending[0], main_verb_, dep::kIobj);
        idx = 1;
      }
    }
    if (idx < pending.size()) {
      AttachChunk(pending[idx], main_verb_, dep::kDobj);
      ++idx;
    }
    for (; idx < pending.size(); ++idx) {
      AttachChunk(pending[idx], main_verb_, dep::kDep);
    }
  }

  ParseState& st_;
  ClauseInfo& cl_;
  DependencyTree& tree_;
  std::vector<int> verbs_;
  std::vector<int> auxes_;
  std::vector<int> conj_verbs_;
  std::vector<int> participles_;
  int main_verb_ = -1;
  int copula_ = -1;
  bool adjective_predicate_ = false;
  bool copular_done_subject_ = false;
};

}  // namespace

StatusOr<DependencyTree> DependencyParser::Parse(std::string_view question) const {
  std::vector<Token> tokens = Tokenizer::Tokenize(question);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty question");
  }
  tagger_.Tag(&tokens);

  DependencyTree tree(std::move(tokens));
  ParseState st;
  st.tree = &tree;
  BuildChunks(&st);
  AttachChunkInternals(&st);

  int n = st.n();
  int last = n - 1;
  while (last >= 0 && st.tok(last).pos == PosTag::kPunct) --last;
  if (last < 0) return Status::InvalidArgument("question has no words");

  // Locate a relative clause: a relative pronoun directly after a chunk,
  // with verbal material to its right.
  int rel_start = -1;
  int governor_head = -1;
  for (int i = 1; i <= last; ++i) {
    const Token& t = st.tok(i);
    bool relative_marker =
        (t.pos == PosTag::kPronoun && t.lower == "that") ||
        (t.pos == PosTag::kWhWord && (t.lower == "who" || t.lower == "which") &&
         st.InChunk(i) && st.chunks[st.chunk_of[i]].start == i &&
         st.chunks[st.chunk_of[i]].end == i);
    if (!relative_marker) continue;
    if (!st.InChunk(i - 1)) continue;
    bool has_verb_after = false;
    for (int k = i + 1; k <= last; ++k) {
      if (st.tok(k).pos == PosTag::kVerb || st.tok(k).pos == PosTag::kAux) {
        has_verb_after = true;
        break;
      }
    }
    if (!has_verb_after) continue;
    rel_start = i;
    governor_head = st.ChunkAt(i - 1)->head;
    break;
  }

  ClauseInfo main_clause;
  main_clause.start = 0;
  main_clause.end = rel_start >= 0 ? rel_start - 1 : last;

  ClauseInfo rel_clause;
  if (rel_start >= 0) {
    rel_clause.start = rel_start;
    rel_clause.end = last;
    rel_clause.is_relative = true;
    rel_clause.rel_pronoun = rel_start;
  }

  ClauseParser(&st, &main_clause).Run();
  if (rel_start >= 0) {
    ClauseParser(&st, &rel_clause).Run();
    if (rel_clause.root >= 0 && governor_head >= 0 &&
        rel_clause.root != governor_head) {
      tree.Attach(rel_clause.root, governor_head, dep::kRcmod);
    }
  }

  if (main_clause.root < 0) {
    return Status::Internal("could not determine clause root for: " +
                            std::string(question));
  }
  tree.SetRoot(main_clause.root);

  // Total parse: attach anything left over (conjunctions without a verb,
  // interjections, punctuation) to the root.
  for (int i = 0; i < n; ++i) {
    if (i == main_clause.root || tree.node(i).parent >= 0) continue;
    std::string_view rel =
        st.tok(i).pos == PosTag::kPunct ? dep::kPunct : dep::kDep;
    tree.Attach(i, main_clause.root, rel);
  }

  GANSWER_RETURN_NOT_OK(tree.Validate());
  return tree;
}

}  // namespace nlp
}  // namespace ganswer
