#ifndef GANSWER_NLP_DEPENDENCY_TREE_H_
#define GANSWER_NLP_DEPENDENCY_TREE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "nlp/token.h"

namespace ganswer {
namespace nlp {

/// Stanford-typed dependency labels used by the parser and consumed by the
/// QA pipeline's argument rules (Sec. 4.1.2 of the paper).
namespace dep {
inline constexpr std::string_view kRoot = "root";
inline constexpr std::string_view kNsubj = "nsubj";
inline constexpr std::string_view kNsubjPass = "nsubjpass";
inline constexpr std::string_view kDobj = "dobj";
inline constexpr std::string_view kIobj = "iobj";
inline constexpr std::string_view kPobj = "pobj";
inline constexpr std::string_view kPrep = "prep";
inline constexpr std::string_view kDet = "det";
inline constexpr std::string_view kAmod = "amod";
inline constexpr std::string_view kNn = "nn";
inline constexpr std::string_view kRcmod = "rcmod";
inline constexpr std::string_view kPartmod = "partmod";
inline constexpr std::string_view kCop = "cop";
inline constexpr std::string_view kAux = "aux";
inline constexpr std::string_view kAuxPass = "auxpass";
inline constexpr std::string_view kAdvmod = "advmod";
inline constexpr std::string_view kPoss = "poss";
inline constexpr std::string_view kConj = "conj";
inline constexpr std::string_view kCc = "cc";
inline constexpr std::string_view kNum = "num";
inline constexpr std::string_view kPunct = "punct";
inline constexpr std::string_view kDep = "dep";

/// The paper's subject-like relation set (Sec. 4.1.2, list 1).
bool IsSubjectLike(std::string_view rel);
/// The paper's object-like relation set (Sec. 4.1.2, list 2).
bool IsObjectLike(std::string_view rel);
/// Light relations that Rule 1 may extend an embedding across.
bool IsLightRelation(std::string_view rel);
}  // namespace dep

/// One node of a dependency tree; index positions are token positions.
struct DepNode {
  Token token;
  int parent = -1;                ///< Parent node index, -1 for the root.
  std::string relation;           ///< Label of the edge to the parent.
  std::vector<int> children;
};

/// \brief A rooted, labelled dependency tree over the tokens of a question.
///
/// Node indices equal token positions in the original sentence, which keeps
/// "nearest argument" distance computations (Sec. 4.1.2) trivial.
class DependencyTree {
 public:
  DependencyTree() = default;

  /// Initializes nodes from \p tokens, all unattached.
  explicit DependencyTree(std::vector<Token> tokens);

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const DepNode& node(int i) const { return nodes_[i]; }
  DepNode& node(int i) { return nodes_[i]; }

  int root() const { return root_; }
  void SetRoot(int i);

  /// Attaches \p child under \p parent with \p relation. A node can be
  /// attached only once; re-attachment replaces the previous parent edge.
  void Attach(int child, int parent, std::string_view relation);

  /// Verifies the structure is a single tree rooted at root(): every node
  /// reachable, no cycles, child/parent lists consistent.
  Status Validate() const;

  /// True when \p descendant lies in the subtree rooted at \p ancestor.
  bool IsDescendant(int descendant, int ancestor) const;

  /// Token indices of the subtree rooted at \p i, sorted ascending.
  std::vector<int> Subtree(int i) const;

  /// Multi-line ASCII rendering for debugging and golden tests.
  std::string ToString() const;

 private:
  std::vector<DepNode> nodes_;
  int root_ = -1;
};

}  // namespace nlp
}  // namespace ganswer

#endif  // GANSWER_NLP_DEPENDENCY_TREE_H_
