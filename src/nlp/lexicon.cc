#include "nlp/lexicon.h"

#include <istream>

#include "common/string_util.h"

namespace ganswer {
namespace nlp {

namespace {

const char* const kWhWords[] = {"who",  "whom",  "what", "which",
                                "where", "when", "how",  "whose"};

const char* const kAux[] = {"is",   "are",  "was",  "were", "be",   "been",
                            "being", "am",  "do",   "does", "did",  "has",
                            "have",  "had", "can",  "could", "will",
                            "would", "shall", "should", "may", "might",
                            "must"};

const char* const kDeterminers[] = {"the", "a", "an", "all", "some",
                                    "every", "any"};

const char* const kPrepositions[] = {
    "in",   "of",   "by",     "to",   "from", "with",  "on",    "at",
    "through", "for", "into", "about", "over", "near", "across", "between",
    "after", "before", "during", "under"};

const char* const kPronouns[] = {"me", "i",   "you", "he",  "she", "it",
                                 "we", "they", "him", "her", "them", "that"};

const char* const kAdjectives[] = {
    "tall",   "high",  "long",    "big",    "large",  "small",  "old",
    "young",  "famous", "rich",   "deep",   "wide",   "heavy",  "popular",
    "tallest", "highest", "longest", "biggest", "largest", "smallest",
    "oldest", "youngest", "richest", "deepest", "widest", "heaviest", "most", "many",
    "first",  "last",  "former",  "dutch",  "argentine", "german",
    "american", "french", "british", "premier"};

// Domain nouns: question vocabulary for the QALD-like workload plus the
// paper's running examples. Base (singular) forms.
const char* const kNouns[] = {
    "actor",      "actress",   "film",      "movie",     "city",
    "country",    "state",     "capital",   "mayor",     "governor",
    "president",  "player",    "team",      "company",   "band",
    "member",     "book",      "author",    "writer",    "publisher",
    "mountain",   "river",     "lake",      "university", "school",
    "person",     "people",    "wife",      "husband",   "spouse",
    "father",     "mother",    "parent",    "child",     "children",
    "son",        "daughter",  "uncle",     "aunt",      "brother",
    "sister",     "successor", "predecessor", "founder", "creator",
    "developer",  "director",  "producer",  "comic",     "nickname",
    "headquarters", "height",  "population", "time",     "zone",
    "timezone",   "name",      "birth",     "league",    "car",
    "politician", "scientist", "musician",  "singer",    "painting",
    "painter",    "language",  "currency",  "area",      "queen",
    "king",       "launch",    "pad",       "inhabitant"};

const char* const kVerbs[] = {
    "marry",   "play",    "star",    "direct",  "bear",    "die",
    "flow",    "found",   "develop", "create",  "write",   "produce",
    "publish", "live",    "locate",  "graduate", "win",    "cross",
    "connect", "lead",    "govern",  "act",     "appear",  "perform",
    "sing",    "paint",   "compose", "design",  "build",   "own",
    "run",     "operate", "call",    "give",    "list",    "show",
    "name",    "come",    "bury",    "succeed", "head",    "border",
    "speak"};

// Irregular verb forms -> base. Participles among them also populate the
// participle set.
struct Irregular {
  const char* form;
  const char* base;
  bool participle;
};
const Irregular kIrregulars[] = {
    {"was", "be", false},      {"were", "be", false},
    {"is", "be", false},       {"are", "be", false},
    {"been", "be", true},      {"am", "be", false},
    {"did", "do", false},      {"done", "do", true},
    {"had", "have", true},     {"has", "have", false},
    {"wrote", "write", false}, {"written", "write", true},
    {"won", "win", true},      {"led", "lead", true},
    {"made", "make", true},    {"born", "bear", true},
    {"bore", "bear", false},   {"gave", "give", false},
    {"given", "give", true},   {"ran", "run", false},
    {"sang", "sing", false},   {"sung", "sing", true},
    {"came", "come", false},   {"spoke", "speak", false},
    {"spoken", "speak", true}, {"grew", "grow", false},
    {"grown", "grow", true},
    // "found" keeps the establish sense ("Who founded Intel?"); mapping it
    // to "find" would break phrase matching for the far more common reading.
    {"founded", "found", true}, {"buried", "bury", true},
    {"died", "die", true},     {"lay", "lie", false},
};

const char* const kConjunctions[] = {"and", "or", "but"};

}  // namespace

Lexicon::Lexicon() {
  for (const char* w : kWhWords) wh_words_.insert(w);
  for (const char* w : kAux) aux_.insert(w);
  for (const char* w : kDeterminers) determiners_.insert(w);
  for (const char* w : kPrepositions) prepositions_.insert(w);
  for (const char* w : kPronouns) pronouns_.insert(w);
  for (const char* w : kAdjectives) adjectives_.insert(w);
  for (const char* w : kConjunctions) conjunctions_.insert(w);
  for (const char* w : kNouns) nouns_.insert(w);
  for (const char* w : kVerbs) verbs_.insert(w);
  for (const Irregular& ir : kIrregulars) {
    irregular_.emplace(ir.form, ir.base);
    if (ir.participle) irregular_participles_.insert(ir.form);
  }
  // "founded" is ambiguous with find/found; we want lemma "found"
  // (establish), which the override above pins.
}

bool Lexicon::IsWhWord(std::string_view lower) const {
  return wh_words_.count(std::string(lower)) > 0;
}
bool Lexicon::IsAux(std::string_view lower) const {
  return aux_.count(std::string(lower)) > 0;
}
bool Lexicon::IsDeterminer(std::string_view lower) const {
  return determiners_.count(std::string(lower)) > 0;
}
bool Lexicon::IsPreposition(std::string_view lower) const {
  return prepositions_.count(std::string(lower)) > 0;
}
bool Lexicon::IsPronoun(std::string_view lower) const {
  return pronouns_.count(std::string(lower)) > 0;
}
bool Lexicon::IsAdjective(std::string_view lower) const {
  return adjectives_.count(std::string(lower)) > 0;
}
bool Lexicon::IsConjunction(std::string_view lower) const {
  return conjunctions_.count(std::string(lower)) > 0;
}

std::string Lexicon::StripPlural(std::string_view lower) const {
  std::string s(lower);
  // Candidates in specificity order, validated against the noun lexicon;
  // the bare -s strip is the unconditional fallback ("movies" -> "movie",
  // where the -ies -> -y rule would wrongly give "movy").
  if (EndsWith(s, "ies") && s.size() > 3) {
    std::string c = s.substr(0, s.size() - 3) + "y";  // cities -> city
    if (nouns_.count(c)) return c;
  }
  if (EndsWith(s, "es") && s.size() > 2) {
    std::string c = s.substr(0, s.size() - 2);  // crosses -> cross
    if (nouns_.count(c)) return c;
  }
  if (EndsWith(s, "s") && s.size() > 1) {
    return s.substr(0, s.size() - 1);
  }
  return s;
}

bool Lexicon::IsNoun(std::string_view lower) const {
  std::string s(lower);
  if (nouns_.count(s)) return true;
  return nouns_.count(StripPlural(lower)) > 0;
}

std::string Lexicon::StripVerbSuffix(std::string_view lower) const {
  std::string s(lower);
  auto known = [&](const std::string& w) { return verbs_.count(w) > 0; };
  if (EndsWith(s, "ied") && s.size() > 4) {
    std::string c = s.substr(0, s.size() - 3) + "y";  // married -> marry
    if (known(c)) return c;
  }
  if (EndsWith(s, "ed") && s.size() > 3) {
    std::string stem = s.substr(0, s.size() - 2);
    if (known(stem)) return stem;                       // played -> play
    if (known(stem + "e")) return stem + "e";           // lived -> live
    if (stem.size() > 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
      std::string undoubled = stem.substr(0, stem.size() - 1);
      if (known(undoubled)) return undoubled;           // starred -> star
    }
  }
  if (EndsWith(s, "ing") && s.size() > 4) {
    std::string stem = s.substr(0, s.size() - 3);
    if (known(stem)) return stem;                       // playing -> play
    if (known(stem + "e")) return stem + "e";           // writing -> write
    if (stem.size() > 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
      std::string undoubled = stem.substr(0, stem.size() - 1);
      if (known(undoubled)) return undoubled;           // starring -> star
    }
  }
  if (EndsWith(s, "ies") && s.size() > 4) {
    std::string c = s.substr(0, s.size() - 3) + "y";    // marries -> marry
    if (known(c)) return c;
  }
  if (EndsWith(s, "es") && s.size() > 3) {
    std::string stem = s.substr(0, s.size() - 2);
    if (known(stem)) return stem;                       // crosses -> cross
  }
  if (EndsWith(s, "s") && s.size() > 2) {
    std::string stem = s.substr(0, s.size() - 1);
    if (known(stem)) return stem;                       // plays -> play
  }
  return s;
}

bool Lexicon::IsVerbForm(std::string_view lower) const {
  std::string s(lower);
  if (verbs_.count(s)) return true;
  if (irregular_.count(s)) return true;
  std::string base = StripVerbSuffix(lower);
  return base != s && verbs_.count(base) > 0;
}

bool Lexicon::IsPastParticiple(std::string_view lower) const {
  std::string s(lower);
  if (irregular_participles_.count(s)) return true;
  if (!EndsWith(s, "ed")) return false;
  std::string base = StripVerbSuffix(lower);
  return verbs_.count(base) > 0;
}

std::string Lexicon::Lemmatize(std::string_view lower) const {
  std::string s(lower);
  auto it = irregular_.find(s);
  if (it != irregular_.end()) return it->second;
  std::string verb_base = StripVerbSuffix(lower);
  if (verb_base != s && verbs_.count(verb_base)) return verb_base;
  if (nouns_.count(s)) return s;
  std::string noun_base = StripPlural(lower);
  if (noun_base != s && nouns_.count(noun_base)) return noun_base;
  return s;
}

Status Lexicon::LoadVocabulary(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null stream");
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> parts = SplitWhitespace(trimmed);
    if (parts.size() != 2) {
      return Status::Corruption("vocabulary line " + std::to_string(line_no) +
                                ": expected '<kind> <word>'");
    }
    std::string word = ToLower(parts[1]);
    if (parts[0] == "noun") {
      AddNoun(word);
    } else if (parts[0] == "verb") {
      AddVerb(word);
    } else if (parts[0] == "adjective") {
      AddAdjective(word);
    } else {
      return Status::Corruption("vocabulary line " + std::to_string(line_no) +
                                ": unknown kind '" + parts[0] + "'");
    }
  }
  return Status::Ok();
}

void Lexicon::AddNoun(std::string_view base) { nouns_.emplace(base); }
void Lexicon::AddVerb(std::string_view base) { verbs_.emplace(base); }
void Lexicon::AddAdjective(std::string_view base) { adjectives_.emplace(base); }

}  // namespace nlp
}  // namespace ganswer
