#ifndef GANSWER_NLP_DEPENDENCY_PARSER_H_
#define GANSWER_NLP_DEPENDENCY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "nlp/dependency_tree.h"
#include "nlp/lexicon.h"
#include "nlp/pos_tagger.h"
#include "nlp/tokenizer.h"

namespace ganswer {
namespace nlp {

/// \brief Deterministic rule-based dependency parser for English questions,
/// producing Stanford-typed dependency trees.
///
/// This substitutes for the Stanford parser the paper applies in its
/// question-understanding stage (Sec. 4.1). It handles the question grammar
/// of QALD-style questions:
///
///   - wh-subject questions             "Who developed Minecraft?"
///   - wh-fronted object questions      "Which movies did X star in?"
///   - preposition fronting             "In which movies did X star?"
///   - passives                         "Who was married to ...?"
///   - copular questions                "Who is the mayor of Berlin?"
///   - adjective predicates             "How tall is Michael Jordan?"
///   - imperatives                      "Give me all movies directed by X."
///   - relative clauses                 "... an actor that played in X"
///   - participial modifiers            "movies directed by X"
///   - VP coordination                  "born in Vienna and died in Berlin"
///   - yes/no questions                 "Is X the wife of Y?"
///
/// The parse is total: tokens the rules cannot place are attached to the
/// root with the generic 'dep' label so the result always validates as a
/// single tree (mirroring how a statistical parser always returns *some*
/// tree). Crucially for the paper's Sec. 4.1 argument, inverted and fronted
/// variants of a question produce the same tree as the canonical form.
class DependencyParser {
 public:
  /// \p lexicon must outlive the parser.
  explicit DependencyParser(const Lexicon& lexicon)
      : lexicon_(lexicon), tagger_(lexicon) {}

  /// Parses one question sentence into a dependency tree.
  StatusOr<DependencyTree> Parse(std::string_view question) const;

  const Lexicon& lexicon() const { return lexicon_; }

 private:
  const Lexicon& lexicon_;
  PosTagger tagger_;
};

}  // namespace nlp
}  // namespace ganswer

#endif  // GANSWER_NLP_DEPENDENCY_PARSER_H_
