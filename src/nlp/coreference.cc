#include "nlp/coreference.h"

namespace ganswer {
namespace nlp {

namespace {

bool IsRelativePronoun(const Token& t) {
  if (t.pos == PosTag::kPronoun && t.lower == "that") return true;
  if (t.pos == PosTag::kWhWord && (t.lower == "who" || t.lower == "which")) {
    return true;
  }
  return false;
}

bool IsNominal(const Token& t) {
  return t.pos == PosTag::kNoun || t.pos == PosTag::kProperNoun;
}

}  // namespace

int CoreferenceResolver::Antecedent(const DependencyTree& tree, int i) {
  if (i < 0 || i >= static_cast<int>(tree.size())) return -1;
  const Token& tok = tree.node(i).token;

  if (IsRelativePronoun(tok)) {
    // Walk up to the clause root; if that clause modifies a nominal via
    // rcmod (relative clause) or partmod (reduced relative), the modified
    // nominal is the antecedent. A wh-word at the top of the main clause
    // ("Who developed X?") is not anaphoric.
    int cur = i;
    while (cur >= 0) {
      const DepNode& node = tree.node(cur);
      if (node.parent >= 0 &&
          (node.relation == dep::kRcmod || node.relation == dep::kPartmod)) {
        int governor = node.parent;
        if (IsNominal(tree.node(governor).token)) return governor;
        return -1;
      }
      cur = node.parent;
    }
    return -1;
  }

  // Plain anaphoric pronouns ("it", "he", ...) resolve to the nearest
  // preceding nominal. First/second person pronouns are not anaphoric.
  if (tok.pos == PosTag::kPronoun && tok.lower != "me" && tok.lower != "i" &&
      tok.lower != "you") {
    for (int j = i - 1; j >= 0; --j) {
      if (IsNominal(tree.node(j).token)) return j;
    }
  }
  return -1;
}

}  // namespace nlp
}  // namespace ganswer
