#ifndef GANSWER_NLP_COREFERENCE_H_
#define GANSWER_NLP_COREFERENCE_H_

#include "nlp/dependency_tree.h"

namespace ganswer {
namespace nlp {

/// \brief Heuristic coreference resolution over a dependency tree.
///
/// The QA pipeline needs exactly the phenomenon from the paper's running
/// example: the relative pronoun argument ("that" in "an actor that played
/// in Philadelphia") must be identified with the noun phrase it modifies
/// ("actor") so the two semantic-relation edges share an endpoint in the
/// semantic query graph (Sec. 4.1.3).
///
/// The resolver implements the standard syntactic heuristics: a relative
/// pronoun resolves to the governor of the rcmod/partmod clause containing
/// it; other anaphoric pronouns resolve to the nearest preceding nominal.
class CoreferenceResolver {
 public:
  /// Antecedent node index of \p i, or -1 when \p i is not anaphoric or no
  /// antecedent exists.
  static int Antecedent(const DependencyTree& tree, int i);
};

}  // namespace nlp
}  // namespace ganswer

#endif  // GANSWER_NLP_COREFERENCE_H_
