#include "nlp/dependency_tree.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace ganswer {
namespace nlp {

namespace dep {

bool IsSubjectLike(std::string_view rel) {
  return rel == "subj" || rel == "nsubj" || rel == "nsubjpass" ||
         rel == "csubj" || rel == "csubjpass" || rel == "xsubj" ||
         rel == "poss";
}

bool IsObjectLike(std::string_view rel) {
  return rel == "obj" || rel == "pobj" || rel == "dobj" || rel == "iobj";
}

bool IsLightRelation(std::string_view rel) {
  return rel == kPrep || rel == kAux || rel == kAuxPass || rel == kCop ||
         rel == kAdvmod || rel == kDet;
}

}  // namespace dep

DependencyTree::DependencyTree(std::vector<Token> tokens) {
  nodes_.resize(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    nodes_[i].token = std::move(tokens[i]);
  }
}

void DependencyTree::SetRoot(int i) {
  root_ = i;
  nodes_[i].parent = -1;
  nodes_[i].relation = dep::kRoot;
}

void DependencyTree::Attach(int child, int parent, std::string_view relation) {
  DepNode& c = nodes_[child];
  if (c.parent >= 0) {
    auto& siblings = nodes_[c.parent].children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), child),
                   siblings.end());
  }
  c.parent = parent;
  c.relation = std::string(relation);
  nodes_[parent].children.push_back(child);
}

Status DependencyTree::Validate() const {
  if (nodes_.empty()) return Status::Ok();
  if (root_ < 0 || root_ >= static_cast<int>(nodes_.size())) {
    return Status::Internal("dependency tree has no root");
  }
  std::vector<bool> visited(nodes_.size(), false);
  std::function<Status(int)> dfs = [&](int i) -> Status {
    if (visited[i]) return Status::Internal("cycle in dependency tree");
    visited[i] = true;
    for (int c : nodes_[i].children) {
      if (nodes_[c].parent != i) {
        return Status::Internal("inconsistent parent pointer at node " +
                                std::to_string(c));
      }
      GANSWER_RETURN_NOT_OK(dfs(c));
    }
    return Status::Ok();
  };
  GANSWER_RETURN_NOT_OK(dfs(root_));
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!visited[i]) {
      return Status::Internal("unattached node '" + nodes_[i].token.text +
                              "' (index " + std::to_string(i) + ")");
    }
  }
  return Status::Ok();
}

bool DependencyTree::IsDescendant(int descendant, int ancestor) const {
  int cur = descendant;
  while (cur >= 0) {
    if (cur == ancestor) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

std::vector<int> DependencyTree::Subtree(int i) const {
  std::vector<int> out;
  std::function<void(int)> dfs = [&](int n) {
    out.push_back(n);
    for (int c : nodes_[n].children) dfs(c);
  };
  dfs(i);
  std::sort(out.begin(), out.end());
  return out;
}

std::string DependencyTree::ToString() const {
  std::ostringstream out;
  std::function<void(int, int)> dfs = [&](int i, int depth) {
    for (int d = 0; d < depth; ++d) out << "  ";
    out << nodes_[i].token.text << " [" << nodes_[i].relation << "/"
        << PosTagName(nodes_[i].token.pos) << "]\n";
    std::vector<int> kids = nodes_[i].children;
    std::sort(kids.begin(), kids.end());
    for (int c : kids) dfs(c, depth + 1);
  };
  if (root_ >= 0) dfs(root_, 0);
  return out.str();
}

}  // namespace nlp
}  // namespace ganswer
