#include "nlp/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace ganswer {
namespace nlp {

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '\'';
}
}  // namespace

std::vector<Token> Tokenizer::Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    if (IsWordChar(c)) {
      size_t start = i;
      while (i < text.size() && IsWordChar(text[i])) ++i;
      tok.text = std::string(text.substr(start, i - start));
      // Initials: a single capital letter followed by '.' keeps the period
      // ("John F. Kennedy" stays three word tokens, not four).
      if (tok.text.size() == 1 &&
          std::isupper(static_cast<unsigned char>(tok.text[0])) &&
          i < text.size() && text[i] == '.') {
        tok.text += '.';
        ++i;
      }
      // Possessive clitic: "Obama's" -> "Obama" + "'s" dropped (the QA
      // pipeline treats possessives via the 'poss' relation on the bare
      // name).
      if (EndsWith(tok.text, "'s")) {
        tok.text = tok.text.substr(0, tok.text.size() - 2);
      }
      if (tok.text.empty()) continue;
    } else {
      tok.text = std::string(1, c);
      tok.pos = PosTag::kPunct;
      ++i;
    }
    tok.lower = ToLower(tok.text);
    tok.sentence_initial = out.empty();
    out.push_back(std::move(tok));
  }
  return out;
}

}  // namespace nlp
}  // namespace ganswer
