#ifndef GANSWER_NLP_LEXICON_H_
#define GANSWER_NLP_LEXICON_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "nlp/token.h"

namespace ganswer {
namespace nlp {

/// \brief Hand-built English lexicon and lemmatizer for the question domain.
///
/// This replaces the statistical models behind the Stanford tagger: a closed
/// list of function words, an open list of domain nouns/verbs/adjectives,
/// irregular-verb tables, and suffix morphology (-s, -ed, -ing, -ies) with
/// consonant-doubling handling (starred -> star, married -> marry).
///
/// The lexicon ships with the vocabulary the QALD-style workload and the
/// paper's running examples use, and callers can extend it (AddNoun/AddVerb)
/// before constructing a tagger.
class Lexicon {
 public:
  /// Builds the default lexicon with the built-in vocabulary.
  Lexicon();

  bool IsWhWord(std::string_view lower) const;
  bool IsAux(std::string_view lower) const;
  bool IsDeterminer(std::string_view lower) const;
  bool IsPreposition(std::string_view lower) const;
  bool IsPronoun(std::string_view lower) const;
  bool IsAdjective(std::string_view lower) const;
  bool IsConjunction(std::string_view lower) const;

  /// True when \p lower is a known noun, directly or after removing a
  /// plural suffix.
  bool IsNoun(std::string_view lower) const;

  /// True when \p lower is a known verb form (base, -s, -ed, -ing, or an
  /// irregular inflection).
  bool IsVerbForm(std::string_view lower) const;

  /// True when \p lower is a past participle form of a known verb
  /// (regular -ed or irregular table), used for passive detection.
  bool IsPastParticiple(std::string_view lower) const;

  /// Base form of \p lower: irregular tables first, then suffix rules,
  /// falling back to \p lower itself. Deterministic and total.
  std::string Lemmatize(std::string_view lower) const;

  /// Vocabulary extension hooks (base forms, lowercase).
  void AddNoun(std::string_view base);
  void AddVerb(std::string_view base);
  void AddAdjective(std::string_view base);

  /// Loads extra vocabulary from a text stream, one entry per line:
  ///   noun <word> | verb <word> | adjective <word>
  /// '#' comments and blank lines are skipped. Lets a file-loaded KB ship
  /// its domain vocabulary next to the data.
  Status LoadVocabulary(std::istream* in);

 private:
  std::string StripPlural(std::string_view lower) const;
  std::string StripVerbSuffix(std::string_view lower) const;

  std::unordered_set<std::string> wh_words_;
  std::unordered_set<std::string> aux_;
  std::unordered_set<std::string> determiners_;
  std::unordered_set<std::string> prepositions_;
  std::unordered_set<std::string> pronouns_;
  std::unordered_set<std::string> adjectives_;
  std::unordered_set<std::string> conjunctions_;
  std::unordered_set<std::string> nouns_;
  std::unordered_set<std::string> verbs_;  // base forms
  std::unordered_map<std::string, std::string> irregular_;  // form -> base
  std::unordered_set<std::string> irregular_participles_;
};

}  // namespace nlp
}  // namespace ganswer

#endif  // GANSWER_NLP_LEXICON_H_
