#ifndef GANSWER_NLP_TOKENIZER_H_
#define GANSWER_NLP_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "nlp/token.h"

namespace ganswer {
namespace nlp {

/// \brief Splits a question into word and punctuation tokens.
///
/// Words are maximal runs of letters/digits/'-'/'\''; everything else
/// non-space becomes a single punctuation token. Fills Token::text and
/// Token::lower; the tagger fills the rest.
class Tokenizer {
 public:
  static std::vector<Token> Tokenize(std::string_view text);
};

}  // namespace nlp
}  // namespace ganswer

#endif  // GANSWER_NLP_TOKENIZER_H_
