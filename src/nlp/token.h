#ifndef GANSWER_NLP_TOKEN_H_
#define GANSWER_NLP_TOKEN_H_

#include <string>

namespace ganswer {
namespace nlp {

/// Coarse part-of-speech tags. The dependency parser and the QA pipeline
/// only need this granularity (the Stanford tagset distinctions they use —
/// VBN vs VB, NN vs NNP — are carried by separate Token flags).
enum class PosTag : uint8_t {
  kWhWord,        // who, what, which, where, when, how
  kVerb,          // main verbs, including participles
  kAux,           // auxiliaries and copulas: is, was, did, have, ...
  kNoun,          // common nouns: actor, city, films
  kProperNoun,    // names: Berlin, Antonio, Philadelphia
  kAdjective,     // tall, famous, youngest
  kPreposition,   // in, of, by, to, ...
  kDeterminer,    // the, a, an, all
  kPronoun,       // me, that (relative), it, ...
  kNumber,        // 42
  kConj,          // and, or
  kPunct,         // ? . , !
  kOther,
};

const char* PosTagName(PosTag tag);

/// One token of a question, annotated by the tagger.
struct Token {
  std::string text;    ///< Original surface form.
  std::string lower;   ///< Lowercased surface form.
  std::string lemma;   ///< Lemma (base form); equals lower when unknown.
  PosTag pos = PosTag::kOther;
  bool is_participle = false;  ///< Past participle (VBN-like), for passives.
  bool sentence_initial = false;
};

inline const char* PosTagName(PosTag tag) {
  switch (tag) {
    case PosTag::kWhWord: return "WH";
    case PosTag::kVerb: return "VB";
    case PosTag::kAux: return "AUX";
    case PosTag::kNoun: return "NN";
    case PosTag::kProperNoun: return "NNP";
    case PosTag::kAdjective: return "JJ";
    case PosTag::kPreposition: return "IN";
    case PosTag::kDeterminer: return "DT";
    case PosTag::kPronoun: return "PRP";
    case PosTag::kNumber: return "CD";
    case PosTag::kConj: return "CC";
    case PosTag::kPunct: return "PUNCT";
    case PosTag::kOther: return "X";
  }
  return "?";
}

}  // namespace nlp
}  // namespace ganswer

#endif  // GANSWER_NLP_TOKEN_H_
