#include "paraphrase/predicate_path.h"

#include <algorithm>
#include <functional>

namespace ganswer {
namespace paraphrase {

PredicatePath PredicatePath::Reversed() const {
  PredicatePath out;
  out.steps.reserve(steps.size());
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    out.steps.push_back({it->predicate, !it->forward});
  }
  return out;
}

std::string PredicatePath::ToString(const rdf::TermDictionary& dict) const {
  std::string out;
  for (const PathStep& s : steps) {
    if (!out.empty()) out += ' ';
    out += s.forward ? "->" : "<-";
    out += dict.text(s.predicate);
  }
  return out;
}

namespace {

// DFS over path instantiations keeping the current vertex chain simple.
// Returns true when the on_end callback requested a stop.
bool InstantiateFrom(const rdf::RdfGraph& graph, rdf::TermId v,
                     const PredicatePath& path, size_t depth,
                     std::vector<rdf::TermId>* chain,
                     const std::function<bool(rdf::TermId)>& on_end) {
  if (depth == path.steps.size()) {
    return on_end(v);
  }
  const PathStep& step = path.steps[depth];
  auto edges = step.forward ? graph.OutEdges(v) : graph.InEdges(v);
  auto lo = std::lower_bound(edges.begin(), edges.end(),
                             rdf::Edge{step.predicate, 0});
  for (auto it = lo; it != edges.end() && it->predicate == step.predicate;
       ++it) {
    rdf::TermId next = it->neighbor;
    if (std::find(chain->begin(), chain->end(), next) != chain->end()) {
      continue;  // keep the instantiation a simple path
    }
    chain->push_back(next);
    bool stop = InstantiateFrom(graph, next, path, depth + 1, chain, on_end);
    chain->pop_back();
    if (stop) return true;
  }
  return false;
}

}  // namespace

std::vector<rdf::TermId> PathEndpoints(const rdf::RdfGraph& graph,
                                       rdf::TermId start,
                                       const PredicatePath& path) {
  // Collect everything, then one sort + unique: no per-call hash set, and
  // callers (CandidateSpace::Expand, membership binary searches) rely on
  // the ascending order.
  std::vector<rdf::TermId> out;
  std::vector<rdf::TermId> chain{start};
  InstantiateFrom(graph, start, path, 0, &chain, [&](rdf::TermId end) {
    out.push_back(end);
    return false;  // keep enumerating
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool PathConnects(const rdf::RdfGraph& graph, rdf::TermId from, rdf::TermId to,
                  const PredicatePath& path) {
  bool found = false;
  std::vector<rdf::TermId> chain{from};
  InstantiateFrom(graph, from, path, 0, &chain, [&](rdf::TermId end) {
    if (end == to) {
      found = true;
      return true;  // stop
    }
    return false;
  });
  return found;
}

std::optional<std::vector<rdf::TermId>> PathWitness(const rdf::RdfGraph& graph,
                                                    rdf::TermId from,
                                                    rdf::TermId to,
                                                    const PredicatePath& path) {
  std::optional<std::vector<rdf::TermId>> witness;
  std::vector<rdf::TermId> chain{from};
  InstantiateFrom(graph, from, path, 0, &chain, [&](rdf::TermId end) {
    if (end == to) {
      witness = chain;  // the DFS keeps the full vertex chain
      return true;
    }
    return false;
  });
  return witness;
}

}  // namespace paraphrase
}  // namespace ganswer
