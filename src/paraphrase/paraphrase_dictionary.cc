#include "paraphrase/paraphrase_dictionary.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/string_util.h"

namespace ganswer {
namespace paraphrase {

PhraseId ParaphraseDictionary::AddPhrase(std::string_view phrase_text,
                                         std::vector<ParaphraseEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ParaphraseEntry& a, const ParaphraseEntry& b) {
              return a.confidence > b.confidence;
            });

  std::string key = ToLower(phrase_text);
  auto existing = by_text_.find(key);
  if (existing != by_text_.end()) {
    phrases_[existing->second].entries = std::move(entries);
    return existing->second;
  }

  PhraseRecord rec;
  rec.text = key;
  for (const std::string& w : SplitWhitespace(key)) {
    rec.lemmas.push_back(lexicon_->Lemmatize(w));
  }
  rec.entries = std::move(entries);

  PhraseId id = static_cast<PhraseId>(phrases_.size());
  // Index each distinct lemma once.
  std::set<std::string> distinct(rec.lemmas.begin(), rec.lemmas.end());
  for (const std::string& lemma : distinct) {
    inverted_[lemma].push_back(id);
  }
  by_text_.emplace(rec.text, id);
  phrases_.push_back(std::move(rec));
  return id;
}

const std::vector<PhraseId>& ParaphraseDictionary::PhrasesContaining(
    std::string_view lemma) const {
  auto it = inverted_.find(std::string(lemma));
  return it == inverted_.end() ? empty_ : it->second;
}

std::optional<PhraseId> ParaphraseDictionary::FindByLemmas(
    const std::vector<std::string>& lemmas) const {
  if (lemmas.empty()) return std::nullopt;
  for (PhraseId id : PhrasesContaining(lemmas[0])) {
    if (phrases_[id].lemmas == lemmas) return id;
  }
  return std::nullopt;
}

void ParaphraseDictionary::NormalizeConfidences() {
  for (PhraseRecord& rec : phrases_) {
    if (rec.entries.empty()) continue;
    double best = rec.entries.front().confidence;
    if (best <= 0) continue;
    for (ParaphraseEntry& e : rec.entries) e.confidence /= best;
  }
}

Status ParaphraseDictionary::Save(std::ostream* out,
                                  const rdf::TermDictionary& dict) const {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  for (const PhraseRecord& rec : phrases_) {
    for (const ParaphraseEntry& e : rec.entries) {
      *out << rec.text << '\t';
      for (size_t i = 0; i < e.path.steps.size(); ++i) {
        if (i > 0) *out << ' ';
        const PathStep& s = e.path.steps[i];
        *out << (s.forward ? "+" : "-") << dict.text(s.predicate);
      }
      *out << '\t' << e.confidence << '\n';
    }
    if (rec.entries.empty()) {
      *out << rec.text << "\t\t0\n";  // keep phrase-only records
    }
  }
  return Status::Ok();
}

Status ParaphraseDictionary::Load(std::istream* in, rdf::RdfGraph* graph) {
  if (in == nullptr || graph == nullptr) {
    return Status::InvalidArgument("null stream or graph");
  }
  std::unordered_map<std::string, std::vector<ParaphraseEntry>> grouped;
  std::vector<std::string> order;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> cols = Split(line, '\t', /*keep_empty=*/true);
    if (cols.size() != 3) {
      return Status::Corruption("paraphrase dictionary line " +
                                std::to_string(line_no) +
                                ": expected 3 tab-separated columns");
    }
    if (!grouped.count(cols[0])) order.push_back(cols[0]);
    auto& entries = grouped[cols[0]];
    if (cols[1].empty()) continue;  // phrase with no mined paths
    ParaphraseEntry entry;
    for (const std::string& step_text : SplitWhitespace(cols[1])) {
      if (step_text.size() < 2 ||
          (step_text[0] != '+' && step_text[0] != '-')) {
        return Status::Corruption("paraphrase dictionary line " +
                                  std::to_string(line_no) +
                                  ": malformed path step '" + step_text + "'");
      }
      PathStep step;
      step.forward = step_text[0] == '+';
      step.predicate = graph->dict().Intern(step_text.substr(1));
      entry.path.steps.push_back(step);
    }
    try {
      entry.confidence = std::stod(cols[2]);
    } catch (...) {
      return Status::Corruption("paraphrase dictionary line " +
                                std::to_string(line_no) +
                                ": bad confidence '" + cols[2] + "'");
    }
    entries.push_back(std::move(entry));
  }
  for (const std::string& phrase : order) {
    AddPhrase(phrase, std::move(grouped[phrase]));
  }
  return Status::Ok();
}

}  // namespace paraphrase
}  // namespace ganswer
