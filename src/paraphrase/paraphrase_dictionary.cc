#include "paraphrase/paraphrase_dictionary.h"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/binary_io.h"
#include "common/string_util.h"

namespace ganswer {
namespace paraphrase {

PhraseId ParaphraseDictionary::AddPhrase(std::string_view phrase_text,
                                         std::vector<ParaphraseEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ParaphraseEntry& a, const ParaphraseEntry& b) {
              return a.confidence > b.confidence;
            });

  std::string key = ToLower(phrase_text);
  auto existing = by_text_.find(key);
  if (existing != by_text_.end()) {
    phrases_[existing->second].entries = std::move(entries);
    return existing->second;
  }

  PhraseRecord rec;
  rec.text = key;
  for (const std::string& w : SplitWhitespace(key)) {
    rec.lemmas.push_back(lexicon_->Lemmatize(w));
  }
  rec.entries = std::move(entries);

  PhraseId id = static_cast<PhraseId>(phrases_.size());
  // Index each distinct lemma once.
  std::set<std::string> distinct(rec.lemmas.begin(), rec.lemmas.end());
  for (const std::string& lemma : distinct) {
    inverted_[lemma].push_back(id);
  }
  by_text_.emplace(rec.text, id);
  phrases_.push_back(std::move(rec));
  return id;
}

const std::vector<PhraseId>& ParaphraseDictionary::PhrasesContaining(
    std::string_view lemma) const {
  auto it = inverted_.find(std::string(lemma));
  return it == inverted_.end() ? empty_ : it->second;
}

std::optional<PhraseId> ParaphraseDictionary::FindByLemmas(
    const std::vector<std::string>& lemmas) const {
  if (lemmas.empty()) return std::nullopt;
  for (PhraseId id : PhrasesContaining(lemmas[0])) {
    if (phrases_[id].lemmas == lemmas) return id;
  }
  return std::nullopt;
}

void ParaphraseDictionary::NormalizeConfidences() {
  for (PhraseRecord& rec : phrases_) {
    if (rec.entries.empty()) continue;
    double best = rec.entries.front().confidence;
    if (best <= 0) continue;
    for (ParaphraseEntry& e : rec.entries) e.confidence /= best;
  }
}

void ParaphraseDictionary::SaveBinary(BinaryWriter* out) const {
  out->WriteVarint(phrases_.size());
  for (const PhraseRecord& rec : phrases_) {
    out->WriteString(rec.text);
    out->WriteVarint(rec.lemmas.size());
    for (const std::string& lemma : rec.lemmas) out->WriteString(lemma);
    out->WriteVarint(rec.entries.size());
    for (const ParaphraseEntry& e : rec.entries) {
      out->WriteDouble(e.confidence);
      out->WriteVarint(e.path.steps.size());
      for (const PathStep& s : e.path.steps) {
        out->WriteU32(s.predicate);
        out->WriteU8(s.forward ? 1 : 0);
      }
    }
  }
  // Lemma inverted index, keys sorted for deterministic bytes. by_text_ is
  // not written: it is exactly phrase text -> phrase id.
  std::vector<const std::string*> lemmas;
  lemmas.reserve(inverted_.size());
  for (const auto& [lemma, ids] : inverted_) lemmas.push_back(&lemma);
  std::sort(lemmas.begin(), lemmas.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  out->WriteVarint(lemmas.size());
  for (const std::string* lemma : lemmas) {
    out->WriteString(*lemma);
    out->WritePodVector(inverted_.at(*lemma));
  }
}

Status ParaphraseDictionary::LoadBinary(BinaryReader* in, size_t num_terms) {
  phrases_.clear();
  by_text_.clear();
  inverted_.clear();

  uint64_t num_phrases = 0;
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_phrases));
  phrases_.reserve(num_phrases);
  by_text_.reserve(num_phrases);
  for (uint64_t i = 0; i < num_phrases; ++i) {
    PhraseRecord rec;
    GANSWER_RETURN_NOT_OK(in->ReadString(&rec.text));
    uint64_t num_lemmas = 0;
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_lemmas));
    rec.lemmas.reserve(num_lemmas);
    for (uint64_t j = 0; j < num_lemmas; ++j) {
      std::string lemma;
      GANSWER_RETURN_NOT_OK(in->ReadString(&lemma));
      rec.lemmas.push_back(std::move(lemma));
    }
    uint64_t num_entries = 0;
    GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_entries));
    rec.entries.reserve(num_entries);
    for (uint64_t j = 0; j < num_entries; ++j) {
      ParaphraseEntry entry;
      GANSWER_RETURN_NOT_OK(in->ReadDouble(&entry.confidence));
      uint64_t num_steps = 0;
      GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_steps));
      entry.path.steps.reserve(num_steps);
      for (uint64_t s = 0; s < num_steps; ++s) {
        PathStep step;
        GANSWER_RETURN_NOT_OK(in->ReadU32(&step.predicate));
        uint8_t forward = 0;
        GANSWER_RETURN_NOT_OK(in->ReadU8(&forward));
        step.forward = forward != 0;
        if (step.predicate >= num_terms) {
          return Status::Corruption("paraphrase path predicate out of range");
        }
        entry.path.steps.push_back(step);
      }
      rec.entries.push_back(std::move(entry));
    }
    if (!by_text_.emplace(rec.text, static_cast<PhraseId>(i)).second) {
      return Status::Corruption("duplicate paraphrase phrase '" + rec.text +
                                "'");
    }
    phrases_.push_back(std::move(rec));
  }

  uint64_t num_inverted = 0;
  GANSWER_RETURN_NOT_OK(in->ReadVarint(&num_inverted));
  inverted_.reserve(num_inverted);
  for (uint64_t i = 0; i < num_inverted; ++i) {
    std::string lemma;
    GANSWER_RETURN_NOT_OK(in->ReadString(&lemma));
    std::vector<PhraseId> ids;
    GANSWER_RETURN_NOT_OK(in->ReadPodVector(&ids));
    for (PhraseId id : ids) {
      if (id >= phrases_.size()) {
        return Status::Corruption("inverted index phrase id out of range");
      }
    }
    if (!inverted_.emplace(std::move(lemma), std::move(ids)).second) {
      return Status::Corruption("duplicate inverted index lemma");
    }
  }
  return Status::Ok();
}

Status ParaphraseDictionary::Save(std::ostream* out,
                                  const rdf::TermDictionary& dict) const {
  if (out == nullptr) return Status::InvalidArgument("null stream");
  for (const PhraseRecord& rec : phrases_) {
    for (const ParaphraseEntry& e : rec.entries) {
      *out << rec.text << '\t';
      for (size_t i = 0; i < e.path.steps.size(); ++i) {
        if (i > 0) *out << ' ';
        const PathStep& s = e.path.steps[i];
        *out << (s.forward ? "+" : "-") << dict.text(s.predicate);
      }
      *out << '\t' << e.confidence << '\n';
    }
    if (rec.entries.empty()) {
      *out << rec.text << "\t\t0\n";  // keep phrase-only records
    }
  }
  return Status::Ok();
}

Status ParaphraseDictionary::Load(std::istream* in, rdf::RdfGraph* graph) {
  if (in == nullptr || graph == nullptr) {
    return Status::InvalidArgument("null stream or graph");
  }
  std::unordered_map<std::string, std::vector<ParaphraseEntry>> grouped;
  std::vector<std::string> order;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> cols = Split(line, '\t', /*keep_empty=*/true);
    if (cols.size() != 3) {
      return Status::Corruption("paraphrase dictionary line " +
                                std::to_string(line_no) +
                                ": expected 3 tab-separated columns");
    }
    auto [group_it, first_seen] = grouped.try_emplace(std::move(cols[0]));
    if (first_seen) order.push_back(group_it->first);
    auto& entries = group_it->second;
    if (cols[1].empty()) continue;  // phrase with no mined paths
    ParaphraseEntry entry;
    for (const std::string& step_text : SplitWhitespace(cols[1])) {
      if (step_text.size() < 2 ||
          (step_text[0] != '+' && step_text[0] != '-')) {
        return Status::Corruption("paraphrase dictionary line " +
                                  std::to_string(line_no) +
                                  ": malformed path step '" + step_text + "'");
      }
      PathStep step;
      step.forward = step_text[0] == '+';
      step.predicate = graph->dict().Intern(step_text.substr(1));
      entry.path.steps.push_back(step);
    }
    // std::from_chars: no exceptions, no locale, and a trailing-garbage
    // check std::stod would silently accept.
    std::string_view conf = Trim(cols[2]);
    auto [end, ec] = std::from_chars(conf.data(), conf.data() + conf.size(),
                                     entry.confidence);
    if (ec != std::errc() || end != conf.data() + conf.size()) {
      return Status::Corruption("paraphrase dictionary line " +
                                std::to_string(line_no) +
                                ": bad confidence '" + cols[2] + "'");
    }
    entries.push_back(std::move(entry));
  }
  for (const std::string& phrase : order) {
    AddPhrase(phrase, std::move(grouped[phrase]));
  }
  return Status::Ok();
}

}  // namespace paraphrase
}  // namespace ganswer
