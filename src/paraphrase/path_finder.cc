#include "paraphrase/path_finder.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace ganswer {
namespace paraphrase {

PathFinder::PathFinder(const rdf::RdfGraph& graph)
    : PathFinder(graph, Options()) {}

PathFinder::PathFinder(const rdf::RdfGraph& graph, Options options)
    : graph_(graph), options_(options) {}

bool PathFinder::IsSchemaPredicate(rdf::TermId p) const {
  if (!options_.skip_schema_edges) return false;
  return p == graph_.type_predicate() || p == graph_.subclass_predicate() ||
         p == graph_.label_predicate();
}

std::vector<PredicatePath> PathFinder::FindPaths(rdf::TermId from,
                                                 rdf::TermId to) const {
  std::vector<PredicatePath> result;
  if (from == to) return result;

  // Reverse undirected BFS from `to`: dist[v] = undirected hop distance,
  // capped at max_length. Vertices not reached within the budget cannot be
  // on any admissible path. The queue carries (vertex, dist) so a popped
  // vertex never re-probes the map, and insertion uses a single emplace.
  std::unordered_map<rdf::TermId, size_t> dist;
  {
    // Reserve from a geometric reachability estimate (average undirected
    // degree to the max_length-th power, clamped to the vertex count) to
    // avoid rehashing during the flood.
    size_t num_terms = graph_.NumTerms();
    size_t avg_degree =
        num_terms == 0
            ? 1
            : std::max<size_t>(1, 2 * graph_.NumTriples() / num_terms);
    size_t estimate = 1;
    for (size_t i = 0; i < options_.max_length && estimate < num_terms; ++i) {
      estimate = std::min(num_terms, estimate * avg_degree + 1);
    }
    dist.reserve(estimate);

    std::queue<std::pair<rdf::TermId, size_t>> q;
    dist.emplace(to, 0);
    q.emplace(to, 0);
    while (!q.empty()) {
      auto [v, d] = q.front();
      q.pop();
      if (d >= options_.max_length) continue;
      auto visit = [&](const rdf::Edge& e) {
        if (IsSchemaPredicate(e.predicate)) return;
        if (dist.emplace(e.neighbor, d + 1).second) {
          q.emplace(e.neighbor, d + 1);
        }
      };
      for (const rdf::Edge& e : graph_.OutEdges(v)) visit(e);
      for (const rdf::Edge& e : graph_.InEdges(v)) visit(e);
    }
  }
  if (!dist.count(from)) return result;

  // Forward DFS from `from`, pruned by the distance map.
  std::unordered_set<PredicatePath, PredicatePathHash> seen;
  std::vector<rdf::TermId> chain{from};
  PredicatePath current;

  auto hub_blocked = [&](rdf::TermId v) {
    return options_.max_intermediate_degree > 0 &&
           graph_.Degree(v) > options_.max_intermediate_degree;
  };

  std::function<void(rdf::TermId)> dfs = [&](rdf::TermId v) {
    if (options_.max_paths > 0 && result.size() >= options_.max_paths) return;
    if (v == to && !current.steps.empty()) {
      if (seen.insert(current).second) result.push_back(current);
      return;  // simple paths cannot revisit `to`
    }
    if (current.steps.size() >= options_.max_length) return;
    size_t budget = options_.max_length - current.steps.size();

    auto try_edge = [&](const rdf::Edge& e, bool forward) {
      if (IsSchemaPredicate(e.predicate)) return;
      rdf::TermId next = e.neighbor;
      auto it = dist.find(next);
      if (it == dist.end() || it->second + 1 > budget) return;
      if (next != to && hub_blocked(next)) return;
      if (std::find(chain.begin(), chain.end(), next) != chain.end()) return;
      chain.push_back(next);
      current.steps.push_back({e.predicate, forward});
      dfs(next);
      current.steps.pop_back();
      chain.pop_back();
    };

    for (const rdf::Edge& e : graph_.OutEdges(v)) try_edge(e, true);
    for (const rdf::Edge& e : graph_.InEdges(v)) try_edge(e, false);
  };
  dfs(from);

  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace paraphrase
}  // namespace ganswer
