#ifndef GANSWER_PARAPHRASE_PREDICATE_PATH_H_
#define GANSWER_PARAPHRASE_PREDICATE_PATH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "rdf/rdf_graph.h"

namespace ganswer {
namespace paraphrase {

/// One hop of a predicate path: the predicate and its orientation relative
/// to the traversal direction (arg1 -> arg2).
struct PathStep {
  rdf::TermId predicate = rdf::kInvalidTerm;
  bool forward = true;

  friend bool operator==(const PathStep&, const PathStep&) = default;
  friend auto operator<=>(const PathStep&, const PathStep&) = default;
};

/// \brief A sequence of consecutive predicate edges in the RDF graph
/// (Sec. 3 of the paper). Length-1 paths are plain predicates; longer paths
/// express relations like "uncle of" that no single predicate captures.
///
/// Orientation is relative to the relation's argument order: the path is
/// read from arg1's vertex to arg2's vertex, and each step records whether
/// the RDF edge points along (forward) or against that direction.
struct PredicatePath {
  std::vector<PathStep> steps;

  size_t Length() const { return steps.size(); }
  bool IsSinglePredicate() const { return steps.size() == 1; }

  /// The same path read from arg2 to arg1.
  PredicatePath Reversed() const;

  /// Readable form, e.g. "<-hasChild ->hasChild ->hasChild".
  std::string ToString(const rdf::TermDictionary& dict) const;

  friend bool operator==(const PredicatePath&, const PredicatePath&) = default;
  friend auto operator<=>(const PredicatePath&, const PredicatePath&) = default;
};

struct PredicatePathHash {
  size_t operator()(const PredicatePath& p) const {
    size_t h = 1469598103934665603ULL;
    for (const PathStep& s : p.steps) {
      h = (h ^ (static_cast<size_t>(s.predicate) * 2 + (s.forward ? 1 : 0))) *
          1099511628211ULL;
    }
    return h;
  }
};

/// Enumerates all vertices reachable from \p start by instantiating \p path
/// in \p graph (respecting per-step orientation), visiting each end vertex
/// once. Intermediate vertices may repeat across instantiations but each
/// returned instantiation is a simple path.
std::vector<rdf::TermId> PathEndpoints(const rdf::RdfGraph& graph,
                                       rdf::TermId start,
                                       const PredicatePath& path);

/// True when some simple instantiation of \p path connects \p from to \p to.
bool PathConnects(const rdf::RdfGraph& graph, rdf::TermId from, rdf::TermId to,
                  const PredicatePath& path);

/// One concrete simple instantiation of \p path from \p from to \p to: the
/// full vertex chain (|path| + 1 vertices, starting at \p from and ending
/// at \p to), or nullopt when none exists. Used to produce answer
/// explanations — the subgraph witness behind a match.
std::optional<std::vector<rdf::TermId>> PathWitness(const rdf::RdfGraph& graph,
                                                    rdf::TermId from,
                                                    rdf::TermId to,
                                                    const PredicatePath& path);

}  // namespace paraphrase
}  // namespace ganswer

#endif  // GANSWER_PARAPHRASE_PREDICATE_PATH_H_
