#ifndef GANSWER_PARAPHRASE_PATH_FINDER_H_
#define GANSWER_PARAPHRASE_PATH_FINDER_H_

#include <cstddef>
#include <vector>

#include "paraphrase/predicate_path.h"
#include "rdf/rdf_graph.h"

namespace ganswer {
namespace paraphrase {

/// \brief Enumerates all simple paths between two vertices of an RDF graph,
/// ignoring edge directions, up to a length threshold (Sec. 3 of the paper).
///
/// The search is bidirectional in the paper's sense: a reverse BFS from the
/// target first computes undirected distances up to the threshold, and the
/// forward DFS from the source is pruned whenever the spent depth plus the
/// remaining distance exceeds the threshold. This turns the worst-case
/// exponential simple-path enumeration into a search that only walks edges
/// that can still reach the target in budget.
class PathFinder {
 public:
  struct Options {
    /// Maximum path length (the paper's theta; its experiments use 2 and 4).
    size_t max_length = 4;
    /// Skip schema edges (rdf:type, rdfs:subClassOf, rdfs:label). The paper
    /// mines over data edges; schema hubs would flood every support set.
    bool skip_schema_edges = true;
    /// Hub guard: vertices with undirected degree above this are never used
    /// as intermediate vertices (endpoints are always allowed). 0 = off.
    size_t max_intermediate_degree = 0;
    /// Safety valve on the number of returned paths per pair. 0 = no cap.
    size_t max_paths = 0;
  };

  /// \p graph must be finalized and must outlive the finder.
  /// Constructs with default options.
  explicit PathFinder(const rdf::RdfGraph& graph);
  PathFinder(const rdf::RdfGraph& graph, Options options);

  /// All distinct predicate paths realized by simple paths from \p from to
  /// \p to with length <= max_length. Each returned path is oriented from
  /// \p from to \p to. Distinct vertex paths with the same predicate
  /// sequence are reported once.
  std::vector<PredicatePath> FindPaths(rdf::TermId from, rdf::TermId to) const;

  const Options& options() const { return options_; }

 private:
  bool IsSchemaPredicate(rdf::TermId p) const;

  const rdf::RdfGraph& graph_;
  Options options_;
};

}  // namespace paraphrase
}  // namespace ganswer

#endif  // GANSWER_PARAPHRASE_PATH_FINDER_H_
