#include "paraphrase/dictionary_builder.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace ganswer {
namespace paraphrase {

Status DictionaryBuilder::Build(const rdf::RdfGraph& graph,
                                const std::vector<RelationPhrase>& dataset,
                                ParaphraseDictionary* dict,
                                BuildStats* stats) const {
  if (dict == nullptr) return Status::InvalidArgument("null dictionary");
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }

  PathFinder::Options pf_options;
  pf_options.max_length = options_.max_path_length;
  pf_options.max_intermediate_degree = options_.max_intermediate_degree;
  pf_options.max_paths = options_.max_paths_per_pair;
  PathFinder finder(graph, pf_options);

  BuildStats local_stats;
  local_stats.phrases = dataset.size();

  int threads = ThreadPool::ResolveThreads(options_.exec.threads);

  // Phase 1 (Alg. 1, lines 1-4): enumerate Path(v, v') for every supporting
  // pair of every phrase; PS(rel_i) is the collection per phrase. Phrases
  // are independent — each worker reads the shared finalized graph and
  // writes only corpus[i], so corpus is identical for any thread count.
  std::vector<PathSets> corpus(dataset.size());
  std::atomic<size_t> pairs_total{0};
  std::atomic<size_t> pairs_in_graph{0};
  std::atomic<size_t> paths_enumerated{0};
  ThreadPool::Run(threads, 0, dataset.size(), [&](size_t i) {
    const RelationPhrase& rel = dataset[i];
    size_t my_total = 0, my_in_graph = 0, my_paths = 0;
    for (const auto& [a_name, b_name] : rel.support) {
      ++my_total;
      auto a = graph.FindTerm(a_name);
      auto b = graph.FindTerm(b_name);
      if (!a.has_value() || !b.has_value()) continue;  // pair not in graph
      ++my_in_graph;
      std::vector<PredicatePath> paths = finder.FindPaths(*a, *b);
      my_paths += paths.size();
      if (!paths.empty()) corpus[i].push_back(std::move(paths));
    }
    pairs_total.fetch_add(my_total, std::memory_order_relaxed);
    pairs_in_graph.fetch_add(my_in_graph, std::memory_order_relaxed);
    paths_enumerated.fetch_add(my_paths, std::memory_order_relaxed);
  });
  local_stats.pairs_total = pairs_total.load();
  local_stats.pairs_in_graph = pairs_in_graph.load();
  local_stats.paths_enumerated = paths_enumerated.load();

  // Phase 2 (Alg. 1, lines 5-8): tf-idf scoring, keep top-k per phrase.
  // Scoring reads the shared model and writes scored[i]; the dictionary is
  // then filled serially in phrase order, so AddPhrase ids and the inverted
  // index are deterministic.
  TfIdfModel model(&corpus);
  std::vector<std::vector<ParaphraseEntry>> scored(dataset.size());
  ThreadPool::Run(threads, 0, dataset.size(), [&](size_t i) {
    std::unordered_set<PredicatePath, PredicatePathHash> distinct;
    for (const auto& pair_paths : corpus[i]) {
      for (const PredicatePath& p : pair_paths) distinct.insert(p);
    }
    std::vector<ParaphraseEntry> entries;
    entries.reserve(distinct.size());
    for (const PredicatePath& p : distinct) {
      size_t tf = model.Tf(p, i);
      if (tf == 0) continue;
      // Definition 4 verbatim, with an idf floor: in degenerate small
      // corpora (|T| ~ df) the raw idf reaches 0 or below and would erase
      // every mapping; the floor keeps such paths at a tf-proportional
      // epsilon score instead, preserving the ranking for positive idf.
      constexpr double kIdfFloor = 0.01;
      double score =
          static_cast<double>(tf) * std::max(model.Idf(p), kIdfFloor);
      entries.push_back({p, score});
    }
    std::sort(entries.begin(), entries.end(),
              [](const ParaphraseEntry& a, const ParaphraseEntry& b) {
                if (a.confidence != b.confidence) {
                  return a.confidence > b.confidence;
                }
                return a.path < b.path;  // deterministic tie-break
              });
    if (entries.size() > options_.top_k) entries.resize(options_.top_k);
    scored[i] = std::move(entries);
  });
  for (size_t i = 0; i < dataset.size(); ++i) {
    dict->AddPhrase(dataset[i].text, std::move(scored[i]));
  }

  if (options_.normalize) dict->NormalizeConfidences();
  if (stats != nullptr) *stats = local_stats;
  return Status::Ok();
}

}  // namespace paraphrase
}  // namespace ganswer
