#ifndef GANSWER_PARAPHRASE_MAINTENANCE_H_
#define GANSWER_PARAPHRASE_MAINTENANCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "paraphrase/dictionary_builder.h"
#include "paraphrase/paraphrase_dictionary.h"

namespace ganswer {
namespace paraphrase {

/// \brief Incremental maintenance of the paraphrase dictionary (Sec. 3 of
/// the paper: "To maintain the dictionary D, we can just re-mine the
/// mappings for newly introduced predicates, or delete all mappings for
/// the predicates when they are removed from the dataset").
class DictionaryMaintainer {
 public:
  explicit DictionaryMaintainer(DictionaryBuilder::Options mine_options =
                                    DictionaryBuilder::Options())
      : mine_options_(mine_options) {}

  struct MaintenanceStats {
    size_t phrases_touched = 0;
    size_t entries_dropped = 0;
    size_t phrases_remined = 0;
  };

  /// Drops every entry whose path uses one of \p removed_predicates
  /// (by name) and renormalizes confidences. Cheap: no graph access.
  Status OnPredicatesRemoved(const std::vector<std::string>& removed_predicates,
                             const rdf::RdfGraph& graph,
                             ParaphraseDictionary* dict,
                             MaintenanceStats* stats = nullptr) const;

  /// Re-mines only the phrases that can be affected by \p added_predicates:
  /// those with a supporting entity pair one of whose endpoints has an
  /// incident edge labeled with a new predicate. Everything else keeps its
  /// entries untouched. \p graph must already contain the new triples.
  Status OnPredicatesAdded(const std::vector<std::string>& added_predicates,
                           const rdf::RdfGraph& graph,
                           const std::vector<RelationPhrase>& dataset,
                           ParaphraseDictionary* dict,
                           MaintenanceStats* stats = nullptr) const;

 private:
  DictionaryBuilder::Options mine_options_;
};

}  // namespace paraphrase
}  // namespace ganswer

#endif  // GANSWER_PARAPHRASE_MAINTENANCE_H_
