#ifndef GANSWER_PARAPHRASE_TF_IDF_H_
#define GANSWER_PARAPHRASE_TF_IDF_H_

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "paraphrase/predicate_path.h"

namespace ganswer {
namespace paraphrase {

/// The path sets of one relation phrase: PS(rel) = union over support pairs
/// of Path(v, v'). Each element holds the distinct predicate paths found
/// for one supporting entity pair.
using PathSets = std::vector<std::vector<PredicatePath>>;

/// \brief tf-idf scoring of predicate paths against relation phrases
/// (Definition 4 of the paper).
///
/// Each phrase's PS(rel) is a virtual document whose words are predicate
/// paths; the corpus is the collection of all PS(rel_i). A path scores high
/// for a phrase when it connects many of that phrase's support pairs (tf)
/// but few other phrases' support pairs (idf) — which is exactly what kills
/// generic noise paths like (hasGender, hasGender).
class TfIdfModel {
 public:
  /// \p corpus[i] is PS(rel_i) for phrase i. Document frequencies are
  /// computed once here.
  explicit TfIdfModel(const std::vector<PathSets>* corpus);

  /// tf(L, PS(rel_i)): number of support pairs of phrase \p phrase_idx whose
  /// path set contains \p path.
  size_t Tf(const PredicatePath& path, size_t phrase_idx) const;

  /// idf(L, T) = log(|T| / (|{rel : L in PS(rel)}| + 1)).
  double Idf(const PredicatePath& path) const;

  /// tf-idf(L, PS(rel_i), T) = tf * idf; the paper's confidence
  /// delta(rel, L) before per-phrase normalization.
  double TfIdf(const PredicatePath& path, size_t phrase_idx) const;

  /// Number of phrases (documents) whose PS contains \p path.
  size_t DocumentFrequency(const PredicatePath& path) const;

  size_t corpus_size() const { return corpus_->size(); }

 private:
  const std::vector<PathSets>* corpus_;
  std::unordered_map<PredicatePath, size_t, PredicatePathHash> doc_freq_;
};

}  // namespace paraphrase
}  // namespace ganswer

#endif  // GANSWER_PARAPHRASE_TF_IDF_H_
