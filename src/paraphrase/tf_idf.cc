#include "paraphrase/tf_idf.h"

#include <cmath>

namespace ganswer {
namespace paraphrase {

TfIdfModel::TfIdfModel(const std::vector<PathSets>* corpus) : corpus_(corpus) {
  for (const PathSets& ps : *corpus_) {
    std::unordered_set<PredicatePath, PredicatePathHash> distinct;
    for (const auto& pair_paths : ps) {
      for (const PredicatePath& p : pair_paths) distinct.insert(p);
    }
    for (const PredicatePath& p : distinct) ++doc_freq_[p];
  }
}

size_t TfIdfModel::Tf(const PredicatePath& path, size_t phrase_idx) const {
  const PathSets& ps = (*corpus_)[phrase_idx];
  size_t count = 0;
  for (const auto& pair_paths : ps) {
    for (const PredicatePath& p : pair_paths) {
      if (p == path) {
        ++count;
        break;  // tf counts pairs, not occurrences
      }
    }
  }
  return count;
}

size_t TfIdfModel::DocumentFrequency(const PredicatePath& path) const {
  auto it = doc_freq_.find(path);
  return it == doc_freq_.end() ? 0 : it->second;
}

double TfIdfModel::Idf(const PredicatePath& path) const {
  double n = static_cast<double>(corpus_->size());
  double df = static_cast<double>(DocumentFrequency(path));
  return std::log(n / (df + 1.0));
}

double TfIdfModel::TfIdf(const PredicatePath& path, size_t phrase_idx) const {
  return static_cast<double>(Tf(path, phrase_idx)) * Idf(path);
}

}  // namespace paraphrase
}  // namespace ganswer
