#include "paraphrase/maintenance.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace ganswer {
namespace paraphrase {

Status DictionaryMaintainer::OnPredicatesRemoved(
    const std::vector<std::string>& removed_predicates,
    const rdf::RdfGraph& graph, ParaphraseDictionary* dict,
    MaintenanceStats* stats) const {
  if (dict == nullptr) return Status::InvalidArgument("null dictionary");
  std::unordered_set<rdf::TermId> removed;
  for (const std::string& name : removed_predicates) {
    auto id = graph.Find(name);
    if (id.has_value()) removed.insert(*id);
  }
  MaintenanceStats local;
  for (PhraseId id = 0; id < dict->NumPhrases(); ++id) {
    const auto& entries = dict->Entries(id);
    std::vector<ParaphraseEntry> kept;
    kept.reserve(entries.size());
    for (const ParaphraseEntry& e : entries) {
      bool uses_removed = std::any_of(
          e.path.steps.begin(), e.path.steps.end(),
          [&](const PathStep& s) { return removed.count(s.predicate) > 0; });
      if (uses_removed) {
        ++local.entries_dropped;
      } else {
        kept.push_back(e);
      }
    }
    if (kept.size() != entries.size()) {
      ++local.phrases_touched;
      dict->AddPhrase(dict->PhraseText(id), std::move(kept));
    }
  }
  dict->NormalizeConfidences();
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

Status DictionaryMaintainer::OnPredicatesAdded(
    const std::vector<std::string>& added_predicates,
    const rdf::RdfGraph& graph, const std::vector<RelationPhrase>& dataset,
    ParaphraseDictionary* dict, MaintenanceStats* stats) const {
  if (dict == nullptr) return Status::InvalidArgument("null dictionary");
  if (!graph.finalized()) {
    return Status::InvalidArgument("graph must be finalized");
  }
  std::unordered_set<rdf::TermId> added;
  for (const std::string& name : added_predicates) {
    auto id = graph.Find(name);
    if (id.has_value()) added.insert(*id);
  }
  auto touches_new_predicate = [&](rdf::TermId v) {
    for (const rdf::Edge& e : graph.OutEdges(v)) {
      if (added.count(e.predicate)) return true;
    }
    for (const rdf::Edge& e : graph.InEdges(v)) {
      if (added.count(e.predicate)) return true;
    }
    return false;
  };

  // Phrases whose support pairs can see a new predicate (either endpoint
  // has an incident new edge) get re-mined; the rest are untouched.
  std::vector<RelationPhrase> affected;
  for (const RelationPhrase& phrase : dataset) {
    bool hit = false;
    for (const auto& [a, b] : phrase.support) {
      auto ia = graph.FindTerm(a);
      auto ib = graph.FindTerm(b);
      if ((ia && touches_new_predicate(*ia)) ||
          (ib && touches_new_predicate(*ib))) {
        hit = true;
        break;
      }
    }
    if (hit) affected.push_back(phrase);
  }

  MaintenanceStats local;
  local.phrases_remined = affected.size();
  if (!affected.empty()) {
    // Algorithm 1 restricted to the affected phrases. Note the idf side:
    // re-mining a subset keeps the other phrases' (slightly stale) idf —
    // the approximation the paper's maintenance note accepts.
    DictionaryBuilder builder(mine_options_);
    GANSWER_RETURN_NOT_OK(builder.Build(graph, affected, dict));
  }
  if (stats != nullptr) *stats = local;
  return Status::Ok();
}

}  // namespace paraphrase
}  // namespace ganswer
