#ifndef GANSWER_PARAPHRASE_DICTIONARY_BUILDER_H_
#define GANSWER_PARAPHRASE_DICTIONARY_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "paraphrase/path_finder.h"
#include "paraphrase/tf_idf.h"

namespace ganswer {
namespace paraphrase {

/// A relation phrase with its supporting entity pairs, as provided by a
/// Patty/ReVerb-style relation-phrase dataset. Entity names refer to terms
/// of the target RDF graph; pairs naming unknown entities are skipped (the
/// paper reports ~67% of Patty pairs occur in DBpedia).
struct RelationPhrase {
  std::string text;
  std::vector<std::pair<std::string, std::string>> support;
};

/// \brief Algorithm 1: offline mining of the paraphrase dictionary D.
///
/// For each relation phrase, all simple predicate paths (length <= theta)
/// between each supporting entity pair are enumerated; paths are scored by
/// tf-idf over the corpus of all phrases' path sets (Definition 4) and the
/// top-k become the phrase's candidate predicates / predicate paths with
/// confidence delta(rel, L) (Equation 1).
class DictionaryBuilder {
 public:
  struct Options {
    /// The path-length threshold theta (the paper evaluates 2 and 4).
    size_t max_path_length = 4;
    /// Keep the top-k scored paths per phrase (the paper shows top-3 to
    /// human judges; online matching uses the whole kept list).
    size_t top_k = 3;
    /// Passed through to the PathFinder hub guard.
    size_t max_intermediate_degree = 0;
    /// Per-pair cap on enumerated paths (0 = unlimited).
    size_t max_paths_per_pair = 2000;
    /// Normalize confidences per phrase so the best is 1.0 (Table 6).
    bool normalize = true;
    /// Parallelism for the per-phrase path enumeration and scoring stages.
    /// Phrases are partitioned across a thread pool sharing the finalized
    /// (read-only) graph; the mined dictionary is identical for any thread
    /// count (threads=1 reproduces the serial build exactly).
    ExecutionOptions exec;
  };

  struct BuildStats {
    size_t phrases = 0;
    size_t pairs_total = 0;
    size_t pairs_in_graph = 0;
    size_t paths_enumerated = 0;
  };

  DictionaryBuilder() : options_() {}
  explicit DictionaryBuilder(Options options) : options_(options) {}

  /// Runs Algorithm 1 over \p graph and the phrase dataset \p dataset,
  /// filling \p dict (which supplies the lexicon for phrase indexing).
  /// \p stats may be null.
  Status Build(const rdf::RdfGraph& graph,
               const std::vector<RelationPhrase>& dataset,
               ParaphraseDictionary* dict, BuildStats* stats = nullptr) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace paraphrase
}  // namespace ganswer

#endif  // GANSWER_PARAPHRASE_DICTIONARY_BUILDER_H_
