#ifndef GANSWER_PARAPHRASE_PARAPHRASE_DICTIONARY_H_
#define GANSWER_PARAPHRASE_PARAPHRASE_DICTIONARY_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "nlp/lexicon.h"
#include "paraphrase/predicate_path.h"

namespace ganswer {

class BinaryWriter;
class BinaryReader;

namespace paraphrase {

/// One mined mapping: a predicate path with its confidence probability
/// delta(rel, L) (Equation 1; normalized per phrase so the best is 1.0,
/// matching the paper's Table 6 presentation).
struct ParaphraseEntry {
  PredicatePath path;
  double confidence = 0.0;
};

using PhraseId = uint32_t;

/// \brief The paraphrase dictionary D (Sec. 3, Figure 3): relation phrases
/// mapped to ranked predicates / predicate paths, plus the word-level
/// inverted index over phrases that Algorithm 2 probes during relation
/// extraction.
///
/// Phrases are matched by lemma: "be married to" is stored as the lemma
/// sequence [be, marry, to], so the inflected question forms ("was married
/// to", "is married to") all hit the same phrase.
class ParaphraseDictionary {
 public:
  /// \p lexicon supplies lemmatization for phrase words and must outlive
  /// the dictionary.
  explicit ParaphraseDictionary(const nlp::Lexicon* lexicon)
      : lexicon_(lexicon) {}

  /// Registers \p phrase_text (surface form, space-separated) with its
  /// ranked entries. Returns the phrase id. Re-adding a phrase replaces its
  /// entries.
  PhraseId AddPhrase(std::string_view phrase_text,
                     std::vector<ParaphraseEntry> entries);

  size_t NumPhrases() const { return phrases_.size(); }

  const std::string& PhraseText(PhraseId id) const {
    return phrases_[id].text;
  }
  /// Lemma words of the phrase, in order.
  const std::vector<std::string>& PhraseLemmas(PhraseId id) const {
    return phrases_[id].lemmas;
  }
  /// Ranked candidate predicates / paths (non-ascending confidence).
  const std::vector<ParaphraseEntry>& Entries(PhraseId id) const {
    return phrases_[id].entries;
  }

  /// Ids of phrases whose lemma sequence contains \p lemma (the inverted
  /// index of Algorithm 2).
  const std::vector<PhraseId>& PhrasesContaining(std::string_view lemma) const;

  /// Id of the phrase with exactly this lemma sequence, if present.
  std::optional<PhraseId> FindByLemmas(
      const std::vector<std::string>& lemmas) const;

  /// Rescales every phrase's confidences so its best entry has
  /// confidence 1.0 (Table 6 normalization).
  void NormalizeConfidences();

  /// Text serialization: one line per (phrase, path, confidence).
  /// Predicates are written by name, so the file is portable across graphs
  /// that intern the same predicate names.
  Status Save(std::ostream* out, const rdf::TermDictionary& dict) const;
  Status Load(std::istream* in, rdf::RdfGraph* graph);

  /// Snapshot serialization: phrase records (text, lemmas, entries with
  /// predicate paths) plus the lemma inverted index. Predicate ids are raw
  /// TermIds, so a binary dictionary is only valid together with the graph
  /// it was saved with — the snapshot container keeps them paired.
  void SaveBinary(BinaryWriter* out) const;
  /// Replaces the contents with a previously saved dictionary. No
  /// re-lemmatization or re-interning happens; \p num_terms bounds the
  /// stored predicate ids (pass graph.dict().size()).
  Status LoadBinary(BinaryReader* in, size_t num_terms);

 private:
  struct PhraseRecord {
    std::string text;
    std::vector<std::string> lemmas;
    std::vector<ParaphraseEntry> entries;
  };

  const nlp::Lexicon* lexicon_;
  std::vector<PhraseRecord> phrases_;
  std::unordered_map<std::string, PhraseId> by_text_;
  std::unordered_map<std::string, std::vector<PhraseId>> inverted_;
  std::vector<PhraseId> empty_;
};

}  // namespace paraphrase
}  // namespace ganswer

#endif  // GANSWER_PARAPHRASE_PARAPHRASE_DICTIONARY_H_
