#ifndef GANSWER_SERVER_HTTP_PARSER_H_
#define GANSWER_SERVER_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ganswer {
namespace server {

/// One parsed HTTP/1.1 request. Header names are kept verbatim; lookups
/// are case-insensitive.
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (token, upper/lower kept).
  std::string target;  ///< Raw request-target: "/answer?k=3".
  std::string path;    ///< Target up to '?': "/answer".
  std::string query;   ///< After '?', may be empty.
  int version_minor = 1;  ///< HTTP/1.<minor>; only 0 and 1 are accepted.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection persistence after this request: HTTP/1.1 defaults to true,
  /// HTTP/1.0 to false, an explicit Connection header overrides either.
  bool keep_alive = true;
  /// Steady-clock microseconds at which the server finished parsing this
  /// request — the admission timestamp deadline budgets and queue-wait
  /// accounting measure from. Stamped by HttpServer at dispatch; 0 when
  /// the request was built outside a server (unit tests, fuzzing).
  int64_t received_us = 0;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* Header(std::string_view name) const;
};

/// \brief Incremental, bounds-checked HTTP/1.1 request parser.
///
/// Push bytes in with Feed() as they arrive from the socket — in as many
/// fragments as the network produces, including mid-token splits — and the
/// parser consumes exactly up to the end of the current request, leaving
/// pipelined follow-up bytes to the caller. Malformed input returns a non-OK
/// Status (and a suggested HTTP status code) instead of crashing or
/// over-reading: request-line/header/body sizes are capped by Limits, the
/// Content-Length value is parsed with overflow rejection, and the error
/// path performs no buffer growth (messages are short literals). The fuzz
/// driver (tests/fuzz/http_fuzz_test.cc) holds the parser to the
/// no-crash/no-UB contract under ASan.
///
/// Lifecycle per request: Feed() until done(), read request(), then Reset()
/// before feeding the next pipelined request. After an error the parser is
/// poisoned until Reset().
class HttpParser {
 public:
  struct Limits {
    size_t max_request_line = 8 * 1024;
    /// Cap on the total bytes of the header block (all lines together).
    size_t max_header_bytes = 16 * 1024;
    size_t max_headers = 64;
    size_t max_body_bytes = 1 << 20;
  };

  HttpParser() : HttpParser(Limits()) {}
  explicit HttpParser(Limits limits);

  /// Consumes bytes from \p data into the current request; returns how many
  /// were consumed (always all of them until the request completes; never
  /// more than up to the end of the request). On malformed input returns a
  /// non-OK Status and suggested_status() is set.
  StatusOr<size_t> Feed(std::string_view data);

  /// True when a complete request is buffered and request() is valid.
  bool done() const { return state_ == State::kDone; }
  /// True when the parser saw an error; Reset() clears it.
  bool failed() const { return state_ == State::kError; }
  /// True when no byte of the current request has arrived yet (the clean
  /// point to close an idle keep-alive connection).
  bool idle() const { return state_ == State::kRequestLine && buffer_.empty(); }

  const HttpRequest& request() const { return request_; }
  HttpRequest& request() { return request_; }

  /// HTTP status code to answer a Feed() error with (400/413/431/501).
  int suggested_status() const { return suggested_status_; }

  /// Clears all state for the next request on the same connection.
  void Reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kDone, kError };

  Status Fail(int http_status, Status status);
  Status ParseRequestLine(std::string_view line);
  Status ParseHeaderLine(std::string_view line);
  /// Validates Content-Length / Connection once the blank line arrives.
  Status FinishHeaders();

  Limits limits_;
  State state_ = State::kRequestLine;
  /// Accumulates the current line (request line / header lines).
  std::string buffer_;
  size_t header_bytes_ = 0;
  size_t body_expected_ = 0;
  int suggested_status_ = 400;
  HttpRequest request_;
};

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_HTTP_PARSER_H_
