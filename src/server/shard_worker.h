#ifndef GANSWER_SERVER_SHARD_WORKER_H_
#define GANSWER_SERVER_SHARD_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "nlp/lexicon.h"
#include "rdf/sparql_engine.h"
#include "server/event_loop.h"
#include "server/shard_rpc.h"
#include "store/snapshot.h"

namespace ganswer {
namespace server {

/// \brief One shard's serving process: a shard snapshot behind the binary
/// shard RPC (shard_rpc.h) on the shared epoll EventLoop.
///
/// The loop thread owns all connection state and does nothing but frame
/// reassembly and writes; decoded requests dispatch to a small worker pool
/// (matching and SPARQL evaluation are CPU-bound) and responses re-enter
/// the loop via Post — the same reactor discipline as HttpServer. A
/// malformed frame closes the connection (stream framing is lost), it
/// never crashes the worker: the decode layer is fully bounds-checked and
/// byte-fuzzed.
///
/// kMatch runs the *unmodified* TopKMatcher over the shard graph with the
/// router-serialized QueryGraph — candidate confidences travel inside the
/// query, so a shard scores matches exactly as the single-snapshot matcher
/// does; divergence can only come from triples the shard lacks, which the
/// halo invariant (store/sharded_kb.h) and the router's reach check rule
/// out for scattered queries.
///
/// **Fault injection** (tests only): a seeded fraction of responses can be
/// dropped (never sent), delayed past the router's timeout, or truncated
/// mid-frame with the connection closed. Decisions are made per response
/// on the loop thread from one deterministic Rng, so a seed replays the
/// exact fault sequence.
class ShardWorker {
 public:
  struct FaultInjection {
    double drop_fraction = 0.0;
    double delay_fraction = 0.0;
    double truncate_fraction = 0.0;
    /// How long a "delayed" response waits before being sent; set it above
    /// the router timeout to simulate a straggler the router gives up on.
    int delay_ms = 1000;
    uint64_t seed = 1;
  };

  struct Options {
    /// Shard snapshot written by store::WriteShardedKb.
    std::string snapshot_path;
    bool mmap_load = false;
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port (tests); read back via port().
    int port = 0;
    /// Worker threads evaluating requests; 0 = hardware concurrency.
    int threads = 1;
    /// Identity reported by kPing (set from the shard manifest).
    uint32_t shard_id = 0;
    uint32_t num_shards = 1;
    uint32_t halo_hops = 0;
    size_t max_connections = 1024;
    FaultInjection fault;
  };

  explicit ShardWorker(Options options);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Loads the shard snapshot and starts serving.
  Status Start();
  /// Stops the loop, closes every connection, joins the pool. Idempotent.
  void Shutdown();

  int port() const { return port_; }
  const store::Snapshot& snapshot() const { return snapshot_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    FrameBuffer frames;
    std::string outbuf;
    size_t out_offset = 0;
    bool writable_armed = false;
    /// Requests dispatched to the pool whose responses have not been
    /// queued yet; the connection lingers after peer EOF until they drain.
    size_t in_flight = 0;
    bool peer_closed = false;
  };

  void AcceptReady();
  void ConnectionReady(uint64_t conn_id, uint32_t events);
  void ProcessFrames(Connection* conn);
  /// Evaluates one request on the worker pool; runs the fault decision and
  /// queues the response bytes back on the loop thread.
  void Dispatch(uint64_t conn_id, std::string payload);
  ShardResponse Evaluate(const ShardRequest& request) const;
  void QueueResponse(uint64_t conn_id, std::string frame);
  void FlushOutput(Connection* conn);
  void CloseConnection(uint64_t conn_id);

  Options options_;
  nlp::Lexicon lexicon_;
  store::Snapshot snapshot_;
  std::unique_ptr<rdf::SparqlEngine> engine_;
  std::unique_ptr<ThreadPool> pool_;

  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  int port_ = 0;
  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;

  /// Loop-thread only: one deterministic fault sequence per worker.
  std::unique_ptr<Rng> fault_rng_;

  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> faults_injected_{0};
  bool started_ = false;
  std::atomic<bool> shut_down_{false};
};

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_SHARD_WORKER_H_
