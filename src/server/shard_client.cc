#include "server/shard_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <numeric>
#include <utility>

namespace ganswer {
namespace server {
namespace {

constexpr size_t kMaxPooledPerShard = 8;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Opens a nonblocking socket and starts connecting; sets *in_progress
/// when the connect is still pending (completion signaled by POLLOUT).
int StartConnect(const std::string& host, int port, bool* in_progress) {
  *in_progress = false;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc == 0) return fd;
  if (errno == EINPROGRESS) {
    *in_progress = true;
    return fd;
  }
  ::close(fd);
  return -1;
}

}  // namespace

struct ShardClient::Attempt {
  enum class State { kConnecting, kSending, kReading, kDone, kFailed };

  size_t shard = 0;
  int fd = -1;
  State state = State::kFailed;
  bool from_pool = false;
  /// Network attempts made so far (pool checkout counts as one).
  int tries = 0;
  /// Attempts left, including the in-flight one. A stale pooled
  /// connection's failure is refunded: it should not eat the caller's
  /// retry budget.
  int remaining = 0;
  size_t out_offset = 0;
  FrameBuffer frames;
  std::string payload;
  bool timed_out = false;
};

ShardClient::ShardClient(Options options) : options_(std::move(options)) {
  shards_.reserve(options_.endpoints.size());
  for (size_t i = 0; i < options_.endpoints.size(); ++i) {
    shards_.push_back(std::make_unique<PerShard>());
  }
}

ShardClient::~ShardClient() { CloseIdleConnections(); }

void ShardClient::CloseIdleConnections() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (int fd : shard->idle_fds) ::close(fd);
    shard->idle_fds.clear();
  }
}

int ShardClient::CheckoutConnection(size_t shard) {
  PerShard* s = shards_[shard].get();
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->idle_fds.empty()) return -1;
  int fd = s->idle_fds.back();
  s->idle_fds.pop_back();
  return fd;
}

void ShardClient::ReturnConnection(size_t shard, int fd) {
  PerShard* s = shards_[shard].get();
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->idle_fds.size() >= kMaxPooledPerShard) {
    ::close(fd);
    return;
  }
  s->idle_fds.push_back(fd);
}

ShardClient::ShardCounters ShardClient::counters(size_t shard) const {
  PerShard* s = shards_[shard].get();
  std::lock_guard<std::mutex> lock(s->mu);
  return s->counters;
}

bool ShardClient::ShouldScatter(const match::QueryGraph& query) const {
  if (options_.endpoints.empty()) return false;
  // One shard owns every subject, so its graph is the full graph and any
  // query — connected or not — evaluates identically to the local matcher.
  if (options_.endpoints.size() == 1) return true;
  if (query.vertices.empty()) return false;

  // Connectivity: the halo argument anchors on one assigned vertex and
  // walks the match's support from there, which requires every query
  // vertex to be reachable from every other.
  std::vector<int> parent(query.vertices.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  const int n = static_cast<int>(query.vertices.size());
  for (const match::QueryEdge& e : query.edges) {
    if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n) return false;
    parent[find(e.from)] = find(e.to);
  }
  const int root = find(0);
  for (int v = 1; v < n; ++v) {
    if (find(v) != root) return false;
  }

  // Halo coverage: reach = sum over edges of the longest candidate
  // predicate path (a wildcard edge matches exactly one predicate), L =
  // the single longest. Exact iff reach + L + 1 <= halo_hops — see
  // store/sharded_kb.h for the derivation.
  uint64_t reach = 0;
  uint64_t longest = 0;
  for (const match::QueryEdge& e : query.edges) {
    uint64_t len = 1;
    for (const paraphrase::ParaphraseEntry& c : e.candidates) {
      len = std::max<uint64_t>(len, c.path.steps.size());
    }
    reach += len;
    longest = std::max(longest, len);
  }
  return reach + longest + 1 <= options_.halo_hops;
}

std::vector<StatusOr<std::string>> ShardClient::Scatter(
    const std::string& payload, const std::vector<size_t>& shards) {
  const std::string frame = EncodeFrame(payload);
  const int64_t deadline = NowMs() + options_.timeout_ms;
  std::vector<Attempt> attempts(shards.size());

  auto begin_attempt = [&](Attempt* a) {
    a->remaining--;
    a->out_offset = 0;
    a->frames = FrameBuffer();
    a->payload.clear();
    a->from_pool = false;
    {
      PerShard* s = shards_[a->shard].get();
      std::lock_guard<std::mutex> lock(s->mu);
      if (a->tries == 0) {
        s->counters.requests++;
      } else {
        s->counters.retries++;
      }
    }
    if (a->tries++ == 0) {
      int pooled = CheckoutConnection(a->shard);
      if (pooled >= 0) {
        a->fd = pooled;
        a->from_pool = true;
        a->state = Attempt::State::kSending;
        return;
      }
    }
    bool in_progress = false;
    const Endpoint& ep = options_.endpoints[a->shard];
    a->fd = StartConnect(ep.host, ep.port, &in_progress);
    if (a->fd < 0) {
      a->state = Attempt::State::kFailed;
      return;
    }
    a->state =
        in_progress ? Attempt::State::kConnecting : Attempt::State::kSending;
  };

  // Closes the current connection and retries on a fresh one while budget
  // and deadline remain; otherwise the attempt settles as failed.
  auto fail_attempt = [&](Attempt* a) {
    while (true) {
      if (a->fd >= 0) {
        ::close(a->fd);
        a->fd = -1;
      }
      if (a->from_pool) {
        a->remaining++;  // stale pooled connection: free retry
        a->from_pool = false;
      }
      if (a->remaining <= 0 || NowMs() >= deadline) {
        a->state = Attempt::State::kFailed;
        return;
      }
      begin_attempt(a);
      if (a->state != Attempt::State::kFailed) return;
    }
  };

  auto advance = [&](Attempt* a, short revents) {
    if ((revents & (POLLERR | POLLNVAL)) != 0) {
      fail_attempt(a);
      return;
    }
    if (a->state == Attempt::State::kConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(a->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        fail_attempt(a);
        return;
      }
      a->state = Attempt::State::kSending;
    }
    if (a->state == Attempt::State::kSending) {
      // POLLHUP during send: peer closed; writing would fail anyway.
      if ((revents & POLLHUP) != 0 && (revents & POLLOUT) == 0) {
        fail_attempt(a);
        return;
      }
      while (a->out_offset < frame.size()) {
        ssize_t n = ::send(a->fd, frame.data() + a->out_offset,
                           frame.size() - a->out_offset, MSG_NOSIGNAL);
        if (n > 0) {
          a->out_offset += static_cast<size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
        if (n < 0 && errno == EINTR) continue;
        fail_attempt(a);
        return;
      }
      a->state = Attempt::State::kReading;
      return;  // the next poll round waits for POLLIN
    }
    if (a->state == Attempt::State::kReading) {
      char buf[16384];
      while (true) {
        ssize_t n = ::recv(a->fd, buf, sizeof(buf), 0);
        if (n > 0) {
          a->frames.Append(std::string_view(buf, static_cast<size_t>(n)));
          StatusOr<bool> got = a->frames.Next(&a->payload);
          if (!got.ok()) {  // corrupt frame: stream unusable
            fail_attempt(a);
            return;
          }
          if (*got) {
            a->state = Attempt::State::kDone;
            // Reuse only clean connections — trailing bytes past the
            // response would desynchronize the next call on this fd.
            if (a->frames.buffered() == 0) {
              ReturnConnection(a->shard, a->fd);
            } else {
              ::close(a->fd);
            }
            a->fd = -1;
            return;
          }
          continue;
        }
        if (n == 0) {  // EOF before a complete frame (e.g. truncation)
          fail_attempt(a);
          return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        fail_attempt(a);
        return;
      }
    }
  };

  for (size_t i = 0; i < shards.size(); ++i) {
    Attempt* a = &attempts[i];
    a->shard = shards[i];
    a->remaining = 1 + std::max(0, options_.retries);
    begin_attempt(a);
    if (a->state == Attempt::State::kFailed) fail_attempt(a);
  }

  std::vector<pollfd> pfds;
  std::vector<size_t> idx;
  while (true) {
    pfds.clear();
    idx.clear();
    for (size_t i = 0; i < attempts.size(); ++i) {
      Attempt& a = attempts[i];
      short events = 0;
      switch (a.state) {
        case Attempt::State::kConnecting:
        case Attempt::State::kSending:
          events = POLLOUT;
          break;
        case Attempt::State::kReading:
          events = POLLIN;
          break;
        default:
          continue;
      }
      pfds.push_back(pollfd{a.fd, events, 0});
      idx.push_back(i);
    }
    if (pfds.empty()) break;
    const int64_t remaining_ms = deadline - NowMs();
    if (remaining_ms <= 0) break;
    int rc = ::poll(pfds.data(), pfds.size(), static_cast<int>(remaining_ms));
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) break;  // deadline
    for (size_t p = 0; p < pfds.size(); ++p) {
      if (pfds[p].revents == 0) continue;
      advance(&attempts[idx[p]], pfds[p].revents);
    }
  }

  // Whatever is still in flight has missed the deadline.
  for (Attempt& a : attempts) {
    if (a.state == Attempt::State::kDone ||
        a.state == Attempt::State::kFailed) {
      continue;
    }
    if (a.fd >= 0) {
      ::close(a.fd);
      a.fd = -1;
    }
    a.timed_out = true;
    a.state = Attempt::State::kFailed;
  }

  std::vector<StatusOr<std::string>> results;
  results.reserve(attempts.size());
  for (Attempt& a : attempts) {
    if (a.state == Attempt::State::kDone) {
      results.push_back(std::move(a.payload));
      continue;
    }
    PerShard* s = shards_[a.shard].get();
    {
      std::lock_guard<std::mutex> lock(s->mu);
      s->counters.errors++;
      if (a.timed_out) s->counters.timeouts++;
    }
    results.push_back(Status::IoError(
        a.timed_out ? "shard response deadline exceeded"
                    : "shard unreachable or returned a broken stream"));
  }
  return results;
}

StatusOr<ShardClient::MatchOutcome> ShardClient::ScatterMatch(
    const match::QueryGraph& query, size_t k) {
  if (shards_.empty()) {
    return Status::InvalidArgument("shard client has no endpoints");
  }
  ShardRequest request;
  request.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.type = ShardRpcType::kMatch;
  request.k = k;
  request.query = query;

  std::vector<size_t> all(num_shards());
  std::iota(all.begin(), all.end(), 0);
  scattered_calls_.fetch_add(1, std::memory_order_relaxed);
  std::vector<StatusOr<std::string>> raw =
      Scatter(EncodeRequest(request), all);

  MatchOutcome out;
  std::vector<std::vector<match::Match>> per_shard;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (!raw[i].ok()) {
      out.failed_shards++;
      continue;
    }
    StatusOr<ShardResponse> response = DecodeResponse(*raw[i]);
    if (!response.ok() || response->request_id != request.request_id ||
        response->type != ShardRpcType::kMatch ||
        response->status != ShardRpcStatus::kOk) {
      out.failed_shards++;
      PerShard* s = shards_[i].get();
      std::lock_guard<std::mutex> lock(s->mu);
      s->counters.errors++;
      continue;
    }
    out.ok_shards++;
    per_shard.push_back(std::move(response->matches));
  }
  if (out.ok_shards == 0) {
    return Status::IoError("every shard failed to answer the match request");
  }
  out.matches = match::MergeShardTopK(per_shard, k);
  if (out.partial()) partial_results_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

StatusOr<ShardClient::SparqlOutcome> ShardClient::ScatterSparql(
    const std::string& text) {
  if (shards_.empty()) {
    return Status::InvalidArgument("shard client has no endpoints");
  }
  ShardRequest request;
  request.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.type = ShardRpcType::kSparql;
  request.sparql_text = text;

  std::vector<size_t> all(num_shards());
  std::iota(all.begin(), all.end(), 0);
  scattered_calls_.fetch_add(1, std::memory_order_relaxed);
  std::vector<StatusOr<std::string>> raw =
      Scatter(EncodeRequest(request), all);

  SparqlOutcome out;
  bool have_header = false;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (!raw[i].ok()) {
      out.failed_shards++;
      continue;
    }
    StatusOr<ShardResponse> response = DecodeResponse(*raw[i]);
    if (!response.ok() || response->request_id != request.request_id ||
        response->type != ShardRpcType::kSparql ||
        response->status != ShardRpcStatus::kOk) {
      out.failed_shards++;
      PerShard* s = shards_[i].get();
      std::lock_guard<std::mutex> lock(s->mu);
      s->counters.errors++;
      continue;
    }
    out.ok_shards++;
    if (!have_header) {
      out.result.var_names = std::move(response->sparql.var_names);
      have_header = true;
    }
    out.result.ask_result |= response->sparql.ask_result;
    for (std::vector<rdf::TermId>& row : response->sparql.rows) {
      out.result.rows.push_back(std::move(row));
    }
  }
  if (out.ok_shards == 0) {
    return Status::IoError("every shard failed to answer the SPARQL request");
  }
  // Shards overlap (halo replication): union semantics, deterministic order.
  std::sort(out.result.rows.begin(), out.result.rows.end());
  out.result.rows.erase(
      std::unique(out.result.rows.begin(), out.result.rows.end()),
      out.result.rows.end());
  if (out.partial()) partial_results_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

StatusOr<ShardPingInfo> ShardClient::Ping(size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  ShardRequest request;
  request.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.type = ShardRpcType::kPing;
  std::vector<StatusOr<std::string>> raw =
      Scatter(EncodeRequest(request), {shard});
  if (!raw[0].ok()) return raw[0].status();
  StatusOr<ShardResponse> response = DecodeResponse(*raw[0]);
  if (!response.ok()) return response.status();
  if (response->request_id != request.request_id ||
      response->type != ShardRpcType::kPing ||
      response->status != ShardRpcStatus::kOk) {
    return Status::IoError("shard ping returned an unexpected response");
  }
  return response->ping;
}

}  // namespace server
}  // namespace ganswer
