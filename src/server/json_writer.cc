#include "server/json_writer.h"

#include <cctype>
#include <cstdio>

#include "common/string_util.h"

namespace ganswer {
namespace server {

void JsonWriter::Separate() {
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Separate();
  out_ += '"';
  AppendJsonEscaped(&out_, key);
  out_ += "\":";
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Separate();
  out_ += '"';
  AppendJsonEscaped(&out_, value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  Separate();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  Separate();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separate();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separate();
  out_ += "null";
  return *this;
}

namespace {

/// Cursor over the request-body JSON; every Next/Peek is bounds-checked.
struct Scanner {
  std::string_view s;
  size_t pos = 0;

  bool AtEnd() const { return pos >= s.size(); }
  char Peek() const { return s[pos]; }

  void SkipWs() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    }
  }

  bool Consume(char c) {
    if (AtEnd() || s[pos] != c) return false;
    ++pos;
    return true;
  }
};

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

bool ParseHex4(Scanner* in, uint32_t* out) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    if (in->AtEnd()) return false;
    char c = in->s[in->pos++];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

Status ParseString(Scanner* in, std::string* out) {
  if (!in->Consume('"')) return Status::InvalidArgument("expected string");
  while (true) {
    if (in->AtEnd()) return Status::InvalidArgument("unterminated string");
    char c = in->s[in->pos++];
    if (c == '"') return Status::Ok();
    if (static_cast<unsigned char>(c) < 0x20) {
      return Status::InvalidArgument("raw control byte in string");
    }
    if (c != '\\') {
      if (out != nullptr) out->push_back(c);
      continue;
    }
    if (in->AtEnd()) return Status::InvalidArgument("truncated escape");
    char e = in->s[in->pos++];
    char decoded;
    switch (e) {
      case '"': decoded = '"'; break;
      case '\\': decoded = '\\'; break;
      case '/': decoded = '/'; break;
      case 'b': decoded = '\b'; break;
      case 'f': decoded = '\f'; break;
      case 'n': decoded = '\n'; break;
      case 'r': decoded = '\r'; break;
      case 't': decoded = '\t'; break;
      case 'u': {
        uint32_t cp = 0;
        if (!ParseHex4(in, &cp)) {
          return Status::InvalidArgument("bad \\u escape");
        }
        if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
          if (!in->Consume('\\') || !in->Consume('u')) {
            return Status::InvalidArgument("lone surrogate");
          }
          uint32_t lo = 0;
          if (!ParseHex4(in, &lo) || lo < 0xDC00 || lo > 0xDFFF) {
            return Status::InvalidArgument("bad surrogate pair");
          }
          cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return Status::InvalidArgument("lone surrogate");
        }
        if (out != nullptr) AppendUtf8(out, cp);
        continue;
      }
      default:
        return Status::InvalidArgument("bad escape");
    }
    if (out != nullptr) out->push_back(decoded);
  }
}

/// Skips one JSON value of any type (nesting bounded by input length).
Status SkipValue(Scanner* in) {
  in->SkipWs();
  if (in->AtEnd()) return Status::InvalidArgument("truncated value");
  char c = in->Peek();
  if (c == '"') return ParseString(in, nullptr);
  if (c == '{' || c == '[') {
    // Generic bracket matching is enough for skipping: the member we care
    // about is re-parsed strictly, and unbalanced input still terminates.
    ++in->pos;
    size_t depth = 1;
    while (!in->AtEnd() && depth > 0) {
      char d = in->Peek();
      if (d == '"') {
        GANSWER_RETURN_NOT_OK(ParseString(in, nullptr));
        continue;
      }
      if (d == '{' || d == '[') {
        ++depth;
      } else if (d == '}' || d == ']') {
        --depth;
      }
      ++in->pos;
    }
    if (depth != 0) return Status::InvalidArgument("unbalanced value");
    return Status::Ok();
  }
  // Number / true / false / null: consume the token.
  size_t start = in->pos;
  while (!in->AtEnd()) {
    char d = in->Peek();
    if (d == ',' || d == '}' || d == ']' ||
        std::isspace(static_cast<unsigned char>(d))) {
      break;
    }
    ++in->pos;
  }
  if (in->pos == start) return Status::InvalidArgument("empty value");
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> JsonGetString(std::string_view json,
                                    std::string_view key) {
  Scanner in{json};
  in.SkipWs();
  if (!in.Consume('{')) return Status::InvalidArgument("not a JSON object");
  in.SkipWs();
  if (in.Consume('}')) return Status::NotFound("key absent");
  while (true) {
    in.SkipWs();
    std::string member;
    GANSWER_RETURN_NOT_OK(ParseString(&in, &member));
    in.SkipWs();
    if (!in.Consume(':')) return Status::InvalidArgument("expected ':'");
    in.SkipWs();
    if (member == key) {
      if (in.AtEnd() || in.Peek() != '"') {
        return Status::NotFound("member is not a string");
      }
      std::string value;
      GANSWER_RETURN_NOT_OK(ParseString(&in, &value));
      return value;
    }
    GANSWER_RETURN_NOT_OK(SkipValue(&in));
    in.SkipWs();
    if (in.Consume(',')) continue;
    if (in.Consume('}')) return Status::NotFound("key absent");
    return Status::InvalidArgument("expected ',' or '}'");
  }
}

}  // namespace server
}  // namespace ganswer
