#include "server/http_parser.h"

#include <cctype>
#include <charconv>

namespace ganswer {
namespace server {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

// RFC 7230 token characters, the legal alphabet of methods and header
// names. Rejecting everything else keeps junk bytes out of the router.
bool IsTokenChar(unsigned char c) {
  if (std::isalnum(c)) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (unsigned char c : s) {
    if (!IsTokenChar(c)) return false;
  }
  return true;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

HttpParser::HttpParser(Limits limits) : limits_(limits) {}

void HttpParser::Reset() {
  state_ = State::kRequestLine;
  buffer_.clear();
  header_bytes_ = 0;
  body_expected_ = 0;
  suggested_status_ = 400;
  request_ = HttpRequest();
}

Status HttpParser::Fail(int http_status, Status status) {
  state_ = State::kError;
  suggested_status_ = http_status;
  return status;
}

StatusOr<size_t> HttpParser::Feed(std::string_view data) {
  if (state_ == State::kError) {
    return Status::Internal("parser poisoned");
  }
  size_t consumed = 0;
  while (consumed < data.size() && state_ != State::kDone) {
    if (state_ == State::kBody) {
      size_t want = body_expected_ - request_.body.size();
      size_t take = std::min(want, data.size() - consumed);
      request_.body.append(data.substr(consumed, take));
      consumed += take;
      if (request_.body.size() == body_expected_) state_ = State::kDone;
      continue;
    }
    // Line-oriented states: accumulate until '\n'. The size caps apply to
    // the partial line too, so an attacker cannot buffer unbounded bytes by
    // never sending the newline.
    size_t nl = data.find('\n', consumed);
    size_t take = (nl == std::string_view::npos ? data.size() : nl + 1) -
                  consumed;
    const size_t cap = state_ == State::kRequestLine
                           ? limits_.max_request_line
                           : limits_.max_header_bytes - header_bytes_;
    if (buffer_.size() + take > cap) {
      return Fail(state_ == State::kRequestLine ? 414 : 431,
                  Status::InvalidArgument(state_ == State::kRequestLine
                                              ? "request line too long"
                                              : "headers too large"));
    }
    buffer_.append(data.substr(consumed, take));
    consumed += take;
    if (nl == std::string_view::npos) break;  // need more bytes

    std::string_view line = buffer_;
    line.remove_suffix(1);  // '\n'
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    if (state_ == State::kRequestLine) {
      // RFC 7230 permits (and robust servers tolerate) empty lines before
      // the request line.
      if (line.empty()) {
        buffer_.clear();
        continue;
      }
      GANSWER_RETURN_NOT_OK(ParseRequestLine(line));
      state_ = State::kHeaders;
    } else {  // kHeaders
      header_bytes_ += buffer_.size();
      if (line.empty()) {
        GANSWER_RETURN_NOT_OK(FinishHeaders());
        state_ = body_expected_ > 0 ? State::kBody : State::kDone;
      } else {
        GANSWER_RETURN_NOT_OK(ParseHeaderLine(line));
      }
    }
    buffer_.clear();
  }
  return consumed;
}

Status HttpParser::ParseRequestLine(std::string_view line) {
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Fail(400, Status::InvalidArgument("bad request line"));
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (!IsToken(method)) {
    return Fail(400, Status::InvalidArgument("bad method"));
  }
  if (target.empty() || target[0] != '/') {
    // Absolute-form targets (proxies) and '*' are out of scope.
    return Fail(400, Status::InvalidArgument("bad target"));
  }
  for (unsigned char c : target) {
    if (c <= 0x20 || c == 0x7f) {
      return Fail(400, Status::InvalidArgument("bad target"));
    }
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
    request_.keep_alive = true;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
    request_.keep_alive = false;
  } else {
    return Fail(505, Status::NotSupported("bad http version"));
  }
  request_.method.assign(method);
  request_.target.assign(target);
  size_t q = target.find('?');
  request_.path.assign(target.substr(0, q));
  if (q != std::string_view::npos) {
    request_.query.assign(target.substr(q + 1));
  }
  return Status::Ok();
}

Status HttpParser::ParseHeaderLine(std::string_view line) {
  if (request_.headers.size() >= limits_.max_headers) {
    return Fail(431, Status::InvalidArgument("too many headers"));
  }
  // Obsolete line folding (leading whitespace continuing the previous
  // header) is rejected outright per RFC 7230 §3.2.4.
  if (line.front() == ' ' || line.front() == '\t') {
    return Fail(400, Status::InvalidArgument("folded header"));
  }
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return Fail(400, Status::InvalidArgument("bad header"));
  }
  std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    return Fail(400, Status::InvalidArgument("bad header name"));
  }
  std::string_view value = TrimOws(line.substr(colon + 1));
  for (unsigned char c : value) {
    if ((c < 0x20 && c != '\t') || c == 0x7f) {
      return Fail(400, Status::InvalidArgument("bad header value"));
    }
  }
  request_.headers.emplace_back(std::string(name), std::string(value));
  return Status::Ok();
}

Status HttpParser::FinishHeaders() {
  if (const std::string* te = request_.Header("Transfer-Encoding")) {
    (void)te;
    return Fail(501, Status::NotSupported("chunked body"));
  }
  if (const std::string* cl = request_.Header("Content-Length")) {
    uint64_t value = 0;
    const char* begin = cl->data();
    const char* end = begin + cl->size();
    auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end || cl->empty()) {
      return Fail(400, Status::InvalidArgument("bad content-length"));
    }
    if (value > limits_.max_body_bytes) {
      return Fail(413, Status::InvalidArgument("body too large"));
    }
    body_expected_ = static_cast<size_t>(value);
    // Reserving up front is safe: the value is already capped, and it turns
    // the body state into pure bulk appends.
    request_.body.reserve(body_expected_);
  }
  if (const std::string* conn = request_.Header("Connection")) {
    if (EqualsIgnoreCase(*conn, "close")) {
      request_.keep_alive = false;
    } else if (EqualsIgnoreCase(*conn, "keep-alive")) {
      request_.keep_alive = true;
    }
  }
  return Status::Ok();
}

}  // namespace server
}  // namespace ganswer
