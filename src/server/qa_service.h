#ifndef GANSWER_SERVER_QA_SERVICE_H_
#define GANSWER_SERVER_QA_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/latency_histogram.h"
#include "common/status.h"
#include "common/striped_counter.h"
#include "common/thread_pool.h"
#include "nlp/lexicon.h"
#include "qa/ganswer.h"
#include "rdf/sparql_engine.h"
#include "server/http_server.h"
#include "server/shard_client.h"
#include "store/live/live_kb.h"
#include "store/snapshot.h"

namespace ganswer {
namespace server {

/// \brief The online serving tier: snapshot-backed question answering over
/// HTTP with bounded admission.
///
/// Startup loads one `store/snapshot` file (zero rebuilds — the PR 2
/// cold-start story) and wires the prebuilt indexes into a `qa::GAnswer`
/// with the question cache on, plus a raw `rdf::SparqlEngine` over the same
/// graph. Requests arrive on the event-loop thread and pass three
/// admission stages, cheapest first:
///
///   1. **Cached fast path** (on by default): the question cache is probed
///      on the event-loop thread, and a hit is serialized and answered
///      inline — it never enters the worker queue, so hot Zipf-head
///      questions stop queueing behind cold-tail matcher work. Byte-wise
///      the response is identical to the worker-pool path for the same
///      cache entry; the `X-No-Fast-Path` request header forces the worker
///      path (the byte-identity tests use it).
///   2. **Bounded queue**: at most `max_queue` requests queued-or-running
///      at once; the overflow request is answered `503` immediately — the
///      load-shedding backstop against unbounded queueing, where every
///      client's latency collapses together.
///   3. **Deadline shedding at dequeue**: every admitted request carries
///      its arrival timestamp and a latency budget (`deadline_ms`, or the
///      `X-Deadline-Ms` request header per request). A worker picking up a
///      request whose budget is already spent answers `503` +
///      `Retry-After` without running the matcher — under overload the
///      workers stop burning time computing answers nobody is waiting for,
///      which is what actually bounds latency for the requests that are
///      admitted.
///
/// Cheap introspection endpoints answer directly on the loop thread.
///
/// Endpoints:
///   POST /answer   {"question": "..."}  (or a text/plain body)
///                  -> ranked answers with scores, the lowered SPARQL
///                     queries, stage timings, cache_hit
///   POST /sparql   {"query": "..."}     (or a text/plain body)
///                  -> variable bindings from the SparqlEngine
///   POST /update   N-Triples body, `-`-prefixed lines delete (live mode
///                  only) -> the committed epoch and batch counters
///   GET  /healthz  liveness + snapshot identity (+ epoch in live mode)
///   GET  /stats    question-cache hit/miss/eviction counters, admission
///                  queue depth, shed counters split queue_full vs
///                  deadline_expired, fast-path hits, queue-wait
///                  percentiles, per-endpoint request/error counters and
///                  latency percentiles (p50/p95/p99/p99.9); ingest
///                  counters in live mode
///
/// Live mode (Options::live_dir non-empty): the service serves a
/// store::live::LiveKb instead of a frozen snapshot. Every request pins the
/// current epoch's KbView at arrival (one wait-free atomic load) and uses
/// that view — its QA system, graph and SPARQL engine — for its whole
/// lifetime, so a commit or compaction mid-request never changes what the
/// request observes. POST /update commits batches through the same bounded
/// admission queue as the query endpoints.
///
/// Shutdown() drains: the listen socket closes first, dispatched requests
/// run to completion and their responses flush, then the loop stops — the
/// SIGTERM path of `qa_httpd`.
class QaService {
 public:
  struct Options {
    /// Snapshot container written by store::WriteSnapshotFile (or the
    /// `snapshot_server build` / `qa_httpd` tooling). In live mode this is
    /// the bootstrap base snapshot (used only on the first open of
    /// live_dir; ignored on reopen).
    std::string snapshot_path;
    /// Live mode: serve a live store at this directory (manifest, WAL,
    /// compacted snapshots) instead of a frozen snapshot, and accept
    /// streaming updates on POST /update. Incompatible with
    /// shard_endpoints.
    std::string live_dir;
    /// Accumulated delta size (adds + deletes) that arms background
    /// compaction in live mode; 0 = never compact automatically.
    size_t live_compact_threshold = 0;
    /// Admission bound for POST /update: max operations per batch.
    size_t update_max_triples = 100000;
    /// Map the snapshot instead of reading it: raw sections are served
    /// zero-copy out of the file mapping, so startup skips the bulk copy
    /// and resident memory only grows with the pages queries touch.
    /// Compressed sections still decode onto the heap.
    bool mmap_load = false;
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port (tests); read back via port().
    int port = 8080;
    /// Worker threads answering questions; 0 = CPUs available to the
    /// process (cpuset-aware, common/topology.h).
    int threads = 0;
    /// Pin worker i to the i-th available CPU (best-effort; no-op under
    /// GANSWER_NO_AFFINITY=1 or when the scheduler refuses). Keeps a
    /// worker's cache-hot state — counter stripes, matcher scratch — on
    /// one core under sustained load.
    bool pin_workers = false;
    /// Admission bound: max requests queued-or-running in the worker tier.
    /// Overflow is answered 503 without queueing.
    int max_queue = 64;
    /// Default latency budget in milliseconds for the POST endpoints;
    /// <= 0 disables deadline shedding (the pure queue-length baseline).
    /// A request still queued when its budget expires is shed with 503 +
    /// Retry-After at dequeue, before any matcher work runs. The
    /// X-Deadline-Ms request header overrides this per request (clamped
    /// to [1, 3600000]; malformed values fall back to this default).
    int deadline_ms = 0;
    /// Serve question-cache hits inline on the event-loop thread,
    /// bypassing the admission queue (see class comment). Off reproduces
    /// the PR 4 behavior where every request rides the worker pool.
    bool cached_fast_path = true;
    size_t question_cache_capacity = 4096;
    /// How many lowered top-k SPARQL queries /answer includes.
    size_t sparql_top_k = 3;
    int idle_timeout_ms = 30'000;
    int drain_timeout_ms = 10'000;
    /// Test/bench instrumentation: runs on the worker thread before the
    /// request is answered (e.g. a latch that holds workers busy so
    /// admission overflow and shutdown drain become deterministic).
    std::function<void()> worker_hook;
    /// Sharded serving: when non-empty, /answer matching scatters to these
    /// shard workers (server/shard_worker.h, one per endpoint) and merges
    /// per-shard top-k — the router keeps the full snapshot and falls back
    /// to local matching whenever a query is not scatter-safe or every
    /// shard fails, so answers stay exact (see server/shard_client.h).
    /// Empty (the default) serves everything locally.
    std::vector<ShardClient::Endpoint> shard_endpoints;
    /// Halo radius the shard snapshots were built with (from the shard
    /// manifest); gates which queries may scatter.
    uint32_t shard_halo_hops = 0;
    /// End-to-end deadline per scatter, and per-shard resends after a
    /// failure within that deadline.
    int shard_timeout_ms = 2000;
    int shard_retries = 1;
  };

  /// Cumulative per-endpoint counters, readable while serving.
  struct EndpointStats {
    uint64_t requests = 0;
    uint64_t errors = 0;  ///< Responses with status >= 400.
    double total_ms = 0;  ///< Sum of handler latencies.
    double max_ms = 0;
  };

  explicit QaService(Options options);
  ~QaService();

  QaService(const QaService&) = delete;
  QaService& operator=(const QaService&) = delete;

  /// Loads the snapshot, builds the QA system and starts serving.
  Status Start();

  /// Graceful stop: stop accepting, drain in-flight work, flush responses,
  /// join everything. Idempotent, callable from any non-handler thread
  /// (the qa_httpd SIGTERM path).
  void Shutdown();

  int port() const { return http_ ? http_->port() : 0; }
  /// Current admission queue depth (queued + running).
  int queue_depth() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  /// All shed requests: queue-full plus deadline-expired.
  uint64_t rejected_total() const {
    return shed_queue_full() + shed_deadline_expired();
  }
  uint64_t shed_queue_full() const { return shed_queue_full_.Value(); }
  uint64_t shed_deadline_expired() const { return shed_deadline_.Value(); }
  /// Cache hits answered inline on the event-loop thread.
  uint64_t fast_path_hits() const { return fast_path_hits_.Value(); }
  EndpointStats answer_stats() const;
  EndpointStats sparql_stats() const;
  EndpointStats update_stats() const;
  /// Copies of the per-endpoint latency histograms (measured from the
  /// request's arrival on the server, queue wait included).
  LatencyHistogram answer_latency() const;
  LatencyHistogram sparql_latency() const;
  /// Time admitted requests spent queued before a worker picked them up.
  LatencyHistogram queue_wait() const;

  /// Frozen mode only; null in live mode (use live()->view()->qa()).
  qa::GAnswer* system() { return system_.get(); }
  /// Frozen mode only; empty in live mode (use live()->view()->base()).
  const store::Snapshot& snapshot() const { return snapshot_; }
  /// Non-null only in live mode (Options::live_dir non-empty).
  store::live::LiveKb* live() { return live_.get(); }
  HttpServer* http_server() { return http_.get(); }
  /// Non-null only in sharded mode (Options::shard_endpoints non-empty).
  ShardClient* shard_client() { return shard_client_.get(); }
  /// /answer responses served with incomplete shard coverage.
  uint64_t partial_answers() const { return partial_answers_.Value(); }

 private:
  struct StatsCell {
    mutable std::mutex mu;
    EndpointStats stats;
    LatencyHistogram latency;
  };

  /// Live-mode Start(): opens (or bootstraps) the LiveKb at live_dir
  /// instead of loading a frozen snapshot, and registers POST /update.
  Status StartLive();
  /// The serving tail shared by both modes: worker pool, HTTP server,
  /// routes, listen.
  Status StartHttp();

  void RegisterRoutes();
  void HandleAnswer(const HttpRequest& request,
                    const HttpServer::ResponseWriter& writer);
  void HandleSparql(const HttpRequest& request,
                    const HttpServer::ResponseWriter& writer);
  void HandleUpdate(const HttpRequest& request,
                    const HttpServer::ResponseWriter& writer);
  void HandleHealthz(const HttpServer::ResponseWriter& writer);
  void HandleStats(const HttpServer::ResponseWriter& writer);

  /// The latency budget for \p request: the parsed X-Deadline-Ms header
  /// when present and valid, else Options::deadline_ms. <= 0 = none.
  int DeadlineFor(const HttpRequest& request) const;

  /// Admission control shared by the POST endpoints: returns false (and
  /// answers 503) when the queue is full, else dispatches \p work to the
  /// pool. The worker re-checks the deadline at dequeue — an expired
  /// request is shed there, before \p work runs. Latencies are measured
  /// from \p admit_us (the request's arrival on the server).
  bool Admit(const HttpServer::ResponseWriter& writer, StatsCell* cell,
             int64_t admit_us, int deadline_ms,
             std::function<HttpResponse()> work);

  static void Record(StatsCell* cell, double ms, int status);

  std::string AnswerToJson(std::string_view question,
                           const qa::GAnswer::Response& response,
                           bool cache_hit, const rdf::RdfGraph& graph) const;
  std::string SparqlResultToJson(const rdf::SparqlResult& result,
                                 const rdf::RdfGraph& graph) const;

  Options options_;
  nlp::Lexicon lexicon_;
  store::Snapshot snapshot_;
  std::unique_ptr<qa::GAnswer> system_;
  std::unique_ptr<rdf::SparqlEngine> engine_;
  std::unique_ptr<store::live::LiveKb> live_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<HttpServer> http_;
  std::unique_ptr<ShardClient> shard_client_;
  StripedCounter partial_answers_;

  /// Admission gate, not a statistic: Admit() compares the fetch_add
  /// result against max_queue, so this must stay one shared atomic.
  std::atomic<int> admitted_{0};
  // Pure event counters on the request path: striped per core.
  StripedCounter shed_queue_full_;
  StripedCounter shed_deadline_;
  StripedCounter fast_path_hits_;
  StatsCell answer_stats_;
  StatsCell sparql_stats_;
  StatsCell update_stats_;
  struct {
    mutable std::mutex mu;
    LatencyHistogram hist;
  } queue_wait_;
  int64_t start_ms_ = 0;
  bool started_ = false;
  std::atomic<bool> shut_down_{false};
};

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_QA_SERVICE_H_
