#ifndef GANSWER_SERVER_EVENT_LOOP_H_
#define GANSWER_SERVER_EVENT_LOOP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ganswer {
namespace server {

/// \brief Single-threaded epoll event loop with a hashed timer wheel.
///
/// All I/O callbacks and timers run on the loop thread (the thread that
/// called Run()), so connection state needs no locking. The only
/// thread-safe entry points are Post() — hand a closure to the loop thread,
/// waking it through an eventfd — and Stop(), which is Post(stop). This is
/// the standard shared-nothing reactor shape (one epoll, non-blocking fds,
/// level-triggered readiness); CPU-heavy work never runs here, it is
/// dispatched to the worker pool and re-enters via Post().
///
/// The timer wheel drives idle-connection timeouts: 256 slots of 50 ms give
/// ~12.8 s per revolution, entries carry a remaining-rounds count so longer
/// timeouts wrap. Precision is one tick — exactly right for "close after
/// ~30 s idle", not for microsecond timers.
class EventLoop {
 public:
  /// Bitmask for Add/Modify; mapped onto EPOLLIN/EPOLLOUT internally.
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;

  /// \p events carries the kReadable/kWritable bits that fired; error/hangup
  /// conditions are reported as kReadable so the handler's read() observes
  /// the EOF/error and cleans up.
  using IoCallback = std::function<void(uint32_t events)>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll and wakeup descriptors. Must be called (and succeed)
  /// before any other method.
  Status Init();

  /// Registers \p fd (must already be non-blocking) for \p events.
  Status Add(int fd, uint32_t events, IoCallback callback);
  /// Changes the interest set of a registered fd.
  Status Modify(int fd, uint32_t events);
  /// Deregisters \p fd. The caller closes the fd itself. Safe to call for
  /// fds that were never added.
  void Remove(int fd);

  /// Enqueues \p fn to run on the loop thread. Thread-safe; callable before
  /// Run() (the closure runs once the loop starts) and from within
  /// callbacks (runs this iteration, after I/O dispatch).
  void Post(std::function<void()> fn);

  /// Runs \p callback on the loop thread after roughly \p delay_ms
  /// (rounded up to a wheel tick). One-shot. Must be called on the loop
  /// thread (handlers/Post closures); use Post to arm timers from outside.
  TimerId ScheduleAfter(int64_t delay_ms, std::function<void()> callback);
  /// Cancels a scheduled timer; a no-op when already fired. Loop thread
  /// only.
  void CancelTimer(TimerId id);

  /// Dispatches events until Stop(). The calling thread becomes the loop
  /// thread.
  void Run();
  /// Makes Run() return after the current iteration. Thread-safe.
  void Stop();

  /// True when called from the thread currently inside Run().
  bool InLoopThread() const;

  /// Milliseconds on the steady clock, refreshed once per loop iteration
  /// (cheap timestamp for idle bookkeeping).
  int64_t NowMs() const { return now_ms_; }

 private:
  struct TimerEntry {
    TimerId id = 0;
    /// Remaining full wheel revolutions before the entry fires.
    uint32_t rounds = 0;
    std::function<void()> callback;
  };

  static constexpr int kTickMs = 50;
  static constexpr size_t kWheelSlots = 256;

  void Wake();
  void DrainWakeup();
  void RunPosted();
  void AdvanceWheel();
  static int64_t SteadyNowMs();

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::unordered_map<int, IoCallback> io_callbacks_;

  std::mutex post_mu_;
  std::deque<std::function<void()>> posted_;
  bool stop_ = false;  ///< Guarded by post_mu_.

  // Timer wheel state: loop thread only.
  std::vector<std::vector<TimerEntry>> wheel_{kWheelSlots};
  std::unordered_map<TimerId, size_t> timer_slot_;
  size_t wheel_pos_ = 0;
  int64_t last_tick_ms_ = 0;
  TimerId next_timer_id_ = 1;
  size_t live_timers_ = 0;

  int64_t now_ms_ = 0;
  std::thread::id loop_thread_;
};

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_EVENT_LOOP_H_
