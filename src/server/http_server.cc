#include "server/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace ganswer {
namespace server {

namespace {

/// Hard cap on bytes buffered for a connection that keeps sending while a
/// response is pending; beyond it the client is misbehaving and is closed.
constexpr size_t kMaxBufferedInput = 256 * 1024;

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::Ok();
}

std::string RouteKey(std::string_view method, std::string_view path) {
  std::string key;
  key.reserve(method.size() + 1 + path.size());
  key.append(method);
  key.push_back(' ');
  key.append(path);
  return key;
}

}  // namespace

const char* StatusReason(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

void HttpServer::ResponseWriter::Send(HttpResponse response) const {
  if (server_ == nullptr) return;
  HttpServer* server = server_;
  uint64_t conn_id = conn_id_;
  if (server->loop_.InLoopThread()) {
    server->SendOnLoop(conn_id, std::move(response));
    return;
  }
  server->loop_.Post(
      [server, conn_id, response = std::move(response)]() mutable {
        server->SendOnLoop(conn_id, std::move(response));
      });
}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Route(std::string_view method, std::string_view path,
                       Handler handler) {
  routes_[RouteKey(method, path)] = std::move(handler);
}

Status HttpServer::Start() {
  GANSWER_RETURN_NOT_OK(loop_.Init());

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  GANSWER_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  GANSWER_RETURN_NOT_OK(
      loop_.Add(listen_fd_, EventLoop::kReadable,
                [this](uint32_t) { AcceptReady(); }));

  loop_thread_ = std::thread([this] {
    if (options_.idle_timeout_ms > 0) ScheduleIdleSweep();
    loop_.Run();
  });
  started_ = true;
  GANSWER_LOG(Info) << "http server listening on " << options_.bind_address
                    << ":" << port_;
  return Status::Ok();
}

void HttpServer::Shutdown() {
  if (!started_ || shut_down_.exchange(true)) {
    // Never started: nothing to join; or a previous Shutdown already ran.
    if (!started_ && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  loop_.Post([this] {
    draining_ = true;
    if (listen_fd_ >= 0) {
      loop_.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    // Connections with nothing in flight can go now; the rest finish their
    // response first (MaybeFinishDrain watches them).
    std::vector<uint64_t> closable;
    for (const auto& [id, conn] : connections_) {
      if (!conn->pending_response && conn->outbuf.size() == conn->out_offset) {
        closable.push_back(id);
      }
    }
    for (uint64_t id : closable) CloseConnection(id);
    loop_.ScheduleAfter(options_.drain_timeout_ms, [this] {
      if (!connections_.empty()) {
        GANSWER_LOG(Warn) << "drain timeout: closing "
                          << connections_.size() << " connection(s)";
        std::vector<uint64_t> ids;
        for (const auto& [id, conn] : connections_) ids.push_back(id);
        for (uint64_t id : ids) CloseConnection(id);
      }
      loop_.Stop();
    });
    MaybeFinishDrain();
  });
  loop_thread_.join();
  FlushLogs();
}

void HttpServer::MaybeFinishDrain() {
  if (!draining_) return;
  if (connections_.empty()) loop_.Stop();
}

void HttpServer::AcceptReady() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      GANSWER_LOG(Warn) << "accept: " << std::strerror(errno);
      return;
    }
    if (connections_.size() >= options_.max_connections || draining_) {
      ::close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->parser = HttpParser(options_.limits);
    conn->last_activity_ms = loop_.NowMs();
    uint64_t id = conn->id;
    Status st = loop_.Add(fd, EventLoop::kReadable, [this, id](uint32_t ev) {
      ConnectionReady(id, ev);
    });
    if (!st.ok()) {
      ::close(fd);
      continue;
    }
    connections_[id] = std::move(conn);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.store(connections_.size(), std::memory_order_relaxed);
  }
}

void HttpServer::ConnectionReady(uint64_t conn_id, uint32_t events) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();

  if (events & EventLoop::kWritable) {
    conn->last_activity_ms = loop_.NowMs();
    FlushOutput(conn);
    // FlushOutput may close; re-find before reading.
    it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    conn = it->second.get();
  }

  if (events & EventLoop::kReadable) {
    char buf[16 * 1024];
    while (true) {
      ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->last_activity_ms = loop_.NowMs();
        conn->inbuf.append(buf, static_cast<size_t>(n));
        if (conn->inbuf.size() > kMaxBufferedInput) {
          CloseConnection(conn_id);
          return;
        }
        continue;
      }
      if (n == 0) {  // peer closed
        if (!conn->pending_response) CloseConnection(conn_id);
        // With a response pending, keep the fd so the answer can still be
        // written (the write will fail fast if the peer is fully gone).
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn_id);
      return;
    }
    ProcessInput(conn);
  }
}

void HttpServer::ProcessInput(Connection* conn) {
  if (conn->in_process_input) return;
  conn->in_process_input = true;
  const uint64_t conn_id = conn->id;
  // One request in flight per connection: further pipelined bytes wait in
  // inbuf until the response is sent.
  while (!conn->pending_response && !conn->close_after_write &&
         !conn->inbuf.empty()) {
    auto consumed = conn->parser.Feed(conn->inbuf);
    if (!consumed.ok()) {
      HttpResponse error;
      error.status = conn->parser.suggested_status();
      error.body = std::string("{\"error\":\"") +
                   StatusReason(error.status) + "\"}";
      conn->inbuf.clear();
      conn->pending_response = false;
      QueueResponse(conn, error, /*keep_alive=*/false);
      break;
    }
    conn->inbuf.erase(0, *consumed);
    if (!conn->parser.done()) break;  // need more bytes
    DispatchRequest(conn);
    // The handler (or an error response) may have closed the connection.
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    conn = it->second.get();
  }
  auto it = connections_.find(conn_id);
  if (it != connections_.end()) it->second->in_process_input = false;
}

void HttpServer::DispatchRequest(Connection* conn) {
  HttpRequest request = std::move(conn->parser.request());
  conn->parser.Reset();
  // Admission timestamp: latency budgets start counting here, before any
  // queueing, so time spent waiting for a worker is part of the budget.
  request.received_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  conn->keep_alive = request.keep_alive;
  conn->pending_response = true;
  requests_pending_.fetch_add(1, std::memory_order_relaxed);

  auto it = routes_.find(RouteKey(request.method, request.path));
  ResponseWriter writer(this, conn->id);
  if (it == routes_.end()) {
    writer.Send(HttpResponse::Json(404, "{\"error\":\"Not Found\"}"));
    return;
  }
  it->second(request, writer);
}

void HttpServer::SendOnLoop(uint64_t conn_id, HttpResponse response) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // connection died first
  Connection* conn = it->second.get();
  if (!conn->pending_response) return;  // double Send: drop
  conn->pending_response = false;
  requests_pending_.fetch_sub(1, std::memory_order_relaxed);
  bool keep = conn->keep_alive && !draining_;
  QueueResponse(conn, response, keep);
  // Pipelined follow-up request may already be buffered.
  it = connections_.find(conn_id);
  if (it != connections_.end()) ProcessInput(it->second.get());
}

void HttpServer::QueueResponse(Connection* conn, const HttpResponse& response,
                               bool keep_alive) {
  conn->close_after_write = !keep_alive;
  std::string& out = conn->outbuf;
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  FlushOutput(conn);
}

void HttpServer::FlushOutput(Connection* conn) {
  uint64_t conn_id = conn->id;
  while (conn->out_offset < conn->outbuf.size()) {
    ssize_t n = ::write(conn->fd, conn->outbuf.data() + conn->out_offset,
                        conn->outbuf.size() - conn->out_offset);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->writable_armed) {
        conn->writable_armed = true;
        loop_.Modify(conn->fd, EventLoop::kReadable | EventLoop::kWritable);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
  // Fully flushed.
  conn->outbuf.clear();
  conn->out_offset = 0;
  if (conn->writable_armed) {
    conn->writable_armed = false;
    loop_.Modify(conn->fd, EventLoop::kReadable);
  }
  if (conn->close_after_write) {
    CloseConnection(conn_id);
    return;
  }
  MaybeFinishDrain();
}

void HttpServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  if (conn->pending_response) {
    requests_pending_.fetch_sub(1, std::memory_order_relaxed);
  }
  loop_.Remove(conn->fd);
  ::close(conn->fd);
  connections_.erase(it);
  connections_open_.store(connections_.size(), std::memory_order_relaxed);
  MaybeFinishDrain();
}

void HttpServer::ScheduleIdleSweep() {
  int interval = std::max(options_.idle_timeout_ms / 4, 50);
  loop_.ScheduleAfter(interval, [this] {
    int64_t now = loop_.NowMs();
    std::vector<uint64_t> idle;
    for (const auto& [id, conn] : connections_) {
      if (conn->pending_response) continue;  // a worker owes a response
      if (now - conn->last_activity_ms >= options_.idle_timeout_ms) {
        idle.push_back(id);
      }
    }
    for (uint64_t id : idle) CloseConnection(id);
    if (!draining_) ScheduleIdleSweep();
  });
}

}  // namespace server
}  // namespace ganswer
