#ifndef GANSWER_SERVER_SHARD_RPC_H_
#define GANSWER_SERVER_SHARD_RPC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "match/query_graph.h"
#include "rdf/sparql.h"

namespace ganswer {
namespace server {

/// \brief The compact binary RPC the router speaks to shard workers:
/// length-prefixed `common/binary_io` frames over a plain TCP stream.
///
/// Wire format of one frame:
///
///   u32  magic      'GSRP' (0x50525347 little-endian on the wire)
///   u32  length     payload bytes that follow (bounded by kMaxFrameBytes)
///   u32  crc        CRC-32 of the payload
///   ...  payload
///
/// Payloads start with `u64 request_id` + `u8 type`; responses add
/// `u8 status`. The codec is strictly bounds-checked — every decode path
/// returns Status::Corruption on truncated, oversized or internally
/// inconsistent bytes, never crashes (the shard_rpc fuzz driver and its
/// corpus pin this). Both sides tolerate partial reads: FrameBuffer
/// reassembles frames from arbitrary stream chunks.
///
/// Requests:
///   kPing    empty body; answers shard identity + sizes.
///   kMatch   top-k candidate matching: k + a serialized QueryGraph
///            (candidate confidences travel with it, so scores are
///            shard-independent); answers the shard-local top-k Match list.
///   kSparql  lowered-SPARQL evaluation: query text; answers the var
///            names + TermId rows of the shard-local result (ids are
///            global, the router maps them to text). Per-shard results
///            have union semantics — the router dedupes.
inline constexpr uint32_t kShardRpcMagic = 0x50525347;  // "GSRP"
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class ShardRpcType : uint8_t {
  kPing = 1,
  kMatch = 2,
  kSparql = 3,
};

enum class ShardRpcStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kInternal = 2,
};

/// Decoder caps: a hostile frame cannot demand giant allocations. Real
/// query graphs are a handful of vertices (one per question phrase).
inline constexpr uint64_t kMaxQueryVertices = 64;
inline constexpr uint64_t kMaxQueryEdges = 256;
inline constexpr uint64_t kMaxCandidatesPerItem = 1u << 16;
inline constexpr uint64_t kMaxPathSteps = 32;
inline constexpr uint64_t kMaxMatches = 1u << 20;
inline constexpr uint64_t kMaxSparqlVars = 64;
inline constexpr uint64_t kMaxSparqlRows = 1u << 20;

struct ShardRequest {
  uint64_t request_id = 0;
  ShardRpcType type = ShardRpcType::kPing;
  /// kMatch:
  uint64_t k = 0;
  match::QueryGraph query;
  /// kSparql:
  std::string sparql_text;
};

struct ShardPingInfo {
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;
  uint32_t halo_hops = 0;
  uint64_t fingerprint = 0;
  uint64_t total_triples = 0;
};

struct ShardResponse {
  uint64_t request_id = 0;
  ShardRpcType type = ShardRpcType::kPing;
  ShardRpcStatus status = ShardRpcStatus::kOk;
  std::string error;  ///< Human-readable detail when status != kOk.
  /// kPing:
  ShardPingInfo ping;
  /// kMatch:
  std::vector<match::Match> matches;
  /// kSparql:
  rdf::SparqlResult sparql;
};

/// Wraps an encoded payload into one wire frame (header + CRC + payload).
std::string EncodeFrame(std::string_view payload);

/// Incremental frame reassembly over a byte stream. Append() buffers
/// arbitrary chunks; Next() yields one complete payload at a time.
class FrameBuffer {
 public:
  /// Appends raw stream bytes.
  void Append(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame payload into \p payload. Returns
  /// true when a frame was extracted, false when more bytes are needed.
  /// A malformed header or CRC mismatch fails with Status::Corruption —
  /// the connection is then unusable (framing is lost) and must be closed.
  StatusOr<bool> Next(std::string* payload);

  size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

std::string EncodeRequest(const ShardRequest& request);
StatusOr<ShardRequest> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const ShardResponse& response);
StatusOr<ShardResponse> DecodeResponse(std::string_view payload);

/// QueryGraph over the wire; exposed for the fuzz driver.
void EncodeQueryGraph(const match::QueryGraph& query, BinaryWriter* w);
Status DecodeQueryGraph(BinaryReader* r, match::QueryGraph* out);

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_SHARD_RPC_H_
