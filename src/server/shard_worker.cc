#include "server/shard_worker.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "match/top_k_matcher.h"

namespace ganswer {
namespace server {

namespace {

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

ShardWorker::ShardWorker(Options options) : options_(std::move(options)) {}

ShardWorker::~ShardWorker() { Shutdown(); }

Status ShardWorker::Start() {
  auto snapshot = store::ReadSnapshotFile(
      options_.snapshot_path, &lexicon_,
      options_.mmap_load ? store::SnapshotLoadMode::kMmap
                         : store::SnapshotLoadMode::kRead);
  if (!snapshot.ok()) return snapshot.status();
  snapshot_ = std::move(snapshot).value();
  rdf::SparqlEngine::Options engine_options;
  engine_options.stats = snapshot_.stats.get();
  engine_ = std::make_unique<rdf::SparqlEngine>(*snapshot_.graph,
                                                engine_options);
  pool_ = std::make_unique<ThreadPool>(options_.threads);
  fault_rng_ = std::make_unique<Rng>(options_.fault.seed);

  GANSWER_RETURN_NOT_OK(loop_.Init());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::IoError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::IoError(std::string("listen: ") + std::strerror(errno));
  }
  GANSWER_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  GANSWER_RETURN_NOT_OK(loop_.Add(listen_fd_, EventLoop::kReadable,
                                  [this](uint32_t) { AcceptReady(); }));
  loop_thread_ = std::thread([this] { loop_.Run(); });
  started_ = true;
  GANSWER_LOG(Info) << "shard worker " << options_.shard_id << "/"
                    << options_.num_shards << " serving "
                    << snapshot_.graph->NumTriples() << " triples on "
                    << options_.bind_address << ":" << port_;
  return Status::Ok();
}

void ShardWorker::Shutdown() {
  if (!started_ || shut_down_.exchange(true)) {
    if (!started_ && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (loop_thread_.joinable()) loop_thread_.join();
    return;
  }
  // Stop accepting, then drain the pool while the loop is still alive so
  // in-flight evaluations can Post their (now pointless) responses safely,
  // then tear the loop down.
  loop_.Post([this] {
    if (listen_fd_ >= 0) {
      loop_.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });
  pool_.reset();
  loop_.Post([this] {
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (uint64_t id : ids) CloseConnection(id);
    loop_.Stop();
  });
  loop_thread_.join();
  FlushLogs();
}

void ShardWorker::AcceptReady() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      GANSWER_LOG(Warn) << "shard accept: " << std::strerror(errno);
      return;
    }
    if (connections_.size() >= options_.max_connections ||
        !SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    uint64_t id = conn->id;
    Status st = loop_.Add(fd, EventLoop::kReadable, [this, id](uint32_t ev) {
      ConnectionReady(id, ev);
    });
    if (!st.ok()) {
      ::close(fd);
      continue;
    }
    connections_[id] = std::move(conn);
  }
}

void ShardWorker::ConnectionReady(uint64_t conn_id, uint32_t events) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();

  if (events & EventLoop::kWritable) {
    FlushOutput(conn);
    it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    conn = it->second.get();
  }

  if (events & EventLoop::kReadable) {
    char buf[16 * 1024];
    while (true) {
      ssize_t n = ::read(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->frames.Append(std::string_view(buf, static_cast<size_t>(n)));
        continue;
      }
      if (n == 0) {
        // Peer finished sending. Keep the fd while responses are pending
        // (the router half-closes only on its own teardown).
        conn->peer_closed = true;
        if (conn->in_flight == 0 && conn->out_offset == conn->outbuf.size()) {
          CloseConnection(conn_id);
        }
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnection(conn_id);
      return;
    }
    ProcessFrames(conn);
  }
}

void ShardWorker::ProcessFrames(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (true) {
    std::string payload;
    auto next = conn->frames.Next(&payload);
    if (!next.ok()) {
      // Framing lost (bad magic / CRC / oversized): the stream cannot be
      // re-synchronized, close. The decode layer guarantees this is the
      // worst a hostile peer can do.
      GANSWER_LOG(Warn) << "shard rpc: " << next.status().ToString();
      CloseConnection(conn_id);
      return;
    }
    if (!*next) return;
    ++conn->in_flight;
    Dispatch(conn_id, std::move(payload));
    // Dispatch never touches connections_ synchronously (pool + Post), so
    // conn stays valid across iterations.
  }
}

void ShardWorker::Dispatch(uint64_t conn_id, std::string payload) {
  pool_->Submit([this, conn_id, payload = std::move(payload)] {
    ShardResponse response;
    auto request = DecodeRequest(payload);
    if (request.ok()) {
      response = Evaluate(*request);
    } else {
      // The frame was intact (CRC passed) but the payload is malformed:
      // answer an error so the router can count it without losing the
      // connection.
      response.status = ShardRpcStatus::kInvalidArgument;
      response.error = request.status().ToString();
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn_id, EncodeFrame(EncodeResponse(response)));
  });
}

ShardResponse ShardWorker::Evaluate(const ShardRequest& request) const {
  ShardResponse response;
  response.request_id = request.request_id;
  response.type = request.type;
  switch (request.type) {
    case ShardRpcType::kPing: {
      response.ping.shard_id = options_.shard_id;
      response.ping.num_shards = options_.num_shards;
      response.ping.halo_hops = options_.halo_hops;
      response.ping.fingerprint = snapshot_.fingerprint;
      response.ping.total_triples = snapshot_.graph->NumTriples();
      break;
    }
    case ShardRpcType::kMatch: {
      match::TopKMatcher::Options matching;
      matching.k = request.k;
      matching.signatures = snapshot_.signatures.get();
      matching.stats = snapshot_.stats.get();
      matching.exec.threads = 1;
      match::TopKMatcher matcher(snapshot_.graph.get(), matching);
      auto matches = matcher.FindTopK(request.query);
      if (!matches.ok()) {
        response.status =
            matches.status().IsInvalidArgument()
                ? ShardRpcStatus::kInvalidArgument
                : ShardRpcStatus::kInternal;
        response.error = matches.status().ToString();
        break;
      }
      response.matches = std::move(matches).value();
      break;
    }
    case ShardRpcType::kSparql: {
      auto result = engine_->ExecuteText(request.sparql_text);
      if (!result.ok()) {
        response.status = ShardRpcStatus::kInvalidArgument;
        response.error = result.status().ToString();
        break;
      }
      response.sparql = std::move(result).value();
      break;
    }
  }
  return response;
}

void ShardWorker::QueueResponse(uint64_t conn_id, std::string frame) {
  loop_.Post([this, conn_id, frame = std::move(frame)]() mutable {
    auto it = connections_.find(conn_id);
    if (it == connections_.end()) return;
    Connection* conn = it->second.get();
    if (conn->in_flight > 0) --conn->in_flight;

    const FaultInjection& fault = options_.fault;
    if (fault.drop_fraction > 0 && fault_rng_->Chance(fault.drop_fraction)) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      // Swallow the response: the router sees silence and times out.
      if (conn->peer_closed && conn->in_flight == 0 &&
          conn->out_offset == conn->outbuf.size()) {
        CloseConnection(conn_id);
      }
      return;
    }
    if (fault.delay_fraction > 0 && fault_rng_->Chance(fault.delay_fraction)) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      loop_.ScheduleAfter(fault.delay_ms,
                          [this, conn_id, frame = std::move(frame)]() mutable {
                            auto late = connections_.find(conn_id);
                            if (late == connections_.end()) return;
                            late->second->outbuf += frame;
                            FlushOutput(late->second.get());
                          });
      return;
    }
    if (fault.truncate_fraction > 0 &&
        fault_rng_->Chance(fault.truncate_fraction)) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      // Half a frame then a hard close: the router's frame buffer must
      // reject the stream, never block on it.
      conn->outbuf += frame.substr(0, frame.size() / 2);
      FlushOutput(conn);
      it = connections_.find(conn_id);
      if (it != connections_.end()) CloseConnection(conn_id);
      return;
    }
    conn->outbuf += frame;
    FlushOutput(conn);
  });
}

void ShardWorker::FlushOutput(Connection* conn) {
  const uint64_t conn_id = conn->id;
  while (conn->out_offset < conn->outbuf.size()) {
    // MSG_NOSIGNAL: a router that timed out and closed its end must cause
    // EPIPE here, not SIGPIPE process death.
    ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_offset,
                       conn->outbuf.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->writable_armed) {
        conn->writable_armed = true;
        loop_.Modify(conn->fd, EventLoop::kReadable | EventLoop::kWritable);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn_id);
    return;
  }
  conn->outbuf.clear();
  conn->out_offset = 0;
  if (conn->writable_armed) {
    conn->writable_armed = false;
    loop_.Modify(conn->fd, EventLoop::kReadable);
  }
  if (conn->peer_closed && conn->in_flight == 0) CloseConnection(conn_id);
}

void ShardWorker::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  loop_.Remove(it->second->fd);
  ::close(it->second->fd);
  connections_.erase(it);
}

}  // namespace server
}  // namespace ganswer
