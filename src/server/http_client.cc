#include "server/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

namespace ganswer {
namespace server {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const std::string* ClientResponse::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

BlockingHttpClient::~BlockingHttpClient() { Close(); }

void BlockingHttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  leftover_.clear();
}

Status BlockingHttpClient::Connect(const std::string& host, int port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Status st = Status::IoError(std::string("connect: ") +
                                std::strerror(errno));
    Close();
    return st;
  }
  return Status::Ok();
}

StatusOr<ClientResponse> BlockingHttpClient::Get(const std::string& path) {
  std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\n\r\n";
  return RoundTrip(request);
}

StatusOr<ClientResponse> BlockingHttpClient::Post(
    const std::string& path, const std::string& body,
    const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: " + host_ +
                        "\r\nContent-Type: " + content_type +
                        "\r\nContent-Length: " + std::to_string(body.size());
  for (const auto& [name, value] : extra_headers) {
    request += "\r\n" + name + ": " + value;
  }
  request += "\r\n\r\n" + body;
  return RoundTrip(request);
}

StatusOr<ClientResponse> BlockingHttpClient::Raw(const std::string& raw) {
  return RoundTrip(raw);
}

StatusOr<ClientResponse> BlockingHttpClient::RoundTrip(
    const std::string& request) {
  if (fd_ < 0) {
    GANSWER_RETURN_NOT_OK(Connect(host_, port_));
  }
  Status st = WriteAll(request);
  if (!st.ok()) {
    // The server may have closed the idle keep-alive connection between
    // round trips; one reconnect attempt covers that race.
    GANSWER_RETURN_NOT_OK(Connect(host_, port_));
    GANSWER_RETURN_NOT_OK(WriteAll(request));
  }
  auto response = ReadResponse();
  if (response.ok() && !response->keep_alive) Close();
  return response;
}

Status BlockingHttpClient::WriteAll(std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<ClientResponse> BlockingHttpClient::ReadResponse() {
  std::string data = std::move(leftover_);
  leftover_.clear();
  char buf[16 * 1024];

  // Read until the header block is complete.
  size_t header_end;
  while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IoError("connection closed mid-response");
    data.append(buf, static_cast<size_t>(n));
  }

  ClientResponse response;
  std::string_view head = std::string_view(data).substr(0, header_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  // "HTTP/1.1 200 OK"
  if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
    return Status::InvalidArgument("bad status line");
  }
  {
    std::string_view code = status_line.substr(9, 3);
    auto [ptr, ec] =
        std::from_chars(code.data(), code.data() + code.size(),
                        response.status);
    if (ec != std::errc()) return Status::InvalidArgument("bad status code");
  }
  response.keep_alive = status_line.substr(0, 9) == "HTTP/1.1 ";

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string_view name = line.substr(0, colon);
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    response.headers.emplace_back(std::string(name), std::string(value));
  }
  if (const std::string* conn = response.Header("Connection")) {
    response.keep_alive = !EqualsIgnoreCase(*conn, "close");
  }

  size_t body_len = 0;
  if (const std::string* cl = response.Header("Content-Length")) {
    auto [ptr, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), body_len);
    if (ec != std::errc()) return Status::InvalidArgument("bad content-length");
  }

  size_t body_start = header_end + 4;
  while (data.size() - body_start < body_len) {
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IoError("connection closed mid-body");
    data.append(buf, static_cast<size_t>(n));
  }
  response.body = data.substr(body_start, body_len);
  leftover_ = data.substr(body_start + body_len);
  return response;
}

}  // namespace server
}  // namespace ganswer
