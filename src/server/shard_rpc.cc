#include "server/shard_rpc.h"

#include <cstring>
#include <limits>

namespace ganswer {
namespace server {

namespace {

constexpr size_t kFrameHeaderBytes = 3 * sizeof(uint32_t);

/// Doubles survive the wire bit-exactly (same IEEE-754 little-endian
/// layout both sides — the snapshot container already relies on this), so
/// candidate confidences and match scores round-trip without drift and the
/// sharded-vs-single oracle can demand byte-equal scores.
Status ReadCount(BinaryReader* r, uint64_t cap, const char* what,
                 uint64_t* out) {
  GANSWER_RETURN_NOT_OK(r->ReadVarint(out));
  if (*out > cap) {
    return Status::Corruption(std::string("shard rpc: ") + what +
                              " count exceeds cap");
  }
  return Status::Ok();
}

void EncodeMatches(const std::vector<match::Match>& matches,
                   BinaryWriter* w) {
  w->WriteVarint(matches.size());
  for (const match::Match& m : matches) {
    w->WriteVarint(m.assignment.size());
    for (rdf::TermId v : m.assignment) w->WriteVarint(v);
    w->WriteDouble(m.score);
  }
}

Status DecodeMatches(BinaryReader* r, std::vector<match::Match>* out) {
  uint64_t count = 0;
  GANSWER_RETURN_NOT_OK(ReadCount(r, kMaxMatches, "match", &count));
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    match::Match m;
    uint64_t len = 0;
    GANSWER_RETURN_NOT_OK(ReadCount(r, kMaxQueryVertices, "assignment", &len));
    m.assignment.reserve(len);
    for (uint64_t j = 0; j < len; ++j) {
      uint64_t v = 0;
      GANSWER_RETURN_NOT_OK(r->ReadVarint(&v));
      // kInvalidTerm (an unassigned vertex) is representable: it encodes
      // as the 32-bit all-ones value.
      if (v > std::numeric_limits<uint32_t>::max()) {
        return Status::Corruption("shard rpc: assignment id out of range");
      }
      m.assignment.push_back(static_cast<rdf::TermId>(v));
    }
    GANSWER_RETURN_NOT_OK(r->ReadDouble(&m.score));
    out->push_back(std::move(m));
  }
  return Status::Ok();
}

void EncodeSparqlResult(const rdf::SparqlResult& result, BinaryWriter* w) {
  w->WriteVarint(result.var_names.size());
  for (const std::string& v : result.var_names) w->WriteString(v);
  w->WriteU8(result.ask_result ? 1 : 0);
  w->WriteVarint(result.rows.size());
  for (const auto& row : result.rows) {
    w->WriteVarint(row.size());
    for (rdf::TermId id : row) w->WriteVarint(id);
  }
}

Status DecodeSparqlResult(BinaryReader* r, rdf::SparqlResult* out) {
  uint64_t vars = 0;
  GANSWER_RETURN_NOT_OK(ReadCount(r, kMaxSparqlVars, "var", &vars));
  out->var_names.clear();
  out->var_names.reserve(vars);
  for (uint64_t i = 0; i < vars; ++i) {
    std::string name;
    GANSWER_RETURN_NOT_OK(r->ReadString(&name));
    out->var_names.push_back(std::move(name));
  }
  uint8_t ask = 0;
  GANSWER_RETURN_NOT_OK(r->ReadU8(&ask));
  out->ask_result = ask != 0;
  uint64_t rows = 0;
  GANSWER_RETURN_NOT_OK(ReadCount(r, kMaxSparqlRows, "row", &rows));
  out->rows.clear();
  out->rows.reserve(rows);
  for (uint64_t i = 0; i < rows; ++i) {
    uint64_t width = 0;
    GANSWER_RETURN_NOT_OK(ReadCount(r, kMaxSparqlVars, "row width", &width));
    std::vector<rdf::TermId> row;
    row.reserve(width);
    for (uint64_t j = 0; j < width; ++j) {
      uint64_t id = 0;
      GANSWER_RETURN_NOT_OK(r->ReadVarint(&id));
      if (id > std::numeric_limits<uint32_t>::max()) {
        return Status::Corruption("shard rpc: row term id out of range");
      }
      row.push_back(static_cast<rdf::TermId>(id));
    }
    out->rows.push_back(std::move(row));
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  BinaryWriter w;
  w.WriteU32(kShardRpcMagic);
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  w.WriteU32(Crc32(payload.data(), payload.size()));
  w.WriteBytes(payload);
  return w.Release();
}

StatusOr<bool> FrameBuffer::Next(std::string* payload) {
  // Compact lazily: erase-from-front per frame would be quadratic under
  // pipelining, so consumed bytes are dropped only when a frame completes.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameHeaderBytes) return false;
  uint32_t magic = 0, length = 0, crc = 0;
  std::memcpy(&magic, pending.data(), sizeof(magic));
  std::memcpy(&length, pending.data() + 4, sizeof(length));
  std::memcpy(&crc, pending.data() + 8, sizeof(crc));
  if (magic != kShardRpcMagic) {
    return Status::Corruption("shard rpc: bad frame magic");
  }
  if (length > kMaxFrameBytes) {
    return Status::Corruption("shard rpc: frame exceeds size cap");
  }
  if (pending.size() - kFrameHeaderBytes < length) return false;
  std::string_view body = pending.substr(kFrameHeaderBytes, length);
  if (Crc32(body.data(), body.size()) != crc) {
    return Status::Corruption("shard rpc: frame CRC mismatch");
  }
  payload->assign(body);
  consumed_ += kFrameHeaderBytes + length;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return true;
}

void EncodeQueryGraph(const match::QueryGraph& query, BinaryWriter* w) {
  w->WriteVarint(query.vertices.size());
  for (const match::QueryVertex& v : query.vertices) {
    w->WriteU8(v.wildcard ? 1 : 0);
    w->WriteDouble(v.wildcard_confidence);
    w->WriteVarint(v.candidates.size());
    for (const linking::LinkCandidate& c : v.candidates) {
      w->WriteVarint(c.vertex);
      w->WriteU8(c.is_class ? 1 : 0);
      w->WriteDouble(c.confidence);
    }
  }
  w->WriteVarint(query.edges.size());
  for (const match::QueryEdge& e : query.edges) {
    w->WriteVarint(static_cast<uint64_t>(e.from));
    w->WriteVarint(static_cast<uint64_t>(e.to));
    w->WriteU8(e.wildcard ? 1 : 0);
    w->WriteDouble(e.wildcard_confidence);
    w->WriteVarint(e.candidates.size());
    for (const paraphrase::ParaphraseEntry& entry : e.candidates) {
      w->WriteVarint(entry.path.steps.size());
      for (const paraphrase::PathStep& step : entry.path.steps) {
        w->WriteVarint(step.predicate);
        w->WriteU8(step.forward ? 1 : 0);
      }
      w->WriteDouble(entry.confidence);
    }
  }
}

Status DecodeQueryGraph(BinaryReader* r, match::QueryGraph* out) {
  uint64_t num_vertices = 0;
  GANSWER_RETURN_NOT_OK(
      ReadCount(r, kMaxQueryVertices, "query vertex", &num_vertices));
  out->vertices.clear();
  out->vertices.reserve(num_vertices);
  for (uint64_t i = 0; i < num_vertices; ++i) {
    match::QueryVertex v;
    uint8_t wildcard = 0;
    GANSWER_RETURN_NOT_OK(r->ReadU8(&wildcard));
    v.wildcard = wildcard != 0;
    GANSWER_RETURN_NOT_OK(r->ReadDouble(&v.wildcard_confidence));
    uint64_t candidates = 0;
    GANSWER_RETURN_NOT_OK(
        ReadCount(r, kMaxCandidatesPerItem, "vertex candidate", &candidates));
    v.candidates.reserve(candidates);
    for (uint64_t j = 0; j < candidates; ++j) {
      linking::LinkCandidate c;
      uint64_t vertex = 0;
      GANSWER_RETURN_NOT_OK(r->ReadVarint(&vertex));
      if (vertex > std::numeric_limits<uint32_t>::max()) {
        return Status::Corruption("shard rpc: candidate id out of range");
      }
      c.vertex = static_cast<rdf::TermId>(vertex);
      uint8_t is_class = 0;
      GANSWER_RETURN_NOT_OK(r->ReadU8(&is_class));
      c.is_class = is_class != 0;
      GANSWER_RETURN_NOT_OK(r->ReadDouble(&c.confidence));
      v.candidates.push_back(c);
    }
    out->vertices.push_back(std::move(v));
  }
  uint64_t num_edges = 0;
  GANSWER_RETURN_NOT_OK(ReadCount(r, kMaxQueryEdges, "query edge",
                                  &num_edges));
  out->edges.clear();
  out->edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    match::QueryEdge e;
    uint64_t from = 0, to = 0;
    GANSWER_RETURN_NOT_OK(r->ReadVarint(&from));
    GANSWER_RETURN_NOT_OK(r->ReadVarint(&to));
    if (from >= num_vertices || to >= num_vertices) {
      return Status::Corruption("shard rpc: edge endpoint out of range");
    }
    e.from = static_cast<int>(from);
    e.to = static_cast<int>(to);
    uint8_t wildcard = 0;
    GANSWER_RETURN_NOT_OK(r->ReadU8(&wildcard));
    e.wildcard = wildcard != 0;
    GANSWER_RETURN_NOT_OK(r->ReadDouble(&e.wildcard_confidence));
    uint64_t candidates = 0;
    GANSWER_RETURN_NOT_OK(
        ReadCount(r, kMaxCandidatesPerItem, "edge candidate", &candidates));
    e.candidates.reserve(candidates);
    for (uint64_t j = 0; j < candidates; ++j) {
      paraphrase::ParaphraseEntry entry;
      uint64_t steps = 0;
      GANSWER_RETURN_NOT_OK(ReadCount(r, kMaxPathSteps, "path step", &steps));
      entry.path.steps.reserve(steps);
      for (uint64_t h = 0; h < steps; ++h) {
        paraphrase::PathStep step;
        uint64_t predicate = 0;
        GANSWER_RETURN_NOT_OK(r->ReadVarint(&predicate));
        if (predicate > std::numeric_limits<uint32_t>::max()) {
          return Status::Corruption("shard rpc: predicate id out of range");
        }
        step.predicate = static_cast<rdf::TermId>(predicate);
        uint8_t forward = 0;
        GANSWER_RETURN_NOT_OK(r->ReadU8(&forward));
        step.forward = forward != 0;
        entry.path.steps.push_back(step);
      }
      GANSWER_RETURN_NOT_OK(r->ReadDouble(&entry.confidence));
      e.candidates.push_back(std::move(entry));
    }
    out->edges.push_back(std::move(e));
  }
  return Status::Ok();
}

std::string EncodeRequest(const ShardRequest& request) {
  BinaryWriter w;
  w.WriteU64(request.request_id);
  w.WriteU8(static_cast<uint8_t>(request.type));
  switch (request.type) {
    case ShardRpcType::kPing:
      break;
    case ShardRpcType::kMatch:
      w.WriteVarint(request.k);
      EncodeQueryGraph(request.query, &w);
      break;
    case ShardRpcType::kSparql:
      w.WriteString(request.sparql_text);
      break;
  }
  return w.Release();
}

StatusOr<ShardRequest> DecodeRequest(std::string_view payload) {
  BinaryReader r(payload);
  ShardRequest request;
  GANSWER_RETURN_NOT_OK(r.ReadU64(&request.request_id));
  uint8_t type = 0;
  GANSWER_RETURN_NOT_OK(r.ReadU8(&type));
  switch (static_cast<ShardRpcType>(type)) {
    case ShardRpcType::kPing:
      request.type = ShardRpcType::kPing;
      break;
    case ShardRpcType::kMatch:
      request.type = ShardRpcType::kMatch;
      GANSWER_RETURN_NOT_OK(r.ReadVarint(&request.k));
      if (request.k == 0 || request.k > kMaxMatches) {
        return Status::Corruption("shard rpc: k out of range");
      }
      GANSWER_RETURN_NOT_OK(DecodeQueryGraph(&r, &request.query));
      break;
    case ShardRpcType::kSparql:
      request.type = ShardRpcType::kSparql;
      GANSWER_RETURN_NOT_OK(r.ReadString(&request.sparql_text));
      break;
    default:
      return Status::Corruption("shard rpc: unknown request type " +
                                std::to_string(type));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("shard rpc: trailing request bytes");
  }
  return request;
}

std::string EncodeResponse(const ShardResponse& response) {
  BinaryWriter w;
  w.WriteU64(response.request_id);
  w.WriteU8(static_cast<uint8_t>(response.type));
  w.WriteU8(static_cast<uint8_t>(response.status));
  if (response.status != ShardRpcStatus::kOk) {
    w.WriteString(response.error);
    return w.Release();
  }
  switch (response.type) {
    case ShardRpcType::kPing:
      w.WriteU32(response.ping.shard_id);
      w.WriteU32(response.ping.num_shards);
      w.WriteU32(response.ping.halo_hops);
      w.WriteU64(response.ping.fingerprint);
      w.WriteU64(response.ping.total_triples);
      break;
    case ShardRpcType::kMatch:
      EncodeMatches(response.matches, &w);
      break;
    case ShardRpcType::kSparql:
      EncodeSparqlResult(response.sparql, &w);
      break;
  }
  return w.Release();
}

StatusOr<ShardResponse> DecodeResponse(std::string_view payload) {
  BinaryReader r(payload);
  ShardResponse response;
  GANSWER_RETURN_NOT_OK(r.ReadU64(&response.request_id));
  uint8_t type = 0, status = 0;
  GANSWER_RETURN_NOT_OK(r.ReadU8(&type));
  GANSWER_RETURN_NOT_OK(r.ReadU8(&status));
  if (type != static_cast<uint8_t>(ShardRpcType::kPing) &&
      type != static_cast<uint8_t>(ShardRpcType::kMatch) &&
      type != static_cast<uint8_t>(ShardRpcType::kSparql)) {
    return Status::Corruption("shard rpc: unknown response type " +
                              std::to_string(type));
  }
  response.type = static_cast<ShardRpcType>(type);
  if (status > static_cast<uint8_t>(ShardRpcStatus::kInternal)) {
    return Status::Corruption("shard rpc: unknown response status " +
                              std::to_string(status));
  }
  response.status = static_cast<ShardRpcStatus>(status);
  if (response.status != ShardRpcStatus::kOk) {
    GANSWER_RETURN_NOT_OK(r.ReadString(&response.error));
    if (!r.AtEnd()) {
      return Status::Corruption("shard rpc: trailing response bytes");
    }
    return response;
  }
  switch (response.type) {
    case ShardRpcType::kPing:
      GANSWER_RETURN_NOT_OK(r.ReadU32(&response.ping.shard_id));
      GANSWER_RETURN_NOT_OK(r.ReadU32(&response.ping.num_shards));
      GANSWER_RETURN_NOT_OK(r.ReadU32(&response.ping.halo_hops));
      GANSWER_RETURN_NOT_OK(r.ReadU64(&response.ping.fingerprint));
      GANSWER_RETURN_NOT_OK(r.ReadU64(&response.ping.total_triples));
      break;
    case ShardRpcType::kMatch:
      GANSWER_RETURN_NOT_OK(DecodeMatches(&r, &response.matches));
      break;
    case ShardRpcType::kSparql:
      GANSWER_RETURN_NOT_OK(DecodeSparqlResult(&r, &response.sparql));
      break;
  }
  if (!r.AtEnd()) {
    return Status::Corruption("shard rpc: trailing response bytes");
  }
  return response;
}

}  // namespace server
}  // namespace ganswer
