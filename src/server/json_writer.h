#ifndef GANSWER_SERVER_JSON_WRITER_H_
#define GANSWER_SERVER_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ganswer {
namespace server {

/// \brief Minimal streaming JSON writer for server responses.
///
/// Emits one compact JSON document into an owned string. Comma placement is
/// automatic; string values run through common/string_util's JsonEscape, so
/// answer labels containing quotes, backslashes or control bytes are always
/// legal JSON. The writer trusts its caller to balance Begin/End calls
/// (handlers are short and covered by tests) — it is a formatter, not a
/// validator.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of the next object member.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Key/value conveniences.
  JsonWriter& Field(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& Field(std::string_view key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(std::string_view key, uint64_t value) {
    return Key(key).UInt(value);
  }
  JsonWriter& Field(std::string_view key, int value) {
    return Key(key).Int(value);
  }
  JsonWriter& Field(std::string_view key, double value) {
    return Key(key).Double(value);
  }
  JsonWriter& Field(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  /// Inserts the separating comma before a new value/key when needed.
  void Separate();

  std::string out_;
  /// True when the next token at this nesting point needs a ',' first.
  bool need_comma_ = false;
};

/// Extracts the string member \p key from the top-level JSON object in
/// \p json: `{"question": "who ..."}` -> `who ...`. Handles the standard
/// escapes (\" \\ \/ \b \f \n \r \t and \uXXXX, surrogate pairs included)
/// and skips other members of any value type. Returns InvalidArgument when
/// \p json is not an object or the member is malformed, NotFound when the
/// key is absent or not a string. This deliberately covers exactly the
/// request bodies the service accepts — one flat object — not all of JSON.
StatusOr<std::string> JsonGetString(std::string_view json,
                                    std::string_view key);

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_JSON_WRITER_H_
