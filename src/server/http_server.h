#ifndef GANSWER_SERVER_HTTP_SERVER_H_
#define GANSWER_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "server/event_loop.h"
#include "server/http_parser.h"

namespace ganswer {
namespace server {

/// The reason phrase for an HTTP status code ("OK", "Bad Request", ...).
const char* StatusReason(int code);

/// A response a handler sends back. Content-Length and Connection are
/// filled in by the server during serialization.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;

  static HttpResponse Json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
};

/// \brief Embedded HTTP/1.1 server: one epoll event loop, a method+path
/// router, keep-alive connections with idle timeouts, and graceful drain.
///
/// Threading contract: the loop thread owns all connection state. Handlers
/// are invoked on the loop thread and must either answer immediately
/// (cheap endpoints like /healthz) or hand the work to another thread and
/// return — the ResponseWriter they receive is thread-safe and may be
/// invoked exactly once from any thread, which is how QaService bridges to
/// the worker pool. Handlers must never block the loop thread.
class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read it back with port() after Start().
    int port = 0;
    /// Keep-alive connections idle longer than this are closed by the
    /// timer wheel. <= 0 disables the idle sweep.
    int idle_timeout_ms = 30'000;
    /// Connections past this are accepted and immediately closed, which
    /// beats letting the kernel backlog grow unboundedly.
    size_t max_connections = 1024;
    /// How long Shutdown() waits for in-flight responses before forcing
    /// the remaining connections closed.
    int drain_timeout_ms = 10'000;
    HttpParser::Limits limits;
  };

  /// One-shot, thread-safe reply channel for a dispatched request. Copyable
  /// so it can travel into a worker-pool closure; sending twice or letting
  /// every copy die without sending simply leaves the connection to the
  /// idle timeout (the server never deadlocks on a lost writer, but
  /// handlers are expected to always answer).
  class ResponseWriter {
   public:
    ResponseWriter() = default;
    /// Sends the response. Safe from any thread; if the connection already
    /// closed (client went away) the response is dropped.
    void Send(HttpResponse response) const;

   private:
    friend class HttpServer;
    ResponseWriter(HttpServer* server, uint64_t conn_id)
        : server_(server), conn_id_(conn_id) {}
    HttpServer* server_ = nullptr;
    uint64_t conn_id_ = 0;
  };

  using Handler =
      std::function<void(const HttpRequest&, const ResponseWriter&)>;

  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers \p handler for exact-match \p path under \p method.
  /// Call before Start().
  void Route(std::string_view method, std::string_view path, Handler handler);

  /// Binds, listens and starts the loop thread. Non-blocking.
  Status Start();

  /// Graceful stop: closes the listen socket, lets dispatched requests
  /// finish and their responses flush (bounded by drain_timeout_ms), then
  /// stops the loop and joins it. Idempotent; must not be called from a
  /// handler.
  void Shutdown();

  /// The bound port (after Start()).
  int port() const { return port_; }

  size_t active_connections() const {
    return connections_open_.load(std::memory_order_relaxed);
  }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Requests dispatched to handlers whose response has not been sent yet.
  size_t requests_in_flight() const {
    return requests_pending_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    HttpParser parser;
    /// Bytes received but not yet fed to the parser (pipelining while a
    /// response is pending).
    std::string inbuf;
    std::string outbuf;
    size_t out_offset = 0;
    bool pending_response = false;
    bool keep_alive = true;
    bool close_after_write = false;
    bool writable_armed = false;
    /// Re-entrancy guard: a synchronous handler's Send lands back in
    /// ProcessInput; the outer loop already continues, so the inner call
    /// must not recurse.
    bool in_process_input = false;
    int64_t last_activity_ms = 0;
  };

  void AcceptReady();
  void ConnectionReady(uint64_t conn_id, uint32_t events);
  /// Parses buffered input and dispatches at most one request.
  void ProcessInput(Connection* conn);
  void DispatchRequest(Connection* conn);
  void SendOnLoop(uint64_t conn_id, HttpResponse response);
  void QueueResponse(Connection* conn, const HttpResponse& response,
                     bool keep_alive);
  /// Writes as much of outbuf as the socket takes; arms EPOLLOUT on short
  /// writes; closes/continues per connection flags once drained.
  void FlushOutput(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void ScheduleIdleSweep();
  void MaybeFinishDrain();

  Options options_;
  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  std::atomic<bool> shut_down_{false};

  std::unordered_map<std::string, Handler> routes_;  ///< "METHOD path".
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  // Loop-thread state, atomically mirrored for cross-thread reads.
  bool draining_ = false;
  std::atomic<size_t> connections_open_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<size_t> requests_pending_{0};
};

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_HTTP_SERVER_H_
