#ifndef GANSWER_SERVER_SHARD_CLIENT_H_
#define GANSWER_SERVER_SHARD_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "match/query_graph.h"
#include "rdf/sparql.h"
#include "server/shard_rpc.h"

namespace ganswer {
namespace server {

/// \brief The router's side of scatter-gather: fans one request out to
/// every shard worker concurrently, gathers within a deadline, merges.
///
/// Each scatter call drives all shard connections through one poll(2) loop
/// — connect, send, reassemble frames — bounded by `timeout_ms` end to
/// end, so a dropped, delayed or truncated shard response can never hang
/// the router: the slow shard is counted as failed and the call returns
/// with what the healthy shards delivered. A failed attempt is retried on
/// a fresh connection while deadline budget remains (`retries` per shard
/// per call). Healthy connections are pooled and reused across calls;
/// failed or timed-out ones are closed (a stale late response must never
/// desynchronize the stream).
///
/// **Exactness.** ScatterMatch is only *attempted* when ShouldScatter says
/// the query is coverable by the shards' halo replication: the query graph
/// must be connected (the matcher assigns only the anchor's component) and
/// `reach + L + 1 <= halo_hops`, where `reach` sums each edge's longest
/// candidate predicate path and `L` is the single longest one — the exact
/// condition under which the shard owning any assigned vertex holds the
/// whole match neighborhood (store/sharded_kb.h). Within that condition,
/// merging per-shard top-k by max-score-per-assignment and re-cutting with
/// the pinned MatchOrder reproduces the single-snapshot matcher's list
/// byte for byte — the shard differential oracle proves it per seed. For
/// everything else the caller runs its local matcher (the router holds the
/// full snapshot), so sharded serving is exact unconditionally and
/// "partial" can only arise from injected or real shard failures.
class ShardClient {
 public:
  struct Endpoint {
    std::string host = "127.0.0.1";
    int port = 0;
  };

  struct Options {
    std::vector<Endpoint> endpoints;
    /// Halo radius the shards were built with (from the shard manifest);
    /// drives ShouldScatter. Ignored for single-shard sets.
    uint32_t halo_hops = 0;
    /// End-to-end deadline per scatter call.
    int timeout_ms = 2000;
    /// Fresh-connection resends per shard per call after a failure.
    int retries = 1;
  };

  /// Cumulative per-shard health counters, readable while serving.
  struct ShardCounters {
    uint64_t requests = 0;  ///< First attempts (one per scatter call).
    uint64_t retries = 0;   ///< Extra attempts after a failure.
    uint64_t errors = 0;    ///< Calls where the shard finally failed.
    uint64_t timeouts = 0;  ///< Subset of errors: deadline expired.
  };

  struct MatchOutcome {
    /// Merged global top-k (match::MergeShardTopK).
    std::vector<match::Match> matches;
    size_t ok_shards = 0;
    size_t failed_shards = 0;
    /// Some shards answered, some failed: the merged list may be missing
    /// their matches. With zero failures the result is exact.
    bool partial() const { return failed_shards > 0 && ok_shards > 0; }
  };

  struct SparqlOutcome {
    /// Union of per-shard rows, deduplicated and sorted for determinism.
    rdf::SparqlResult result;
    size_t ok_shards = 0;
    size_t failed_shards = 0;
    bool partial() const { return failed_shards > 0 && ok_shards > 0; }
  };

  explicit ShardClient(Options options);
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  size_t num_shards() const { return options_.endpoints.size(); }

  /// True when halo replication provably covers \p query (see class
  /// comment); callers fall back to their local matcher otherwise.
  bool ShouldScatter(const match::QueryGraph& query) const;

  /// Scatters a top-k match request to every shard and merges. Fails only
  /// when NO shard answered (callers then fall back to local matching);
  /// partial coverage is reported via MatchOutcome, never as an error.
  StatusOr<MatchOutcome> ScatterMatch(const match::QueryGraph& query,
                                      size_t k);

  /// Scatters a lowered SPARQL query; per-shard results union-merge (halo
  /// replication makes shards overlap, so rows dedupe).
  StatusOr<SparqlOutcome> ScatterSparql(const std::string& text);

  /// One-shard identity probe (startup sanity check in qa_httpd).
  StatusOr<ShardPingInfo> Ping(size_t shard);

  ShardCounters counters(size_t shard) const;
  uint64_t scattered_calls() const {
    return scattered_calls_.load(std::memory_order_relaxed);
  }
  uint64_t partial_results() const {
    return partial_results_.load(std::memory_order_relaxed);
  }
  /// Callers report local-matcher fallbacks here so /stats shows the
  /// scatter-vs-fallback split in one place.
  void CountFallback() {
    fallback_calls_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t fallback_calls() const {
    return fallback_calls_.load(std::memory_order_relaxed);
  }

  /// Closes every pooled connection (tests use this to force reconnects).
  void CloseIdleConnections();

 private:
  struct PerShard {
    mutable std::mutex mu;
    std::vector<int> idle_fds;  ///< Pooled healthy connections.
    ShardCounters counters;
  };

  /// One in-flight attempt of the scatter state machine.
  struct Attempt;

  /// Sends \p payload to every listed shard and gathers raw response
  /// payloads within the deadline; result[i] matches shards[i].
  std::vector<StatusOr<std::string>> Scatter(
      const std::string& payload, const std::vector<size_t>& shards);

  int CheckoutConnection(size_t shard);
  void ReturnConnection(size_t shard, int fd);

  Options options_;
  std::vector<std::unique_ptr<PerShard>> shards_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> scattered_calls_{0};
  std::atomic<uint64_t> fallback_calls_{0};
  std::atomic<uint64_t> partial_results_{0};
};

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_SHARD_CLIENT_H_
