#ifndef GANSWER_SERVER_HTTP_CLIENT_H_
#define GANSWER_SERVER_HTTP_CLIENT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ganswer {
namespace server {

/// A parsed HTTP response on the client side.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* Header(std::string_view name) const;
};

/// \brief Minimal blocking HTTP/1.1 client for loopback testing and the
/// over-the-wire bench.
///
/// Speaks exactly the server's dialect — keep-alive, Content-Length bodies,
/// no chunked encoding — over one connection that transparently reconnects
/// when the server closes it (e.g. after a Connection: close error
/// response). Not a general-purpose client and not thread-safe; each load
/// generator thread owns its own instance.
class BlockingHttpClient {
 public:
  BlockingHttpClient() = default;
  ~BlockingHttpClient();

  BlockingHttpClient(const BlockingHttpClient&) = delete;
  BlockingHttpClient& operator=(const BlockingHttpClient&) = delete;

  /// Connects to \p host:\p port (IPv4 dotted quad, e.g. "127.0.0.1").
  Status Connect(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  StatusOr<ClientResponse> Get(const std::string& path);
  /// \p extra_headers are emitted verbatim after Content-Length — the hook
  /// for per-request controls like X-Deadline-Ms and X-No-Fast-Path.
  StatusOr<ClientResponse> Post(
      const std::string& path, const std::string& body,
      const std::string& content_type = "application/json",
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});

  /// Writes \p raw bytes verbatim and reads one response — the hook for
  /// malformed-request tests.
  StatusOr<ClientResponse> Raw(const std::string& raw);

 private:
  StatusOr<ClientResponse> RoundTrip(const std::string& request);
  Status WriteAll(std::string_view data);
  StatusOr<ClientResponse> ReadResponse();

  std::string host_;
  int port_ = 0;
  int fd_ = -1;
  /// Bytes read past the previous response (keep-alive read-ahead).
  std::string leftover_;
};

}  // namespace server
}  // namespace ganswer

#endif  // GANSWER_SERVER_HTTP_CLIENT_H_
