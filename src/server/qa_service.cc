#include "server/qa_service.h"

#include <charconv>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "qa/sparql_output.h"
#include "server/json_writer.h"

namespace ganswer {
namespace server {

namespace {

const char* FailureName(qa::GAnswer::FailureStage stage) {
  switch (stage) {
    case qa::GAnswer::FailureStage::kNone:
      return "none";
    case qa::GAnswer::FailureStage::kParse:
      return "parse";
    case qa::GAnswer::FailureStage::kNoRelations:
      return "no_relations";
    case qa::GAnswer::FailureStage::kNoLinking:
      return "no_linking";
    case qa::GAnswer::FailureStage::kNoMatches:
      return "no_matches";
  }
  return "unknown";
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fingerprint);
  return buf;
}

/// Extracts the request payload: the \p key member of a JSON object body,
/// or the raw body for text/plain clients (curl without -H).
StatusOr<std::string> ExtractField(const HttpRequest& request,
                                   std::string_view key) {
  std::string_view body = request.body;
  std::string_view trimmed = Trim(body);
  if (!trimmed.empty() && trimmed.front() == '{') {
    return JsonGetString(trimmed, key);
  }
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty request body");
  }
  return std::string(trimmed);
}

HttpResponse ErrorResponse(int status, std::string_view message) {
  JsonWriter w;
  w.BeginObject().Field("error", message).EndObject();
  return HttpResponse::Json(status, w.Take());
}

}  // namespace

QaService::QaService(Options options) : options_(std::move(options)) {}

QaService::~QaService() { Shutdown(); }

Status QaService::Start() {
  if (!options_.live_dir.empty()) return StartLive();
  WallTimer timer;
  auto snapshot = store::ReadSnapshotFile(
      options_.snapshot_path, &lexicon_,
      options_.mmap_load ? store::SnapshotLoadMode::kMmap
                         : store::SnapshotLoadMode::kRead);
  if (!snapshot.ok()) return snapshot.status();
  snapshot_ = std::move(snapshot).value();
  double load_ms = timer.ElapsedMillis();

  qa::GAnswer::Options qa_options;
  qa_options.entity_index = snapshot_.entity_index.get();
  qa_options.matching.signatures = snapshot_.signatures.get();
  qa_options.graph_stats = snapshot_.stats.get();
  qa_options.snapshot_identity = snapshot_.fingerprint;
  qa_options.question_cache_capacity = options_.question_cache_capacity;
  // Per-question matching stays serial: parallelism comes from answering
  // many requests at once on the worker pool, not from splitting one.
  qa_options.matching.exec.threads = 1;
  if (!options_.shard_endpoints.empty()) {
    ShardClient::Options client_options;
    client_options.endpoints = options_.shard_endpoints;
    client_options.halo_hops = options_.shard_halo_hops;
    client_options.timeout_ms = options_.shard_timeout_ms;
    client_options.retries = options_.shard_retries;
    shard_client_ = std::make_unique<ShardClient>(std::move(client_options));
    qa_options.remote_match = [this](const match::QueryGraph& query,
                                     size_t k) {
      qa::GAnswer::RemoteMatchOutcome out;
      if (!shard_client_->ShouldScatter(query)) {
        // Not provably covered by the shards' halo: answer from the local
        // full snapshot, which is exact for every query shape.
        shard_client_->CountFallback();
        return out;
      }
      auto scattered = shard_client_->ScatterMatch(query, k);
      if (!scattered.ok()) {
        // Every shard failed: local fallback again — never an error.
        shard_client_->CountFallback();
        return out;
      }
      out.handled = true;
      out.partial = scattered->partial();
      if (out.partial) {
        partial_answers_.Increment();
      }
      out.matches = std::move(scattered->matches);
      return out;
    };
  }
  system_ = std::make_unique<qa::GAnswer>(snapshot_.graph.get(), &lexicon_,
                                          snapshot_.dictionary.get(),
                                          qa_options);
  rdf::SparqlEngine::Options engine_options;
  engine_options.stats = snapshot_.stats.get();
  engine_ = std::make_unique<rdf::SparqlEngine>(*snapshot_.graph,
                                                engine_options);
  GANSWER_RETURN_NOT_OK(StartHttp());
  GANSWER_LOG(Info) << "qa service up: " << snapshot_.graph->NumTriples()
                    << " triples, snapshot " << options_.snapshot_path
                    << (options_.mmap_load ? " mapped" : " read")
                    << " in " << load_ms << " ms, "
                    << pool_->size() << " worker(s), max queue "
                    << options_.max_queue;
  return Status::Ok();
}

Status QaService::StartLive() {
  if (!options_.shard_endpoints.empty()) {
    return Status::InvalidArgument(
        "live mode is incompatible with sharded serving");
  }
  WallTimer timer;
  store::live::LiveKb::Options live_options;
  live_options.dir = options_.live_dir;
  live_options.base_snapshot = options_.snapshot_path;
  live_options.lexicon = &lexicon_;
  live_options.question_cache_capacity = options_.question_cache_capacity;
  live_options.compact_threshold = options_.live_compact_threshold;
  live_options.max_batch_ops = options_.update_max_triples;
  live_options.mmap_base = options_.mmap_load;
  // Per-question matching stays serial, as in frozen mode.
  live_options.qa.matching.exec.threads = 1;
  auto live = store::live::LiveKb::Open(std::move(live_options));
  if (!live.ok()) return live.status();
  live_ = std::move(live).value();
  double load_ms = timer.ElapsedMillis();
  GANSWER_RETURN_NOT_OK(StartHttp());
  std::shared_ptr<const store::live::KbView> view = live_->view();
  GANSWER_LOG(Info) << "qa service up (live): " << view->graph().NumTriples()
                    << " triples, epoch " << view->epoch() << ", store "
                    << options_.live_dir << " in " << load_ms << " ms, "
                    << pool_->size() << " worker(s), max queue "
                    << options_.max_queue;
  return Status::Ok();
}

Status QaService::StartHttp() {
  pool_ = std::make_unique<ThreadPool>(
      ThreadPool::Options{options_.threads, options_.pin_workers});
  HttpServer::Options http_options;
  http_options.bind_address = options_.bind_address;
  http_options.port = options_.port;
  http_options.idle_timeout_ms = options_.idle_timeout_ms;
  http_options.drain_timeout_ms = options_.drain_timeout_ms;
  http_ = std::make_unique<HttpServer>(http_options);
  RegisterRoutes();
  GANSWER_RETURN_NOT_OK(http_->Start());
  start_ms_ = SteadyNowMs();
  started_ = true;
  return Status::Ok();
}

void QaService::Shutdown() {
  if (!started_ || shut_down_.exchange(true)) return;
  GANSWER_LOG(Info) << "qa service shutting down: draining "
                    << queue_depth() << " in-flight request(s)";
  // Order matters: the HTTP drain waits for every dispatched request's
  // response to flush (workers Send() as they finish), then the pool
  // destructor joins the now-idle workers.
  http_->Shutdown();
  pool_.reset();
  GANSWER_LOG(Info) << "qa service stopped";
  FlushLogs();
}

void QaService::RegisterRoutes() {
  http_->Route("POST", "/answer",
               [this](const HttpRequest& request,
                      const HttpServer::ResponseWriter& writer) {
                 HandleAnswer(request, writer);
               });
  http_->Route("POST", "/sparql",
               [this](const HttpRequest& request,
                      const HttpServer::ResponseWriter& writer) {
                 HandleSparql(request, writer);
               });
  if (live_ != nullptr) {
    http_->Route("POST", "/update",
                 [this](const HttpRequest& request,
                        const HttpServer::ResponseWriter& writer) {
                   HandleUpdate(request, writer);
                 });
  }
  http_->Route("GET", "/healthz",
               [this](const HttpRequest&,
                      const HttpServer::ResponseWriter& writer) {
                 HandleHealthz(writer);
               });
  http_->Route("GET", "/stats",
               [this](const HttpRequest&,
                      const HttpServer::ResponseWriter& writer) {
                 HandleStats(writer);
               });
}

void QaService::Record(StatsCell* cell, double ms, int status) {
  std::lock_guard<std::mutex> lock(cell->mu);
  ++cell->stats.requests;
  if (status >= 400) ++cell->stats.errors;
  cell->stats.total_ms += ms;
  if (ms > cell->stats.max_ms) cell->stats.max_ms = ms;
  // The latency histogram covers answered requests only: shed responses
  // (503) would drag the percentiles toward the shed path's near-zero
  // cost and hide the latency of the work actually served.
  if (status < 500) cell->latency.RecordMillis(ms);
}

QaService::EndpointStats QaService::answer_stats() const {
  std::lock_guard<std::mutex> lock(answer_stats_.mu);
  return answer_stats_.stats;
}

QaService::EndpointStats QaService::sparql_stats() const {
  std::lock_guard<std::mutex> lock(sparql_stats_.mu);
  return sparql_stats_.stats;
}

QaService::EndpointStats QaService::update_stats() const {
  std::lock_guard<std::mutex> lock(update_stats_.mu);
  return update_stats_.stats;
}

LatencyHistogram QaService::answer_latency() const {
  std::lock_guard<std::mutex> lock(answer_stats_.mu);
  return answer_stats_.latency;
}

LatencyHistogram QaService::sparql_latency() const {
  std::lock_guard<std::mutex> lock(sparql_stats_.mu);
  return sparql_stats_.latency;
}

LatencyHistogram QaService::queue_wait() const {
  std::lock_guard<std::mutex> lock(queue_wait_.mu);
  return queue_wait_.hist;
}

int QaService::DeadlineFor(const HttpRequest& request) const {
  int deadline_ms = options_.deadline_ms;
  if (const std::string* header = request.Header("X-Deadline-Ms")) {
    int value = 0;
    auto [ptr, ec] = std::from_chars(
        header->data(), header->data() + header->size(), value);
    if (ec == std::errc() && ptr == header->data() + header->size() &&
        value >= 1 && value <= 3'600'000) {
      deadline_ms = value;
    }
  }
  return deadline_ms;
}

bool QaService::Admit(const HttpServer::ResponseWriter& writer,
                      StatsCell* cell, int64_t admit_us, int deadline_ms,
                      std::function<HttpResponse()> work) {
  // fetch_add first so two racing admissions cannot both squeeze into the
  // last slot; the loser backs out and sheds load.
  if (admitted_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_queue) {
    admitted_.fetch_sub(1, std::memory_order_relaxed);
    shed_queue_full_.Increment();
    Record(cell, 0.0, 503);
    JsonWriter w;
    w.BeginObject()
        .Field("error", "overloaded")
        .Field("shed", "queue_full")
        .Field("max_queue", static_cast<int64_t>(options_.max_queue))
        .EndObject();
    HttpResponse response = HttpResponse::Json(503, w.Take());
    response.extra_headers.emplace_back("Retry-After", "1");
    writer.Send(std::move(response));
    return false;
  }
  pool_->Submit([this, writer, cell, admit_us, deadline_ms,
                 work = std::move(work)] {
    // Shed-at-dequeue: the deadline check runs before any handler work
    // (including the test latch), so a request that aged out while queued
    // costs the worker nothing but this branch.
    int64_t dequeue_us = SteadyNowUs();
    double waited_ms = static_cast<double>(dequeue_us - admit_us) / 1000.0;
    {
      std::lock_guard<std::mutex> lock(queue_wait_.mu);
      queue_wait_.hist.RecordMillis(waited_ms);
    }
    if (deadline_ms > 0 && waited_ms > static_cast<double>(deadline_ms)) {
      shed_deadline_.Increment();
      Record(cell, waited_ms, 503);
      JsonWriter w;
      w.BeginObject()
          .Field("error", "deadline_expired")
          .Field("shed", "deadline_expired")
          .Field("deadline_ms", static_cast<int64_t>(deadline_ms))
          .Field("waited_ms", waited_ms)
          .EndObject();
      HttpResponse response = HttpResponse::Json(503, w.Take());
      response.extra_headers.emplace_back("Retry-After", "1");
      writer.Send(std::move(response));
      admitted_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    if (options_.worker_hook) options_.worker_hook();
    HttpResponse response = work();
    double ms = static_cast<double>(SteadyNowUs() - admit_us) / 1000.0;
    Record(cell, ms, response.status);
    writer.Send(std::move(response));
    admitted_.fetch_sub(1, std::memory_order_relaxed);
  });
  return true;
}

void QaService::HandleAnswer(const HttpRequest& request,
                             const HttpServer::ResponseWriter& writer) {
  int64_t admit_us =
      request.received_us != 0 ? request.received_us : SteadyNowUs();
  auto question = ExtractField(request, "question");
  if (!question.ok()) {
    Record(&answer_stats_, 0.0, 400);
    writer.Send(ErrorResponse(400, question.status().ToString()));
    return;
  }
  std::string q = std::move(question).value();
  // Live mode pins the current epoch's view here, at arrival: the fast
  // path, the queued worker work and the serialization all use this one
  // view, so a commit or compaction mid-request never changes what the
  // request observes (and the view's refcount keeps its epoch alive).
  std::shared_ptr<const store::live::KbView> view;
  if (live_ != nullptr) view = live_->view();
  const qa::GAnswer& system = view != nullptr ? view->qa() : *system_;
  const rdf::RdfGraph& graph =
      view != nullptr ? view->graph() : *snapshot_.graph;
  // Cached fast path: a hit is serialized and answered right here on the
  // event-loop thread — the hot Zipf head never waits behind cold-tail
  // matcher work in the admission queue. Serializing a cached answer is
  // microseconds of JSON assembly, orders of magnitude below one matcher
  // run, so it cannot starve the loop.
  if (options_.cached_fast_path &&
      request.Header("X-No-Fast-Path") == nullptr) {
    if (auto hit = system.ProbeCache(q)) {
      std::string body = AnswerToJson(q, *hit, /*cache_hit=*/true, graph);
      fast_path_hits_.Increment();
      Record(&answer_stats_,
             static_cast<double>(SteadyNowUs() - admit_us) / 1000.0, 200);
      writer.Send(HttpResponse::Json(200, std::move(body)));
      return;
    }
  }
  Admit(writer, &answer_stats_, admit_us, DeadlineFor(request),
        [this, q = std::move(q), view = std::move(view)]() -> HttpResponse {
          const qa::GAnswer& system =
              view != nullptr ? view->qa() : *system_;
          const rdf::RdfGraph& graph =
              view != nullptr ? view->graph() : *snapshot_.graph;
          auto response = system.Ask(q);
          if (!response.ok()) {
            return ErrorResponse(422, response.status().ToString());
          }
          return HttpResponse::Json(
              200, AnswerToJson(q, *response, response->cache_hit, graph));
        });
}

void QaService::HandleSparql(const HttpRequest& request,
                             const HttpServer::ResponseWriter& writer) {
  int64_t admit_us =
      request.received_us != 0 ? request.received_us : SteadyNowUs();
  auto query = ExtractField(request, "query");
  if (!query.ok()) {
    Record(&sparql_stats_, 0.0, 400);
    writer.Send(ErrorResponse(400, query.status().ToString()));
    return;
  }
  std::string text = std::move(query).value();
  std::shared_ptr<const store::live::KbView> view;
  if (live_ != nullptr) view = live_->view();
  Admit(writer, &sparql_stats_, admit_us, DeadlineFor(request),
        [this, text = std::move(text),
         view = std::move(view)]() -> HttpResponse {
          const rdf::SparqlEngine& engine =
              view != nullptr ? view->sparql() : *engine_;
          auto result = engine.ExecuteText(text);
          if (!result.ok()) {
            return ErrorResponse(422, result.status().ToString());
          }
          return HttpResponse::Json(
              200, SparqlResultToJson(
                       *result,
                       view != nullptr ? view->graph() : *snapshot_.graph));
        });
}

void QaService::HandleUpdate(const HttpRequest& request,
                             const HttpServer::ResponseWriter& writer) {
  int64_t admit_us =
      request.received_us != 0 ? request.received_us : SteadyNowUs();
  // The body is raw N-Triples (lines starting with `-` delete), or a JSON
  // object {"update": "..."} for JSON-only clients.
  auto update = ExtractField(request, "update");
  if (!update.ok()) {
    Record(&update_stats_, 0.0, 400);
    writer.Send(ErrorResponse(400, update.status().ToString()));
    return;
  }
  // Updates ride the same bounded admission queue as queries: a burst of
  // batches sheds at the queue rather than stalling the event loop, and
  // commit work never runs on the loop thread.
  Admit(writer, &update_stats_, admit_us, DeadlineFor(request),
        [this, text = std::move(update).value()]() -> HttpResponse {
          auto result = live_->ApplyText(text);
          if (!result.ok()) {
            // Rejected batches (over the admission bound, or N-Triples the
            // parser refuses) are the client's fault; anything else is an
            // internal commit failure.
            Status::Code code = result.status().code();
            int status = (code == Status::Code::kInvalidArgument ||
                          code == Status::Code::kCorruption)
                             ? 400
                             : 500;
            return ErrorResponse(status, result.status().ToString());
          }
          JsonWriter w;
          w.BeginObject()
              .Field("epoch", static_cast<int64_t>(result->epoch))
              .Field("added", static_cast<int64_t>(result->stats.added))
              .Field("deleted", static_cast<int64_t>(result->stats.deleted))
              .Field("noop_adds",
                     static_cast<int64_t>(result->stats.noop_adds))
              .Field("noop_deletes",
                     static_cast<int64_t>(result->stats.noop_deletes))
              .Field("new_terms",
                     static_cast<int64_t>(result->stats.new_terms))
              .EndObject();
          return HttpResponse::Json(200, w.Take());
        });
}

void QaService::HandleHealthz(const HttpServer::ResponseWriter& writer) {
  std::shared_ptr<const store::live::KbView> view;
  if (live_ != nullptr) view = live_->view();
  JsonWriter w;
  w.BeginObject()
      .Field("status", "ok")
      .Field("triples", view != nullptr ? view->graph().NumTriples()
                                        : snapshot_.graph->NumTriples())
      .Field("snapshot_fingerprint",
             FingerprintHex(view != nullptr ? view->base().fingerprint
                                            : snapshot_.fingerprint));
  if (view != nullptr) {
    w.Field("epoch", static_cast<int64_t>(view->epoch()));
  }
  w.Field("uptime_ms", static_cast<int64_t>(SteadyNowMs() - start_ms_))
      .EndObject();
  writer.Send(HttpResponse::Json(200, w.Take()));
}

void QaService::HandleStats(const HttpServer::ResponseWriter& writer) {
  std::shared_ptr<const store::live::KbView> view;
  if (live_ != nullptr) view = live_->view();
  qa::GAnswer::CacheStats cache =
      view != nullptr ? view->qa().cache_stats() : system_->cache_stats();
  EndpointStats answer = answer_stats();
  EndpointStats sparql = sparql_stats();
  LatencyHistogram answer_hist = answer_latency();
  LatencyHistogram sparql_hist = sparql_latency();
  LatencyHistogram wait_hist = queue_wait();

  JsonWriter w;
  w.BeginObject();
  w.Field("uptime_ms", static_cast<int64_t>(SteadyNowMs() - start_ms_));
  w.Field("queue_depth", static_cast<int64_t>(queue_depth()));
  w.Field("max_queue", static_cast<int64_t>(options_.max_queue));
  w.Field("rejected", rejected_total());
  w.Key("shed").BeginObject();
  w.Field("queue_full", shed_queue_full())
      .Field("deadline_expired", shed_deadline_expired())
      .EndObject();
  w.Field("deadline_ms", static_cast<int64_t>(options_.deadline_ms));
  w.Field("fast_path_hits", fast_path_hits());
  w.Key("queue_wait_ms").BeginObject();
  w.Field("count", wait_hist.count())
      .Field("p50", wait_hist.QuantileMillis(0.50))
      .Field("p99", wait_hist.QuantileMillis(0.99))
      .Field("max", static_cast<double>(wait_hist.max_us()) / 1000.0)
      .EndObject();
  w.Key("question_cache").BeginObject();
  w.Field("hits", cache.hits)
      .Field("misses", cache.misses)
      .Field("evictions", cache.evictions)
      .Field("entries", cache.entries)
      .Field("shards", static_cast<int64_t>(cache.shard_entries.size()))
      .Field("shard_imbalance", cache.shard_imbalance)
      .EndObject();
  w.Key("workers").BeginObject();
  w.Field("threads", static_cast<int64_t>(pool_ ? pool_->size() : 0))
      .Field("pinned", static_cast<int64_t>(pool_ ? pool_->pinned_workers() : 0))
      .EndObject();
  w.Key("server").BeginObject();
  w.Field("connections_active", http_->active_connections())
      .Field("connections_accepted", http_->connections_accepted())
      .Field("requests_in_flight", http_->requests_in_flight())
      .EndObject();
  if (shard_client_ != nullptr) {
    w.Key("shards").BeginObject();
    w.Field("count", static_cast<int64_t>(shard_client_->num_shards()))
        .Field("halo_hops", static_cast<int64_t>(options_.shard_halo_hops))
        .Field("scattered", shard_client_->scattered_calls())
        .Field("fallback_local", shard_client_->fallback_calls())
        .Field("partial_results", shard_client_->partial_results())
        .Field("partial_answers", partial_answers());
    w.Key("per_shard").BeginArray();
    for (size_t i = 0; i < shard_client_->num_shards(); ++i) {
      ShardClient::ShardCounters counters = shard_client_->counters(i);
      w.BeginObject()
          .Field("requests", counters.requests)
          .Field("retries", counters.retries)
          .Field("errors", counters.errors)
          .Field("timeouts", counters.timeouts)
          .EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  const store::Snapshot& base = view != nullptr ? view->base() : snapshot_;
  w.Key("storage").BeginObject();
  w.Field("mode", base.mapping ? "mmap" : "read")
      .Field("file_bytes",
             static_cast<int64_t>(base.mapping ? base.mapping->size() : 0))
      .Field("mapped_bytes", static_cast<int64_t>(base.column_mapped_bytes()))
      .Field("heap_bytes", static_cast<int64_t>(base.column_heap_bytes()))
      .EndObject();
  // Live mode reports the base snapshot's statistics (the ones steering
  // candidate build and plan order) — the live triple count is in the
  // ingest section and /healthz.
  const rdf::GraphStats& graph_stats =
      view != nullptr ? *base.stats : engine_->stats();
  w.Key("graph").BeginObject();
  w.Field("triples", static_cast<int64_t>(graph_stats.num_triples()))
      .Field("vertices", static_cast<int64_t>(graph_stats.num_vertices()))
      .Field("predicates", static_cast<int64_t>(graph_stats.num_predicates()))
      .Field("classes", static_cast<int64_t>(graph_stats.num_classes()))
      .Field("avg_out_fanout", graph_stats.AvgOutFanout())
      .Field("avg_in_fanout", graph_stats.AvgInFanout())
      .EndObject();
  if (engine_ != nullptr) {
    rdf::SparqlEngine::PlannerCounters planner = engine_->planner_counters();
    w.Key("planner").BeginObject();
    w.Field("planned_queries", static_cast<int64_t>(planner.planned_queries))
        .Field("naive_queries", static_cast<int64_t>(planner.naive_queries))
        .Field("range_lookups", static_cast<int64_t>(planner.range_lookups))
        .Field("full_scans", static_cast<int64_t>(planner.full_scans))
        .Field("merge_joins", static_cast<int64_t>(planner.merge_joins))
        .Field("intermediate_bindings",
               static_cast<int64_t>(planner.intermediate_bindings))
        .EndObject();
  }
  if (live_ != nullptr) {
    store::live::LiveKb::IngestCounters ingest = live_->counters();
    w.Key("ingest").BeginObject();
    w.Field("epoch", static_cast<int64_t>(ingest.epoch))
        .Field("batches", static_cast<int64_t>(ingest.batches))
        .Field("triples_added", static_cast<int64_t>(ingest.triples_added))
        .Field("triples_deleted",
               static_cast<int64_t>(ingest.triples_deleted))
        .Field("noop_adds", static_cast<int64_t>(ingest.noop_adds))
        .Field("noop_deletes", static_cast<int64_t>(ingest.noop_deletes))
        .Field("new_terms", static_cast<int64_t>(ingest.new_terms))
        .Field("delta_triples", static_cast<int64_t>(ingest.delta_triples))
        .Field("touched_vertices",
               static_cast<int64_t>(ingest.touched_vertices))
        .Field("delta_bytes", static_cast<int64_t>(ingest.delta_bytes))
        .Field("wal_bytes", static_cast<int64_t>(ingest.wal_bytes))
        .Field("compactions", static_cast<int64_t>(ingest.compactions))
        .Field("failed_compactions",
               static_cast<int64_t>(ingest.failed_compactions))
        .Field("last_batch_ms", ingest.last_batch_ms)
        .Field("last_compaction_ms", ingest.last_compaction_ms)
        .EndObject();
  }
  w.Key("endpoints").BeginObject();
  auto emit_endpoint = [&w](const char* name, const EndpointStats& stats,
                            const LatencyHistogram& hist) {
    w.Key(name).BeginObject();
    w.Field("requests", stats.requests)
        .Field("errors", stats.errors)
        .Field("total_ms", stats.total_ms)
        .Field("max_ms", stats.max_ms)
        .Field("mean_ms", stats.requests > 0
                              ? stats.total_ms / stats.requests
                              : 0.0)
        .Field("p50_ms", hist.QuantileMillis(0.50))
        .Field("p95_ms", hist.QuantileMillis(0.95))
        .Field("p99_ms", hist.QuantileMillis(0.99))
        .Field("p99_9_ms", hist.QuantileMillis(0.999))
        .EndObject();
  };
  emit_endpoint("/answer", answer, answer_hist);
  emit_endpoint("/sparql", sparql, sparql_hist);
  if (live_ != nullptr) {
    EndpointStats update = update_stats();
    LatencyHistogram update_hist = [this] {
      std::lock_guard<std::mutex> lock(update_stats_.mu);
      return update_stats_.latency;
    }();
    emit_endpoint("/update", update, update_hist);
  }
  w.EndObject();
  w.EndObject();
  writer.Send(HttpResponse::Json(200, w.Take()));
}

std::string QaService::AnswerToJson(std::string_view question,
                                    const qa::GAnswer::Response& response,
                                    bool cache_hit,
                                    const rdf::RdfGraph& graph) const {
  JsonWriter w;
  w.BeginObject();
  w.Field("question", question);
  w.Field("cache_hit", cache_hit);
  // Incomplete shard coverage in sharded mode; always false when serving
  // locally or from the cache (partial responses are never cached).
  w.Field("partial", response.partial);
  w.Field("is_ask", response.is_ask);
  if (response.is_ask) w.Field("ask_result", response.ask_result);
  w.Field("failure", FailureName(response.failure));
  w.Key("answers").BeginArray();
  for (const auto& answer : response.answers) {
    w.BeginObject()
        .Field("text", answer.text)
        .Field("score", answer.score)
        .EndObject();
  }
  w.EndArray();
  // The disambiguated interpretations as SPARQL (Algorithm 3): one query
  // per distinct top-k match, runnable against any endpoint.
  w.Key("sparql").BeginArray();
  if (!response.matches.empty()) {
    for (const rdf::SparqlQuery& query : qa::SparqlOutput::TopKQueries(
             response.understanding.sqg, response.matches, graph,
             options_.sparql_top_k)) {
      w.String(query.ToString());
    }
  }
  w.EndArray();
  // A cache hit reports zeroed stage timers whichever path served it —
  // neither understanding nor matching ran — which keeps the fast-path
  // bytes identical to the worker-pool bytes for the same cache entry
  // (Ask() zeroes them on its hit path; the fast path serializes the
  // stored entry directly, whose timers hold the original compute cost).
  w.Field("understanding_ms", cache_hit ? 0.0 : response.understanding_ms);
  w.Field("evaluation_ms", cache_hit ? 0.0 : response.evaluation_ms);
  w.EndObject();
  return w.Take();
}

std::string QaService::SparqlResultToJson(
    const rdf::SparqlResult& result, const rdf::RdfGraph& graph) const {
  const rdf::TermDictionary& dict = graph.dict();
  JsonWriter w;
  w.BeginObject();
  w.Key("vars").BeginArray();
  for (const std::string& var : result.var_names) w.String(var);
  w.EndArray();
  w.Field("ask_result", result.ask_result);
  w.Key("rows").BeginArray();
  for (const auto& row : result.rows) {
    w.BeginArray();
    for (rdf::TermId id : row) w.String(dict.text(id));
    w.EndArray();
  }
  w.EndArray();
  w.Field("row_count", result.rows.size());
  w.EndObject();
  return w.Take();
}

}  // namespace server
}  // namespace ganswer
