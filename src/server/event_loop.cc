#include "server/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace ganswer {
namespace server {

namespace {

uint32_t ToEpoll(uint32_t events) {
  uint32_t out = 0;
  if (events & EventLoop::kReadable) out |= EPOLLIN;
  if (events & EventLoop::kWritable) out |= EPOLLOUT;
  return out;
}

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wakeup_fd_ >= 0) ::close(wakeup_fd_);
}

int64_t EventLoop::SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") +
                           std::strerror(errno));
  }
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    return Status::IoError(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(wakeup): ") +
                           std::strerror(errno));
  }
  now_ms_ = last_tick_ms_ = SteadyNowMs();
  return Status::Ok();
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(add): ") +
                           std::strerror(errno));
  }
  io_callbacks_[fd] = std::move(callback);
  return Status::Ok();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = ToEpoll(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(mod): ") +
                           std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::Remove(int fd) {
  if (io_callbacks_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::Wake() {
  uint64_t one = 1;
  // A full eventfd counter still leaves the loop awake; ignore EAGAIN.
  [[maybe_unused]] ssize_t n = ::write(wakeup_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeup() {
  uint64_t value = 0;
  while (::read(wakeup_fd_, &value, sizeof(value)) > 0) {
  }
}

void EventLoop::RunPosted() {
  // Swap out the queue so closures posted from within closures run on the
  // next iteration — keeps one iteration bounded.
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

EventLoop::TimerId EventLoop::ScheduleAfter(int64_t delay_ms,
                                            std::function<void()> callback) {
  if (delay_ms < 0) delay_ms = 0;
  uint64_t ticks = static_cast<uint64_t>(delay_ms + kTickMs - 1) / kTickMs;
  if (ticks == 0) ticks = 1;  // never fire within the current tick
  size_t slot = (wheel_pos_ + ticks) % kWheelSlots;
  TimerEntry entry;
  entry.id = next_timer_id_++;
  entry.rounds = static_cast<uint32_t>(ticks / kWheelSlots);
  entry.callback = std::move(callback);
  TimerId id = entry.id;
  wheel_[slot].push_back(std::move(entry));
  timer_slot_[id] = slot;
  ++live_timers_;
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  auto it = timer_slot_.find(id);
  if (it == timer_slot_.end()) return;
  std::vector<TimerEntry>& slot = wheel_[it->second];
  for (size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].id == id) {
      slot.erase(slot.begin() + static_cast<ptrdiff_t>(i));
      --live_timers_;
      break;
    }
  }
  timer_slot_.erase(it);
}

void EventLoop::AdvanceWheel() {
  now_ms_ = SteadyNowMs();
  while (now_ms_ - last_tick_ms_ >= kTickMs) {
    last_tick_ms_ += kTickMs;
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    std::vector<TimerEntry>& slot = wheel_[wheel_pos_];
    std::vector<TimerEntry> due;
    for (size_t i = 0; i < slot.size();) {
      if (slot[i].rounds > 0) {
        --slot[i].rounds;
        ++i;
        continue;
      }
      due.push_back(std::move(slot[i]));
      slot.erase(slot.begin() + static_cast<ptrdiff_t>(i));
    }
    for (TimerEntry& entry : due) {
      timer_slot_.erase(entry.id);
      --live_timers_;
      entry.callback();
    }
  }
}

bool EventLoop::InLoopThread() const {
  return std::this_thread::get_id() == loop_thread_;
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  now_ms_ = last_tick_ms_ = SteadyNowMs();
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (true) {
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (stop_) break;
    }
    // Sleep until the next wheel tick when timers are armed, else until
    // I/O or a Post() wakeup.
    int timeout_ms = -1;
    if (live_timers_ > 0) {
      int64_t next_tick = last_tick_ms_ + kTickMs;
      int64_t wait = next_tick - SteadyNowMs();
      timeout_ms = wait < 0 ? 0 : static_cast<int>(wait);
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0 && errno != EINTR) {
      GANSWER_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    now_ms_ = SteadyNowMs();
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      auto it = io_callbacks_.find(fd);
      if (it == io_callbacks_.end()) continue;  // removed by earlier handler
      uint32_t fired = 0;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        fired |= kReadable;
      }
      if (events[i].events & EPOLLOUT) fired |= kWritable;
      // Copy: the handler may Remove(fd) and invalidate the iterator.
      IoCallback callback = it->second;
      callback(fired);
    }
    RunPosted();
    AdvanceWheel();
  }
  // One last drain so Stop() posted behind other closures still runs them.
  RunPosted();
  loop_thread_ = std::thread::id();
}

void EventLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    stop_ = true;
  }
  Wake();
}

}  // namespace server
}  // namespace ganswer
