#ifndef GANSWER_STORE_SNAPSHOT_H_
#define GANSWER_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "linking/entity_index.h"
#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "rdf/graph_stats.h"
#include "rdf/rdf_graph.h"
#include "rdf/signature_index.h"

namespace ganswer {
namespace store {

/// Container format version. Bumped whenever a section's binary layout
/// changes or a section is added. Version 2 added the graph-statistics
/// section (rdf/graph_stats.h). Readers accept versions back to
/// kMinSupportedSnapshotVersion: a version-1 snapshot loads fine, with the
/// statistics recomputed from the graph instead of read from disk. Versions
/// newer than this binary's are rejected (their layout is unknown).
inline constexpr uint32_t kSnapshotVersion = 2;
inline constexpr uint32_t kMinSupportedSnapshotVersion = 1;

/// \brief Everything the online phase needs, reconstructed from one
/// snapshot: the finalized graph, both offline indexes and the paraphrase
/// dictionary. The indexes reference the owned graph, so the bundle keeps
/// them alive together; members are heap-allocated so moving the bundle
/// never invalidates those references.
struct Snapshot {
  std::unique_ptr<rdf::RdfGraph> graph;
  std::unique_ptr<rdf::SignatureIndex> signatures;
  std::unique_ptr<linking::EntityIndex> entity_index;
  std::unique_ptr<paraphrase::ParaphraseDictionary> dictionary;
  /// Planner statistics: read from the stats section (version >= 2) or
  /// recomputed from the loaded graph (version 1); never null on success.
  std::unique_ptr<rdf::GraphStats> stats;
  /// Identity of the snapshot contents (derived from the per-section
  /// checksums). Two byte-identical snapshots share a fingerprint; use it
  /// to invalidate caches keyed on snapshot data.
  uint64_t fingerprint = 0;
};

/// Per-section byte counts of a written snapshot, for bench reporting.
struct SnapshotStats {
  size_t graph_bytes = 0;
  size_t signature_bytes = 0;
  size_t entity_index_bytes = 0;
  size_t dictionary_bytes = 0;
  size_t stats_bytes = 0;
  size_t total_bytes = 0;
  uint64_t fingerprint = 0;
};

/// Serializes \p graph (finalized) and \p dict together with prebuilt
/// indexes into one versioned, checksummed container in \p out.
Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const rdf::SignatureIndex& signatures,
                     const linking::EntityIndex& entity_index,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats = nullptr);

/// Convenience for offline builders that only hold the graph and the mined
/// dictionary: builds the SignatureIndex and EntityIndex (deterministic
/// functions of the graph) and writes the full container.
Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats = nullptr);

Status WriteSnapshotFile(const rdf::RdfGraph& graph,
                         const paraphrase::ParaphraseDictionary& dict,
                         const std::string& path,
                         SnapshotStats* stats = nullptr);

/// Reconstructs a Snapshot from container bytes. Rejects wrong magic,
/// foreign byte order, version mismatches, malformed section tables and
/// per-section CRC failures with Status::Corruption — a bad file can never
/// produce a partially initialized bundle. \p lexicon backs the paraphrase
/// dictionary and must outlive the returned bundle.
StatusOr<Snapshot> ReadSnapshot(std::string_view bytes,
                                const nlp::Lexicon* lexicon);

StatusOr<Snapshot> ReadSnapshotFile(const std::string& path,
                                    const nlp::Lexicon* lexicon);

}  // namespace store
}  // namespace ganswer

#endif  // GANSWER_STORE_SNAPSHOT_H_
