#ifndef GANSWER_STORE_SNAPSHOT_H_
#define GANSWER_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/mmap_file.h"
#include "common/status.h"
#include "linking/entity_index.h"
#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "rdf/graph_stats.h"
#include "rdf/rdf_graph.h"
#include "rdf/signature_index.h"

namespace ganswer {
namespace store {

/// Container format version. Bumped whenever a section's binary layout
/// changes or a section is added. Version 2 added the graph-statistics
/// section (rdf/graph_stats.h). Version 3 added per-section encoding flags
/// (raw | compressed), 8-aligned section payloads and alignment-padded pod
/// arrays, making raw sections directly mappable. Readers accept versions
/// back to kMinSupportedSnapshotVersion: a version-1 snapshot loads fine,
/// with the statistics recomputed from the graph instead of read from disk.
/// Versions newer than this binary's are rejected (their layout is
/// unknown).
inline constexpr uint32_t kSnapshotVersion = 3;
inline constexpr uint32_t kMinSupportedSnapshotVersion = 1;

/// How a v3 section's payload is encoded on disk. Raw sections are the pod
/// layouts the in-memory structures use directly (zero-copy under mmap);
/// compressed sections are delta-varint / front-coded and decode into heap
/// buffers on load. v1/v2 sections are always raw.
enum class SectionEncoding : uint32_t { kRaw = 0, kCompressed = 1 };

/// Writer knobs. \p version selects the container layout (the current one
/// by default; 2 writes a legacy container for old readers and for tests
/// that pin the v2 layout). \p compress — v3 only — stores the graph,
/// signature, entity-index and stats sections delta/front-coded: several
/// times smaller on disk, at the price of a decode pass (no zero-copy) on
/// load. The paraphrase dictionary section stays raw in either mode.
struct SnapshotWriteOptions {
  uint32_t version = kSnapshotVersion;
  bool compress = false;
};

/// How ReadSnapshotFile gets the bytes into memory. kRead slurps the file
/// into an owned buffer and copies sections into heap structures. kMmap
/// maps the file and serves raw sections zero-copy out of the mapping —
/// cold start is page-fault driven, resident footprint is only what queries
/// actually touch, and the returned Snapshot pins the mapping.
enum class SnapshotLoadMode { kRead = 0, kMmap = 1 };

/// \brief Everything the online phase needs, reconstructed from one
/// snapshot: the finalized graph, both offline indexes and the paraphrase
/// dictionary. The indexes reference the owned graph, so the bundle keeps
/// them alive together; members are heap-allocated so moving the bundle
/// never invalidates those references.
struct Snapshot {
  std::unique_ptr<rdf::RdfGraph> graph;
  std::unique_ptr<rdf::SignatureIndex> signatures;
  std::unique_ptr<linking::EntityIndex> entity_index;
  std::unique_ptr<paraphrase::ParaphraseDictionary> dictionary;
  /// Planner statistics: read from the stats section (version >= 2) or
  /// recomputed from the loaded graph (version 1); never null on success.
  std::unique_ptr<rdf::GraphStats> stats;
  /// Identity of the snapshot contents (derived from the per-section
  /// checksums). Two byte-identical snapshots share a fingerprint; use it
  /// to invalidate caches keyed on snapshot data.
  uint64_t fingerprint = 0;
  /// Keepalive for zero-copy loads: every span-backed column above views
  /// this mapping. Null for bulk reads. Ordered after the structures so it
  /// is destroyed last.
  std::shared_ptr<MmapFile> mapping;

  /// Heap bytes pinned by the column-backed structures (graph CSR + term
  /// storage, signatures, stats). The hash indexes (entity postings,
  /// dictionary, term lookup map) always live on the heap and are not
  /// counted here.
  size_t column_heap_bytes() const;
  /// Bytes those structures serve zero-copy out of the mapping.
  size_t column_mapped_bytes() const;
};

/// Per-section byte counts of a written snapshot, for bench reporting.
struct SnapshotStats {
  size_t graph_bytes = 0;
  size_t signature_bytes = 0;
  size_t entity_index_bytes = 0;
  size_t dictionary_bytes = 0;
  size_t stats_bytes = 0;
  size_t total_bytes = 0;
  uint64_t fingerprint = 0;
};

/// Serializes \p graph (finalized) and \p dict together with prebuilt
/// indexes into one versioned, checksummed container in \p out. Section
/// CRCs are computed in place as each section lands in the shared output
/// buffer — no per-section staging copies, so peak writer memory is the
/// container itself.
Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const rdf::SignatureIndex& signatures,
                     const linking::EntityIndex& entity_index,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats = nullptr,
                     const SnapshotWriteOptions& options = {});

/// Convenience for offline builders that only hold the graph and the mined
/// dictionary: builds the SignatureIndex and EntityIndex (deterministic
/// functions of the graph) and writes the full container.
Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats = nullptr,
                     const SnapshotWriteOptions& options = {});

Status WriteSnapshotFile(const rdf::RdfGraph& graph,
                         const paraphrase::ParaphraseDictionary& dict,
                         const std::string& path,
                         SnapshotStats* stats = nullptr,
                         const SnapshotWriteOptions& options = {});

/// Reconstructs a Snapshot from container bytes. Rejects wrong magic,
/// foreign byte order, version mismatches, malformed section tables and
/// per-section CRC failures with Status::Corruption — a bad file can never
/// produce a partially initialized bundle. \p lexicon backs the paraphrase
/// dictionary and must outlive the returned bundle. The bytes are copied
/// into owned structures (zero-copy loading requires the file-backed
/// ReadSnapshotFile with SnapshotLoadMode::kMmap, which can pin the bytes).
StatusOr<Snapshot> ReadSnapshot(std::string_view bytes,
                                const nlp::Lexicon* lexicon);

StatusOr<Snapshot> ReadSnapshotFile(
    const std::string& path, const nlp::Lexicon* lexicon,
    SnapshotLoadMode mode = SnapshotLoadMode::kRead);

}  // namespace store
}  // namespace ganswer

#endif  // GANSWER_STORE_SNAPSHOT_H_
