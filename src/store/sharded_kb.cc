#include "store/sharded_kb.h"

#include <deque>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/binary_io.h"

namespace ganswer {
namespace store {

namespace {

constexpr char kManifestMagic[8] = {'G', 'A', 'N', 'S',
                                    'S', 'H', 'R', 'D'};
constexpr uint32_t kManifestVersion = 1;
constexpr uint32_t kMaxShards = 4096;

/// splitmix64 finalizer: consecutive TermIds (dense intern order puts
/// related terms next to each other) spread uniformly across shards.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Distance label for the halo BFS; kUnreached = never visited.
constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();

}  // namespace

uint32_t ShardOf(rdf::TermId subject, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  return static_cast<uint32_t>(Mix64(subject) % num_shards);
}

StatusOr<std::vector<rdf::RdfGraph>> BuildShardGraphs(
    const rdf::RdfGraph& full, const ShardSpec& spec) {
  if (!full.finalized()) {
    return Status::InvalidArgument("sharding requires a finalized graph");
  }
  if (spec.num_shards == 0 || spec.num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  const size_t num_terms = full.NumTerms();
  const rdf::TermId subclass = full.subclass_predicate();

  std::vector<rdf::RdfGraph> shards(spec.num_shards);
  for (rdf::RdfGraph& shard : shards) {
    // Replay the dictionary in id order: dense intern order is the id
    // assignment, so every shard reproduces the full graph's ids exactly
    // and assignments computed on any shard are globally meaningful.
    for (rdf::TermId id = 0; id < num_terms; ++id) {
      shard.dict().Intern(full.dict().text(id), full.dict().kind(id));
    }
  }

  // dist[v] = undirected BFS distance from the nearest owned vertex of the
  // current shard; recomputed per shard. A triple is replicated into the
  // shard when either endpoint sits within halo_hops - 1 of an owned
  // vertex, which closes every connecting path of the exactness argument
  // (see the header comment).
  std::vector<uint32_t> dist(num_terms);
  std::deque<rdf::TermId> queue;

  for (uint32_t s = 0; s < spec.num_shards; ++s) {
    rdf::RdfGraph& shard = shards[s];
    if (spec.halo_hops > 0 && spec.num_shards > 1) {
      std::fill(dist.begin(), dist.end(), kUnreached);
      queue.clear();
      for (rdf::TermId v = 0; v < num_terms; ++v) {
        if (ShardOf(v, spec.num_shards) == s) {
          dist[v] = 0;
          queue.push_back(v);
        }
      }
      const uint32_t limit = spec.halo_hops - 1;
      while (!queue.empty()) {
        rdf::TermId v = queue.front();
        queue.pop_front();
        if (dist[v] >= limit) continue;
        for (const rdf::Edge& e : full.OutEdges(v)) {
          if (dist[e.neighbor] == kUnreached) {
            dist[e.neighbor] = dist[v] + 1;
            queue.push_back(e.neighbor);
          }
        }
        for (const rdf::Edge& e : full.InEdges(v)) {
          if (dist[e.neighbor] == kUnreached) {
            dist[e.neighbor] = dist[v] + 1;
            queue.push_back(e.neighbor);
          }
        }
      }
    }
    for (rdf::TermId v = 0; v < num_terms; ++v) {
      for (const rdf::Edge& e : full.OutEdges(v)) {
        bool keep = ShardOf(v, spec.num_shards) == s ||
                    (subclass != rdf::kInvalidTerm && e.predicate == subclass);
        if (!keep && spec.halo_hops > 0 && spec.num_shards > 1) {
          keep = dist[v] != kUnreached || dist[e.neighbor] != kUnreached;
        }
        if (keep) shard.AddTriple(rdf::Triple{v, e.predicate, e.neighbor});
      }
    }
    GANSWER_RETURN_NOT_OK(shard.Finalize());
  }
  return shards;
}

std::vector<rdf::Triple> OwnedTriples(const rdf::RdfGraph& shard_graph,
                                      uint32_t shard_id,
                                      uint32_t num_shards) {
  std::vector<rdf::Triple> owned;
  for (rdf::TermId v = 0; v < shard_graph.NumTerms(); ++v) {
    if (ShardOf(v, num_shards) != shard_id) continue;
    for (const rdf::Edge& e : shard_graph.OutEdges(v)) {
      owned.push_back(rdf::Triple{v, e.predicate, e.neighbor});
    }
  }
  return owned;
}

std::string ShardSnapshotPath(const std::string& base_path, uint32_t shard,
                              uint32_t num_shards) {
  std::ostringstream out;
  out << base_path << ".shard" << shard << "-of-" << num_shards << ".snap";
  return out.str();
}

std::string ShardManifestPath(const std::string& base_path) {
  return base_path + ".shardmap";
}

StatusOr<ShardManifest> WriteShardedKb(
    const rdf::RdfGraph& full, const paraphrase::ParaphraseDictionary& dict,
    const std::string& base_path, const ShardSpec& spec,
    const SnapshotWriteOptions& options) {
  auto shards = BuildShardGraphs(full, spec);
  if (!shards.ok()) return shards.status();

  ShardManifest manifest;
  manifest.num_shards = spec.num_shards;
  manifest.halo_hops = spec.halo_hops;
  manifest.shards.reserve(spec.num_shards);
  for (uint32_t s = 0; s < spec.num_shards; ++s) {
    const rdf::RdfGraph& graph = (*shards)[s];
    ShardInfo info;
    info.path = ShardSnapshotPath(base_path, s, spec.num_shards);
    SnapshotStats stats;
    GANSWER_RETURN_NOT_OK(
        WriteSnapshotFile(graph, dict, info.path, &stats, options));
    info.fingerprint = stats.fingerprint;
    info.owned_triples = OwnedTriples(graph, s, spec.num_shards).size();
    info.total_triples = graph.NumTriples();
    manifest.shards.push_back(std::move(info));
  }
  GANSWER_RETURN_NOT_OK(
      WriteShardManifest(manifest, ShardManifestPath(base_path)));
  return manifest;
}

Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& path) {
  if (manifest.shards.size() != manifest.num_shards) {
    return Status::InvalidArgument("manifest shard count mismatch");
  }
  BinaryWriter w;
  w.WriteBytes(std::string_view(kManifestMagic, sizeof(kManifestMagic)));
  w.WriteU32(kManifestVersion);
  w.WriteU32(manifest.num_shards);
  w.WriteU32(manifest.halo_hops);
  for (const ShardInfo& info : manifest.shards) {
    w.WriteString(info.path);
    w.WriteU64(info.fingerprint);
    w.WriteU64(info.owned_triples);
    w.WriteU64(info.total_triples);
  }
  uint32_t crc = Crc32(w.buffer().data(), w.size());
  w.WriteU32(crc);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  out.flush();
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::Ok();
}

StatusOr<ShardManifest> ReadShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kManifestMagic) + sizeof(uint32_t)) {
    return Status::Corruption("shard manifest truncated");
  }
  // CRC covers everything before the trailing checksum word.
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  uint32_t actual_crc = Crc32(bytes.data(), bytes.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::Corruption("shard manifest CRC mismatch");
  }

  BinaryReader r(std::string_view(bytes.data(),
                                  bytes.size() - sizeof(uint32_t)));
  char magic[sizeof(kManifestMagic)];
  for (char& c : magic) {
    uint8_t b = 0;
    GANSWER_RETURN_NOT_OK(r.ReadU8(&b));
    c = static_cast<char>(b);
  }
  if (std::memcmp(magic, kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Status::Corruption("not a shard manifest");
  }
  uint32_t version = 0;
  GANSWER_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kManifestVersion) {
    return Status::Corruption("unsupported shard manifest version " +
                              std::to_string(version));
  }
  ShardManifest manifest;
  GANSWER_RETURN_NOT_OK(r.ReadU32(&manifest.num_shards));
  GANSWER_RETURN_NOT_OK(r.ReadU32(&manifest.halo_hops));
  if (manifest.num_shards == 0 || manifest.num_shards > kMaxShards) {
    return Status::Corruption("shard manifest: bad shard count");
  }
  manifest.shards.resize(manifest.num_shards);
  for (ShardInfo& info : manifest.shards) {
    GANSWER_RETURN_NOT_OK(r.ReadString(&info.path));
    GANSWER_RETURN_NOT_OK(r.ReadU64(&info.fingerprint));
    GANSWER_RETURN_NOT_OK(r.ReadU64(&info.owned_triples));
    GANSWER_RETURN_NOT_OK(r.ReadU64(&info.total_triples));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("shard manifest: trailing bytes");
  }
  return manifest;
}

}  // namespace store
}  // namespace ganswer
