#ifndef GANSWER_STORE_LIVE_DELTA_GRAPH_H_
#define GANSWER_STORE_LIVE_DELTA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "linking/entity_index.h"
#include "rdf/ntriples.h"
#include "rdf/rdf_graph.h"
#include "rdf/signature_index.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {
namespace live {

/// \brief Writer-side mutable delta over an immutable base snapshot.
///
/// Owns the master merged adjacency runs of every vertex the accumulated
/// delta touched, the extension term dictionary, and the bookkeeping
/// (predicate frequencies, class bits, counters) needed to stamp out a
/// consistent read view after each batch.
///
/// Single-writer: Apply() and BuildView() are called under the LiveKb
/// writer lock. Readers never see this object — BuildView() publishes
/// immutable copies (shared runs for untouched-vertices, a replayed
/// extension dictionary), so a view is safe to read while the writer keeps
/// mutating the master state.
///
/// Batch semantics: ops apply sequentially, last-wins. Set semantics —
/// adding a present triple and deleting an absent one are counted no-ops.
class DeltaGraph {
 public:
  struct BatchStats {
    uint64_t added = 0;         ///< Triples inserted.
    uint64_t deleted = 0;       ///< Triples removed.
    uint64_t noop_adds = 0;     ///< Adds of already-present triples.
    uint64_t noop_deletes = 0;  ///< Deletes of absent triples.
    uint64_t new_terms = 0;     ///< IRIs/literals first seen by this batch.
  };

  /// The immutable per-epoch read view: an overlay graph plus overlay
  /// indexes, all exact for the merged base+delta state.
  struct View {
    std::shared_ptr<const rdf::RdfGraph> graph;
    std::shared_ptr<const rdf::SignatureIndex> signatures;
    std::shared_ptr<const linking::EntityIndex> entities;
  };

  /// \p base is the loaded base snapshot; pinned for the delta's lifetime
  /// and by every view built from it.
  explicit DeltaGraph(std::shared_ptr<const Snapshot> base);

  DeltaGraph(const DeltaGraph&) = delete;
  DeltaGraph& operator=(const DeltaGraph&) = delete;

  /// Applies one batch to the master state.
  BatchStats Apply(const std::vector<rdf::UpdateOp>& ops);

  /// Publishes the current merged state as an immutable view. Cost is
  /// O(accumulated delta): vertices dirtied since the previous BuildView
  /// get freshly copied runs, every other touched vertex shares the run
  /// published before, and the index overlays recompute touched vertices
  /// only.
  View BuildView();

  bool empty() const { return touched_.empty() && new_terms_.empty(); }
  size_t delta_triples() const { return delta_adds_ + delta_deletes_; }
  size_t touched_vertices() const { return touched_.size(); }
  size_t new_terms() const { return new_terms_.size(); }
  /// Approximate heap bytes of the published runs (for /stats).
  size_t approx_bytes() const { return published_bytes_; }
  const std::shared_ptr<const Snapshot>& base() const { return base_; }

 private:
  struct VertexRuns {
    std::vector<rdf::Edge> out;
    std::vector<rdf::Edge> in;
    bool out_touched = false;  ///< This direction diverged from the base.
    bool in_touched = false;
  };

  VertexRuns& Touch(rdf::TermId v);
  uint64_t& PredFreq(rdf::TermId p);

  std::shared_ptr<const Snapshot> base_;
  /// Extension dictionary over the base graph's: global ids, new terms
  /// appended. Master copy — views get replayed immutable copies.
  rdf::TermDictionary dict_;
  /// (text, kind) of every new term in intern order, for view replay.
  std::vector<std::pair<std::string, rdf::TermKind>> new_terms_;

  /// Master merged runs of touched vertices (copy-on-first-touch from the
  /// base CSR, then mutated in place).
  std::unordered_map<rdf::TermId, VertexRuns> runs_;
  /// Everything ever touched since the base (endpoint of any changed
  /// edge) — the overlay set the per-epoch indexes recompute.
  std::unordered_set<rdf::TermId> touched_;
  /// Vertices whose runs changed since the last BuildView: only these get
  /// fresh published copies.
  std::unordered_set<rdf::TermId> dirty_;

  /// Published immutable runs, shared across consecutive views (and with
  /// in-flight readers). Values are replaced, never mutated.
  std::unordered_map<rdf::TermId,
                     std::shared_ptr<const std::vector<rdf::Edge>>>
      published_out_;
  std::unordered_map<rdf::TermId,
                     std::shared_ptr<const std::vector<rdf::Edge>>>
      published_in_;

  /// Absolute triple counts for predicates whose frequency changed.
  std::unordered_map<rdf::TermId, uint64_t> pred_freq_;
  /// Absolute class status of every touched vertex, refreshed for dirty
  /// vertices at BuildView (class-ness is a function of own adjacency).
  std::unordered_map<rdf::TermId, bool> is_class_;

  size_t num_triples_ = 0;
  size_t max_degree_ = 0;
  uint64_t delta_adds_ = 0;
  uint64_t delta_deletes_ = 0;
  size_t published_bytes_ = 0;
};

}  // namespace live
}  // namespace store
}  // namespace ganswer

#endif  // GANSWER_STORE_LIVE_DELTA_GRAPH_H_
