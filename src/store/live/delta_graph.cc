#include "store/live/delta_graph.h"

#include <algorithm>
#include <utility>

namespace ganswer {
namespace store {
namespace live {

using rdf::Edge;
using rdf::TermId;
using rdf::TermKind;

DeltaGraph::DeltaGraph(std::shared_ptr<const Snapshot> base)
    : base_(std::move(base)) {
  dict_.InitExtension(&base_->graph->dict());
  num_triples_ = base_->graph->NumTriples();
  max_degree_ = base_->graph->MaxDegree();
}

DeltaGraph::VertexRuns& DeltaGraph::Touch(TermId v) {
  auto [it, inserted] = runs_.try_emplace(v);
  if (inserted) {
    // Copy-on-first-touch: seed both directions from the base CSR (new
    // vertices have empty base runs).
    std::span<const Edge> out = base_->graph->OutEdges(v);
    std::span<const Edge> in = base_->graph->InEdges(v);
    it->second.out.assign(out.begin(), out.end());
    it->second.in.assign(in.begin(), in.end());
  }
  return it->second;
}

uint64_t& DeltaGraph::PredFreq(TermId p) {
  auto [it, inserted] = pred_freq_.try_emplace(p);
  if (inserted) it->second = base_->graph->PredicateFrequency(p);
  return it->second;
}

DeltaGraph::BatchStats DeltaGraph::Apply(
    const std::vector<rdf::UpdateOp>& ops) {
  BatchStats stats;
  auto intern = [&](const std::string& text, TermKind kind) {
    size_t before = dict_.size();
    TermId id = dict_.Intern(text, kind);
    if (dict_.size() > before) {
      new_terms_.emplace_back(text, kind);
      ++stats.new_terms;
    }
    return id;
  };
  // Merged-state membership without allocating runs for no-op lookups.
  auto has_edge = [&](TermId s, TermId p, TermId o) {
    auto it = runs_.find(s);
    if (it != runs_.end()) {
      return std::binary_search(it->second.out.begin(), it->second.out.end(),
                                Edge{p, o});
    }
    return base_->graph->HasTriple(s, p, o);
  };
  auto mark = [&](TermId s, TermId o) {
    touched_.insert(s);
    touched_.insert(o);
    dirty_.insert(s);
    dirty_.insert(o);
  };

  for (const rdf::UpdateOp& op : ops) {
    if (op.is_delete) {
      // Set semantics: a delete naming any unknown term, or an absent
      // triple, is a counted no-op — it never interns new terms.
      auto s = dict_.Lookup(op.subject);
      auto p = dict_.Lookup(op.predicate);
      auto o = dict_.Lookup(op.object, op.object_kind);
      if (!s || !p || !o || !has_edge(*s, *p, *o)) {
        ++stats.noop_deletes;
        continue;
      }
      VertexRuns& rs = Touch(*s);
      auto pos = std::lower_bound(rs.out.begin(), rs.out.end(), Edge{*p, *o});
      rs.out.erase(pos);
      rs.out_touched = true;
      VertexRuns& ro = Touch(*o);  // May rehash runs_; rs is done above.
      auto rpos =
          std::lower_bound(ro.in.begin(), ro.in.end(), Edge{*p, *s});
      ro.in.erase(rpos);
      ro.in_touched = true;
      --PredFreq(*p);
      --num_triples_;
      ++delta_deletes_;
      ++stats.deleted;
      mark(*s, *o);
      continue;
    }
    TermId s = intern(op.subject, TermKind::kIri);
    TermId p = intern(op.predicate, TermKind::kIri);
    TermId o = intern(op.object, op.object_kind);
    if (has_edge(s, p, o)) {
      ++stats.noop_adds;
      continue;
    }
    VertexRuns& rs = Touch(s);
    auto pos = std::lower_bound(rs.out.begin(), rs.out.end(), Edge{p, o});
    rs.out.insert(pos, Edge{p, o});
    rs.out_touched = true;
    VertexRuns& ro = Touch(o);  // May rehash runs_; rs is done above.
    auto rpos = std::lower_bound(ro.in.begin(), ro.in.end(), Edge{p, s});
    ro.in.insert(rpos, Edge{p, s});
    ro.in_touched = true;
    ++PredFreq(p);
    ++num_triples_;
    ++delta_adds_;
    ++stats.added;
    mark(s, o);
  }
  return stats;
}

DeltaGraph::View DeltaGraph::BuildView() {
  const rdf::RdfGraph& base_graph = *base_->graph;
  const TermId type_pred = base_graph.type_predicate();
  const TermId subclass_pred = base_graph.subclass_predicate();
  auto has_pred = [](const std::vector<Edge>& run, TermId p) {
    auto it = std::lower_bound(run.begin(), run.end(), Edge{p, 0});
    return it != run.end() && it->predicate == p;
  };

  // Re-publish only the vertices this commit dirtied; every other touched
  // vertex keeps sharing the run published for the previous epoch.
  for (TermId v : dirty_) {
    const VertexRuns& r = runs_.at(v);
    if (r.out_touched) {
      auto it = published_out_.find(v);
      if (it != published_out_.end()) {
        published_bytes_ -= it->second->size() * sizeof(Edge);
      }
      published_out_[v] =
          std::make_shared<const std::vector<Edge>>(r.out);
      published_bytes_ += r.out.size() * sizeof(Edge);
    }
    if (r.in_touched) {
      auto it = published_in_.find(v);
      if (it != published_in_.end()) {
        published_bytes_ -= it->second->size() * sizeof(Edge);
      }
      published_in_[v] = std::make_shared<const std::vector<Edge>>(r.in);
      published_bytes_ += r.in.size() * sizeof(Edge);
    }
    max_degree_ = std::max(max_degree_, r.out.size() + r.in.size());
    // Class-ness from the vertex's own merged adjacency: object of rdf:type,
    // or either side of rdfs:subClassOf.
    is_class_[v] = has_pred(r.in, type_pred) || has_pred(r.out, subclass_pred)
                   || has_pred(r.in, subclass_pred);
  }
  dirty_.clear();

  auto overlay = std::make_shared<rdf::GraphOverlay>();
  overlay->base =
      std::shared_ptr<const rdf::RdfGraph>(base_, base_->graph.get());
  overlay->out_runs = published_out_;
  overlay->in_runs = published_in_;
  overlay->is_class = is_class_;
  overlay->predicate_freq = pred_freq_;
  overlay->num_triples = num_triples_;
  overlay->max_degree = max_degree_;
  overlay->approx_bytes = published_bytes_;
  {
    // Merged predicate list: base predicates minus the ones the delta
    // drained to zero, plus the ones it introduced, ascending.
    std::span<const TermId> base_preds = base_graph.Predicates();
    std::unordered_set<TermId> base_set(base_preds.begin(), base_preds.end());
    overlay->predicates.assign(base_preds.begin(), base_preds.end());
    std::erase_if(overlay->predicates, [&](TermId p) {
      auto it = pred_freq_.find(p);
      return it != pred_freq_.end() && it->second == 0;
    });
    for (const auto& [p, freq] : pred_freq_) {
      if (freq > 0 && base_set.find(p) == base_set.end()) {
        overlay->predicates.push_back(p);
      }
    }
    std::sort(overlay->predicates.begin(), overlay->predicates.end());
  }

  // Per-view immutable dictionary: replay the recorded new terms over the
  // base. Readers of older views never observe later interning.
  rdf::TermDictionary view_dict;
  view_dict.InitExtension(&base_graph.dict());
  for (const auto& [text, kind] : new_terms_) view_dict.Intern(text, kind);

  View view;
  auto graph = std::make_shared<const rdf::RdfGraph>(std::move(overlay),
                                                     std::move(view_dict));
  view.graph = graph;

  std::vector<TermId> touched(touched_.begin(), touched_.end());
  std::sort(touched.begin(), touched.end());

  auto base_sigs = std::shared_ptr<const rdf::SignatureIndex>(
      base_, base_->signatures.get());
  view.signatures = std::make_shared<const rdf::SignatureIndex>(
      rdf::SignatureIndex::BuildOverlay(*graph, std::move(base_sigs),
                                        touched));
  auto base_entities = std::shared_ptr<const linking::EntityIndex>(
      base_, base_->entity_index.get());
  view.entities = linking::EntityIndex::BuildOverlay(
      *graph, std::move(base_entities), touched);
  return view;
}

}  // namespace live
}  // namespace store
}  // namespace ganswer
