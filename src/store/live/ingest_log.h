#ifndef GANSWER_STORE_LIVE_INGEST_LOG_H_
#define GANSWER_STORE_LIVE_INGEST_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/ntriples.h"

namespace ganswer {
namespace store {
namespace live {

/// One committed ingestion batch as recovered from the log: the epoch the
/// batch produced and its operations in application order.
struct LogRecord {
  uint64_t epoch = 0;
  std::vector<rdf::UpdateOp> ops;
};

/// \brief Crash-consistent write-ahead log of ingestion batches.
///
/// Record framing on disk:
///   [u32 payload_len][u32 crc32(payload)][payload]
/// with the payload serialized by BinaryWriter: u64 epoch, varint op count,
/// then per op a u8 flag byte (bit 0 = delete, bit 1 = literal object) and
/// the three term strings.
///
/// Durability contract: Append() returns only after the record is fsync'd,
/// so a batch acknowledged to a client survives a crash. A record Replay()
/// can read completely with a matching CRC is committed; anything after the
/// last such record (a torn header, a short payload, a CRC mismatch from a
/// partial write) is an uncommitted tail — Replay truncates the file there,
/// so a later Append never writes after garbage and recovery lands on
/// exactly the last committed epoch, never a half-applied batch.
class IngestLog {
 public:
  /// Opens \p path for appending, creating it when missing.
  static StatusOr<std::unique_ptr<IngestLog>> Open(const std::string& path);
  ~IngestLog();

  IngestLog(const IngestLog&) = delete;
  IngestLog& operator=(const IngestLog&) = delete;

  /// Durably appends one batch (write + fsync).
  Status Append(uint64_t epoch, const std::vector<rdf::UpdateOp>& ops);

  /// Reads every complete record of the log at \p path in order, truncating
  /// the uncommitted tail (see class comment). Missing file = empty log.
  static StatusOr<std::vector<LogRecord>> Replay(const std::string& path);

  /// Bytes currently in the log (committed records only at open; grows with
  /// each Append). Reported by /stats and used by the compaction trigger.
  size_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

  /// TEST ONLY: the next Append writes the record header and half the
  /// payload, fsyncs, then aborts the process — simulating a crash mid-
  /// batch. Replay must discard the torn record.
  void CrashMidAppendForTest() { crash_mid_append_for_test_ = true; }

 private:
  IngestLog(int fd, std::string path, size_t size_bytes)
      : fd_(fd), path_(std::move(path)), size_bytes_(size_bytes) {}

  int fd_ = -1;
  std::string path_;
  size_t size_bytes_ = 0;
  bool crash_mid_append_for_test_ = false;
};

/// \brief Root pointer of a live store directory, the atom of crash
/// consistency: which base snapshot is current, which WAL extends it, and
/// the epoch the base snapshot represents.
///
/// Written to a temp file, fsync'd, then rename(2)'d over the target — the
/// manifest is either the old pair or the new pair, never a mix. Compaction
/// writes the new snapshot and a fresh empty WAL first and swaps the
/// manifest last, so a crash at any point leaves a consistent, replayable
/// pair and no batch is ever applied twice.
struct LiveManifest {
  uint64_t base_epoch = 0;
  std::string base_snapshot;  ///< Path of the base snapshot container.
  std::string wal;            ///< Path of the WAL extending it.
};

Status WriteManifest(const std::string& path, const LiveManifest& manifest);
StatusOr<LiveManifest> ReadManifest(const std::string& path);

}  // namespace live
}  // namespace store
}  // namespace ganswer

#endif  // GANSWER_STORE_LIVE_INGEST_LOG_H_
