#include "store/live/live_kb.h"

#include <sys/stat.h>
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/timer.h"

namespace ganswer {
namespace store {
namespace live {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Status::IoError("mkdir " + dir + ": " + std::strerror(errno));
}

// Creates (or truncates) an empty file durably — the fresh WAL a compaction
// or bootstrap installs before the manifest starts pointing at it.
Status CreateEmptyFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("create " + path + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

const rdf::SparqlEngine& KbView::sparql() const {
  std::call_once(sparql_once_, [&] {
    rdf::SparqlEngine::Options options;
    // Base-snapshot statistics: ordering-only (join order), exact answers
    // either way; refreshed when compaction rewrites the base.
    options.stats = base_->stats.get();
    sparql_ = std::make_unique<rdf::SparqlEngine>(*graph_, options);
  });
  return *sparql_;
}

uint64_t LiveKb::MixIdentity(uint64_t fingerprint, uint64_t epoch) {
  // splitmix64-style finalizer over fingerprint ⊕ epoch: distinct epochs of
  // the same base get unrelated identities, so no cache key can collide
  // across commits.
  uint64_t x = fingerprint ^ (epoch + 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

LiveKb::LiveKb(Options options) : options_(std::move(options)) {
  manifest_path_ = options_.dir + "/live.manifest";
  if (options_.question_cache_capacity > 0) {
    cache_ = std::make_shared<ShardedLruCache<qa::GAnswer::Response>>(
        ShardedLruCache<qa::GAnswer::Response>::Options{
            options_.question_cache_capacity, options_.question_cache_shards});
  }
}

LiveKb::~LiveKb() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      stop_ = true;
    }
    bg_cv_.notify_all();
    compactor_.join();
  }
}

StatusOr<std::unique_ptr<LiveKb>> LiveKb::Open(Options options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("LiveKb::Options::dir is required");
  }
  if (options.lexicon == nullptr) {
    return Status::InvalidArgument("LiveKb::Options::lexicon is required");
  }
  auto kb = std::unique_ptr<LiveKb>(new LiveKb(std::move(options)));
  {
    std::lock_guard<std::mutex> lock(kb->writer_mu_);
    GANSWER_RETURN_NOT_OK(kb->OpenLocked());
  }
  if (kb->options_.compact_threshold > 0 &&
      kb->options_.background_compaction) {
    kb->compactor_ = std::thread([kb = kb.get()] { kb->CompactionLoop(); });
  }
  return kb;
}

Status LiveKb::OpenLocked() {
  GANSWER_RETURN_NOT_OK(EnsureDir(options_.dir));
  StatusOr<LiveManifest> manifest = ReadManifest(manifest_path_);
  if (!manifest.ok()) {
    if (manifest.status().code() != Status::Code::kNotFound) {
      return manifest.status();
    }
    // First open: bootstrap from the caller's snapshot. A leftover WAL
    // without a manifest is pre-bootstrap garbage (the manifest is written
    // last), so truncate it.
    if (options_.base_snapshot.empty()) {
      return Status::InvalidArgument(
          "no manifest in " + options_.dir +
          " and no bootstrap base_snapshot provided");
    }
    LiveManifest fresh;
    fresh.base_epoch = 0;
    fresh.base_snapshot = options_.base_snapshot;
    fresh.wal = options_.dir + "/wal-0.log";
    GANSWER_RETURN_NOT_OK(CreateEmptyFile(fresh.wal));
    GANSWER_RETURN_NOT_OK(WriteManifest(manifest_path_, fresh));
    manifest = fresh;
  }
  manifest_ = std::move(manifest).value();

  auto loaded = ReadSnapshotFile(
      manifest_.base_snapshot, options_.lexicon,
      options_.mmap_base ? SnapshotLoadMode::kMmap : SnapshotLoadMode::kRead);
  if (!loaded.ok()) return loaded.status();
  base_ = std::make_shared<const Snapshot>(std::move(loaded).value());
  delta_ = std::make_unique<DeltaGraph>(base_);

  // Recovery: re-apply every committed batch; the torn tail (if any) was
  // never acknowledged and is truncated by Replay.
  auto replayed = IngestLog::Replay(manifest_.wal);
  if (!replayed.ok()) return replayed.status();
  epoch_ = manifest_.base_epoch;
  for (const LogRecord& rec : replayed.value()) {
    if (rec.epoch != epoch_ + 1) {
      return Status::Corruption(
          "WAL epoch gap: expected " + std::to_string(epoch_ + 1) + ", got " +
          std::to_string(rec.epoch));
    }
    DeltaGraph::BatchStats stats = delta_->Apply(rec.ops);
    epoch_ = rec.epoch;
    batches_.Increment();
    triples_added_.Add(stats.added);
    triples_deleted_.Add(stats.deleted);
    noop_adds_.Add(stats.noop_adds);
    noop_deletes_.Add(stats.noop_deletes);
    new_terms_.Add(stats.new_terms);
  }

  auto log = IngestLog::Open(manifest_.wal);
  if (!log.ok()) return log.status();
  log_ = std::move(log).value();

  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    gauges_.epoch = epoch_;
    gauges_.delta_triples = delta_->delta_triples();
    gauges_.touched_vertices = delta_->touched_vertices();
    gauges_.delta_bytes = delta_->approx_bytes();
    gauges_.wal_bytes = log_->size_bytes();
  }
  PublishViewLocked();
  return Status::Ok();
}

void LiveKb::PublishViewLocked() {
  auto view = std::shared_ptr<KbView>(new KbView());
  view->base_ = base_;
  view->epoch_ = epoch_;
  view->identity_ = MixIdentity(base_->fingerprint, epoch_);
  view->delta_triples_ = delta_->delta_triples();
  if (delta_->empty()) {
    // Pure-base epoch (bootstrap, or right after compaction): alias the
    // snapshot's own structures, no overlay cost at all.
    view->graph_ =
        std::shared_ptr<const rdf::RdfGraph>(base_, base_->graph.get());
    view->signatures_ = std::shared_ptr<const rdf::SignatureIndex>(
        base_, base_->signatures.get());
    view->entities_ = std::shared_ptr<const linking::EntityIndex>(
        base_, base_->entity_index.get());
  } else {
    DeltaGraph::View merged = delta_->BuildView();
    view->graph_ = std::move(merged.graph);
    view->signatures_ = std::move(merged.signatures);
    view->entities_ = std::move(merged.entities);
  }

  qa::GAnswer::Options qa_options = options_.qa;
  qa_options.snapshot_identity = view->identity_;
  qa_options.entity_index = view->entities_.get();
  qa_options.matching.signatures = view->signatures_.get();
  // Base statistics serve every epoch until compaction refreshes them:
  // ordering-only, the ranked answers are identical (rdf/graph_stats.h).
  qa_options.graph_stats = base_->stats.get();
  qa_options.shared_cache = cache_;
  view->qa_ = std::make_unique<qa::GAnswer>(view->graph_.get(),
                                            options_.lexicon,
                                            base_->dictionary.get(),
                                            qa_options);

  // Swap the published pointer under view_mu_ and drop the previous view
  // outside it: releasing the last reference to an old epoch tears down a
  // whole KbView (graph overlay, QA system), which must not run inside
  // the readers' critical section.
  std::shared_ptr<const KbView> old;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    old = std::move(current_);
    current_ = std::move(view);
  }
}

StatusOr<LiveKb::BatchResult> LiveKb::ApplyText(std::string_view ntriples) {
  auto ops = rdf::NTriplesReader::ParseUpdate(ntriples);
  if (!ops.ok()) return ops.status();
  return Apply(ops.value());
}

StatusOr<LiveKb::BatchResult> LiveKb::Apply(
    const std::vector<rdf::UpdateOp>& ops) {
  if (ops.empty()) return Status::InvalidArgument("empty update batch");
  if (ops.size() > options_.max_batch_ops) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(ops.size()) + " ops exceeds limit of " +
        std::to_string(options_.max_batch_ops));
  }
  WallTimer timer;
  bool arm_compaction = false;
  BatchResult result;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    // WAL first: once the fsync'd record is on disk the batch is
    // committed; crash after this point replays it on reopen.
    GANSWER_RETURN_NOT_OK(log_->Append(epoch_ + 1, ops));
    result.stats = delta_->Apply(ops);
    ++epoch_;
    result.epoch = epoch_;
    PublishViewLocked();
    arm_compaction = options_.compact_threshold > 0 &&
                     delta_->delta_triples() >= options_.compact_threshold;

    batches_.Increment();
    triples_added_.Add(result.stats.added);
    triples_deleted_.Add(result.stats.deleted);
    noop_adds_.Add(result.stats.noop_adds);
    noop_deletes_.Add(result.stats.noop_deletes);
    new_terms_.Add(result.stats.new_terms);

    std::lock_guard<std::mutex> counters_lock(counters_mu_);
    gauges_.epoch = epoch_;
    gauges_.delta_triples = delta_->delta_triples();
    gauges_.touched_vertices = delta_->touched_vertices();
    gauges_.delta_bytes = delta_->approx_bytes();
    gauges_.wal_bytes = log_->size_bytes();
    gauges_.last_batch_ms = timer.ElapsedMillis();
  }
  if (arm_compaction) {
    if (options_.background_compaction) {
      {
        std::lock_guard<std::mutex> lock(bg_mu_);
        compaction_due_ = true;
      }
      bg_cv_.notify_one();
    } else {
      Status st = Compact();
      if (!st.ok()) failed_compactions_.Increment();
    }
  }
  return result;
}

void LiveKb::CompactionLoop() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (true) {
    bg_cv_.wait(lock, [&] { return stop_ || compaction_due_; });
    if (stop_) return;
    compaction_due_ = false;
    lock.unlock();
    Status st = Compact();
    if (!st.ok()) failed_compactions_.Increment();
    lock.lock();
  }
}

Status LiveKb::Compact() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return CompactLocked();
}

Status LiveKb::CompactLocked() {
  if (delta_->empty()) return Status::Ok();
  WallTimer timer;
  std::shared_ptr<const KbView> cur = view();
  const rdf::RdfGraph& live = cur->graph();
  const rdf::TermDictionary& dict = live.dict();

  // Materialize the merged graph flat, preserving term ids: replaying the
  // dictionary texts in id order reproduces every id (the well-known
  // predicates the fresh graph pre-interns are ids 0..2 of the base too),
  // so the CSR triples can be copied as encoded ids.
  rdf::RdfGraph flat;
  for (rdf::TermId id = 0; id < dict.size(); ++id) {
    rdf::TermId got = flat.dict().Intern(dict.text(id), dict.kind(id));
    if (got != id) {
      return Status::Internal("compaction dictionary replay id mismatch");
    }
  }
  for (rdf::TermId v = 0; v < dict.size(); ++v) {
    for (const rdf::Edge& e : live.OutEdges(v)) {
      flat.AddTriple(rdf::Triple{v, e.predicate, e.neighbor});
    }
  }
  GANSWER_RETURN_NOT_OK(flat.Finalize());

  // New pair first, manifest swap last: a crash anywhere leaves either the
  // old (snapshot, WAL) pair — replayed as before — or the new one.
  const std::string suffix = std::to_string(epoch_);
  std::string snap_path = options_.dir + "/base-" + suffix + ".snap";
  std::string wal_path = options_.dir + "/wal-" + suffix + ".log";
  SnapshotWriteOptions write_options;
  write_options.compress = options_.compress_compacted;
  GANSWER_RETURN_NOT_OK(WriteSnapshotFile(flat, *base_->dictionary, snap_path,
                                          nullptr, write_options));
  GANSWER_RETURN_NOT_OK(CreateEmptyFile(wal_path));
  if (crash_before_manifest_swap_for_test_) std::abort();
  LiveManifest next;
  next.base_epoch = epoch_;
  next.base_snapshot = snap_path;
  next.wal = wal_path;
  GANSWER_RETURN_NOT_OK(WriteManifest(manifest_path_, next));

  std::string old_snapshot = manifest_.base_snapshot;
  std::string old_wal = manifest_.wal;
  manifest_ = next;

  auto loaded = ReadSnapshotFile(
      snap_path, options_.lexicon,
      options_.mmap_base ? SnapshotLoadMode::kMmap : SnapshotLoadMode::kRead);
  if (!loaded.ok()) return loaded.status();
  base_ = std::make_shared<const Snapshot>(std::move(loaded).value());
  delta_ = std::make_unique<DeltaGraph>(base_);
  auto log = IngestLog::Open(wal_path);
  if (!log.ok()) return log.status();
  log_ = std::move(log).value();
  // Same epoch, same answers, fresh statistics and flat CSR adjacency.
  PublishViewLocked();

  // Superseded files. The bootstrap snapshot outside the store directory is
  // the caller's and stays.
  ::unlink(old_wal.c_str());
  if (StartsWith(old_snapshot, options_.dir + "/")) {
    ::unlink(old_snapshot.c_str());
  }

  compactions_.Increment();
  std::lock_guard<std::mutex> counters_lock(counters_mu_);
  gauges_.delta_triples = 0;
  gauges_.touched_vertices = 0;
  gauges_.delta_bytes = 0;
  gauges_.wal_bytes = 0;
  gauges_.last_compaction_ms = timer.ElapsedMillis();
  return Status::Ok();
}

LiveKb::IngestCounters LiveKb::counters() const {
  IngestCounters c;
  c.batches = batches_.Value();
  c.triples_added = triples_added_.Value();
  c.triples_deleted = triples_deleted_.Value();
  c.noop_adds = noop_adds_.Value();
  c.noop_deletes = noop_deletes_.Value();
  c.new_terms = new_terms_.Value();
  c.compactions = compactions_.Value();
  c.failed_compactions = failed_compactions_.Value();
  std::lock_guard<std::mutex> lock(counters_mu_);
  c.epoch = gauges_.epoch;
  c.delta_triples = gauges_.delta_triples;
  c.touched_vertices = gauges_.touched_vertices;
  c.delta_bytes = gauges_.delta_bytes;
  c.wal_bytes = gauges_.wal_bytes;
  c.last_batch_ms = gauges_.last_batch_ms;
  c.last_compaction_ms = gauges_.last_compaction_ms;
  return c;
}

}  // namespace live
}  // namespace store
}  // namespace ganswer
