#include "store/live/ingest_log.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/binary_io.h"

namespace ganswer {
namespace store {
namespace live {

namespace {

constexpr uint8_t kOpDeleteBit = 1;
constexpr uint8_t kOpLiteralBit = 2;

std::string EncodeRecordPayload(uint64_t epoch,
                                const std::vector<rdf::UpdateOp>& ops) {
  BinaryWriter w;
  w.WriteU64(epoch);
  w.WriteVarint(ops.size());
  for (const rdf::UpdateOp& op : ops) {
    uint8_t flags = 0;
    if (op.is_delete) flags |= kOpDeleteBit;
    if (op.object_kind == rdf::TermKind::kLiteral) flags |= kOpLiteralBit;
    w.WriteU8(flags);
    w.WriteString(op.subject);
    w.WriteString(op.predicate);
    w.WriteString(op.object);
  }
  return w.Release();
}

Status DecodeRecordPayload(std::string_view payload, LogRecord* out) {
  BinaryReader r(payload);
  GANSWER_RETURN_NOT_OK(r.ReadU64(&out->epoch));
  uint64_t count = 0;
  GANSWER_RETURN_NOT_OK(r.ReadVarint(&count));
  out->ops.clear();
  out->ops.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    rdf::UpdateOp op;
    uint8_t flags = 0;
    GANSWER_RETURN_NOT_OK(r.ReadU8(&flags));
    op.is_delete = (flags & kOpDeleteBit) != 0;
    op.object_kind = (flags & kOpLiteralBit) != 0 ? rdf::TermKind::kLiteral
                                                  : rdf::TermKind::kIri;
    GANSWER_RETURN_NOT_OK(r.ReadString(&op.subject));
    GANSWER_RETURN_NOT_OK(r.ReadString(&op.predicate));
    GANSWER_RETURN_NOT_OK(r.ReadString(&op.object));
    out->ops.push_back(std::move(op));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes in WAL record payload");
  }
  return Status::Ok();
}

Status WriteFully(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("WAL write: ") +
                             std::strerror(errno));
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

// fsyncs the directory containing \p path so a freshly created or renamed
// entry is durable, not just its contents.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open dir " + dir + ": " + std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync dir " + dir + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<IngestLog>> IngestLog::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("open WAL " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IoError("stat WAL " + path + ": " + std::strerror(saved));
  }
  return std::unique_ptr<IngestLog>(
      new IngestLog(fd, path, static_cast<size_t>(st.st_size)));
}

IngestLog::~IngestLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status IngestLog::Append(uint64_t epoch,
                         const std::vector<rdf::UpdateOp>& ops) {
  std::string payload = EncodeRecordPayload(epoch, ops);
  BinaryWriter framed;
  framed.WriteU32(static_cast<uint32_t>(payload.size()));
  framed.WriteU32(Crc32(payload.data(), payload.size()));
  framed.WriteBytes(payload);
  const std::string& record = framed.buffer();
  if (crash_mid_append_for_test_) {
    // Torn write: the header plus half the payload reach the disk, then the
    // process dies. The record fails its CRC on replay and is truncated.
    size_t torn = 8 + payload.size() / 2;
    (void)WriteFully(fd_, record.data(), torn);
    (void)::fsync(fd_);
    std::abort();
  }
  GANSWER_RETURN_NOT_OK(WriteFully(fd_, record.data(), record.size()));
  if (::fsync(fd_) != 0) {
    return Status::IoError("fsync WAL: " + std::string(std::strerror(errno)));
  }
  size_bytes_ += record.size();
  return Status::Ok();
}

StatusOr<std::vector<LogRecord>> IngestLog::Replay(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::vector<LogRecord>();  // No log yet: empty history.
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  in.close();

  std::vector<LogRecord> records;
  size_t pos = 0;
  while (pos < bytes.size()) {
    // A record that does not fit (torn header or short payload) or fails
    // its checksum marks the uncommitted tail: stop there.
    if (bytes.size() - pos < 8) break;
    uint32_t len, crc;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (bytes.size() - pos - 8 < len) break;
    std::string_view payload(bytes.data() + pos + 8, len);
    if (Crc32(payload.data(), payload.size()) != crc) break;
    LogRecord rec;
    GANSWER_RETURN_NOT_OK(DecodeRecordPayload(payload, &rec));
    records.push_back(std::move(rec));
    pos += 8 + len;
  }
  if (pos < bytes.size()) {
    // Drop the torn tail so subsequent appends extend committed data only.
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Status::IoError("truncate WAL tail: " +
                             std::string(std::strerror(errno)));
    }
  }
  return records;
}

Status WriteManifest(const std::string& path, const LiveManifest& manifest) {
  BinaryWriter w;
  w.WriteBytes("GLIV");
  w.WriteU32(1);  // manifest format version
  w.WriteU64(manifest.base_epoch);
  w.WriteString(manifest.base_snapshot);
  w.WriteString(manifest.wal);
  uint32_t crc = Crc32(w.buffer().data(), w.buffer().size());
  w.WriteU32(crc);
  const std::string& bytes = w.buffer();

  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("open " + tmp + ": " + std::strerror(errno));
  }
  Status st = WriteFully(fd, bytes.data(), bytes.size());
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IoError("fsync manifest: " + std::string(std::strerror(errno)));
  }
  ::close(fd);
  if (!st.ok()) return st;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename manifest: " +
                           std::string(std::strerror(errno)));
  }
  return SyncParentDir(path);
}

StatusOr<LiveManifest> ReadManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no manifest at " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  if (bytes.size() < 4 + 4 + 4) {
    return Status::Corruption("manifest too short");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - 4, 4);
  if (Crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::Corruption("manifest CRC mismatch");
  }
  if (bytes.compare(0, 4, "GLIV") != 0) {
    return Status::Corruption("bad manifest magic");
  }
  BinaryReader r(std::string_view(bytes).substr(4, bytes.size() - 8));
  uint32_t version = 0;
  GANSWER_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != 1) {
    return Status::Corruption("unsupported manifest version " +
                              std::to_string(version));
  }
  LiveManifest m;
  GANSWER_RETURN_NOT_OK(r.ReadU64(&m.base_epoch));
  GANSWER_RETURN_NOT_OK(r.ReadString(&m.base_snapshot));
  GANSWER_RETURN_NOT_OK(r.ReadString(&m.wal));
  return m;
}

}  // namespace live
}  // namespace store
}  // namespace ganswer
