#ifndef GANSWER_STORE_LIVE_LIVE_KB_H_
#define GANSWER_STORE_LIVE_LIVE_KB_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/lru_cache.h"
#include "common/status.h"
#include "common/striped_counter.h"
#include "nlp/lexicon.h"
#include "qa/ganswer.h"
#include "rdf/ntriples.h"
#include "rdf/sparql_engine.h"
#include "store/live/delta_graph.h"
#include "store/live/ingest_log.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {
namespace live {

/// \brief One immutable epoch of the live knowledge base: the merged graph
/// (base + delta overlay), the overlay indexes, and a ready QA system over
/// them. Handed out by LiveKb::view() as a refcounted snapshot — an
/// in-flight query keeps its view alive across any number of commits and
/// compactions, so matching never observes a mutation and never blocks.
class KbView {
 public:
  uint64_t epoch() const { return epoch_; }
  /// Cache identity of this epoch's data: the base snapshot fingerprint
  /// mixed with the epoch. Every question-cache key embeds it, so entries
  /// cached against an older epoch are unreachable after any commit.
  uint64_t identity() const { return identity_; }
  const rdf::RdfGraph& graph() const { return *graph_; }
  const Snapshot& base() const { return *base_; }
  const qa::GAnswer& qa() const { return *qa_; }
  /// The SPARQL engine over this view, built lazily on first use (one
  /// plan-cost setup per epoch, only when /sparql traffic arrives).
  const rdf::SparqlEngine& sparql() const;
  /// Accumulated delta size (adds + deletes since the current base).
  size_t delta_triples() const { return delta_triples_; }

  KbView(const KbView&) = delete;
  KbView& operator=(const KbView&) = delete;

 private:
  friend class LiveKb;
  KbView() = default;

  std::shared_ptr<const Snapshot> base_;
  std::shared_ptr<const rdf::RdfGraph> graph_;
  std::shared_ptr<const rdf::SignatureIndex> signatures_;
  std::shared_ptr<const linking::EntityIndex> entities_;
  std::unique_ptr<qa::GAnswer> qa_;
  uint64_t epoch_ = 0;
  uint64_t identity_ = 0;
  size_t delta_triples_ = 0;
  mutable std::once_flag sparql_once_;
  mutable std::unique_ptr<rdf::SparqlEngine> sparql_;
};

/// \brief The live-updatable knowledge base: an immutable base snapshot, a
/// mutable delta (DeltaGraph), a crash-consistent WAL (IngestLog), and an
/// epoch-swapped current view.
///
/// Concurrency model (RCU-style):
///  - Readers call view() — a shared_ptr copy under a pointer-swap mutex
///    held only for the refcount bump — and use the returned KbView for
///    the whole request. Queries never take the writer lock and never
///    block on ingestion or compaction work.
///  - Writers (Apply/Compact) serialize on one mutex. A commit appends the
///    batch to the WAL (fsync), applies it to the delta, builds a fresh
///    KbView in O(accumulated delta), and publishes it with one pointer
///    swap. Old views drain as their last readers finish.
///
/// Durability: a batch is acknowledged only after its WAL record is
/// fsync'd. Reopening a directory replays the WAL over the manifest's base
/// snapshot and lands on exactly the last committed epoch (torn tails are
/// truncated). Compaction folds base+delta into a fresh snapshot file and
/// swaps the manifest atomically — crash at any point leaves a consistent,
/// replayable (snapshot, WAL) pair and never applies a batch twice.
class LiveKb {
 public:
  struct Options {
    /// Store directory: manifest, WAL and compacted snapshots live here.
    std::string dir;
    /// Base snapshot to bootstrap from when \p dir has no manifest yet
    /// (first open). Ignored on reopen. The file is never modified;
    /// compaction writes new snapshots under \p dir.
    std::string base_snapshot;
    /// Backs the paraphrase dictionary and per-view QA systems; must
    /// outlive the LiveKb.
    const nlp::Lexicon* lexicon = nullptr;
    /// Template for each view's QA system; entity index, signatures,
    /// stats, cache and snapshot identity are overridden per view.
    qa::GAnswer::Options qa;
    /// The shared question cache across all epoch views (stale-epoch
    /// entries are unreachable via the key's identity prefix and age out
    /// by LRU). 0 disables caching.
    size_t question_cache_capacity = 1024;
    /// 0 = derive from the CPU topology (common/lru_cache.h).
    size_t question_cache_shards = 0;
    /// Accumulated delta size (adds + deletes) that arms compaction.
    /// 0 = compact only when Compact() is called explicitly.
    size_t compact_threshold = 0;
    /// Run armed compactions on a background thread (queries are
    /// unaffected either way; Apply calls block for the duration when a
    /// foreground compaction runs).
    bool background_compaction = true;
    /// Admission bound: one batch may carry at most this many operations.
    size_t max_batch_ops = 100000;
    /// Write compacted snapshots compressed.
    bool compress_compacted = false;
    /// Load base snapshots via mmap (zero-copy) instead of bulk read.
    bool mmap_base = false;
  };

  /// Cumulative ingestion counters for /stats.
  struct IngestCounters {
    uint64_t epoch = 0;
    uint64_t batches = 0;
    uint64_t triples_added = 0;
    uint64_t triples_deleted = 0;
    uint64_t noop_adds = 0;
    uint64_t noop_deletes = 0;
    uint64_t new_terms = 0;
    uint64_t delta_triples = 0;     ///< Since the current base snapshot.
    uint64_t touched_vertices = 0;  ///< Since the current base snapshot.
    uint64_t delta_bytes = 0;       ///< Approx. heap bytes of the delta.
    uint64_t wal_bytes = 0;
    uint64_t compactions = 0;
    uint64_t failed_compactions = 0;
    double last_batch_ms = 0;
    double last_compaction_ms = 0;
  };

  struct BatchResult {
    uint64_t epoch = 0;  ///< The epoch this batch produced.
    DeltaGraph::BatchStats stats;
  };

  /// Opens (or bootstraps) the live store at \p options.dir and recovers to
  /// the last committed epoch.
  static StatusOr<std::unique_ptr<LiveKb>> Open(Options options);
  ~LiveKb();

  LiveKb(const LiveKb&) = delete;
  LiveKb& operator=(const LiveKb&) = delete;

  /// The current epoch's view; a refcount bump under a pointer-swap
  /// mutex (held for nanoseconds, never during ingestion, compaction,
  /// view construction or I/O). Never null after Open.
  std::shared_ptr<const KbView> view() const {
    std::lock_guard<std::mutex> lock(view_mu_);
    return current_;
  }

  /// Parses \p ntriples as an update batch (rdf::NTriplesReader::
  /// ParseUpdate: lines are adds, `-`-prefixed lines deletes) and commits
  /// it. The POST /update entry point.
  StatusOr<BatchResult> ApplyText(std::string_view ntriples);
  /// Validates, logs (fsync), applies and publishes one batch.
  StatusOr<BatchResult> Apply(const std::vector<rdf::UpdateOp>& ops);

  /// Folds base + delta into a fresh compacted snapshot under dir, swaps
  /// the manifest, resets the delta and WAL. The published epoch and its
  /// answers are unchanged; queries keep running throughout.
  Status Compact();

  IngestCounters counters() const;
  const Options& options() const { return options_; }

  /// TEST ONLY: the next Apply tears its WAL write mid-record and aborts.
  void CrashMidBatchForTest() { log_->CrashMidAppendForTest(); }
  /// TEST ONLY: the next Compact aborts after writing the new snapshot but
  /// before the manifest swap — reopen must recover the old pair.
  void CrashBeforeManifestSwapForTest() {
    crash_before_manifest_swap_for_test_ = true;
  }

 private:
  explicit LiveKb(Options options);

  Status OpenLocked();
  Status CompactLocked();
  /// Builds and atomically publishes the view of the current delta state.
  void PublishViewLocked();
  void CompactionLoop();

  static uint64_t MixIdentity(uint64_t fingerprint, uint64_t epoch);

  Options options_;
  std::string manifest_path_;
  LiveManifest manifest_;

  /// Serializes writers (Apply, Compact, recovery). Never taken by view().
  mutable std::mutex writer_mu_;
  std::shared_ptr<const Snapshot> base_;
  std::unique_ptr<DeltaGraph> delta_;
  std::unique_ptr<IngestLog> log_;
  uint64_t epoch_ = 0;
  std::shared_ptr<ShardedLruCache<qa::GAnswer::Response>> cache_;

  /// Guards only the published-view pointer. Readers hold it to copy the
  /// shared_ptr (one refcount increment); the writer holds it to swap in
  /// the next epoch's pointer. Never held while building a view, applying
  /// a batch, compacting, or touching disk — so readers never wait on
  /// writer *work*, only on another nanosecond-scale pointer operation.
  /// (std::atomic<shared_ptr> would make reads lock-free, but libstdc++'s
  /// implementation unlocks its embedded spinlock with a relaxed RMW in
  /// load(), which is formally racy and trips TSAN; an explicit mutex is
  /// portable and clean under the memory model.)
  mutable std::mutex view_mu_;
  std::shared_ptr<const KbView> current_;

  // Monotone ingest events: striped per core, exact on read. The write
  // path is single-writer under writer_mu_, but counters() runs on every
  // /stats request — striping keeps those reads from bouncing the
  // writer's cache lines.
  StripedCounter batches_;
  StripedCounter triples_added_;
  StripedCounter triples_deleted_;
  StripedCounter noop_adds_;
  StripedCounter noop_deletes_;
  StripedCounter new_terms_;
  StripedCounter compactions_;
  StripedCounter failed_compactions_;
  /// Gauges — current values, not event counts — stay mutex-guarded so a
  /// counters() snapshot sees one consistent post-batch state.
  struct Gauges {
    uint64_t epoch = 0;
    uint64_t delta_triples = 0;
    uint64_t touched_vertices = 0;
    uint64_t delta_bytes = 0;
    uint64_t wal_bytes = 0;
    double last_batch_ms = 0;
    double last_compaction_ms = 0;
  };
  mutable std::mutex counters_mu_;
  Gauges gauges_;

  std::thread compactor_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool compaction_due_ = false;
  bool stop_ = false;

  bool crash_before_manifest_swap_for_test_ = false;
};

}  // namespace live
}  // namespace store
}  // namespace ganswer

#endif  // GANSWER_STORE_LIVE_LIVE_KB_H_
