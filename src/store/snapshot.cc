#include "store/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/binary_io.h"

namespace ganswer {
namespace store {

namespace {

// Layout:
//   magic(8) | byte-order mark u32 | version u32 | section count u32
//   section table, one entry per section:
//     v1/v2: { id u32, offset u64, size u64, crc32 u32 }
//     v3:    { id u32, encoding u32, offset u64, size u64, crc32 u32 }
//   section payloads (offsets are absolute, payloads contiguous; v3 payloads
//   start on 8-byte boundaries so raw pod arrays are mappable in place)
// The fingerprint is the CRC32 of the section table, i.e. of all section
// CRCs — a cheap stable identity for the whole container.
constexpr char kMagic[8] = {'G', 'A', 'N', 'S', 'S', 'N', 'A', 'P'};
constexpr uint32_t kByteOrderMark = 0x01020304u;

enum SectionId : uint32_t {
  kGraphSection = 1,        // term dictionary + CSR adjacency + class bitmap
  kSignatureSection = 2,    // per-vertex signature arrays
  kEntityIndexSection = 3,  // label/token postings
  kDictionarySection = 4,   // paraphrase phrase records + inverted index
  kStatsSection = 5,        // planner cardinality statistics (version >= 2)
};

struct SectionEntry {
  uint32_t id = 0;
  SectionEncoding encoding = SectionEncoding::kRaw;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

size_t TableEntrySize(uint32_t version) {
  size_t base = sizeof(uint32_t) + 2 * sizeof(uint64_t) + sizeof(uint32_t);
  return version >= 3 ? base + sizeof(uint32_t) : base;
}

constexpr size_t kNumSections = 5;

}  // namespace

Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const rdf::SignatureIndex& signatures,
                     const linking::EntityIndex& entity_index,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats,
                     const SnapshotWriteOptions& options) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (!graph.finalized()) {
    return Status::InvalidArgument("snapshot requires a finalized graph");
  }
  if (options.version < 2 || options.version > kSnapshotVersion) {
    return Status::InvalidArgument("unwritable snapshot version " +
                                   std::to_string(options.version));
  }
  const bool v3 = options.version >= 3;
  if (options.compress && !v3) {
    return Status::InvalidArgument(
        "compressed sections require snapshot version 3");
  }

  // The whole container is assembled in one writer: header, a zeroed
  // section table, then each payload appended directly. CRCs are taken over
  // the payload's final resting place and back-patched into the table, so
  // no section is ever staged in a side buffer (peak memory is the
  // container, not the container plus its largest section).
  BinaryWriter w;
  w.set_aligned(v3);
  w.WriteBytes(std::string_view(kMagic, sizeof(kMagic)));
  w.WriteU32(kByteOrderMark);
  w.WriteU32(options.version);
  w.WriteU32(kNumSections);
  const size_t entry_size = TableEntrySize(options.version);
  const size_t table_start = w.size();
  w.WriteZeros(kNumSections * entry_size);

  size_t section_sizes[kNumSections] = {};
  size_t section_index = 0;
  auto begin_section = [&]() {
    if (v3) w.AlignTo(8);
    return w.size();
  };
  auto end_section = [&](uint32_t id, SectionEncoding encoding,
                         size_t offset) {
    size_t size = w.size() - offset;
    uint32_t crc = Crc32(w.buffer().data() + offset, size);
    size_t at = table_start + section_index * entry_size;
    w.PatchU32(at, id);
    at += sizeof(uint32_t);
    if (v3) {
      w.PatchU32(at, static_cast<uint32_t>(encoding));
      at += sizeof(uint32_t);
    }
    w.PatchU64(at, offset);
    w.PatchU64(at + sizeof(uint64_t), size);
    w.PatchU32(at + 2 * sizeof(uint64_t), crc);
    section_sizes[section_index] = size;
    ++section_index;
  };
  SectionEncoding packed = options.compress ? SectionEncoding::kCompressed
                                            : SectionEncoding::kRaw;

  {
    size_t offset = begin_section();
    GANSWER_RETURN_NOT_OK(graph.SaveBinary(&w, options.compress));
    end_section(kGraphSection, packed, offset);
  }
  {
    size_t offset = begin_section();
    signatures.SaveBinary(&w, options.compress);
    end_section(kSignatureSection, packed, offset);
  }
  {
    size_t offset = begin_section();
    entity_index.SaveBinary(&w, options.compress);
    end_section(kEntityIndexSection, packed, offset);
  }
  {
    size_t offset = begin_section();
    dict.SaveBinary(&w);
    end_section(kDictionarySection, SectionEncoding::kRaw, offset);
  }
  {
    // Statistics are a deterministic O(V + E) function of the graph, so the
    // writer always recomputes them rather than taking them as input —
    // a snapshot can never carry statistics from a different graph.
    size_t offset = begin_section();
    GANSWER_RETURN_NOT_OK(
        rdf::GraphStats::Compute(graph).SaveBinary(&w, options.compress));
    end_section(kStatsSection, packed, offset);
  }

  uint64_t fingerprint =
      Crc32(w.buffer().data() + table_start, kNumSections * entry_size);
  *out = w.Release();

  if (stats != nullptr) {
    stats->graph_bytes = section_sizes[0];
    stats->signature_bytes = section_sizes[1];
    stats->entity_index_bytes = section_sizes[2];
    stats->dictionary_bytes = section_sizes[3];
    stats->stats_bytes = section_sizes[4];
    stats->total_bytes = out->size();
    stats->fingerprint = fingerprint;
  }
  return Status::Ok();
}

Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats,
                     const SnapshotWriteOptions& options) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("snapshot requires a finalized graph");
  }
  rdf::SignatureIndex signatures(graph);
  linking::EntityIndex entity_index(graph);
  return WriteSnapshot(graph, signatures, entity_index, dict, out, stats,
                       options);
}

Status WriteSnapshotFile(const rdf::RdfGraph& graph,
                         const paraphrase::ParaphraseDictionary& dict,
                         const std::string& path, SnapshotStats* stats,
                         const SnapshotWriteOptions& options) {
  std::string bytes;
  GANSWER_RETURN_NOT_OK(WriteSnapshot(graph, dict, &bytes, stats, options));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::Ok();
}

namespace {

// The shared loader. \p views_allowed is only set for mmap-backed callers,
// which pin the byte range in the returned Snapshot; the in-memory
// ReadSnapshot always copies.
StatusOr<Snapshot> ReadSnapshotImpl(std::string_view bytes,
                                    const nlp::Lexicon* lexicon,
                                    bool views_allowed) {
  if (lexicon == nullptr) return Status::InvalidArgument("null lexicon");
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a gAnswer snapshot (bad magic)");
  }
  BinaryReader header(bytes.substr(sizeof(kMagic)));
  uint32_t bom = 0, version = 0, section_count = 0;
  GANSWER_RETURN_NOT_OK(header.ReadU32(&bom));
  if (bom != kByteOrderMark) {
    return Status::Corruption("snapshot written with foreign byte order");
  }
  GANSWER_RETURN_NOT_OK(header.ReadU32(&version));
  if (version < kMinSupportedSnapshotVersion || version > kSnapshotVersion) {
    return Status::Corruption(
        "snapshot version " + std::to_string(version) +
        " is outside this binary's supported range [" +
        std::to_string(kMinSupportedSnapshotVersion) + ", " +
        std::to_string(kSnapshotVersion) + "]; rebuild the snapshot");
  }
  GANSWER_RETURN_NOT_OK(header.ReadU32(&section_count));
  if (section_count > 64) {
    return Status::Corruption("implausible snapshot section count");
  }

  const bool v3 = version >= 3;
  size_t table_start = sizeof(kMagic) + 3 * sizeof(uint32_t);
  size_t table_bytes = section_count * TableEntrySize(version);
  if (bytes.size() < table_start + table_bytes) {
    return Status::Corruption("truncated snapshot section table");
  }
  uint64_t fingerprint = Crc32(bytes.data() + table_start, table_bytes);

  std::vector<SectionEntry> table(section_count);
  for (SectionEntry& entry : table) {
    GANSWER_RETURN_NOT_OK(header.ReadU32(&entry.id));
    if (v3) {
      uint32_t encoding = 0;
      GANSWER_RETURN_NOT_OK(header.ReadU32(&encoding));
      if (encoding > static_cast<uint32_t>(SectionEncoding::kCompressed)) {
        return Status::Corruption("snapshot section has unknown encoding " +
                                  std::to_string(encoding));
      }
      entry.encoding = static_cast<SectionEncoding>(encoding);
    }
    GANSWER_RETURN_NOT_OK(header.ReadU64(&entry.offset));
    GANSWER_RETURN_NOT_OK(header.ReadU64(&entry.size));
    GANSWER_RETURN_NOT_OK(header.ReadU32(&entry.crc));
  }

  auto find_section = [&](uint32_t id, std::string_view* payload,
                          SectionEncoding* encoding) -> Status {
    for (const SectionEntry& entry : table) {
      if (entry.id != id) continue;
      if (entry.offset > bytes.size() ||
          entry.size > bytes.size() - entry.offset) {
        return Status::Corruption("snapshot section " + std::to_string(id) +
                                  " out of bounds");
      }
      if (v3 && entry.offset % 8 != 0) {
        return Status::Corruption("snapshot section " + std::to_string(id) +
                                  " payload misaligned");
      }
      *payload = bytes.substr(entry.offset, entry.size);
      if (Crc32(payload->data(), payload->size()) != entry.crc) {
        return Status::Corruption("snapshot section " + std::to_string(id) +
                                  " checksum mismatch");
      }
      *encoding = entry.encoding;
      return Status::Ok();
    }
    return Status::Corruption("snapshot section " + std::to_string(id) +
                              " missing");
  };
  auto section_reader = [&](std::string_view payload,
                            SectionEncoding encoding) {
    BinaryReader r(payload);
    r.set_aligned(v3);
    // Views only make sense for raw payloads out of a pinned mapping;
    // compressed sections decode into heap buffers regardless.
    r.set_views_allowed(views_allowed && encoding == SectionEncoding::kRaw);
    return r;
  };

  Snapshot snapshot;
  snapshot.fingerprint = fingerprint;

  std::string_view payload;
  SectionEncoding encoding = SectionEncoding::kRaw;
  GANSWER_RETURN_NOT_OK(find_section(kGraphSection, &payload, &encoding));
  snapshot.graph = std::make_unique<rdf::RdfGraph>();
  {
    BinaryReader r = section_reader(payload, encoding);
    GANSWER_RETURN_NOT_OK(snapshot.graph->LoadBinary(
        &r, encoding == SectionEncoding::kCompressed));
  }

  GANSWER_RETURN_NOT_OK(find_section(kSignatureSection, &payload, &encoding));
  {
    BinaryReader r = section_reader(payload, encoding);
    auto signatures = rdf::SignatureIndex::LoadBinary(
        &r, encoding == SectionEncoding::kCompressed);
    if (!signatures.ok()) return signatures.status();
    if (signatures->NumVertices() != snapshot.graph->dict().size()) {
      return Status::Corruption("signature index size does not match graph");
    }
    snapshot.signatures =
        std::make_unique<rdf::SignatureIndex>(std::move(signatures).value());
  }

  GANSWER_RETURN_NOT_OK(
      find_section(kEntityIndexSection, &payload, &encoding));
  {
    BinaryReader r = section_reader(payload, encoding);
    auto index = linking::EntityIndex::LoadBinary(
        *snapshot.graph, &r, encoding == SectionEncoding::kCompressed);
    if (!index.ok()) return index.status();
    snapshot.entity_index = std::move(index).value();
  }

  GANSWER_RETURN_NOT_OK(find_section(kDictionarySection, &payload, &encoding));
  snapshot.dictionary =
      std::make_unique<paraphrase::ParaphraseDictionary>(lexicon);
  {
    BinaryReader r = section_reader(payload, encoding);
    GANSWER_RETURN_NOT_OK(snapshot.dictionary->LoadBinary(
        &r, snapshot.graph->dict().size()));
  }

  snapshot.stats = std::make_unique<rdf::GraphStats>();
  if (version >= 2) {
    GANSWER_RETURN_NOT_OK(find_section(kStatsSection, &payload, &encoding));
    BinaryReader r = section_reader(payload, encoding);
    GANSWER_RETURN_NOT_OK(snapshot.stats->LoadBinary(
        &r, encoding == SectionEncoding::kCompressed));
  } else {
    // Version-1 snapshots predate the statistics section; the graph is
    // already in memory, so recompute them (same deterministic function the
    // writer runs).
    *snapshot.stats = rdf::GraphStats::Compute(*snapshot.graph);
  }

  return snapshot;
}

}  // namespace

size_t Snapshot::column_heap_bytes() const {
  size_t n = 0;
  if (graph) n += graph->heap_bytes();
  if (signatures) n += signatures->heap_bytes();
  if (stats) n += stats->heap_bytes();
  return n;
}

size_t Snapshot::column_mapped_bytes() const {
  size_t n = 0;
  if (graph) n += graph->view_bytes();
  if (signatures) n += signatures->view_bytes();
  if (stats) n += stats->view_bytes();
  return n;
}

StatusOr<Snapshot> ReadSnapshot(std::string_view bytes,
                                const nlp::Lexicon* lexicon) {
  return ReadSnapshotImpl(bytes, lexicon, /*views_allowed=*/false);
}

StatusOr<Snapshot> ReadSnapshotFile(const std::string& path,
                                    const nlp::Lexicon* lexicon,
                                    SnapshotLoadMode mode) {
  if (mode == SnapshotLoadMode::kMmap) {
    std::shared_ptr<MmapFile> mapping;
    GANSWER_RETURN_NOT_OK(MmapFile::Open(path, &mapping));
    auto snapshot =
        ReadSnapshotImpl(mapping->view(), lexicon, /*views_allowed=*/true);
    if (!snapshot.ok()) return snapshot.status();
    snapshot->mapping = std::move(mapping);
    return snapshot;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError("read error on '" + path + "'");
  }
  std::string bytes = std::move(buffer).str();
  return ReadSnapshot(bytes, lexicon);
}

}  // namespace store
}  // namespace ganswer
