#include "store/snapshot.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/binary_io.h"

namespace ganswer {
namespace store {

namespace {

// Layout:
//   magic(8) | byte-order mark u32 | version u32 | section count u32
//   section table: per section { id u32, offset u64, size u64, crc32 u32 }
//   section payloads (offsets are absolute, payloads contiguous)
// The fingerprint is the CRC32 of the section table, i.e. of all section
// CRCs — a cheap stable identity for the whole container.
constexpr char kMagic[8] = {'G', 'A', 'N', 'S', 'S', 'N', 'A', 'P'};
constexpr uint32_t kByteOrderMark = 0x01020304u;

enum SectionId : uint32_t {
  kGraphSection = 1,        // term dictionary + CSR adjacency + class bitmap
  kSignatureSection = 2,    // per-vertex signature arrays
  kEntityIndexSection = 3,  // label/token postings
  kDictionarySection = 4,   // paraphrase phrase records + inverted index
  kStatsSection = 5,        // planner cardinality statistics (version >= 2)
};

struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
};

}  // namespace

Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const rdf::SignatureIndex& signatures,
                     const linking::EntityIndex& entity_index,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (!graph.finalized()) {
    return Status::InvalidArgument("snapshot requires a finalized graph");
  }

  std::vector<std::pair<uint32_t, std::string>> sections;
  {
    BinaryWriter w;
    GANSWER_RETURN_NOT_OK(graph.SaveBinary(&w));
    sections.emplace_back(kGraphSection, w.Release());
  }
  {
    BinaryWriter w;
    signatures.SaveBinary(&w);
    sections.emplace_back(kSignatureSection, w.Release());
  }
  {
    BinaryWriter w;
    entity_index.SaveBinary(&w);
    sections.emplace_back(kEntityIndexSection, w.Release());
  }
  {
    BinaryWriter w;
    dict.SaveBinary(&w);
    sections.emplace_back(kDictionarySection, w.Release());
  }
  {
    // Statistics are a deterministic O(V + E) function of the graph, so the
    // writer always recomputes them rather than taking them as input —
    // a snapshot can never carry statistics from a different graph.
    BinaryWriter w;
    GANSWER_RETURN_NOT_OK(rdf::GraphStats::Compute(graph).SaveBinary(&w));
    sections.emplace_back(kStatsSection, w.Release());
  }

  size_t header_size = sizeof(kMagic) + 3 * sizeof(uint32_t) +
                       sections.size() * (sizeof(uint32_t) + 2 * sizeof(uint64_t) +
                                          sizeof(uint32_t));
  BinaryWriter table;
  uint64_t offset = header_size;
  for (const auto& [id, payload] : sections) {
    table.WriteU32(id);
    table.WriteU64(offset);
    table.WriteU64(payload.size());
    table.WriteU32(Crc32(payload.data(), payload.size()));
    offset += payload.size();
  }
  uint64_t fingerprint =
      Crc32(table.buffer().data(), table.buffer().size());

  out->clear();
  out->reserve(offset);
  out->append(kMagic, sizeof(kMagic));
  BinaryWriter fixed;
  fixed.WriteU32(kByteOrderMark);
  fixed.WriteU32(kSnapshotVersion);
  fixed.WriteU32(static_cast<uint32_t>(sections.size()));
  out->append(fixed.buffer());
  out->append(table.buffer());
  for (const auto& [id, payload] : sections) out->append(payload);

  if (stats != nullptr) {
    stats->graph_bytes = sections[0].second.size();
    stats->signature_bytes = sections[1].second.size();
    stats->entity_index_bytes = sections[2].second.size();
    stats->dictionary_bytes = sections[3].second.size();
    stats->stats_bytes = sections[4].second.size();
    stats->total_bytes = out->size();
    stats->fingerprint = fingerprint;
  }
  return Status::Ok();
}

Status WriteSnapshot(const rdf::RdfGraph& graph,
                     const paraphrase::ParaphraseDictionary& dict,
                     std::string* out, SnapshotStats* stats) {
  if (!graph.finalized()) {
    return Status::InvalidArgument("snapshot requires a finalized graph");
  }
  rdf::SignatureIndex signatures(graph);
  linking::EntityIndex entity_index(graph);
  return WriteSnapshot(graph, signatures, entity_index, dict, out, stats);
}

Status WriteSnapshotFile(const rdf::RdfGraph& graph,
                         const paraphrase::ParaphraseDictionary& dict,
                         const std::string& path, SnapshotStats* stats) {
  std::string bytes;
  GANSWER_RETURN_NOT_OK(WriteSnapshot(graph, dict, &bytes, stats));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("short write to '" + path + "'");
  return Status::Ok();
}

StatusOr<Snapshot> ReadSnapshot(std::string_view bytes,
                                const nlp::Lexicon* lexicon) {
  if (lexicon == nullptr) return Status::InvalidArgument("null lexicon");
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a gAnswer snapshot (bad magic)");
  }
  BinaryReader header(bytes.substr(sizeof(kMagic)));
  uint32_t bom = 0, version = 0, section_count = 0;
  GANSWER_RETURN_NOT_OK(header.ReadU32(&bom));
  if (bom != kByteOrderMark) {
    return Status::Corruption("snapshot written with foreign byte order");
  }
  GANSWER_RETURN_NOT_OK(header.ReadU32(&version));
  if (version < kMinSupportedSnapshotVersion || version > kSnapshotVersion) {
    return Status::Corruption(
        "snapshot version " + std::to_string(version) +
        " is outside this binary's supported range [" +
        std::to_string(kMinSupportedSnapshotVersion) + ", " +
        std::to_string(kSnapshotVersion) + "]; rebuild the snapshot");
  }
  GANSWER_RETURN_NOT_OK(header.ReadU32(&section_count));
  if (section_count > 64) {
    return Status::Corruption("implausible snapshot section count");
  }

  size_t table_start = sizeof(kMagic) + 3 * sizeof(uint32_t);
  size_t table_bytes =
      section_count * (sizeof(uint32_t) + 2 * sizeof(uint64_t) + sizeof(uint32_t));
  if (bytes.size() < table_start + table_bytes) {
    return Status::Corruption("truncated snapshot section table");
  }
  uint64_t fingerprint = Crc32(bytes.data() + table_start, table_bytes);

  std::vector<SectionEntry> table(section_count);
  for (SectionEntry& entry : table) {
    GANSWER_RETURN_NOT_OK(header.ReadU32(&entry.id));
    GANSWER_RETURN_NOT_OK(header.ReadU64(&entry.offset));
    GANSWER_RETURN_NOT_OK(header.ReadU64(&entry.size));
    GANSWER_RETURN_NOT_OK(header.ReadU32(&entry.crc));
  }

  auto find_section = [&](uint32_t id,
                          std::string_view* payload) -> Status {
    for (const SectionEntry& entry : table) {
      if (entry.id != id) continue;
      if (entry.offset > bytes.size() ||
          entry.size > bytes.size() - entry.offset) {
        return Status::Corruption("snapshot section " + std::to_string(id) +
                                  " out of bounds");
      }
      *payload = bytes.substr(entry.offset, entry.size);
      if (Crc32(payload->data(), payload->size()) != entry.crc) {
        return Status::Corruption("snapshot section " + std::to_string(id) +
                                  " checksum mismatch");
      }
      return Status::Ok();
    }
    return Status::Corruption("snapshot section " + std::to_string(id) +
                              " missing");
  };

  Snapshot snapshot;
  snapshot.fingerprint = fingerprint;

  std::string_view payload;
  GANSWER_RETURN_NOT_OK(find_section(kGraphSection, &payload));
  snapshot.graph = std::make_unique<rdf::RdfGraph>();
  {
    BinaryReader r(payload);
    GANSWER_RETURN_NOT_OK(snapshot.graph->LoadBinary(&r));
  }

  GANSWER_RETURN_NOT_OK(find_section(kSignatureSection, &payload));
  {
    BinaryReader r(payload);
    auto signatures = rdf::SignatureIndex::LoadBinary(&r);
    if (!signatures.ok()) return signatures.status();
    if (signatures->NumVertices() != snapshot.graph->dict().size()) {
      return Status::Corruption("signature index size does not match graph");
    }
    snapshot.signatures =
        std::make_unique<rdf::SignatureIndex>(std::move(signatures).value());
  }

  GANSWER_RETURN_NOT_OK(find_section(kEntityIndexSection, &payload));
  {
    BinaryReader r(payload);
    auto index = linking::EntityIndex::LoadBinary(*snapshot.graph, &r);
    if (!index.ok()) return index.status();
    snapshot.entity_index = std::move(index).value();
  }

  GANSWER_RETURN_NOT_OK(find_section(kDictionarySection, &payload));
  snapshot.dictionary =
      std::make_unique<paraphrase::ParaphraseDictionary>(lexicon);
  {
    BinaryReader r(payload);
    GANSWER_RETURN_NOT_OK(snapshot.dictionary->LoadBinary(
        &r, snapshot.graph->dict().size()));
  }

  snapshot.stats = std::make_unique<rdf::GraphStats>();
  if (version >= 2) {
    GANSWER_RETURN_NOT_OK(find_section(kStatsSection, &payload));
    BinaryReader r(payload);
    GANSWER_RETURN_NOT_OK(snapshot.stats->LoadBinary(&r));
  } else {
    // Version-1 snapshots predate the statistics section; the graph is
    // already in memory, so recompute them (same deterministic function the
    // writer runs).
    *snapshot.stats = rdf::GraphStats::Compute(*snapshot.graph);
  }

  return snapshot;
}

StatusOr<Snapshot> ReadSnapshotFile(const std::string& path,
                                    const nlp::Lexicon* lexicon) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IoError("read error on '" + path + "'");
  }
  std::string bytes = std::move(buffer).str();
  return ReadSnapshot(bytes, lexicon);
}

}  // namespace store
}  // namespace ganswer
