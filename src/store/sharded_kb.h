#ifndef GANSWER_STORE_SHARDED_KB_H_
#define GANSWER_STORE_SHARDED_KB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "rdf/rdf_graph.h"
#include "store/snapshot.h"

namespace ganswer {
namespace store {

/// \brief Horizontal partitioning of a finalized KB into N per-shard
/// snapshots, ZipG-style: one aggregator in front of per-shard stores.
///
/// **Partitioning.** Every triple is *owned* by exactly one shard:
/// `ShardOf(subject, N)` (a splitmix64 mix of the subject's TermId, so
/// consecutive ids spread instead of clustering). Every shard replays the
/// full term dictionary in id order, so TermIds are global — a match
/// assignment computed on any shard is meaningful everywhere and the router
/// renders answer text from its own dictionary without remapping.
///
/// **Halo replication.** Subgraph matching reaches across partition
/// boundaries, so each shard additionally stores (a) every
/// `rdfs:subClassOf` triple (the class hierarchy is tiny and every type
/// check may need it) and (b) every triple incident to a vertex within
/// undirected BFS distance `halo_hops - 1` of an owned vertex. A match
/// whose query needs at most `reach` hops between assigned vertices and
/// whose longest predicate-path candidate is `L` is then fully contained —
/// support triples, type triples and every connecting path — in the shard
/// owning any of its assigned vertices whenever
/// `reach + L + 1 <= halo_hops`; that shard scores it exactly like the
/// single-snapshot matcher would (the router checks this condition per
/// query and falls back to its local full-graph matcher otherwise, so
/// answers stay exact unconditionally — see server/shard_client.h).
///
/// **Recoverability.** Owned triples are recomputable from any shard graph
/// by filtering on `ShardOf(subject)` — replication never obscures
/// ownership, and the union of owned sets over all shards reproduces the
/// original graph exactly (the shard_manifest property test proves this
/// round-trips through the v3 snapshot container, raw and compressed).
struct ShardSpec {
  uint32_t num_shards = 1;
  /// Halo radius in hops. 0 disables replication beyond owned + schema
  /// triples (only safe for single-shard or router-fallback-only serving).
  uint32_t halo_hops = 6;
};

/// Owner shard of a triple with this subject id.
uint32_t ShardOf(rdf::TermId subject, uint32_t num_shards);

/// Per-shard entry of a written sharded KB.
struct ShardInfo {
  std::string path;          ///< Snapshot file of this shard.
  uint64_t fingerprint = 0;  ///< store::Snapshot fingerprint of that file.
  uint64_t owned_triples = 0;
  uint64_t total_triples = 0;  ///< Owned + schema + halo (the served graph).
};

/// The sharded-KB manifest: everything the router and workers need to
/// bring up a consistent serving set. CRC-protected on disk.
struct ShardManifest {
  uint32_t num_shards = 0;
  uint32_t halo_hops = 0;
  std::vector<ShardInfo> shards;
};

/// Partitions \p full (finalized) into `spec.num_shards` standalone graphs:
/// full dictionary replayed id-for-id, owned triples, replicated
/// rdfs:subClassOf triples, and the halo closure described above. Each
/// returned graph is finalized and servable on its own.
StatusOr<std::vector<rdf::RdfGraph>> BuildShardGraphs(
    const rdf::RdfGraph& full, const ShardSpec& spec);

/// The triples of \p shard_graph owned by \p shard_id (filters out halo and
/// schema replicas). Text form via the shard's own dictionary.
std::vector<rdf::Triple> OwnedTriples(const rdf::RdfGraph& shard_graph,
                                      uint32_t shard_id,
                                      uint32_t num_shards);

/// Builds the shard graphs and writes one v3 snapshot per shard
/// (`<base>.shard<i>-of-<N>.snap`) plus the manifest (`<base>.shardmap`).
/// \p dict is embedded in every shard snapshot (predicate ids are global,
/// so the full dictionary is valid against every shard graph); pass an
/// empty dictionary when the workers will never run understanding (they
/// only match, so this is the normal case).
StatusOr<ShardManifest> WriteShardedKb(
    const rdf::RdfGraph& full, const paraphrase::ParaphraseDictionary& dict,
    const std::string& base_path, const ShardSpec& spec,
    const SnapshotWriteOptions& options = {});

/// Path helpers shared by the writer, qa_httpd and the tests.
std::string ShardSnapshotPath(const std::string& base_path, uint32_t shard,
                              uint32_t num_shards);
std::string ShardManifestPath(const std::string& base_path);

Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& path);
/// Rejects wrong magic, version and CRC mismatches with Status::Corruption.
StatusOr<ShardManifest> ReadShardManifest(const std::string& path);

}  // namespace store
}  // namespace ganswer

#endif  // GANSWER_STORE_SHARDED_KB_H_
