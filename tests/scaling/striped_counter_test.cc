// StripedCounter: exactness under concurrent writers (the property that
// lets it replace shared atomics without changing /stats semantics),
// stripe sizing, and the worker-id alignment contract with ThreadPool.

#include "common/striped_counter.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "common/topology.h"

namespace ganswer {
namespace {

TEST(StripedCounterTest, SingleThreadExact) {
  StripedCounter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(StripedCounterTest, StripesArePowerOfTwoAndBounded) {
  EXPECT_EQ(StripedCounter(1).stripes(), 1u);
  EXPECT_EQ(StripedCounter(2).stripes(), 2u);
  EXPECT_EQ(StripedCounter(3).stripes(), 4u);
  EXPECT_EQ(StripedCounter(64).stripes(), 64u);
  EXPECT_EQ(StripedCounter(1000).stripes(), 64u);  // clamped
  size_t auto_stripes = StripedCounter(0).stripes();
  EXPECT_GE(auto_stripes, 1u);
  EXPECT_EQ(auto_stripes & (auto_stripes - 1), 0u);  // power of two
}

// The exactness property: N threads x M increments from scattered hints
// must sum to exactly N*M — never sampled, never lost — regardless of how
// threads map onto stripes.
TEST(StripedCounterTest, ConcurrentSumIsExact) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  for (size_t stripes : {size_t{1}, size_t{4}, size_t{0}}) {
    StripedCounter counter(stripes);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&counter, t] {
        // Scatter hints across threads, including collisions.
        SetCurrentCpuHint(t % 3);
        for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(counter.Value(), kThreads * kPerThread)
        << "stripes=" << stripes;
  }
}

TEST(StripedCounterTest, AddAccumulatesAcrossHints) {
  StripedCounter counter(8);
  int saved = CurrentCpuHint();
  uint64_t expected = 0;
  for (int hint = 0; hint < 20; ++hint) {
    SetCurrentCpuHint(hint);
    counter.Add(static_cast<uint64_t>(hint));
    expected += static_cast<uint64_t>(hint);
  }
  SetCurrentCpuHint(saved);
  EXPECT_EQ(counter.Value(), expected);
}

// Reads concurrent with writers must be tear-free per stripe (a relaxed
// atomic load), so a mid-flight Value() is always <= the final total and
// monotone over quiescent points.
TEST(StripedCounterTest, ConcurrentReadsNeverOvershoot) {
  StripedCounter counter;
  constexpr uint64_t kTotal = 200'000;
  std::atomic<bool> done{false};
  uint64_t max_seen = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      uint64_t v = counter.Value();
      EXPECT_LE(v, kTotal);
      if (v > max_seen) max_seen = v;
    }
  });
  for (uint64_t i = 0; i < kTotal; ++i) counter.Increment();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter.Value(), kTotal);
}

// ThreadPool workers install their worker id as the cpu hint, so pool
// tasks stripe by worker — the alignment StripedCounter's class comment
// promises.
TEST(StripedCounterTest, PoolWorkersCarryWorkerIdHints) {
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&] {
      int id = ThreadPool::CurrentWorkerId();
      if (id < 0 || id >= 4) mismatches.fetch_add(1);
      if (CurrentCpuHint() != id) mismatches.fetch_add(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);  // not a pool worker here
}

TEST(StripedCounterTest, PinnedPoolDegradesGracefully) {
  // pin_workers is best-effort: whatever the environment (cpuset, seccomp,
  // GANSWER_NO_AFFINITY), construction succeeds and work completes.
  ThreadPool pool(ThreadPool::Options{2, /*pin_workers=*/true});
  EXPECT_EQ(pool.size(), 2);
  EXPECT_GE(pool.pinned_workers(), 0);
  EXPECT_LE(pool.pinned_workers(), 2);
  StripedCounter counter;
  pool.ParallelFor(0, 1000, [&](size_t) { counter.Increment(); });
  EXPECT_EQ(counter.Value(), 1000u);
}

}  // namespace
}  // namespace ganswer
