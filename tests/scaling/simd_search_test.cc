// SIMD probe kernels vs std::lower_bound: byte-identical results, proven
// exhaustively on small runs (every size x every key position, duplicates
// included) and by seeded fuzz on large runs, for every kernel the host
// supports (scalar always; SSE2/AVX2 where available). These are the
// probes behind SparqlEngine's edge-run lookups and merge-join advances,
// so any divergence here is a wrong query answer there.

#include "common/search.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ganswer {
namespace {

std::vector<ProbeKernel> SupportedKernels() {
  ProbeKernel prev = ActiveProbeKernel();
  std::vector<ProbeKernel> kernels;
  for (ProbeKernel want :
       {ProbeKernel::kScalar, ProbeKernel::kSse2, ProbeKernel::kAvx2}) {
    if (SetProbeKernelForTest(want) == want) kernels.push_back(want);
  }
  SetProbeKernelForTest(prev);
  return kernels;
}

size_t RefFlat(const std::vector<uint32_t>& v, uint32_t key) {
  return static_cast<size_t>(
      std::lower_bound(v.begin(), v.end(), key) - v.begin());
}

/// Reference over (key, payload) records with a first-field comparator —
/// exactly the comparator SparqlEngine's merge join uses.
size_t RefPair(const std::vector<std::pair<uint32_t, uint32_t>>& v,
               uint32_t key) {
  auto it = std::lower_bound(
      v.begin(), v.end(), std::pair<uint32_t, uint32_t>{key, 0},
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return static_cast<size_t>(it - v.begin());
}

class SimdSearchTest : public ::testing::TestWithParam<ProbeKernel> {
 protected:
  void SetUp() override {
    prev_ = ActiveProbeKernel();
    if (SetProbeKernelForTest(GetParam()) != GetParam()) {
      GTEST_SKIP() << "kernel " << ProbeKernelName(GetParam())
                   << " not supported on this host";
    }
  }
  void TearDown() override { SetProbeKernelForTest(prev_); }

 private:
  ProbeKernel prev_ = ProbeKernel::kScalar;
};

// Every run size through well past the vector window, every key from
// before-the-front to past-the-back, with duplicate plateaus. ~200 x ~400
// probes per kernel: exhaustive over the boundary space.
TEST_P(SimdSearchTest, FlatExhaustiveSmall) {
  for (size_t n = 0; n <= 200; ++n) {
    std::vector<uint32_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint32_t>(3 * (i / 2));  // duplicates every pair
    }
    uint32_t hi = n == 0 ? 8 : v.back() + 4;
    for (uint32_t key = 0; key <= hi; ++key) {
      const uint32_t* lb = SimdLowerBoundU32(v.data(), v.data() + n, key);
      ASSERT_EQ(static_cast<size_t>(lb - v.data()), RefFlat(v, key))
          << "n=" << n << " key=" << key << " kernel="
          << ProbeKernelName(GetParam());
    }
  }
}

TEST_P(SimdSearchTest, PairExhaustiveSmall) {
  for (size_t n = 0; n <= 150; ++n) {
    std::vector<std::pair<uint32_t, uint32_t>> recs(n);
    std::vector<uint32_t> lanes;
    lanes.reserve(2 * n);
    for (size_t i = 0; i < n; ++i) {
      recs[i] = {static_cast<uint32_t>(5 * (i / 3)),
                 static_cast<uint32_t>(0xCAFE0000 + i)};
      lanes.push_back(recs[i].first);
      lanes.push_back(recs[i].second);
    }
    uint32_t hi = n == 0 ? 8 : recs.back().first + 4;
    for (uint32_t key = 0; key <= hi; ++key) {
      const uint32_t* lb =
          SimdLowerBoundPairKey(lanes.data(), lanes.data() + 2 * n, key);
      ASSERT_EQ(static_cast<size_t>(lb - lanes.data()) / 2, RefPair(recs, key));
      ASSERT_EQ((lb - lanes.data()) % 2, 0) << "record-aligned";
      const uint32_t* glb = SimdGallopingLowerBoundPairKey(
          lanes.data(), lanes.data() + 2 * n, key);
      ASSERT_EQ(glb, lb) << "galloping variant agrees";
    }
  }
}

// Seeded fuzz on large runs: random sizes (crossing the bisect/window
// boundary), random values over the full uint32 range including values
// with the sign bit set — the regime where a signed SIMD compare without
// the bias correction silently misorders.
TEST_P(SimdSearchTest, FlatFuzzLargeFullRange) {
  std::mt19937_64 rng(0xF00DF00D);
  for (int round = 0; round < 40; ++round) {
    size_t n = 1 + rng() % 5000;
    std::vector<uint32_t> v(n);
    for (auto& x : v) x = static_cast<uint32_t>(rng());
    std::sort(v.begin(), v.end());
    for (int probe = 0; probe < 200; ++probe) {
      uint32_t key = probe % 2 == 0 ? static_cast<uint32_t>(rng())
                                    : v[rng() % n];  // existing + random
      const uint32_t* lb = SimdLowerBoundU32(v.data(), v.data() + n, key);
      ASSERT_EQ(static_cast<size_t>(lb - v.data()), RefFlat(v, key))
          << "n=" << n << " key=" << key;
    }
  }
}

TEST_P(SimdSearchTest, PairFuzzLargeFullRange) {
  std::mt19937_64 rng(0xBEEFBEEF);
  for (int round = 0; round < 40; ++round) {
    size_t n = 1 + rng() % 3000;
    std::vector<std::pair<uint32_t, uint32_t>> recs(n);
    for (auto& r : recs) {
      r = {static_cast<uint32_t>(rng()), static_cast<uint32_t>(rng())};
    }
    std::sort(recs.begin(), recs.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<uint32_t> lanes;
    lanes.reserve(2 * n);
    for (const auto& r : recs) {
      lanes.push_back(r.first);
      lanes.push_back(r.second);
    }
    for (int probe = 0; probe < 200; ++probe) {
      uint32_t key = probe % 2 == 0 ? static_cast<uint32_t>(rng())
                                    : recs[rng() % n].first;
      const uint32_t* lb =
          SimdLowerBoundPairKey(lanes.data(), lanes.data() + 2 * n, key);
      ASSERT_EQ(static_cast<size_t>(lb - lanes.data()) / 2, RefPair(recs, key));
      const uint32_t* glb = SimdGallopingLowerBoundPairKey(
          lanes.data(), lanes.data() + 2 * n, key);
      ASSERT_EQ(glb, lb);
    }
  }
}

// The merge-join access pattern: monotonically advancing probes from the
// previous hit, where the gallop's bracket logic (not just the final
// window count) is exercised.
TEST_P(SimdSearchTest, GallopingAdvancesLikeReference) {
  std::mt19937_64 rng(0x5CA1AB1E);
  size_t n = 4096;
  std::vector<std::pair<uint32_t, uint32_t>> recs(n);
  uint32_t next = 0;
  for (auto& r : recs) {
    next += 1 + rng() % 4;  // duplicates and short gaps
    r = {next, static_cast<uint32_t>(rng())};
  }
  std::vector<uint32_t> lanes;
  for (const auto& r : recs) {
    lanes.push_back(r.first);
    lanes.push_back(r.second);
  }
  const uint32_t* cur = lanes.data();
  const uint32_t* end = lanes.data() + lanes.size();
  size_t ref_idx = 0;
  while (cur != end && ref_idx < n) {
    uint32_t target = recs[std::min(n - 1, ref_idx + rng() % 32)].first + 1;
    cur = SimdGallopingLowerBoundPairKey(cur, end, target);
    while (ref_idx < n && recs[ref_idx].first < target) ++ref_idx;
    ASSERT_EQ(static_cast<size_t>(cur - lanes.data()) / 2, ref_idx);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SimdSearchTest, ::testing::ValuesIn(SupportedKernels()),
    [](const ::testing::TestParamInfo<ProbeKernel>& info) {
      return ProbeKernelName(info.param);
    });

TEST(SimdDispatchTest, ResolvesToSomeKernelAndDowngrades) {
  ProbeKernel prev = ActiveProbeKernel();
  // Requesting scalar always lands on scalar; requesting the best level
  // lands on a supported kernel (never something the CPU lacks).
  EXPECT_EQ(SetProbeKernelForTest(ProbeKernel::kScalar), ProbeKernel::kScalar);
  ProbeKernel best = SetProbeKernelForTest(ProbeKernel::kAvx2);
  EXPECT_TRUE(best == ProbeKernel::kAvx2 || best == ProbeKernel::kSse2 ||
              best == ProbeKernel::kScalar);
  SetProbeKernelForTest(prev);
}

}  // namespace
}  // namespace ganswer
