// CPU-topology discovery over fixture sysfs trees: multi-socket, SMT,
// cpuset-restricted, list-file-driven, and degraded (missing files) — plus
// the live Topology() singleton, pinning, and the per-thread cpu hint.

#include "common/topology.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ganswer {
namespace {

/// A throwaway sysfs-style tree: WriteCpu() lays down
/// <root>/cpuN/topology/{physical_package_id,core_id} like the kernel does.
struct FixtureTree {
  std::string root;

  explicit FixtureTree(const std::string& stem)
      : root(stem + "." + std::to_string(::getpid())) {
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
  }
  ~FixtureTree() { std::filesystem::remove_all(root); }

  void WriteFile(const std::string& rel, const std::string& text) {
    std::filesystem::path p = std::filesystem::path(root) / rel;
    std::filesystem::create_directories(p.parent_path());
    std::ofstream(p) << text << "\n";
  }

  void WriteCpu(int cpu, int package, int core) {
    std::string base = "cpu" + std::to_string(cpu) + "/topology/";
    WriteFile(base + "physical_package_id", std::to_string(package));
    WriteFile(base + "core_id", std::to_string(core));
  }
};

TEST(TopologyFixtureTest, MultiSocketNoSmt) {
  FixtureTree tree("topo_fixture_multisocket");
  tree.WriteCpu(0, 0, 0);
  tree.WriteCpu(1, 0, 1);
  tree.WriteCpu(2, 1, 0);
  tree.WriteCpu(3, 1, 1);

  CpuTopology topo = ReadCpuTopology(tree.root, {});
  EXPECT_EQ(topo.hardware_threads(), 4);
  EXPECT_EQ(topo.sockets, 2);
  EXPECT_EQ(topo.physical_cores, 4);
  EXPECT_FALSE(topo.smt);
  EXPECT_EQ(topo.cpu_socket[0], 0);
  EXPECT_EQ(topo.cpu_socket[3], 1);
  // Same core id on different sockets must NOT collapse to one core key.
  EXPECT_NE(topo.cpu_core[0], topo.cpu_core[2]);
}

TEST(TopologyFixtureTest, SmtSiblingsShareCoreKey) {
  FixtureTree tree("topo_fixture_smt");
  // One socket, two physical cores, two threads each (0,1) and (2,3).
  tree.WriteCpu(0, 0, 0);
  tree.WriteCpu(1, 0, 0);
  tree.WriteCpu(2, 0, 1);
  tree.WriteCpu(3, 0, 1);

  CpuTopology topo = ReadCpuTopology(tree.root, {});
  EXPECT_EQ(topo.hardware_threads(), 4);
  EXPECT_EQ(topo.sockets, 1);
  EXPECT_EQ(topo.physical_cores, 2);
  EXPECT_TRUE(topo.smt);
  EXPECT_EQ(topo.cpu_core[0], topo.cpu_core[1]);
  EXPECT_EQ(topo.cpu_core[2], topo.cpu_core[3]);
  EXPECT_NE(topo.cpu_core[0], topo.cpu_core[2]);
}

TEST(TopologyFixtureTest, CpusetRestrictionWins) {
  FixtureTree tree("topo_fixture_cpuset");
  for (int c = 0; c < 8; ++c) tree.WriteCpu(c, 0, c);

  // The container cpuset confines the process to two of the eight cpus;
  // every derived count must follow the restriction, not the tree.
  CpuTopology topo = ReadCpuTopology(tree.root, {1, 5});
  EXPECT_EQ(topo.hardware_threads(), 2);
  EXPECT_EQ((std::vector<int>{1, 5}), topo.cpus);
  EXPECT_EQ(topo.physical_cores, 2);
  EXPECT_EQ(topo.sockets, 1);
}

TEST(TopologyFixtureTest, OnlineListFileEnumerates) {
  FixtureTree tree("topo_fixture_online");
  tree.WriteFile("online", "0-2,5");
  for (int c : {0, 1, 2, 5}) tree.WriteCpu(c, 0, c);

  CpuTopology topo = ReadCpuTopology(tree.root, {});
  EXPECT_EQ((std::vector<int>{0, 1, 2, 5}), topo.cpus);
}

TEST(TopologyFixtureTest, MissingTopologyFilesDegradeGracefully) {
  FixtureTree tree("topo_fixture_degraded");
  // cpu directories exist (marked by online files) but carry no topology/
  // subtree — a stripped-down container sysfs.
  tree.WriteFile("cpu0/online", "1");
  tree.WriteFile("cpu1/online", "1");

  CpuTopology topo = ReadCpuTopology(tree.root, {});
  EXPECT_EQ(topo.hardware_threads(), 2);
  // The conservative fallback: one socket of independent cores.
  EXPECT_EQ(topo.sockets, 1);
  EXPECT_EQ(topo.physical_cores, 2);
  EXPECT_FALSE(topo.smt);
  EXPECT_EQ(topo.cache_line_bytes, 64);
}

TEST(TopologyFixtureTest, EmptyTreeYieldsSingleCpu) {
  FixtureTree tree("topo_fixture_empty");
  CpuTopology topo = ReadCpuTopology(tree.root, {});
  EXPECT_EQ(topo.hardware_threads(), 1);
  EXPECT_EQ(topo.sockets, 1);
  EXPECT_EQ(topo.physical_cores, 1);
}

TEST(TopologyFixtureTest, CacheLineSizeReadAndClamped) {
  FixtureTree tree("topo_fixture_cacheline");
  tree.WriteCpu(0, 0, 0);
  tree.WriteFile("cpu0/cache/index0/coherency_line_size", "128");
  EXPECT_EQ(ReadCpuTopology(tree.root, {}).cache_line_bytes, 128);

  FixtureTree bad("topo_fixture_cacheline_bad");
  bad.WriteCpu(0, 0, 0);
  bad.WriteFile("cpu0/cache/index0/coherency_line_size", "0");
  EXPECT_EQ(ReadCpuTopology(bad.root, {}).cache_line_bytes, 64);
}

TEST(TopologyLiveTest, SingletonIsSaneAndStable) {
  const CpuTopology& topo = Topology();
  EXPECT_GE(topo.hardware_threads(), 1);
  EXPECT_GE(topo.sockets, 1);
  EXPECT_GE(topo.physical_cores, 1);
  EXPECT_GT(topo.cache_line_bytes, 0);
  EXPECT_EQ(&Topology(), &topo);  // cached
  EXPECT_EQ(AvailableCpus(), topo.hardware_threads());
}

TEST(TopologyLiveTest, PinRejectsUnknownCpuGracefully) {
  // Never an error: pinning to a cpu outside the allowed set reports false
  // and the thread keeps running unpinned.
  EXPECT_FALSE(PinCurrentThreadToCpu(1 << 20));
  EXPECT_FALSE(PinCurrentThreadToCpu(-1));
}

TEST(TopologyLiveTest, CpuHintIsStableAndOverridable) {
  int first = CurrentCpuHint();
  EXPECT_GE(first, 0);
  EXPECT_EQ(CurrentCpuHint(), first);  // stable for the thread's lifetime

  SetCurrentCpuHint(7);
  EXPECT_EQ(CurrentCpuHint(), 7);
  SetCurrentCpuHint(first);

  // A fresh thread gets its own hint without any setup call.
  int other = -1;
  std::thread([&] { other = CurrentCpuHint(); }).join();
  EXPECT_GE(other, 0);
}

}  // namespace
}  // namespace ganswer
