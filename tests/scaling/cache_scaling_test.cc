// Core-aware ShardedLruCache behavior: topology-derived shard counts,
// thread-independent key->shard affinity (the correctness contract behind
// the per-thread probe hint), the shard-imbalance gauge, and exact striped
// hit/miss counters under concurrent probing.

#include "common/lru_cache.h"

#include <atomic>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/topology.h"

namespace ganswer {
namespace {

using Cache = ShardedLruCache<std::string>;

TEST(CacheScalingTest, AutoShardCountDerivesFromTopology) {
  Cache cache({/*capacity=*/1024, /*shards=*/0});
  size_t shards = cache.options().shards;
  EXPECT_GE(shards, 8u) << "floor keeps 1-core boxes at the historic 8";
  EXPECT_EQ(shards & (shards - 1), 0u) << "power of two for mask selection";
  EXPECT_GE(shards, static_cast<size_t>(AvailableCpus()))
      << "at least one shard per available cpu";
  EXPECT_LE(shards, 256u);
}

TEST(CacheScalingTest, ExplicitShardsRoundUpToPowerOfTwo) {
  EXPECT_EQ(Cache({64, 1}).options().shards, 1u);
  EXPECT_EQ(Cache({64, 3}).options().shards, 4u);
  EXPECT_EQ(Cache({64, 8}).options().shards, 8u);
  EXPECT_EQ(Cache({8, 5}).options().shards, 8u);
}

// The affinity contract: a key's shard is a pure function of the key —
// every thread resolves the same key to the same shard, so a value Put
// from one thread is always found by Get from any other.
TEST(CacheScalingTest, KeyToShardMappingIsThreadIndependent) {
  Cache cache({256, 16});
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("key" + std::to_string(i));
  std::vector<size_t> home(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    home[i] = cache.ShardIndex(keys[i]);
    cache.Put(keys[i], "value" + std::to_string(i));
  }

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      SetCurrentCpuHint(t);  // distinct per-thread affinity hints
      for (size_t i = 0; i < keys.size(); ++i) {
        if (cache.ShardIndex(keys[i]) != home[i]) failures.fetch_add(1);
        auto hit = cache.Get(keys[i]);
        if (hit == nullptr || *hit != "value" + std::to_string(i)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(CacheScalingTest, StatsCountersAreExactUnderConcurrency) {
  Cache cache({1024, 8});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  for (int i = 0; i < 16; ++i) {
    cache.Put("hot" + std::to_string(i), "v");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SetCurrentCpuHint(t);
      for (int i = 0; i < kPerThread; ++i) {
        EXPECT_NE(cache.Get("hot" + std::to_string(i % 16)), nullptr);
        EXPECT_EQ(cache.Get("cold" + std::to_string(i)), nullptr);
      }
    });
  }
  for (auto& th : threads) th.join();
  Cache::Stats stats = cache.stats();
  // Exact, not sampled: the striped counters must aggregate to the precise
  // event counts.
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(CacheScalingTest, CountMissFalseSuppressesMissCounter) {
  Cache cache({64, 8});
  cache.Get("absent", /*count_miss=*/false);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.Get("absent");
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheScalingTest, ShardImbalanceGauge) {
  Cache cache({256, 8});
  EXPECT_EQ(cache.stats().shard_imbalance, 0.0) << "empty cache";

  for (int i = 0; i < 200; ++i) {
    cache.Put("spread" + std::to_string(i), "v");
  }
  Cache::Stats stats = cache.stats();
  EXPECT_EQ(stats.shard_entries.size(), cache.options().shards);
  EXPECT_EQ(std::accumulate(stats.shard_entries.begin(),
                            stats.shard_entries.end(), size_t{0}),
            stats.entries);
  // max/mean: >= 1 by construction, and bounded by the shard count (the
  // worst case is every entry on one shard).
  EXPECT_GE(stats.shard_imbalance, 1.0);
  EXPECT_LE(stats.shard_imbalance, static_cast<double>(cache.options().shards));
}

TEST(CacheScalingTest, EvictionStaysPerShardAndCounted) {
  Cache cache({8, 8});  // one entry per shard
  // Two keys in the same shard: the second Put must evict the first.
  std::string a = "k0";
  std::string probe;
  for (int i = 1;; ++i) {
    probe = "k" + std::to_string(i);
    if (cache.ShardIndex(probe) == cache.ShardIndex(a)) break;
  }
  cache.Put(a, "va");
  cache.Put(probe, "vb");
  EXPECT_EQ(cache.Get(a), nullptr);
  EXPECT_NE(cache.Get(probe), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheScalingTest, ClearKeepsCounters) {
  Cache cache({64, 8});
  cache.Put("k", "v");
  cache.Get("k");
  cache.Clear();
  Cache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(cache.Get("k"), nullptr) << "cleared entries are gone";
}

}  // namespace
}  // namespace ganswer
