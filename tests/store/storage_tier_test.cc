// The v3 storage tier: every (encoding, load mode) combination must
// reconstruct the same bundle, the compressed container must actually be
// smaller, legacy v2 containers must keep loading, and corruption in the
// compressed sections must be rejected — through the CRC and, when the CRC
// is forged, through the decoders' own validation.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "store/snapshot.h"
#include "test_support.h"

namespace ganswer {
namespace store {
namespace {

struct TierWorld {
  testing::RandomGraphData data;
  nlp::Lexicon lexicon;
  std::unique_ptr<paraphrase::ParaphraseDictionary> dict;

  TierWorld() {
    testing::RandomGraphOptions opts;
    opts.num_vertices = 400;
    opts.num_predicates = 12;
    opts.num_triples = 3000;
    opts.num_classes = 4;
    opts.literal_rate = 0.15;
    data = testing::BuildRandomGraph(77, opts);
    dict = std::make_unique<paraphrase::ParaphraseDictionary>(&lexicon);
    rdf::TermId p0 = *data.graph.Find("p0");
    paraphrase::ParaphraseEntry entry;
    entry.path.steps = {{p0, true}};
    entry.confidence = 0.9;
    dict->AddPhrase("related to", {entry});
  }
};

TierWorld& World() {
  static TierWorld* world = new TierWorld();
  return *world;
}

std::string Write(const SnapshotWriteOptions& options,
                  SnapshotStats* stats = nullptr) {
  std::string bytes;
  Status st = WriteSnapshot(World().data.graph, *World().dict, &bytes, stats,
                            options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return bytes;
}

std::string WriteToFile(const std::string& path,
                        const SnapshotWriteOptions& options) {
  std::string bytes = Write(options);
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

// The strongest equality there is: re-serializing a loaded bundle (with
// fixed writer options) must reproduce identical bytes whatever encoding or
// load path produced it.
std::string Reserialize(const Snapshot& snapshot) {
  std::string bytes;
  Status st = WriteSnapshot(*snapshot.graph, *snapshot.signatures,
                            *snapshot.entity_index, *snapshot.dictionary,
                            &bytes, nullptr, {.version = 3});
  EXPECT_TRUE(st.ok()) << st.ToString();
  return bytes;
}

TEST(StorageTierTest, AllEncodingsAndLoadModesReconstructIdentically) {
  std::string raw_path = "storage_tier_raw.snap";
  std::string compressed_path = "storage_tier_compressed.snap";
  WriteToFile(raw_path, {.version = 3, .compress = false});
  WriteToFile(compressed_path, {.version = 3, .compress = true});

  auto raw_read = ReadSnapshotFile(raw_path, &World().lexicon);
  auto raw_mmap = ReadSnapshotFile(raw_path, &World().lexicon,
                                   SnapshotLoadMode::kMmap);
  auto compressed = ReadSnapshotFile(compressed_path, &World().lexicon);
  auto compressed_mmap = ReadSnapshotFile(compressed_path, &World().lexicon,
                                          SnapshotLoadMode::kMmap);
  ASSERT_TRUE(raw_read.ok()) << raw_read.status().ToString();
  ASSERT_TRUE(raw_mmap.ok()) << raw_mmap.status().ToString();
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  ASSERT_TRUE(compressed_mmap.ok()) << compressed_mmap.status().ToString();

  std::string reference = Reserialize(*raw_read);
  EXPECT_EQ(reference, Reserialize(*raw_mmap));
  EXPECT_EQ(reference, Reserialize(*compressed));
  EXPECT_EQ(reference, Reserialize(*compressed_mmap));

  // A mapped load actually serves columns out of the mapping; a bulk read
  // or a compressed load does not.
  EXPECT_NE(raw_mmap->mapping, nullptr);
  EXPECT_GT(raw_mmap->column_mapped_bytes(), 0u);
  EXPECT_LT(raw_mmap->column_heap_bytes(), raw_read->column_heap_bytes());
  EXPECT_EQ(raw_read->mapping, nullptr);
  EXPECT_EQ(raw_read->column_mapped_bytes(), 0u);
  EXPECT_EQ(compressed_mmap->column_mapped_bytes(), 0u);

  // The fingerprint identifies content bytes, so it tracks the encoding,
  // but both load modes of one file agree on it.
  EXPECT_EQ(raw_read->fingerprint, raw_mmap->fingerprint);
  EXPECT_EQ(compressed->fingerprint, compressed_mmap->fingerprint);

  std::remove(raw_path.c_str());
  std::remove(compressed_path.c_str());
}

TEST(StorageTierTest, CompressedContainerIsSubstantiallySmaller) {
  SnapshotStats raw_stats, compressed_stats;
  Write({.version = 3, .compress = false}, &raw_stats);
  Write({.version = 3, .compress = true}, &compressed_stats);
  EXPECT_LT(compressed_stats.total_bytes * 2, raw_stats.total_bytes)
      << "compressed " << compressed_stats.total_bytes << " vs raw "
      << raw_stats.total_bytes;
  EXPECT_LT(compressed_stats.graph_bytes, raw_stats.graph_bytes);
  EXPECT_LT(compressed_stats.signature_bytes, raw_stats.signature_bytes);
  EXPECT_LT(compressed_stats.entity_index_bytes,
            raw_stats.entity_index_bytes);
  EXPECT_LT(compressed_stats.stats_bytes, raw_stats.stats_bytes);
}

TEST(StorageTierTest, LegacyVersionTwoContainerStillLoads) {
  std::string v2 = Write({.version = 2});
  auto loaded = ReadSnapshot(v2, &World().lexicon);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto v3 = ReadSnapshot(Write({.version = 3}), &World().lexicon);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(Reserialize(*loaded), Reserialize(*v3));
}

TEST(StorageTierTest, CompressRequiresVersionThree) {
  std::string bytes;
  Status st = WriteSnapshot(World().data.graph, *World().dict, &bytes,
                            nullptr, {.version = 2, .compress = true});
  EXPECT_FALSE(st.ok());
}

// --- Corruption handling over the compressed sections. ---

struct SectionEntry {
  uint32_t id = 0;
  uint32_t encoding = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  size_t crc_at = 0;  // file offset of the crc field, for forging
};

std::vector<SectionEntry> ParseTable(const std::string& bytes) {
  // v3 header: magic(8) bom(4) version(4) count(4), then 28-byte entries.
  std::vector<SectionEntry> sections;
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 16, sizeof(count));
  size_t at = 20;
  for (uint32_t i = 0; i < count; ++i, at += 28) {
    SectionEntry e;
    std::memcpy(&e.id, bytes.data() + at, 4);
    std::memcpy(&e.encoding, bytes.data() + at + 4, 4);
    std::memcpy(&e.offset, bytes.data() + at + 8, 8);
    std::memcpy(&e.size, bytes.data() + at + 16, 8);
    e.crc_at = at + 24;
    sections.push_back(e);
  }
  return sections;
}

TEST(StorageTierTest, BitFlipsInCompressedSectionsAreRejectedByCrc) {
  std::string bytes = Write({.version = 3, .compress = true});
  std::vector<SectionEntry> sections = ParseTable(bytes);
  ASSERT_EQ(sections.size(), 5u);
  for (const SectionEntry& section : sections) {
    if (section.encoding !=
        static_cast<uint32_t>(SectionEncoding::kCompressed)) {
      continue;
    }
    for (uint64_t step = 0; step < section.size;
         step += 1 + section.size / 23) {
      std::string mutated = bytes;
      mutated[section.offset + step] ^= 0x40;
      auto loaded = ReadSnapshot(mutated, &World().lexicon);
      EXPECT_FALSE(loaded.ok())
          << "flip at +" << step << " in section " << section.id
          << " survived";
    }
  }
}

TEST(StorageTierTest, ForgedCrcStillFailsInCompressedDecoders) {
  // Flip payload bytes AND recompute the section CRC, so the container
  // machinery accepts the bytes and the delta/front-coding decoders
  // themselves must catch the damage (or produce a consistent bundle —
  // never crash, never accept garbage silently as something it is not).
  std::string bytes = Write({.version = 3, .compress = true});
  std::vector<SectionEntry> sections = ParseTable(bytes);
  size_t rejected = 0, accepted = 0;
  for (const SectionEntry& section : sections) {
    if (section.encoding !=
        static_cast<uint32_t>(SectionEncoding::kCompressed)) {
      continue;
    }
    for (uint64_t step = 0; step < section.size;
         step += 1 + section.size / 57) {
      std::string mutated = bytes;
      mutated[section.offset + step] ^= 0x81;
      uint32_t crc = Crc32(mutated.data() + section.offset, section.size);
      std::memcpy(mutated.data() + section.crc_at, &crc, sizeof(crc));
      auto loaded = ReadSnapshot(mutated, &World().lexicon);
      if (loaded.ok()) {
        ++accepted;
        ASSERT_NE(loaded->graph, nullptr);
        EXPECT_TRUE(loaded->graph->finalized());
      } else {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0u);
  SUCCEED() << accepted << " lucky mutations re-validated";
}

TEST(StorageTierTest, EveryTruncationOfCompressedContainerIsRejected) {
  std::string bytes = Write({.version = 3, .compress = true});
  for (size_t n = 0; n < std::min<size_t>(bytes.size(), 200); ++n) {
    EXPECT_FALSE(ReadSnapshot(bytes.substr(0, n), &World().lexicon).ok());
  }
  for (size_t n = 200; n < bytes.size(); n += 41) {
    EXPECT_FALSE(ReadSnapshot(bytes.substr(0, n), &World().lexicon).ok());
  }
}

TEST(StorageTierTest, MmapLoadRejectsCorruptFile) {
  std::string path = "storage_tier_corrupt.snap";
  std::string bytes = WriteToFile(path, {.version = 3, .compress = false});
  std::vector<SectionEntry> sections = ParseTable(bytes);
  std::string mutated = bytes;
  mutated[sections[0].offset + sections[0].size / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }
  auto loaded =
      ReadSnapshotFile(path, &World().lexicon, SnapshotLoadMode::kMmap);
  EXPECT_FALSE(loaded.ok());
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  loaded = ReadSnapshotFile(path, &World().lexicon, SnapshotLoadMode::kMmap);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(StorageTierTest, MmapLoadRejectsEmptyFile) {
  std::string path = "storage_tier_empty.snap";
  { std::ofstream out(path, std::ios::binary); }
  auto loaded =
      ReadSnapshotFile(path, &World().lexicon, SnapshotLoadMode::kMmap);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace store
}  // namespace ganswer
