#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "linking/entity_index.h"
#include "nlp/lexicon.h"
#include "paraphrase/paraphrase_dictionary.h"
#include "rdf/graph_stats.h"
#include "rdf/rdf_graph.h"
#include "rdf/signature_index.h"

namespace ganswer {
namespace store {
namespace {

// A small but structurally complete world: entities with labels, a class
// with instances, literals, and a dictionary with a single-predicate and a
// multi-hop phrase.
struct TestWorld {
  rdf::RdfGraph graph;
  nlp::Lexicon lexicon;
  std::unique_ptr<paraphrase::ParaphraseDictionary> dict;

  TestWorld() {
    graph.AddTriple("Alice", "knows", "Bob");
    graph.AddTriple("Bob", "knows", "Carol");
    graph.AddTriple("Alice", "rdf:type", "Person");
    graph.AddTriple("Bob", "rdf:type", "Person");
    graph.AddTriple("Carol", "rdf:type", "Person");
    graph.AddTriple("Alice", "rdfs:label", "Alice Smith",
                    rdf::TermKind::kLiteral);
    graph.AddTriple("Alice", "age", "34", rdf::TermKind::kLiteral);
    EXPECT_TRUE(graph.Finalize().ok());

    dict = std::make_unique<paraphrase::ParaphraseDictionary>(&lexicon);
    rdf::TermId knows = *graph.dict().LookupAny("knows");
    paraphrase::ParaphraseEntry direct;
    direct.path.steps = {{knows, true}};
    direct.confidence = 1.0;
    dict->AddPhrase("be familiar with", {direct});
    paraphrase::ParaphraseEntry two_hop;
    two_hop.path.steps = {{knows, true}, {knows, true}};
    two_hop.confidence = 0.5;
    dict->AddPhrase("know through a friend", {direct, two_hop});
  }
};

std::string WriteTestSnapshot(const TestWorld& world,
                              SnapshotStats* stats = nullptr,
                              const SnapshotWriteOptions& options = {}) {
  std::string bytes;
  Status st = WriteSnapshot(world.graph, *world.dict, &bytes, stats, options);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return bytes;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  TestWorld world;
  SnapshotStats stats;
  std::string bytes = WriteTestSnapshot(world, &stats);
  EXPECT_GT(stats.graph_bytes, 0u);
  EXPECT_GT(stats.signature_bytes, 0u);
  EXPECT_GT(stats.entity_index_bytes, 0u);
  EXPECT_GT(stats.dictionary_bytes, 0u);
  EXPECT_GT(stats.stats_bytes, 0u);
  EXPECT_EQ(stats.total_bytes, bytes.size());
  EXPECT_NE(stats.fingerprint, 0u);

  auto loaded = ReadSnapshot(bytes, &world.lexicon);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, stats.fingerprint);

  // Graph: terms, triples, adjacency and class info all survive.
  const rdf::RdfGraph& g = *loaded->graph;
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.NumTriples(), world.graph.NumTriples());
  ASSERT_EQ(g.dict().size(), world.graph.dict().size());
  for (rdf::TermId id = 0; id < g.dict().size(); ++id) {
    EXPECT_EQ(g.dict().text(id), world.graph.dict().text(id));
    EXPECT_EQ(g.dict().kind(id), world.graph.dict().kind(id));
  }
  rdf::TermId alice = *g.dict().LookupAny("Alice");
  rdf::TermId knows = *g.dict().LookupAny("knows");
  rdf::TermId bob = *g.dict().LookupAny("Bob");
  EXPECT_TRUE(g.HasTriple(alice, knows, bob));
  rdf::TermId person = *g.dict().LookupAny("Person");
  EXPECT_EQ(g.InstancesOf(person).size(), 3u);

  // Signature index: same signatures, vertex for vertex.
  ASSERT_NE(loaded->signatures, nullptr);
  rdf::SignatureIndex fresh_sigs(world.graph);
  ASSERT_EQ(loaded->signatures->NumVertices(), fresh_sigs.NumVertices());

  // Entity index: label and token postings answer identically.
  ASSERT_NE(loaded->entity_index, nullptr);
  linking::EntityIndex fresh_index(world.graph);
  EXPECT_EQ(loaded->entity_index->ExactMatches("Alice Smith"),
            fresh_index.ExactMatches("Alice Smith"));
  EXPECT_EQ(loaded->entity_index->TokenMatches("alice"),
            fresh_index.TokenMatches("alice"));
  EXPECT_EQ(loaded->entity_index->LabelsOf(alice), fresh_index.LabelsOf(alice));

  // Dictionary: phrases, lemmas, entries, paths, inverted index.
  const paraphrase::ParaphraseDictionary& d = *loaded->dictionary;
  ASSERT_EQ(d.NumPhrases(), world.dict->NumPhrases());
  for (paraphrase::PhraseId id = 0; id < d.NumPhrases(); ++id) {
    EXPECT_EQ(d.PhraseText(id), world.dict->PhraseText(id));
    EXPECT_EQ(d.PhraseLemmas(id), world.dict->PhraseLemmas(id));
    const auto& got = d.Entries(id);
    const auto& want = world.dict->Entries(id);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].confidence, want[i].confidence);
      ASSERT_EQ(got[i].path.steps.size(), want[i].path.steps.size());
      for (size_t s = 0; s < got[i].path.steps.size(); ++s) {
        EXPECT_EQ(got[i].path.steps[s].predicate,
                  want[i].path.steps[s].predicate);
        EXPECT_EQ(got[i].path.steps[s].forward, want[i].path.steps[s].forward);
      }
    }
  }
  EXPECT_EQ(d.PhrasesContaining("familiar"),
            world.dict->PhrasesContaining("familiar"));

  // Graph statistics: the stats section round-trips to exactly what a
  // fresh Compute over the graph produces.
  ASSERT_NE(loaded->stats, nullptr);
  EXPECT_TRUE(*loaded->stats == rdf::GraphStats::Compute(world.graph));
}

TEST(SnapshotTest, AcceptsVersionOneAndRecomputesStats) {
  TestWorld world;
  // A version-2 container patched to claim version 1: versions 1 and 2
  // share the table layout (v3 widened it), so the patched bytes parse as
  // a valid v1 container. The reader then takes the backward-compat path:
  // the stats section (which version 1 predates) is not read, and the
  // statistics are recomputed from the loaded graph.
  std::string bytes = WriteTestSnapshot(world, nullptr, {.version = 2});
  ASSERT_GE(kMinSupportedSnapshotVersion, 1u);
  bytes[12] = 1;
  auto loaded = ReadSnapshot(bytes, &world.lexicon);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->graph->NumTriples(), world.graph.NumTriples());
  ASSERT_NE(loaded->stats, nullptr);
  EXPECT_TRUE(*loaded->stats == rdf::GraphStats::Compute(world.graph));
}

TEST(SnapshotTest, RejectsVersionBelowSupportedRange) {
  TestWorld world;
  std::string bytes = WriteTestSnapshot(world);
  bytes[12] = 0;
  auto loaded = ReadSnapshot(bytes, &world.lexicon);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("rebuild the snapshot"),
            std::string::npos);
}

TEST(SnapshotTest, WritingTwiceIsByteIdentical) {
  TestWorld world;
  std::string first = WriteTestSnapshot(world);
  std::string second = WriteTestSnapshot(world);
  EXPECT_EQ(first, second);
}

TEST(SnapshotTest, FingerprintTracksContent) {
  TestWorld world;
  SnapshotStats stats_a;
  WriteTestSnapshot(world, &stats_a);

  TestWorld other;
  other.graph.AddTriple("Dave", "knows", "Alice");
  ASSERT_TRUE(other.graph.Finalize().ok());
  SnapshotStats stats_b;
  std::string bytes;
  ASSERT_TRUE(WriteSnapshot(other.graph, *other.dict, &bytes, &stats_b).ok());
  EXPECT_NE(stats_a.fingerprint, stats_b.fingerprint);
}

TEST(SnapshotTest, RejectsBadMagic) {
  TestWorld world;
  std::string bytes = WriteTestSnapshot(world);
  bytes[0] ^= 0x40;
  auto loaded = ReadSnapshot(bytes, &world.lexicon);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("magic"), std::string::npos);
}

TEST(SnapshotTest, RejectsVersionMismatch) {
  TestWorld world;
  std::string bytes = WriteTestSnapshot(world);
  // Version u32 sits after the 8-byte magic and 4-byte byte-order mark.
  bytes[12] = static_cast<char>(kSnapshotVersion + 1);
  auto loaded = ReadSnapshot(bytes, &world.lexicon);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("rebuild the snapshot"),
            std::string::npos);
}

TEST(SnapshotTest, RejectsCorruptPayloadByCrc) {
  TestWorld world;
  std::string bytes = WriteTestSnapshot(world);
  // Flip one bit in the middle of the payload region (well past the
  // header): some section's CRC must catch it.
  bytes[bytes.size() / 2] ^= 0x01;
  auto loaded = ReadSnapshot(bytes, &world.lexicon);
  ASSERT_FALSE(loaded.ok());
}

TEST(SnapshotTest, RejectsEveryTruncation) {
  TestWorld world;
  std::string bytes = WriteTestSnapshot(world);
  // Sample prefixes across the whole container, including cuts inside the
  // header, the section table and each payload.
  for (size_t cut = 0; cut < bytes.size(); cut += 13) {
    auto loaded = ReadSnapshot(std::string_view(bytes).substr(0, cut),
                               &world.lexicon);
    EXPECT_FALSE(loaded.ok()) << "prefix length " << cut;
  }
}

TEST(SnapshotTest, RejectsEmptyAndGarbageInput) {
  TestWorld world;
  EXPECT_FALSE(ReadSnapshot("", &world.lexicon).ok());
  EXPECT_FALSE(ReadSnapshot("not a snapshot at all", &world.lexicon).ok());
  std::string zeros(4096, '\0');
  EXPECT_FALSE(ReadSnapshot(zeros, &world.lexicon).ok());
}

TEST(SnapshotTest, FileRoundTrip) {
  TestWorld world;
  std::string path = "ganswer_snapshot_test.snap";  // test working dir
  SnapshotStats stats;
  ASSERT_TRUE(
      WriteSnapshotFile(world.graph, *world.dict, path, &stats).ok());
  auto loaded = ReadSnapshotFile(path, &world.lexicon);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, stats.fingerprint);
  EXPECT_EQ(loaded->graph->NumTriples(), world.graph.NumTriples());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsIoError) {
  nlp::Lexicon lexicon;
  auto loaded = ReadSnapshotFile("/nonexistent/ganswer.snap", &lexicon);
  ASSERT_FALSE(loaded.ok());
}

TEST(SnapshotTest, RequiresFinalizedGraph) {
  rdf::RdfGraph graph;
  graph.AddTriple("a", "p", "b");
  nlp::Lexicon lexicon;
  paraphrase::ParaphraseDictionary dict(&lexicon);
  std::string bytes;
  EXPECT_FALSE(WriteSnapshot(graph, dict, &bytes).ok());
}

}  // namespace
}  // namespace store
}  // namespace ganswer
